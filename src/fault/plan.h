// Deterministic fault plans: the declarative input of the fault-injection
// layer (the paper's Section 4 failure scenarios, made replayable).
//
// A FaultPlan is a list of timed events on the trace clock — crash/restart
// of a proxy or the server, timed partitions, and link-fault windows during
// which messages on chosen site pairs are dropped, duplicated, or delayed
// with configured probabilities. Plans are pure data: the replay engine
// expands crash/partition events onto its existing FailureEvent machinery,
// and hands link-fault windows to a FaultClock (clock.h) whose seeded RNG
// makes every perturbation decision reproducible bit-for-bit.
//
// Plans round-trip through a small JSON dialect (times in seconds, the
// subset this file's parser accepts is exactly what ToJson emits), so the
// golden corpus under tests/data/fault_plans/ is both human-editable and
// regression-locked.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace webcc::fault {

enum class FaultKind : std::uint8_t {
  kProxyCrash,   // proxy `target` down for [at, at+duration)
  kServerCrash,  // server + accelerator down for [at, at+duration)
  kPartition,    // link proxy `target` <-> server cut for [at, at+duration)
                 //   target -1 = every proxy-server link
  kLinkFault,    // probabilistic drop/dup/delay window on `target`'s links
                 //   target -1 = every link
};

// Stable wire names ("proxy_crash", ...) used in the JSON form.
std::string_view FaultKindName(FaultKind kind);
bool ParseFaultKindName(std::string_view name, FaultKind& out);

struct FaultEvent {
  Time at = 0;            // trace time the fault begins
  FaultKind kind = FaultKind::kPartition;
  int target = -1;        // proxy index; -1 = all / not applicable
  Time duration = 0;      // how long the fault lasts (half-open window)
  // kLinkFault only:
  double drop = 0.0;       // per-message loss probability
  double duplicate = 0.0;  // per-message duplication probability
  Time extra_delay = 0;    // fixed added latency while the window is active
};

struct FaultPlan {
  std::string name;  // free-form label, carried into traces
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
};

// Knobs for Random(): how violent a generated plan is. Defaults produce
// plans that exercise every fault kind within a several-hour trace.
struct RandomPlanConfig {
  Time horizon = 3 * kHour;    // events start within [0, horizon)
  int clients = 60;            // proxy indices drawn from [0, clients)
  int crash_events = 2;        // proxy crash/restart pairs
  int partition_events = 2;    // timed partitions
  int link_windows = 2;        // probabilistic drop/dup/delay windows
  bool allow_server_crash = true;  // at most one server crash per plan
  Time min_duration = 30 * kSecond;
  Time max_duration = 15 * kMinute;
  double max_drop = 0.3;
  double max_duplicate = 0.15;
  Time max_extra_delay = 50 * kMillisecond;
};

// Deterministic plan generation: the same (config, seed) always yields the
// same plan, which is what lets `--fault-seed N` replay bit-identically.
FaultPlan Random(const RandomPlanConfig& config, std::uint64_t seed);

// Sorts events by (at, kind, target) — the canonical order the engine and
// ToJson both rely on.
void Canonicalize(FaultPlan& plan);

// Serializes the plan (canonical order, times as fractional seconds).
std::string ToJson(const FaultPlan& plan);

// Parses what ToJson writes (plus hand-edited goldens in the same dialect).
// On failure returns false and sets `error` to a one-line description.
bool FromJson(std::string_view text, FaultPlan& out, std::string& error);

// A golden-corpus file: a plan plus an "expect" object of metric name ->
// raw JSON value text (numbers kept as text so 64-bit digests survive).
struct FaultPlanFile {
  FaultPlan plan;
  std::map<std::string, std::string> expect;
};

bool ParseFaultPlanFile(std::string_view text, FaultPlanFile& out,
                        std::string& error);

}  // namespace webcc::fault
