// Durable registry of every client site the server has ever served.
//
// Supports the paper's server-site crash recovery: logging each HTTP request
// to disk would be too expensive, so the accelerator keeps an in-memory set
// of all sites ever seen and appends to a disk list only when a brand-new
// site appears. On recovery, a server-address INVALIDATE goes to every site
// in the list.
//
// The registry counts its disk writes (the replay charges them to the disk
// station) and can optionally persist to a real file for live mode.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

namespace webcc::core {

class SiteRegistry {
 public:
  // Records a site; returns true (and counts one disk write) only when the
  // site was never seen before.
  bool RecordSite(std::string_view client);

  bool Contains(std::string_view client) const;
  const std::set<std::string>& sites() const { return sites_; }
  std::uint64_t disk_writes() const { return disk_writes_; }

  // --- optional real persistence (live mode) ------------------------------
  // One site per line. Save rewrites the whole file; Load merges.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  std::set<std::string> sites_;  // ordered => deterministic recovery fan-out
  std::uint64_t disk_writes_ = 0;
};

}  // namespace webcc::core
