// Experiment presets: one spec per row of the paper's evaluation tables,
// with the paper-reported values that survive in the available text for
// side-by-side comparison.
//
// Tables 3/4 replay {EPA@50d, SASK@14d, ClarkNet@50d} and {NASA@7d,
// SDSC@25d, SDSC@2.5d} under all three protocols. Table 5 reports
// invalidation costs for the same six runs. Section 6 reruns SASK with
// two-tier leases.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"
#include "replay/config.h"
#include "trace/presets.h"

namespace webcc::replay {

struct PaperRunNumbers {
  // Server CPU utilization per protocol as printed in Tables 3/4, in the
  // paper's column order {adaptive TTL, polling-every-time, invalidation};
  // negative = not legible in the source text.
  double cpu_percent[3] = {-1, -1, -1};
  // Total message bytes (per protocol, they differ only marginally).
  const char* message_bytes = "?";
  // Table 5 site-list storage at the end of the invalidation run.
  const char* sitelist_storage = "?";
};

struct ExperimentSpec {
  std::string id;           // e.g. "EPA" or "SDSC(576)"
  trace::TraceName trace;
  Time mean_lifetime;       // modifier parameter for this row
  // Proxy cache capacity for this run (unscaled bytes). SASK's 8-day replay
  // runs under cache pressure, which is where Harvest's expired-first
  // replacement interacts with adaptive TTL.
  std::uint64_t proxy_cache_bytes;
  PaperRunNumbers paper;
};

std::vector<ExperimentSpec> Table3Experiments();
std::vector<ExperimentSpec> Table4Experiments();
// Tables 3+4 in order (the six runs Table 5 reports invalidation costs for).
std::vector<ExperimentSpec> AllTableExperiments();

// Builds the replay configuration for one (experiment, protocol) cell.
// `trace` must be the generated trace for spec.trace and outlive the run.
ReplayConfig MakeReplayConfig(const ExperimentSpec& spec,
                              core::Protocol protocol,
                              const trace::Trace& trace);

}  // namespace webcc::replay
