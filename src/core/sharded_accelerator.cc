#include "core/sharded_accelerator.h"

#include <algorithm>
#include <set>
#include <utility>

namespace webcc::core {

ShardedAccelerator::ShardedAccelerator(const http::DocumentStore& store,
                                       LeaseConfig lease,
                                       std::uint32_t num_shards,
                                       std::string server_name)
    : ring_(num_shards), server_name_(std::move(server_name)) {
  shards_.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Accelerator>(store, lease, server_name_));
  }
}

std::optional<net::Reply> ShardedAccelerator::HandleRequest(
    const net::Request& request, Time now) {
  return shards_[ring_.ShardOf(request.url)]->HandleRequest(request, now);
}

std::vector<net::Invalidation> ShardedAccelerator::HandleNotify(
    const net::Notify& notify, Time now) {
  return shards_[ring_.ShardOf(notify.url)]->HandleNotify(notify, now);
}

std::vector<net::Invalidation> ShardedAccelerator::CheckDocument(
    std::string_view url, Time now) {
  return shards_[ring_.ShardOf(url)]->CheckDocument(url, now);
}

void ShardedAccelerator::Crash() {
  for (const std::unique_ptr<Accelerator>& shard : shards_) shard->Crash();
}

std::vector<net::Invalidation> ShardedAccelerator::Recover() {
  // Union the per-shard registries first: a site that requested documents on
  // several shards must receive exactly one server-address invalidation,
  // and std::set keeps the emission order identical to the unsharded tier.
  std::set<std::string> sites;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    const auto& shard_sites = shard->registry().sites();
    sites.insert(shard_sites.begin(), shard_sites.end());
  }
  std::vector<net::Invalidation> out;
  out.reserve(sites.size());
  for (const std::string& site : sites) {
    net::Invalidation inv;
    inv.type = net::MessageType::kInvalidateServer;
    inv.server = server_name_;
    inv.client_id = site;
    inv.recovery = true;
    obs::Emit(trace_sink_, {.type = obs::EventType::kInvalidateServer,
                            .site = inv.client_id,
                            .label = server_name_});
    out.push_back(std::move(inv));
  }
  return out;
}

void ShardedAccelerator::EnableJournal(bool enabled) {
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    shard->EnableJournal(enabled);
  }
}

bool ShardedAccelerator::journal_enabled() const {
  return shards_.front()->journal_enabled();
}

ShardedAccelerator::RecoveryOutcome ShardedAccelerator::RecoverFromJournal(
    Time now) {
  RecoveryOutcome outcome;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    const Accelerator::RebuildOutcome rebuilt = shard->RebuildFromJournal(now);
    if (rebuilt.journal_damaged) ++outcome.shards_damaged;
    outcome.records_applied += rebuilt.records_applied;
    outcome.records_rejected += rebuilt.records_rejected;
    outcome.entries_restored += rebuilt.entries_restored;
  }
  outcome.journal_damaged = outcome.shards_damaged > 0;

  if (outcome.journal_damaged) {
    // One damaged shard journal degrades the whole recovery to the blanket
    // broadcast: mixing targeted invalidations from intact shards with a
    // broadcast for the damaged one would invalidate the same sites twice.
    outcome.invalidations = Recover();
    return outcome;
  }

  // Phase 2 in global URL order: the concatenation of disjoint per-shard
  // URL sets, sorted, walks the same sequence the unsharded journal would.
  std::vector<std::string> urls;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    std::vector<std::string> shard_urls = shard->JournaledUrls();
    urls.insert(urls.end(), std::make_move_iterator(shard_urls.begin()),
                std::make_move_iterator(shard_urls.end()));
  }
  std::sort(urls.begin(), urls.end());
  for (const std::string& url : urls) {
    std::vector<net::Invalidation> changed =
        shards_[ring_.ShardOf(url)]->CheckDocument(url, now);
    for (net::Invalidation& inv : changed) {
      inv.recovery = true;
      outcome.invalidations.push_back(std::move(inv));
    }
  }
  return outcome;
}

std::size_t ShardedAccelerator::PruneExpired(Time now) {
  std::vector<InvalidationTable::ExpiredEntry> expired;
  std::size_t pruned = 0;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    pruned += shard->table().PruneExpiredInto(now, expired);
  }
  if (trace_sink_ != nullptr) {
    std::sort(expired.begin(), expired.end(),
              [](const InvalidationTable::ExpiredEntry& a,
                 const InvalidationTable::ExpiredEntry& b) {
                if (a.url != b.url) return a.url < b.url;
                return a.site < b.site;
              });
    for (const InvalidationTable::ExpiredEntry& e : expired) {
      obs::Emit(trace_sink_, {.type = obs::EventType::kLeaseExpiry,
                              .at = now,
                              .url = e.url,
                              .site = e.site,
                              .detail = e.lease_until});
    }
  }
  return pruned;
}

std::uint64_t ShardedAccelerator::StorageBytes() const {
  std::uint64_t bytes = 0;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    bytes += shard->table().StorageBytes();
  }
  return bytes;
}

std::size_t ShardedAccelerator::TotalEntries() const {
  std::size_t entries = 0;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    entries += shard->table().TotalEntries();
  }
  return entries;
}

std::size_t ShardedAccelerator::MaxListLength() const {
  // A (url, site) list lives wholly inside one shard, so the global longest
  // list is the max over shards — invariant across shard counts.
  std::size_t longest = 0;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    longest = std::max(longest, shard->table().MaxListLength());
  }
  return longest;
}

AcceleratorStats ShardedAccelerator::AggregateStats() const {
  AcceleratorStats total;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    const AcceleratorStats& stats = shard->stats();
    total.requests += stats.requests;
    total.notifies += stats.notifies;
    total.modifications_detected += stats.modifications_detected;
    total.invalidations_generated += stats.invalidations_generated;
    total.list_lengths_at_modification.insert(
        total.list_lengths_at_modification.end(),
        stats.list_lengths_at_modification.begin(),
        stats.list_lengths_at_modification.end());
  }
  return total;
}

std::vector<InvalidationTable::Snapshot> ShardedAccelerator::SnapshotEntries()
    const {
  std::vector<InvalidationTable::Snapshot> out;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    std::vector<InvalidationTable::Snapshot> entries =
        shard->table().SnapshotEntries();
    out.insert(out.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const InvalidationTable::Snapshot& a,
               const InvalidationTable::Snapshot& b) {
              if (a.url != b.url) return a.url < b.url;
              return a.site < b.site;
            });
  return out;
}

void ShardedAccelerator::set_trace_sink(obs::TraceSink* sink) {
  // Shards emit the per-URL events (lease grants, notifies, generated
  // invalidations) directly — those route to exactly one shard, so their
  // order is shard-count invariant. Cross-shard streams (lease expiry,
  // recovery broadcast) are emitted here after a global sort.
  trace_sink_ = sink;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    shard->set_trace_sink(sink);
  }
}

void ShardedAccelerator::ExportMetrics(obs::MetricsRegistry& registry,
                                       std::string_view prefix) const {
  if (shards_.size() == 1) {
    shards_.front()->ExportMetrics(registry, prefix);
    return;
  }
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  const AcceleratorStats total = AggregateStats();
  registry.SetCounter(name("requests"), total.requests);
  registry.SetCounter(name("notifies"), total.notifies);
  registry.SetCounter(name("modifications_detected"),
                      total.modifications_detected);
  registry.SetCounter(name("invalidations_generated"),
                      total.invalidations_generated);
  obs::Histogram* lists = registry.FindOrCreateHistogram(
      name("site_list_length_at_modification"));
  for (const std::size_t length : total.list_lengths_at_modification) {
    lists->Record(static_cast<double>(length));
  }
  registry.SetCounter(name("table.entries"), TotalEntries());
  registry.SetCounter(name("table.max_list_length"), MaxListLength());
  registry.SetCounter(name("table.storage_bytes"), StorageBytes());
  // Expiry/renewal counters sum across shards and stay shard-count
  // invariant: each (url, site) entry lives on exactly one shard, and the
  // wheel never changes WHICH entries a prune at `now` retires.
  std::uint64_t leases_expired = 0;
  std::uint64_t lease_renewals = 0;
  for (const std::unique_ptr<Accelerator>& shard : shards_) {
    leases_expired += shard->table().leases_expired();
    lease_renewals += shard->table().lease_renewals();
  }
  registry.SetCounter(name("table.leases_expired"), leases_expired);
  registry.SetCounter(name("table.lease_renewals"), lease_renewals);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string shard_prefix(prefix);
    shard_prefix += "shard";
    shard_prefix += std::to_string(i);
    shard_prefix += '.';
    shards_[i]->ExportMetrics(registry, shard_prefix);
  }
}

}  // namespace webcc::core
