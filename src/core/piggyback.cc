#include "core/piggyback.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace webcc::core {

std::vector<PcvVerdict> ValidatePiggyback(const http::DocumentStore& store,
                                          const std::vector<PcvItem>& items) {
  std::vector<PcvVerdict> verdicts;
  verdicts.reserve(items.size());
  for (const PcvItem& item : items) {
    const http::Document* doc = store.Find(item.url);
    PcvVerdict verdict;
    verdict.url = item.url;
    verdict.owner = item.owner;
    // Unknown documents (deleted at the origin) are invalid by definition.
    verdict.invalid = doc == nullptr || doc->last_modified > item.last_modified;
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

namespace {
// Per-item framing on the wire: a length byte pair plus the timestamp.
constexpr std::uint64_t kPerItemOverheadBytes = 12;
}  // namespace

std::uint64_t PcvRequestExtraBytes(const std::vector<PcvItem>& items) {
  std::uint64_t bytes = 0;
  for (const PcvItem& item : items) {
    bytes += item.url.size() + kPerItemOverheadBytes;
  }
  return bytes;
}

std::uint64_t PcvReplyExtraBytes(const std::vector<PcvVerdict>& verdicts) {
  // The reply lists only the invalid copies (url, owner, separator); valid
  // entries are implied.
  std::uint64_t bytes = 0;
  for (const PcvVerdict& verdict : verdicts) {
    if (verdict.invalid) bytes += verdict.url.size() + verdict.owner.size() + 3;
  }
  return bytes;
}

void ModificationLog::Record(Time at, std::string url) {
  WEBCC_CHECK_MSG(entries_.empty() || at >= entries_.back().first,
                  "modification log must be appended in time order");
  entries_.emplace_back(at, std::move(url));
}

ModificationLog::Window ModificationLog::CollectSince(
    Time since, Time now, std::size_t max_urls) const {
  Window window;
  window.advanced_to = since;
  if (since >= now) return window;

  // First entry with time > since.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), since,
      [](Time value, const auto& entry) { return value < entry.first; });

  std::unordered_set<std::string> seen;
  for (; it != entries_.end() && it->first <= now; ++it) {
    if (seen.count(it->second) != 0) {
      window.advanced_to = it->first;
      continue;
    }
    if (window.urls.size() == max_urls) {
      // Truncated: leave the cursor at the last included modification so the
      // remainder is picked up on the proxy's next contact.
      return window;
    }
    window.urls.push_back(it->second);
    seen.insert(it->second);
    window.advanced_to = it->first;
  }
  window.advanced_to = now;
  return window;
}

std::uint64_t PsiReplyExtraBytes(const std::vector<std::string>& urls) {
  std::uint64_t bytes = 0;
  for (const std::string& url : urls) bytes += url.size() + 2;
  return bytes;
}

}  // namespace webcc::core
