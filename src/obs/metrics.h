// MetricsRegistry: a flat namespace of named counters and histograms.
//
// Components expose their measurements by registering into a registry
// (ProxyCache, Accelerator, InvalidationTable and sim::Network each provide
// an ExportMetrics(registry, prefix)), and the replay engine exports the
// full ReplayMetrics superset under "replay.". The registry is the
// machine-readable face of a run: `webcc replay --metrics-out` dumps it as
// one JSON object whose keys sort deterministically, so two bit-identical
// simulations produce byte-identical metric dumps — except for the
// explicitly host-timing gauge `replay.host_seconds` (the same exclusion
// replay::SameSimulation makes).
//
// The paper tables keep being rendered from ReplayMetrics itself — the
// registry carries a superset of those fields, never a substitute, which is
// how the regenerated Tables 3/4/5 stay byte-identical.
//
// Counters hand out stable pointers, so hot loops may grab a Counter once
// and bump `->value` with no further lookups. Not thread-safe: one registry
// per run (the farm gives every submitted replay its own).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "stats/latency.h"

namespace webcc::obs {

struct Counter {
  std::uint64_t value = 0;
  void Add(std::uint64_t delta = 1) { value += delta; }
};

// Scalar distribution: count/sum/min/max/percentiles via stats::LatencyStats.
struct Histogram {
  stats::LatencyStats samples;
  void Record(double value) { samples.Record(value); }
};

// A gauge for values that are snapshots, not accumulations (bytes used,
// utilization); stored as double to cover both.
struct Gauge {
  double value = 0.0;
  void Set(double v) { value = v; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned pointers stay valid for the registry lifetime.
  Counter* FindOrCreateCounter(std::string_view name);
  Histogram* FindOrCreateHistogram(std::string_view name);
  Gauge* FindOrCreateGauge(std::string_view name);

  // Snapshot setters for export paths.
  void SetCounter(std::string_view name, std::uint64_t value);
  void SetGauge(std::string_view name, double value);

  // Reads a counter's value; 0 when absent.
  std::uint64_t CounterValue(std::string_view name) const;
  // Reads a gauge's value; 0.0 when absent.
  double GaugeValue(std::string_view name) const;

  std::size_t size() const {
    return counters_.size() + histograms_.size() + gauges_.size();
  }

  // Copies every metric of `other` into this registry with `prefix`
  // prepended to its name (counters add, histograms merge samples, gauges
  // overwrite). Lets a sweep combine its per-run registries into one dump:
  // merged.MergeFrom(run_registry, "invalidation.").
  void MergeFrom(const MetricsRegistry& other, std::string_view prefix);

  // One JSON object, keys sorted lexicographically. Counters serialize as
  // integers, gauges as doubles, histograms as
  // {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}.
  void WriteJson(std::ostream& out) const;

 private:
  // std::map: deterministic iteration order for WriteJson; entry addresses
  // are stable across inserts, so the hot-path pointers stay valid.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Gauge, std::less<>> gauges_;
};

}  // namespace webcc::obs
