// Unit tests for core/: adaptive TTL, leases, invalidation table, site
// registry, accelerator.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <limits>
#include <set>
#include <string>

#include <vector>

#include "core/accelerator.h"
#include "core/adaptive_ttl.h"
#include "core/invalidation_table.h"
#include "core/lease.h"
#include "core/site_registry.h"
#include "obs/trace_sink.h"

namespace webcc::core {
namespace {

// --- adaptive TTL -----------------------------------------------------------------

TEST(AdaptiveTtl, FractionOfAge) {
  AdaptiveTtlConfig config;
  config.factor = 0.2;
  config.min_ttl = 0;
  config.max_ttl = 365 * kDay;
  EXPECT_EQ(ComputeAdaptiveTtl(config, 100 * kDay, 0), 20 * kDay);
}

TEST(AdaptiveTtl, ClampsToMin) {
  AdaptiveTtlConfig config;
  config.factor = 0.2;
  config.min_ttl = kHour;
  // Age of 1 minute would give a 12 s TTL; min applies.
  EXPECT_EQ(ComputeAdaptiveTtl(config, kMinute, 0), kHour);
}

TEST(AdaptiveTtl, ClampsToMax) {
  AdaptiveTtlConfig config;
  config.factor = 0.5;
  config.max_ttl = 10 * kDay;
  EXPECT_EQ(ComputeAdaptiveTtl(config, 1000 * kDay, 0), 10 * kDay);
}

TEST(AdaptiveTtl, NegativeAgeTreatedAsZero) {
  AdaptiveTtlConfig config;
  config.min_ttl = kMinute;
  // Document "modified in the future" (lock-step skew): min TTL.
  EXPECT_EQ(ComputeAdaptiveTtl(config, 0, kHour), kMinute);
}

TEST(AdaptiveTtl, ExpiryIsNowPlusTtl) {
  AdaptiveTtlConfig config;
  config.factor = 0.1;
  config.min_ttl = 0;
  config.max_ttl = 365 * kDay;
  EXPECT_EQ(AdaptiveTtlExpiry(config, 10 * kDay, 0), 11 * kDay);
}

TEST(AdaptiveTtl, YoungDocumentsGetShortTtl) {
  // The paper's SASK effect depends on recently modified documents getting
  // conservative (short) lifetimes.
  AdaptiveTtlConfig config;
  const Time young = ComputeAdaptiveTtl(config, kDay, kDay - kHour);
  const Time old_doc = ComputeAdaptiveTtl(config, kDay, -50 * kDay);
  EXPECT_LT(young, old_doc);
}

// --- leases -----------------------------------------------------------------------

TEST(Lease, NoneGrantsUnbounded) {
  LeaseConfig config;
  config.mode = LeaseMode::kNone;
  EXPECT_EQ(GrantLease(config, net::MessageType::kGet, 100), net::kNoLease);
  EXPECT_EQ(GrantLease(config, net::MessageType::kIfModifiedSince, 100),
            net::kNoLease);
}

TEST(Lease, FixedGrantsDuration) {
  LeaseConfig config;
  config.mode = LeaseMode::kFixed;
  config.duration = 3 * kDay;
  EXPECT_EQ(GrantLease(config, net::MessageType::kGet, kDay), 4 * kDay);
  EXPECT_EQ(GrantLease(config, net::MessageType::kIfModifiedSince, kDay),
            4 * kDay);
}

TEST(Lease, TwoTierDiscriminatesByRequestType) {
  LeaseConfig config;
  config.mode = LeaseMode::kTwoTier;
  config.duration = 3 * kDay;
  config.short_duration = 0;
  EXPECT_EQ(GrantLease(config, net::MessageType::kGet, kDay), kDay);
  EXPECT_EQ(GrantLease(config, net::MessageType::kIfModifiedSince, kDay),
            4 * kDay);
}

TEST(Lease, ActiveSemantics) {
  EXPECT_TRUE(LeaseActive(net::kNoLease, 1000000));
  EXPECT_TRUE(LeaseActive(100, 99));
  EXPECT_FALSE(LeaseActive(100, 100));  // expires at its boundary
  EXPECT_FALSE(LeaseActive(100, 101));
}

TEST(Lease, BoundaryIsHalfOpen) {
  // A lease covers [grant, expiry): the instant before expiry it is alive,
  // at expiry it is dead. Both the proxy's serve-local check and the
  // server's table pruning use this predicate, so at the boundary instant
  // the proxy revalidates exactly when the server stops owing INVALIDATEs.
  LeaseConfig config;
  config.mode = LeaseMode::kFixed;
  config.duration = kHour;
  const Time expiry = GrantLease(config, net::MessageType::kGet, 0);
  ASSERT_EQ(expiry, kHour);
  EXPECT_TRUE(LeaseActive(expiry, expiry - 1));
  EXPECT_FALSE(LeaseActive(expiry, expiry));
  // http::kNeverExpires (int64 max) reads as active through the same
  // predicate, so proxy cache entries need no special-casing.
  EXPECT_TRUE(LeaseActive(std::numeric_limits<Time>::max(), expiry));
}

TEST(InvalidationTable, ExactExpiryExcludedFromFanOut) {
  // Boundary check on the server side: a site whose lease expires at T is
  // not invalidated by a modification processed at exactly T.
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kHour;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 0);  // expiry: kHour
  EXPECT_EQ(table.ListLength("/a", kHour - 1), 1u);
  EXPECT_EQ(table.ListLength("/a", kHour), 0u);
  EXPECT_TRUE(table.TakeSitesForInvalidation("/a", kHour).empty());
}

TEST(InvalidationTable, TwoTierExactExpiryBoundary) {
  // The two-tier scheme's short GET lease obeys the same half-open rule:
  // at exactly grant+short_duration the one-time viewer is already gone,
  // one tick earlier it still gets the INVALIDATE.
  LeaseConfig lease;
  lease.mode = LeaseMode::kTwoTier;
  lease.duration = 3 * kDay;
  lease.short_duration = kMinute;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 0);  // expiry: kMinute
  EXPECT_EQ(table.TakeSitesForInvalidation("/a", kMinute - 1),
            std::vector<std::string>{"c1"});
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  EXPECT_TRUE(table.TakeSitesForInvalidation("/a", kMinute).empty());
  // The IMS tier gets the long lease; same boundary rule at its expiry.
  table.Register("/a", "c1", net::MessageType::kIfModifiedSince, 0);
  EXPECT_EQ(table.ListLength("/a", 3 * kDay - 1), 1u);
  EXPECT_EQ(table.ListLength("/a", 3 * kDay), 0u);
}

// --- invalidation table --------------------------------------------------------------

TEST(InvalidationTable, RegisterAndTake) {
  InvalidationTable table(LeaseConfig{});
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Register("/a", "c2", net::MessageType::kGet, 0);
  table.Register("/b", "c1", net::MessageType::kGet, 0);
  EXPECT_EQ(table.TotalEntries(), 3u);
  EXPECT_EQ(table.ListLength("/a", 0), 2u);

  const auto sites = table.TakeSitesForInvalidation("/a", 10);
  EXPECT_EQ(sites, (std::vector<std::string>{"c1", "c2"}));
  EXPECT_EQ(table.TotalEntries(), 1u);  // "/b" untouched
  EXPECT_EQ(table.ListLength("/a", 10), 0u);
}

TEST(InvalidationTable, DuplicateRegistrationIsOneEntry) {
  InvalidationTable table(LeaseConfig{});
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Register("/a", "c1", net::MessageType::kGet, 5);
  EXPECT_EQ(table.TotalEntries(), 1u);
}

TEST(InvalidationTable, TakeOnUnknownUrlIsEmpty) {
  InvalidationTable table(LeaseConfig{});
  EXPECT_TRUE(table.TakeSitesForInvalidation("/none", 0).empty());
}

TEST(InvalidationTable, FixedLeaseExpiresEntries) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kDay;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Register("/a", "c2", net::MessageType::kGet, 12 * kHour);
  // At t=36h, c1's lease (expiry 24h) lapsed; c2's (36h) is borderline out.
  EXPECT_EQ(table.ListLength("/a", 30 * kHour), 1u);
  const auto sites = table.TakeSitesForInvalidation("/a", 30 * kHour);
  EXPECT_EQ(sites, std::vector<std::string>{"c2"});
}

TEST(InvalidationTable, LeaseRefreshNeverShortens) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kDay;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 10 * kHour);
  // An earlier-time registration (out-of-order processing) must not pull
  // the expiry back.
  table.Register("/a", "c1", net::MessageType::kGet, kHour);
  EXPECT_EQ(table.ListLength("/a", 30 * kHour), 1u);
}

TEST(InvalidationTable, TwoTierGetNotRemembered) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kTwoTier;
  lease.duration = 3 * kDay;
  lease.short_duration = 0;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 100);
  EXPECT_EQ(table.TotalEntries(), 0u);
  table.Register("/a", "c1", net::MessageType::kIfModifiedSince, 200);
  EXPECT_EQ(table.TotalEntries(), 1u);
}

TEST(InvalidationTable, PruneExpiredDropsOnlyDead) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kDay;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Register("/b", "c2", net::MessageType::kGet, 20 * kHour);
  EXPECT_EQ(table.PruneExpired(30 * kHour), 1u);
  EXPECT_EQ(table.TotalEntries(), 1u);
  EXPECT_EQ(table.ListLength("/b", 30 * kHour), 1u);
}

// Interns are defined on first use, so the order of {"e":"intern"} lines in
// a buffered trace mirrors event emission order exactly.
std::vector<std::string> InternNamesInOrder(const std::string& jsonl) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while ((pos = jsonl.find("\"n\":\"", pos)) != std::string::npos) {
    pos += 5;
    const std::size_t end = jsonl.find('"', pos);
    names.push_back(jsonl.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

TEST(InvalidationTable, PruneExpiredEmitsTracesInSortedOrder) {
  // Regression: PruneExpired used to emit kLeaseExpiry events straight out
  // of its unordered_map walk, so the trace stream depended on hash-table
  // layout. Emission must be (url, site)-sorted regardless of how the
  // entries hash.
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kDay;
  InvalidationTable table(lease);
  obs::BufferTraceSink sink;
  table.set_trace_sink(&sink);
  for (const char* url : {"/h", "/c", "/f", "/a", "/e", "/b", "/g", "/d"}) {
    table.Register(url, "site-z", net::MessageType::kGet, 0);
    table.Register(url, "site-a", net::MessageType::kGet, 0);
  }
  EXPECT_EQ(table.PruneExpired(30 * kHour), 16u);
  const std::vector<std::string> expected = {
      "/a", "site-a", "site-z", "/b", "/c", "/d", "/e", "/f", "/g", "/h"};
  EXPECT_EQ(InternNamesInOrder(sink.Text()), expected);
}

TEST(InvalidationTable, StorageGrowsWithEntries) {
  InvalidationTable table(LeaseConfig{});
  const auto before = table.StorageBytes();
  for (int i = 0; i < 100; ++i) {
    table.Register("/a", "client-" + std::to_string(i),
                   net::MessageType::kGet, 0);
  }
  // The paper observes 20-30 bytes per request of site-list storage.
  const auto per_entry = (table.StorageBytes() - before) / 100;
  EXPECT_GE(per_entry, 20u);
  EXPECT_LE(per_entry, 40u);
}

TEST(InvalidationTable, MaxListLength) {
  InvalidationTable table(LeaseConfig{});
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Register("/a", "c2", net::MessageType::kGet, 0);
  table.Register("/b", "c1", net::MessageType::kGet, 0);
  EXPECT_EQ(table.MaxListLength(), 2u);
}

TEST(InvalidationTable, ClearDropsEverything) {
  InvalidationTable table(LeaseConfig{});
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  table.Clear();
  EXPECT_EQ(table.TotalEntries(), 0u);
  EXPECT_EQ(table.StorageBytes(), 0u);
}

TEST(InvalidationTable, FanOutOrderDeterministic) {
  InvalidationTable table(LeaseConfig{});
  table.Register("/a", "zeta", net::MessageType::kGet, 0);
  table.Register("/a", "alpha", net::MessageType::kGet, 0);
  table.Register("/a", "mid", net::MessageType::kGet, 0);
  EXPECT_EQ(table.TakeSitesForInvalidation("/a", 0),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- site registry ---------------------------------------------------------------------

TEST(SiteRegistry, FirstSightingWritesDisk) {
  SiteRegistry registry;
  EXPECT_TRUE(registry.RecordSite("c1"));
  EXPECT_FALSE(registry.RecordSite("c1"));
  EXPECT_TRUE(registry.RecordSite("c2"));
  EXPECT_EQ(registry.disk_writes(), 2u);
  EXPECT_TRUE(registry.Contains("c1"));
  EXPECT_FALSE(registry.Contains("c3"));
}

TEST(SiteRegistry, SaveAndLoadRoundTrip) {
  SiteRegistry registry;
  registry.RecordSite("alpha");
  registry.RecordSite("beta");
  char path[] = "/tmp/webcc_registry_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  ASSERT_TRUE(registry.SaveToFile(path));

  SiteRegistry loaded;
  loaded.RecordSite("gamma");
  ASSERT_TRUE(loaded.LoadFromFile(path));
  EXPECT_TRUE(loaded.Contains("alpha"));
  EXPECT_TRUE(loaded.Contains("beta"));
  EXPECT_TRUE(loaded.Contains("gamma"));  // merge, not replace
  std::remove(path);
}

TEST(SiteRegistry, LoadMissingFileFails) {
  SiteRegistry registry;
  EXPECT_FALSE(registry.LoadFromFile("/nonexistent/webcc"));
}

// --- accelerator -----------------------------------------------------------------------

class AcceleratorTest : public ::testing::Test {
 protected:
  AcceleratorTest() : accel_(docs_, LeaseConfig{}, "srv") {
    docs_.Add("/a", 1000, 0);
    docs_.Add("/b", 2000, 0);
  }

  net::Request Get(const std::string& url, const std::string& client) {
    net::Request request;
    request.type = net::MessageType::kGet;
    request.url = url;
    request.client_id = client;
    return request;
  }

  http::DocumentStore docs_;
  Accelerator accel_;
};

TEST_F(AcceleratorTest, RequestRegistersSite) {
  const auto reply = accel_.HandleRequest(Get("/a", "c1"), 10);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::kReply200);
  EXPECT_EQ(accel_.table().ListLength("/a", 10), 1u);
  EXPECT_TRUE(accel_.registry().Contains("c1"));
}

TEST_F(AcceleratorTest, UnknownUrlNotRegistered) {
  EXPECT_FALSE(accel_.HandleRequest(Get("/zzz", "c1"), 0).has_value());
  EXPECT_EQ(accel_.table().TotalEntries(), 0u);
}

TEST_F(AcceleratorTest, NotifyWithoutChangeProducesNothing) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  const auto invs = accel_.HandleNotify(net::Notify{"/a"}, 10);
  EXPECT_TRUE(invs.empty());
  EXPECT_EQ(accel_.stats().modifications_detected, 0u);
}

TEST_F(AcceleratorTest, NotifyAfterTouchInvalidatesRegisteredSites) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  accel_.HandleRequest(Get("/a", "c2"), 1);
  accel_.HandleRequest(Get("/b", "c3"), 2);
  docs_.Touch("/a", 100);
  const auto invs = accel_.HandleNotify(net::Notify{"/a"}, 100);
  ASSERT_EQ(invs.size(), 2u);
  EXPECT_EQ(invs[0].type, net::MessageType::kInvalidateUrl);
  EXPECT_EQ(invs[0].url, "/a");
  EXPECT_EQ(invs[0].client_id, "c1");
  EXPECT_EQ(invs[1].client_id, "c2");
  // Sites are forgotten after invalidation.
  EXPECT_EQ(accel_.table().ListLength("/a", 100), 0u);
  EXPECT_EQ(accel_.stats().invalidations_generated, 2u);
  EXPECT_EQ(accel_.stats().list_lengths_at_modification.size(), 1u);
  EXPECT_EQ(accel_.stats().list_lengths_at_modification[0], 2u);
}

TEST_F(AcceleratorTest, SecondNotifySameVersionSilent) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  docs_.Touch("/a", 100);
  EXPECT_EQ(accel_.HandleNotify(net::Notify{"/a"}, 100).size(), 1u);
  EXPECT_TRUE(accel_.HandleNotify(net::Notify{"/a"}, 101).empty());
}

TEST_F(AcceleratorTest, FirstSightingViaNotifyDoesNotInvalidate) {
  // Nothing requested "/a" yet; the accelerator has no baseline version and
  // no one can hold a copy.
  docs_.Touch("/a", 100);
  EXPECT_TRUE(accel_.HandleNotify(net::Notify{"/a"}, 100).empty());
}

TEST_F(AcceleratorTest, BrowserBasedDetectionEquivalentToNotify) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  docs_.Touch("/a", 50);
  const auto invs = accel_.CheckDocument("/a", 50);
  ASSERT_EQ(invs.size(), 1u);
  EXPECT_EQ(invs[0].client_id, "c1");
}

TEST_F(AcceleratorTest, ClientNotReInvalidatedWithoutReRequest) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  docs_.Touch("/a", 10);
  EXPECT_EQ(accel_.HandleNotify(net::Notify{"/a"}, 10).size(), 1u);
  docs_.Touch("/a", 20);
  // c1 never re-requested: no further invalidations.
  EXPECT_TRUE(accel_.HandleNotify(net::Notify{"/a"}, 20).empty());
}

TEST_F(AcceleratorTest, CrashLosesTableButNotRegistry) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  accel_.Crash();
  EXPECT_EQ(accel_.table().TotalEntries(), 0u);
  EXPECT_TRUE(accel_.registry().Contains("c1"));
}

TEST_F(AcceleratorTest, RecoverNotifiesEverySiteEverSeen) {
  accel_.HandleRequest(Get("/a", "c1"), 0);
  accel_.HandleRequest(Get("/b", "c2"), 0);
  accel_.Crash();
  const auto notices = accel_.Recover();
  ASSERT_EQ(notices.size(), 2u);
  EXPECT_EQ(notices[0].type, net::MessageType::kInvalidateServer);
  EXPECT_EQ(notices[0].server, "srv");
  EXPECT_EQ(notices[0].client_id, "c1");
  EXPECT_EQ(notices[1].client_id, "c2");
}

TEST_F(AcceleratorTest, ModificationBeforeFirstRequestThenRequestThenTouch) {
  docs_.Touch("/a", 5);  // never seen by the accelerator
  accel_.HandleRequest(Get("/a", "c1"), 10);
  docs_.Touch("/a", 20);
  const auto invs = accel_.HandleNotify(net::Notify{"/a"}, 20);
  ASSERT_EQ(invs.size(), 1u);  // baseline was pinned at request time
}

TEST_F(AcceleratorTest, TwoTierLeaseStampedIntoReply) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kTwoTier;
  lease.duration = 2 * kDay;
  lease.short_duration = 0;
  Accelerator accel(docs_, lease);
  const auto get_reply = accel.HandleRequest(Get("/a", "c1"), kHour);
  ASSERT_TRUE(get_reply.has_value());
  EXPECT_EQ(get_reply->lease_until, kHour);  // zero-length lease
  net::Request ims;
  ims.type = net::MessageType::kIfModifiedSince;
  ims.url = "/a";
  ims.client_id = "c1";
  ims.if_modified_since = 0;
  const auto ims_reply = accel.HandleRequest(ims, kHour);
  ASSERT_TRUE(ims_reply.has_value());
  EXPECT_EQ(ims_reply->lease_until, kHour + 2 * kDay);
}

// --- enum names -------------------------------------------------------------------

// Every enumerator must map to a real display name: "?" is the
// switch-fell-through sentinel, and duplicates would make CLI output and
// metric prefixes ambiguous.
TEST(PolicyNames, ProtocolToStringIsExhaustiveAndDistinct) {
  constexpr Protocol kAll[] = {
      Protocol::kAdaptiveTtl, Protocol::kPollEveryTime, Protocol::kInvalidation,
      Protocol::kPiggybackValidation, Protocol::kPiggybackInvalidation};
  std::set<std::string> names;
  for (const Protocol protocol : kAll) {
    const char* name = ToString(protocol);
    EXPECT_STRNE(name, "?") << static_cast<int>(protocol);
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(kAll));
}

TEST(PolicyNames, LeaseModeToStringIsExhaustiveAndDistinct) {
  constexpr LeaseMode kAll[] = {LeaseMode::kNone, LeaseMode::kFixed,
                                LeaseMode::kTwoTier};
  std::set<std::string> names;
  for (const LeaseMode mode : kAll) {
    const char* name = ToString(mode);
    EXPECT_STRNE(name, "?") << static_cast<int>(mode);
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(kAll));
}

}  // namespace
}  // namespace webcc::core
