// Fixture: trace events emitted straight from a hash-map walk — the
// event order is the container's hash layout, so replay digests differ
// run to run. determinism-taint fires with the loop as witness.
#include <string>
#include <unordered_map>

struct PublisherSink {
  void Emit(const std::string& label);
};

class HashOrderPublisher {
 public:
  void Publish() {
    for (const auto& [site, hits] : hits_) {
      sink_.Emit(site + ":" + std::to_string(hits));  // BUG: hash order
    }
  }

 private:
  PublisherSink sink_;
  std::unordered_map<std::string, int> hits_;
};
