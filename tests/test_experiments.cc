// Tests for the experiment presets (the table-row specs driving the bench
// binaries) and for the metrics summary plumbing.
#include <gtest/gtest.h>

#include <unordered_set>

#include "replay/engine.h"
#include "replay/experiments.h"
#include "replay/farm.h"
#include "trace/presets.h"
#include "trace/workload.h"

namespace webcc::replay {
namespace {

TEST(Experiments, TableThreeHasThePaperRows) {
  const auto specs = Table3Experiments();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].id, "EPA");
  EXPECT_EQ(specs[0].mean_lifetime, 50 * kDay);
  EXPECT_EQ(specs[1].id, "SASK");
  EXPECT_EQ(specs[1].mean_lifetime, 14 * kDay);
  EXPECT_EQ(specs[2].id, "ClarkNet");
  EXPECT_EQ(specs[2].mean_lifetime, 50 * kDay);
}

TEST(Experiments, TableFourHasThePaperRows) {
  const auto specs = Table4Experiments();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].id, "NASA");
  EXPECT_EQ(specs[0].mean_lifetime, 7 * kDay);
  EXPECT_EQ(specs[1].id, "SDSC(57)");
  EXPECT_EQ(specs[1].mean_lifetime, 25 * kDay);
  EXPECT_EQ(specs[2].id, "SDSC(576)");
  EXPECT_EQ(specs[2].mean_lifetime, Time(2.5 * kDay));
}

TEST(Experiments, AllSixRowsUniqueIds) {
  const auto specs = AllTableExperiments();
  ASSERT_EQ(specs.size(), 6u);
  std::unordered_set<std::string> ids;
  for (const ExperimentSpec& spec : specs) {
    EXPECT_TRUE(ids.insert(spec.id).second) << spec.id;
  }
}

TEST(Experiments, PaperCpuColumnsPresent) {
  for (const ExperimentSpec& spec : AllTableExperiments()) {
    for (double cpu : spec.paper.cpu_percent) {
      EXPECT_GT(cpu, 0.0) << spec.id;
      EXPECT_LT(cpu, 100.0) << spec.id;
    }
  }
}

TEST(Experiments, ConfigBindsTraceAndLifetime) {
  const auto spec = Table3Experiments()[0];
  const auto preset = trace::GetPreset(spec.trace);
  trace::WorkloadConfig small = preset.workload;
  small.total_requests = 100;  // cheap stand-in; binding is what's tested
  small.duration = kHour;
  const trace::Trace trace = trace::GenerateTrace(small);
  const ReplayConfig config =
      MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
  EXPECT_EQ(config.trace, &trace);
  EXPECT_EQ(config.mean_lifetime, spec.mean_lifetime);
  EXPECT_EQ(config.protocol, core::Protocol::kInvalidation);
  EXPECT_EQ(config.proxy_cache_bytes, spec.proxy_cache_bytes);
}

TEST(Experiments, ModifierSeedSharedAcrossProtocolsOfARow) {
  const auto spec = Table3Experiments()[1];
  const trace::Trace trace;  // unused for this check
  const ReplayConfig a =
      MakeReplayConfig(spec, core::Protocol::kAdaptiveTtl, trace);
  const ReplayConfig b =
      MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
  EXPECT_EQ(a.modifier_seed, b.modifier_seed);
  EXPECT_EQ(a.seed, b.seed);
}

TEST(Experiments, ScaledDownRowRunsEndToEnd) {
  // A miniature version of the EPA row (1% of the trace) exercises the full
  // spec -> config -> replay pipeline inside test budgets.
  const auto spec = Table3Experiments()[0];
  const auto preset = trace::GetPreset(spec.trace);
  trace::WorkloadConfig small = preset.workload;
  small.total_requests /= 50;
  small.num_documents /= 10;
  small.num_clients /= 10;
  const trace::Trace trace = trace::GenerateTrace(small);
  std::vector<ReplayConfig> configs;
  for (const core::Protocol protocol :
       {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
        core::Protocol::kInvalidation}) {
    configs.push_back(MakeReplayConfig(spec, protocol, trace));
  }
  // The three protocol cells run concurrently through the replay farm,
  // exactly as the bench binaries drive them.
  for (const ReplayMetrics& metrics : Farm::RunAll(configs)) {
    EXPECT_EQ(metrics.requests_issued, trace.records.size());
    EXPECT_EQ(metrics.strong_violations, 0u);
    EXPECT_GT(metrics.sim_events_executed, trace.records.size());
    EXPECT_GT(metrics.sim_peak_queue_depth, 0u);
  }
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  ReplayMetrics metrics;
  metrics.requests_issued = 123;
  metrics.local_hits = 45;
  metrics.latency_ms.Record(10.0);
  const std::string summary = metrics.Summary();
  EXPECT_NE(summary.find("123"), std::string::npos);
  EXPECT_NE(summary.find("45"), std::string::npos);
}

TEST(Metrics, TotalMessagesSumsComponents) {
  ReplayMetrics metrics;
  metrics.get_requests = 1;
  metrics.ims_requests = 2;
  metrics.replies_200 = 3;
  metrics.replies_304 = 4;
  metrics.invalidations_sent = 5;
  metrics.invsrv_sent = 6;
  EXPECT_EQ(metrics.total_messages(), 21u);
  metrics.local_hits = 7;
  metrics.validated_hits = 8;
  EXPECT_EQ(metrics.cache_hits(), 15u);
}

}  // namespace
}  // namespace webcc::replay
