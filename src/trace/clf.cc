#include "trace/clf.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "util/check.h"

namespace webcc::trace {
namespace {

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

int MonthIndex(std::string_view name) {
  for (int m = 0; m < 12; ++m) {
    if (name == kMonths[m]) return m;
  }
  return -1;
}

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

// Days from 1970-01-01 to the first of the given month. Hand-rolled so the
// parser does not depend on the host timezone database.
std::int64_t DaysSinceEpoch(int year, int month, int day) {
  static constexpr int kCumulative[] = {0,   31,  59,  90,  120, 151,
                                        181, 212, 243, 273, 304, 334};
  std::int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  days += kCumulative[month];
  if (month >= 2 && IsLeap(year)) ++days;
  return days + day - 1;
}

// Parses a decimal integer from [pos, end-of-digits); advances pos.
// A value that does not fit in int64 is a parse failure, not UB: real logs
// never hold such numbers, so an overflowing field means a corrupt line
// and the caller should skip-and-count it.
bool TakeInt(std::string_view s, std::size_t& pos, std::int64_t& out) {
  std::size_t start = pos;
  bool negative = false;
  if (pos < s.size() && s[pos] == '-') {
    negative = true;
    ++pos;
  }
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::int64_t value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    const std::int64_t digit = s[pos] - '0';
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
    ++pos;
  }
  if (pos == start + (negative ? 1 : 0)) return false;
  out = negative ? -value : value;
  return true;
}

// Heterogeneous string_view lookups into the string-keyed indices, so the
// per-line loop only materializes a std::string for first sightings.
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

// Counts newlines ahead of the read position without consuming the stream;
// returns 0 when the stream is not seekable (pipes). Sizes the record
// vector's single reservation.
std::size_t CountRemainingLines(std::istream& in) {
  const std::istream::pos_type start = in.tellg();
  if (start == std::istream::pos_type(-1)) return 0;
  std::size_t lines = 0;
  char buffer[1 << 16];
  while (in.good()) {
    in.read(buffer, sizeof(buffer));
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      if (buffer[i] == '\n') ++lines;
    }
    if (got > 0 && in.eof()) ++lines;  // final line without a newline
  }
  in.clear();
  in.seekg(start);
  return lines;
}

}  // namespace

bool ParseClfLine(std::string_view line, ClfLine& out) {
  // host ident authuser [date] "request" status bytes
  const std::size_t host_end = line.find(' ');
  if (host_end == std::string_view::npos || host_end == 0) return false;
  out.host = line.substr(0, host_end);

  const std::size_t bracket_open = line.find('[', host_end);
  const std::size_t bracket_close =
      bracket_open == std::string_view::npos
          ? std::string_view::npos
          : line.find(']', bracket_open);
  if (bracket_close == std::string_view::npos) return false;
  const std::string_view date =
      line.substr(bracket_open + 1, bracket_close - bracket_open - 1);

  // dd/Mon/yyyy:HH:MM:SS zone
  if (date.size() < 20 || date[2] != '/' || date[6] != '/' ||
      date[11] != ':' || date[14] != ':' || date[17] != ':') {
    return false;
  }
  std::size_t pos = 0;
  std::int64_t day = 0, year = 0, hour = 0, minute = 0, second = 0;
  if (!TakeInt(date, pos, day) || date[pos] != '/') return false;
  const int month = MonthIndex(date.substr(3, 3));
  if (month < 0) return false;
  pos = 7;
  if (!TakeInt(date, pos, year) || date[pos] != ':') return false;
  ++pos;
  if (!TakeInt(date, pos, hour) || date[pos] != ':') return false;
  ++pos;
  if (!TakeInt(date, pos, minute) || date[pos] != ':') return false;
  ++pos;
  if (!TakeInt(date, pos, second)) return false;
  // Bound every date field: this rejects negative components (a leading '-'
  // that happens to line up with the '/' separators), pre-epoch or absurd
  // years (which would also make DaysSinceEpoch spin), and keeps
  // unix_seconds nonnegative — which the first_seconds < 0 sentinel in
  // ReadClf relies on.
  if (day < 1 || day > 31 || year < 1970 || year > 9999 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return false;
  }
  // The timezone offset is deliberately ignored: a server log has one fixed
  // zone, and the replay only needs offsets from the trace start.
  out.unix_seconds =
      DaysSinceEpoch(static_cast<int>(year), month, static_cast<int>(day)) *
          86400 +
      hour * 3600 + minute * 60 + second;

  const std::size_t quote_open = line.find('"', bracket_close);
  const std::size_t quote_close =
      quote_open == std::string_view::npos
          ? std::string_view::npos
          : line.find('"', quote_open + 1);
  if (quote_close == std::string_view::npos) return false;
  const std::string_view request =
      line.substr(quote_open + 1, quote_close - quote_open - 1);
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string_view::npos) return false;
  out.method = request.substr(0, method_end);
  std::size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string_view::npos) path_end = request.size();
  out.path = request.substr(method_end + 1, path_end - method_end - 1);
  if (out.path.empty()) return false;

  pos = quote_close + 1;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  std::int64_t status = 0;
  if (!TakeInt(line, pos, status)) return false;
  if (status < 100 || status > 999) return false;  // not an HTTP status
  out.status = static_cast<int>(status);
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos < line.size() && line[pos] == '-') {
    out.bytes = -1;
  } else if (!TakeInt(line, pos, out.bytes)) {
    return false;
  }
  return true;
}

Trace ReadClf(std::istream& in, std::string trace_name, ClfParseStats* stats) {
  Trace trace;
  trace.name = std::move(trace_name);

  std::unordered_map<std::string, DocId, SvHash, SvEq> doc_index;
  std::unordered_map<std::string, ClientId, SvHash, SvEq> client_index;
  std::int64_t first_seconds = -1;

  // One reservation sized from a newline-counting pre-pass (seekable
  // streams only) instead of doubling growth across millions of records.
  trace.records.reserve(CountRemainingLines(in));

  std::string line;
  ClfParseStats local;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++local.lines;
    ClfLine parsed;
    if (!ParseClfLine(line, parsed)) {
      ++local.malformed;
      continue;
    }
    if (parsed.method != "GET" ||
        (parsed.status != 200 && parsed.status != 304)) {
      ++local.skipped;
      continue;
    }
    ++local.accepted;
    if (first_seconds < 0) first_seconds = parsed.unix_seconds;

    auto doc_it = doc_index.find(parsed.path);
    if (doc_it == doc_index.end()) {
      doc_it = doc_index
                   .emplace(std::string(parsed.path),
                            static_cast<DocId>(trace.documents.size()))
                   .first;
      trace.documents.push_back(DocumentInfo{std::string(parsed.path), 0});
    }
    if (parsed.bytes > 0) {
      auto& size = trace.documents[doc_it->second].size_bytes;
      size = std::max<std::uint64_t>(size,
                                     static_cast<std::uint64_t>(parsed.bytes));
    }

    auto client_it = client_index.find(parsed.host);
    if (client_it == client_index.end()) {
      client_it = client_index
                      .emplace(std::string(parsed.host),
                               static_cast<ClientId>(trace.clients.size()))
                      .first;
      trace.clients.push_back(std::string(parsed.host));
    }

    TraceRecord record;
    record.timestamp = (parsed.unix_seconds - first_seconds) * kSecond;
    record.client = client_it->second;
    record.doc = doc_it->second;
    trace.records.push_back(record);
  }

  // CLF has one-second resolution, so same-second records may arrive
  // unsorted across load-balanced loggers; normalize.
  std::stable_sort(trace.records.begin(), trace.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  trace.duration = trace.records.empty()
                       ? kSecond
                       : trace.records.back().timestamp + kSecond;
  // Documents never seen with a size (all-304 paths) get a nominal 1 KB.
  for (DocumentInfo& doc : trace.documents) {
    if (doc.size_bytes == 0) doc.size_bytes = 1024;
  }
  if (stats != nullptr) *stats = local;
  return trace;
}

void WriteClf(const Trace& trace, std::ostream& out,
              std::int64_t epoch_seconds) {
  for (const TraceRecord& record : trace.records) {
    const std::int64_t t = epoch_seconds + record.timestamp / kSecond;
    const std::int64_t days = t / 86400;
    std::int64_t rem = t % 86400;
    // Convert days back to a calendar date.
    int year = 1970;
    std::int64_t d = days;
    while (true) {
      const int len = IsLeap(year) ? 366 : 365;
      if (d < len) break;
      d -= len;
      ++year;
    }
    static constexpr int kLengths[] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};
    int month = 0;
    while (true) {
      int len = kLengths[month];
      if (month == 1 && IsLeap(year)) ++len;
      if (d < len) break;
      d -= len;
      ++month;
    }
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s - - [%02d/%s/%d:%02lld:%02lld:%02lld -0000] \"GET %s HTTP/1.0\" "
        "200 %llu\n",
        trace.clients[record.client].c_str(), static_cast<int>(d + 1),
        kMonths[month], year, static_cast<long long>(rem / 3600),
        static_cast<long long>((rem % 3600) / 60),
        static_cast<long long>(rem % 60),
        trace.documents[record.doc].path.c_str(),
        static_cast<unsigned long long>(trace.documents[record.doc].size_bytes));
    out << buf;
  }
}

}  // namespace webcc::trace
