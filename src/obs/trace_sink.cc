#include "obs/trace_sink.h"

#include <ostream>

namespace webcc::obs {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

std::uint32_t JsonlTraceSink::InternLocked(std::string_view s) {
  const auto it = interns_.find(s);
  if (it != interns_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(interns_.size());
  interns_.emplace(std::string(s), id);
  std::string line = "{\"e\":\"intern\",\"id\":";
  line += std::to_string(id);
  line += ",\"n\":\"";
  AppendJsonEscaped(line, s);
  line += "\"}\n";
  *out_ << line;
  return id;
}

void JsonlTraceSink::ResetInternsLocked() { interns_.clear(); }

void JsonlTraceSink::Emit(const TraceEvent& event) {
  const util::MutexLock lock(mu_);
  // Each run interns from scratch so concatenated streams self-describe.
  if (event.type == EventType::kRunBegin) ResetInternsLocked();

  // Intern first: the id-definition lines precede the event that uses them.
  std::uint32_t url_id = 0, site_id = 0;
  const bool has_url = !event.url.empty();
  const bool has_site = !event.site.empty();
  if (has_url) url_id = InternLocked(event.url);
  if (has_site) site_id = InternLocked(event.site);

  std::string line;
  line.reserve(96);
  line += "{\"t\":";
  line += std::to_string(event.at);
  line += ",\"e\":\"";
  line += EventTypeName(event.type);
  line += '"';
  if (event.trace_time >= 0) {
    line += ",\"tt\":";
    line += std::to_string(event.trace_time);
  }
  if (has_url) {
    line += ",\"u\":";
    line += std::to_string(url_id);
  }
  if (has_site) {
    line += ",\"s\":";
    line += std::to_string(site_id);
  }
  if (event.detail != 0) {
    line += ",\"d\":";
    line += std::to_string(event.detail);
  }
  if (!event.label.empty()) {
    line += ",\"l\":\"";
    AppendJsonEscaped(line, event.label);
    line += '"';
  }
  line += "}\n";
  *out_ << line;
  ++events_written_;
}

void JsonlTraceSink::WriteRaw(std::string_view jsonl) {
  const util::MutexLock lock(mu_);
  out_->write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
}

std::uint64_t JsonlTraceSink::events_written() const {
  const util::MutexLock lock(mu_);
  return events_written_;
}

}  // namespace webcc::obs
