#include "http/proxy_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace webcc::http {

CacheEntry* ProxyCache::Lookup(const std::string& key, Time now) {
  const core::InternId id = keys_.Find(key);
  if (id == core::kNoInternId) return nullptr;
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  CacheEntry& entry = *it->second;
  if (entry.tier2_) {
    ++entry.tier2_hits_;
    // Promote a proven-hot entry back into tier 1 — unless it could never
    // fit there (it stays a tier-2 resident for its lifetime).
    if (entry.tier2_hits_ >= tier_.promotion_hits &&
        entry.size_bytes <= capacity_bytes_) {
      PromoteFromTier2(it->second, now);
    } else {
      tier2_lru_.splice(tier2_lru_.begin(), tier2_lru_, it->second);
    }
  } else {
    lru_.splice(lru_.begin(), lru_, it->second);
    policy_->OnHit(ViewOf(entry));
  }
  return &*it->second;
}

CacheEntry* ProxyCache::Peek(const std::string& key) {
  const core::InternId id = keys_.Find(key);
  if (id == core::kNoInternId) return nullptr;
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

void ProxyCache::PushTtlItem(CacheEntry& entry) {
  if (entry.ttl_expires == kNeverExpires) return;
  ttl_heap_.Push(entry.ttl_expires, entry.heap_stamp_, entry.key_id_);
  entry.heap_record_live_ = true;
}

void ProxyCache::CompactTtlHeap() {
  ttl_heap_.CompactIfStale([this](const eviction::ExpiryRecord& r) {
    const auto it = index_.find(r.key);
    return it != index_.end() && it->second->heap_stamp_ == r.stamp;
  });
}

std::uint64_t ProxyCache::DemotionWatermark() const {
  return static_cast<std::uint64_t>(tier_.demotion_pressure *
                                    static_cast<double>(capacity_bytes_));
}

void ProxyCache::Insert(CacheEntry entry, Time now) {
  entry.key_id_ = keys_.Intern(entry.key);
  entry.url_id_ = urls_.Intern(entry.url);
  EraseById(entry.key_id_);  // replace semantics
  if (tier_.enabled()) Tier2TtlCleanup(now);
  if (entry.size_bytes > capacity_bytes_) {
    // Too large for tier 1; the second tier takes it when it fits there.
    if (tier_.enabled() && entry.size_bytes <= tier_.tier2_capacity_bytes) {
      InsertIntoTier2(std::move(entry), now);
      return;
    }
    ++stats_.oversize_rejections;
    obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                            .at = now,
                            .url = entry.url,
                            .site = entry.owner,
                            .detail = 2});
    return;  // uncacheable
  }
  while (bytes_used_ + entry.size_bytes > capacity_bytes_) DisplaceOne(now);

  entry.heap_stamp_ = next_stamp_++;
  bytes_used_ += entry.size_bytes;
  ++stats_.insertions;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key_id_] = lru_.begin();
  url_index_[lru_.front().url_id_].push_back(lru_.front().key_id_);
  PushTtlItem(lru_.front());
  policy_->OnInsert(ViewOf(lru_.front()));

  if (tier_.enabled()) {
    // Demote ahead of the hard limit so the next burst lands in headroom
    // instead of forcing synchronous evictions.
    const std::uint64_t watermark = DemotionWatermark();
    while (bytes_used_ > watermark && !lru_.empty()) DisplaceOne(now);
  }
}

void ProxyCache::InsertIntoTier2(CacheEntry entry, Time now) {
  entry.heap_stamp_ = next_stamp_++;
  entry.tier2_ = true;
  entry.tier2_hits_ = 0;
  while (tier2_bytes_used_ + entry.size_bytes > tier_.tier2_capacity_bytes) {
    EvictTier2Tail(now);
  }
  tier2_bytes_used_ += entry.size_bytes;
  ++stats_.insertions;
  tier2_lru_.push_front(std::move(entry));
  index_[tier2_lru_.front().key_id_] = tier2_lru_.begin();
  url_index_[tier2_lru_.front().url_id_].push_back(
      tier2_lru_.front().key_id_);
  PushTtlItem(tier2_lru_.front());
}

bool ProxyCache::Erase(const std::string& key) {
  const core::InternId id = keys_.Find(key);
  return id != core::kNoInternId && EraseById(id);
}

bool ProxyCache::EraseById(core::InternId key_id) {
  const auto it = index_.find(key_id);
  if (it == index_.end()) return false;
  ++stats_.erased;
  RemoveEntry(it->second);
  return true;
}

void ProxyCache::RemoveEntry(LruList::iterator it) {
  if (it->heap_record_live_) ttl_heap_.NoteStale();
  const auto url_it = url_index_.find(it->url_id_);
  if (url_it != url_index_.end()) {
    std::vector<core::InternId>& keys = url_it->second;
    keys.erase(std::find(keys.begin(), keys.end(), it->key_id_));
    if (keys.empty()) url_index_.erase(url_it);
  }
  index_.erase(it->key_id_);
  if (it->tier2_) {
    tier2_bytes_used_ -= it->size_bytes;
    tier2_lru_.erase(it);
  } else {
    bytes_used_ -= it->size_bytes;
    policy_->OnErase(ViewOf(*it));
    lru_.erase(it);
  }
  // Any TTL-heap records pointing at this key became stale (NoteStale
  // above) and are skipped lazily; compaction keeps them from piling up.
  CompactTtlHeap();
}

std::size_t ProxyCache::EraseByUrl(const std::string& url) {
  const core::InternId url_id = urls_.Find(url);
  if (url_id == core::kNoInternId) return 0;
  const auto it = url_index_.find(url_id);
  if (it == url_index_.end()) return 0;
  // Copy out: EraseById mutates the vector we are iterating.
  const std::vector<core::InternId> keys = it->second;
  std::size_t erased = 0;
  for (const core::InternId key_id : keys) erased += EraseById(key_id);
  return erased;
}

std::vector<CacheEntry*> ProxyCache::TakeExpired(Time now,
                                                 std::size_t max_items) {
  std::vector<CacheEntry*> expired;
  while (expired.size() < max_items && !ttl_heap_.empty()) {
    const eviction::ExpiryRecord top = ttl_heap_.Top();
    if (top.expires > now) break;
    const auto it = index_.find(top.key);
    if (it != index_.end() && it->second->heap_stamp_ == top.stamp) {
      expired.push_back(&*it->second);
      it->second->heap_record_live_ = false;  // record consumed
      ttl_heap_.PopLive();
    } else {
      ttl_heap_.PopStale();
    }
  }
  return expired;
}

void ProxyCache::SetTtlExpiry(CacheEntry& entry, Time expires) {
  if (entry.heap_record_live_) {
    ttl_heap_.NoteStale();  // the re-push supersedes the old record
    entry.heap_record_live_ = false;
  }
  entry.ttl_expires = expires;
  entry.heap_stamp_ = next_stamp_++;
  PushTtlItem(entry);
  CompactTtlHeap();
}

core::InternId ProxyCache::LruTailKey() const {
  return std::prev(lru_.end())->key_id_;
}

bool ProxyCache::TtlRecordLive(core::InternId key,
                               std::uint64_t stamp) const {
  const auto it = index_.find(key);
  return it != index_.end() && it->second->heap_stamp_ == stamp;
}

void ProxyCache::NoteTtlRecordConsumed(core::InternId key) {
  const auto it = index_.find(key);
  WEBCC_CHECK_MSG(it != index_.end(), "consuming a record with no entry");
  it->second->heap_record_live_ = false;
}

bool ProxyCache::InEvictableTier(core::InternId key) const {
  const auto it = index_.find(key);
  return it != index_.end() && !it->second->tier2_;
}

void ProxyCache::DisplaceOne(Time now) {
  WEBCC_CHECK_MSG(!lru_.empty(), "eviction from an empty cache");
  const eviction::Victim victim = policy_->PickVictim(now, *this);
  const auto it = index_.find(victim.key);
  WEBCC_CHECK_MSG(it != index_.end(), "policy picked a non-resident victim");

  // Pressure demotes instead of evicting when the second tier can hold the
  // entry — except entries the expired-first rule chose: already-stale
  // documents are not worth tier-2 space.
  if (tier_.enabled() && !victim.expired_rule &&
      it->second->size_bytes <= tier_.tier2_capacity_bytes) {
    CacheEntry& entry = *it->second;
    policy_->OnErase(ViewOf(entry));
    bytes_used_ -= entry.size_bytes;
    entry.tier2_ = true;
    entry.tier2_hits_ = 0;
    tier2_bytes_used_ += entry.size_bytes;
    tier2_lru_.splice(tier2_lru_.begin(), lru_, it->second);
    ++stats_.tier2_demotions;
    while (tier2_bytes_used_ > tier_.tier2_capacity_bytes) {
      EvictTier2Tail(now);
    }
    return;
  }
  EvictEntry(it->second, now, victim.expired_rule);
}

void ProxyCache::EvictEntry(LruList::iterator it, Time now,
                            bool expired_rule) {
  ++stats_.evictions;
  if (expired_rule) {
    ++stats_.expired_evictions;
    obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                            .at = now,
                            .url = it->url,
                            .site = it->owner,
                            .detail = 1});
  } else {
    obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                            .at = now,
                            .url = it->url,
                            .site = it->owner});
  }
  RemoveEntry(it);
}

void ProxyCache::EvictTier2Tail(Time now) {
  WEBCC_CHECK_MSG(!tier2_lru_.empty(), "eviction from an empty tier 2");
  const auto victim = std::prev(tier2_lru_.end());
  ++stats_.evictions;
  ++stats_.tier2_evictions;
  obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                          .at = now,
                          .url = victim->url,
                          .site = victim->owner,
                          .detail = 3});
  RemoveEntry(victim);
}

void ProxyCache::PromoteFromTier2(LruList::iterator it, Time now) {
  CacheEntry& entry = *it;
  entry.tier2_ = false;
  entry.tier2_hits_ = 0;
  tier2_bytes_used_ -= entry.size_bytes;
  bytes_used_ += entry.size_bytes;
  lru_.splice(lru_.begin(), tier2_lru_, it);
  policy_->OnInsert(ViewOf(entry));
  ++stats_.tier2_promotions;
  // The promotion may overshoot tier 1's budget; resolve like an insert
  // would (the promoted entry sits at the front, so it is never its own
  // displacement victim while anything else remains).
  while (bytes_used_ > capacity_bytes_ && lru_.size() > 1) DisplaceOne(now);
}

void ProxyCache::Tier2TtlCleanup(Time now) {
  std::vector<LruList::iterator> dead;
  auto it = tier2_lru_.end();
  for (std::size_t scanned = 0;
       scanned < tier_.ttl_cleanup_per_tick && it != tier2_lru_.begin();
       ++scanned) {
    --it;
    if (it->ttl_expires <= now) dead.push_back(it);
  }
  for (const LruList::iterator& victim : dead) {
    ++stats_.tier2_expired_cleaned;
    obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                            .at = now,
                            .url = victim->url,
                            .site = victim->owner,
                            .detail = 4});
    RemoveEntry(victim);
  }
}

void ProxyCache::ExportMetrics(obs::MetricsRegistry& registry,
                               std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("insertions"), stats_.insertions);
  registry.SetCounter(name("evictions"), stats_.evictions);
  registry.SetCounter(name("expired_evictions"), stats_.expired_evictions);
  registry.SetCounter(name("erased"), stats_.erased);
  registry.SetCounter(name("bytes_used"), bytes_used());
  registry.SetCounter(name("entries"), lru_.size() + tier2_lru_.size());
  registry.SetCounter(name("oversize_rejections"), stats_.oversize_rejections);
  registry.SetCounter(name("tier2_promotions"), stats_.tier2_promotions);
  registry.SetCounter(name("tier2_demotions"), stats_.tier2_demotions);
  registry.SetCounter(name("tier2_evictions"), stats_.tier2_evictions);
  registry.SetCounter(name("tier2_expired_cleaned"),
                      stats_.tier2_expired_cleaned);
  registry.SetCounter(name("tier2_bytes_used"), tier2_bytes_used_);
  registry.SetCounter(name("tier2_entries"), tier2_lru_.size());
  policy_->ExportStats(registry, prefix);
}

void ProxyCache::MarkAllQuestionable() {
  for (CacheEntry& entry : lru_) entry.questionable = true;
  for (CacheEntry& entry : tier2_lru_) entry.questionable = true;
}

std::size_t ProxyCache::MarkQuestionableWhere(
    const std::function<bool(const CacheEntry&)>& predicate) {
  std::size_t marked = 0;
  for (LruList* list : {&lru_, &tier2_lru_}) {
    for (CacheEntry& entry : *list) {
      if (!entry.questionable && predicate(entry)) {
        entry.questionable = true;
        ++marked;
      }
    }
  }
  return marked;
}

}  // namespace webcc::http
