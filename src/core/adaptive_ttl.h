// Adaptive TTL computation (the Alex protocol as implemented in Harvest).
#pragma once

#include "core/policy.h"
#include "util/time.h"

namespace webcc::core {

// TTL assigned to a copy validated at `now` whose server last-modified time
// is `last_modified`. Negative ages (clock skew between the lock-stepped
// components) are treated as zero, which yields min_ttl.
Time ComputeAdaptiveTtl(const AdaptiveTtlConfig& config, Time now,
                        Time last_modified);

// Absolute expiry: now + ComputeAdaptiveTtl, saturating.
Time AdaptiveTtlExpiry(const AdaptiveTtlConfig& config, Time now,
                       Time last_modified);

}  // namespace webcc::core
