#include "http/origin.h"

#include "util/check.h"

namespace webcc::http {

std::optional<net::Reply> OriginServer::Handle(const net::Request& request,
                                               Time now) const {
  (void)now;
  const Document* doc = store_->Find(request.url);
  if (doc == nullptr) return std::nullopt;

  net::Reply reply;
  reply.url = request.url;
  reply.last_modified = doc->last_modified;
  reply.version = doc->version;

  const bool modified_since =
      request.type == net::MessageType::kIfModifiedSince &&
      doc->last_modified <= request.if_modified_since;
  if (modified_since) {
    reply.type = net::MessageType::kReply304;
    reply.body_bytes = 0;
  } else {
    reply.type = net::MessageType::kReply200;
    reply.body_bytes = doc->size_bytes;
  }
  return reply;
}

}  // namespace webcc::http
