// Browser-cache filtering of request streams.
//
// Section 7 of the paper notes that its server traces were "probably
// already filtered by the client caches": a browser absorbs repeat views,
// so the server log under-represents the hits a proxy would see, and
// polling-every-time looks better than it would against raw client traffic.
// This filter models that: given a raw client-request stream, it removes
// the requests a per-(client, document) browser cache with the given TTL
// would have served itself, yielding the corresponding server trace.
#pragma once

#include "trace/record.h"

namespace webcc::trace {

struct BrowserFilterStats {
  std::uint64_t input_requests = 0;
  std::uint64_t absorbed = 0;  // served by the browser cache, dropped
  std::uint64_t forwarded = 0;
};

// Keeps a request iff the issuing client has not fetched that document
// within the past `browser_ttl` (an infinite-capacity per-client cache with
// a fixed freshness window — the simplest browser model). Documents and
// clients are preserved; only records are dropped.
Trace FilterThroughBrowserCaches(const Trace& raw, Time browser_ttl,
                                 BrowserFilterStats* stats = nullptr);

}  // namespace webcc::trace
