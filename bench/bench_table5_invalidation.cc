// Regenerates Table 5: invalidation costs for the six replay runs —
// site-list storage, site-list lengths at modification time, and the time
// the accelerator spends pushing all invalidations for one modification.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Table 5: invalidation costs ===\n\n");

  const auto specs = replay::AllTableExperiments();
  // Generate traces serially (TraceFor caches), then farm the six
  // independent invalidation replays across the available cores.
  for (const replay::ExperimentSpec& spec : specs) bench::TraceFor(spec.trace);
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size());
  for (const replay::ExperimentSpec& spec : specs) {
    configs.push_back(replay::MakeReplayConfig(
        spec, core::Protocol::kInvalidation, bench::TraceFor(spec.trace)));
  }
  const std::vector<replay::ReplayMetrics> runs =
      replay::Farm::RunAll(configs);

  std::vector<std::string> headers{"Trace"};
  for (const replay::ExperimentSpec& spec : specs) headers.push_back(spec.id);
  stats::Table table(std::move(headers));

  const auto row = [&](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (std::size_t i = 0; i < runs.size(); ++i) cells.push_back(get(i));
    table.AddRow(std::move(cells));
  };

  row("Storage", [&](std::size_t i) {
    return util::HumanBytes(runs[i].sitelist_storage_bytes);
  });
  row("  (paper)", [&](std::size_t i) {
    return std::string(specs[i].paper.sitelist_storage);
  });
  row("Site-list entries", [&](std::size_t i) {
    return util::WithCommas(
        static_cast<std::int64_t>(runs[i].sitelist_entries));
  });
  row("Avg. SiteList @mod", [&](std::size_t i) {
    return util::Fixed(runs[i].sitelist_avg_len_at_mod, 1);
  });
  row("Max. SiteList @mod", [&](std::size_t i) {
    return util::WithCommas(
        static_cast<std::int64_t>(runs[i].sitelist_max_len_at_mod));
  });
  row("Avg. Inval. Time", [&](std::size_t i) {
    return util::Fixed(runs[i].invalidation_time_ms.mean() / 1000.0, 2) + " s";
  });
  row("Max. Inval. Time", [&](std::size_t i) {
    return util::Fixed(runs[i].invalidation_time_ms.max() / 1000.0, 2) + " s";
  });
  row("Bytes/request", [&](std::size_t i) {
    const auto& trace = bench::TraceFor(specs[i].trace);
    return util::Fixed(static_cast<double>(runs[i].sitelist_storage_bytes) /
                           static_cast<double>(trace.records.size()),
                       1);
  });

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "SDSC(57) is the 25-day-lifetime run, SDSC(576) the 2.5-day run.\n"
      "Site-list statistics are taken over modified documents, as in the\n"
      "paper. The paper observes ~20-30 bytes of site-list storage per\n"
      "request and notes that when more files are modified (SDSC(576)),\n"
      "the chance of hitting a long-listed document — and with it the\n"
      "maximum invalidation time — increases.\n");
  return 0;
}
