// Minimal RAII TCP sockets for the live prototype (loopback deployments).
//
// The live components speak one request per connection (HTTP/1.0 style,
// like the paper's Harvest-era stack): connect, write one wire line, read
// one wire line back, close. Blocking I/O with short timeouts keeps the
// threading model simple — one accept loop per component, handling each
// connection inline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace webcc::live {

// Owning file-descriptor wrapper.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

// Why the last stream operation failed. Handlers branch on this to tell a
// peer that vanished (reset: drop the connection silently, the paper's
// proxies do the same for crashed clients) from a stall (timeout: the peer
// is alive but slow — worth logging) from everything else.
enum class IoError {
  kNone,       // last operation succeeded
  kPeerReset,  // EPIPE / ECONNRESET: the peer closed or vanished
  kTimeout,    // SO_SNDTIMEO / SO_RCVTIMEO expired, or poll() timed out
  kOther,      // any other errno
};

// Printable name for logs ("none" / "peer_reset" / "timeout" / "other").
std::string_view IoErrorName(IoError error);

// A connected TCP stream with line-oriented helpers.
class TcpStream {
 public:
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  bool valid() const { return fd_.valid(); }

  // Writes the whole buffer, looping over short writes. send() on a socket
  // may accept fewer bytes than asked (full send buffer) or fail with
  // EAGAIN (non-blocking fd, or SO_SNDTIMEO expired); both are resumed —
  // EAGAIN by poll()ing for POLLOUT — so a frame is never silently
  // truncated mid-line. Returns false on error with last_error() set;
  // a false return means the peer got a prefix of the frame at most.
  bool WriteAll(std::string_view data);

  // Reads up to (and including) the next '\n'; empty-line results are
  // returned as "\n". std::nullopt on EOF, timeout or error, classified in
  // last_error(). Only an orderly EOF (last_error() == kNone) delivers an
  // unterminated trailing line; a timeout or reset never surfaces the
  // partial frame — timed-out reads keep it buffered so a later call can
  // resume it.
  std::optional<std::string> ReadLine();

  // Sets SO_RCVTIMEO so a dead peer cannot hang a handler thread.
  void SetReadTimeout(int milliseconds);

  // Sets SO_SNDTIMEO, bounding how long WriteAll blocks on a peer that
  // stopped draining; expiry surfaces as IoError::kTimeout.
  void SetWriteTimeout(int milliseconds);

  // Classification of the most recent WriteAll/ReadLine failure;
  // IoError::kNone after a success.
  IoError last_error() const { return last_error_; }

 private:
  Fd fd_;
  std::string buffer_;  // bytes read past the last returned line
  IoError last_error_ = IoError::kNone;
  bool write_timeout_set_ = false;  // SO_SNDTIMEO active on this fd
  bool read_timeout_set_ = false;   // SO_RCVTIMEO active on this fd
};

// Listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  // Binds to the given port; 0 picks an ephemeral port. Check valid().
  explicit TcpListener(std::uint16_t port);

  bool valid() const { return fd_.valid(); }
  std::uint16_t port() const { return port_; }

  // Blocks until a connection arrives; invalid stream on error (including
  // the listener being closed from another thread — the shutdown path).
  TcpStream Accept();

  // Unblocks Accept() from another thread. The socket stays open (and the
  // port bound) until the listener is destroyed; destroy it only after
  // joining the thread that calls Accept().
  void Shutdown();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

// Connects to 127.0.0.1:port; invalid stream on failure.
TcpStream Connect(std::uint16_t port);

// One-shot request/response exchange: connect, send `line`, read one line.
std::optional<std::string> Exchange(std::uint16_t port, std::string_view line);

// Fire-and-forget: connect and send `line` (used for INVALIDATE pushes).
bool SendOneWay(std::uint16_t port, std::string_view line);

// SendOneWay with the failure classified: kNone on success, kPeerReset when
// the peer refused or vanished, kTimeout when it stopped draining within
// `timeout_ms` (0 = no write timeout). Push retry policies branch on this —
// a timeout is worth retrying, a refused peer revalidates on restart.
IoError SendOneWayClassified(std::uint16_t port, std::string_view line,
                             int timeout_ms);

}  // namespace webcc::live
