#include "stats/latency.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webcc::stats {

void LatencyStats::Record(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (max_samples_ == 0 || samples_.size() < max_samples_) {
    samples_.push_back(value);
    sorted_ = false;
  }
}

void LatencyStats::Merge(const LatencyStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (double v : other.samples_) {
    if (max_samples_ == 0 || samples_.size() < max_samples_) {
      samples_.push_back(v);
    }
  }
  sorted_ = false;
}

double LatencyStats::min() const { return count_ == 0 ? 0.0 : min_; }
double LatencyStats::max() const { return count_ == 0 ? 0.0 : max_; }

double LatencyStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

bool LatencyStats::SameSamples(const LatencyStats& other) const {
  if (count_ != other.count_ || sum_ != other.sum_ || min() != other.min() ||
      max() != other.max() || samples_.size() != other.samples_.size()) {
    return false;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (!other.sorted_) {
    std::sort(other.samples_.begin(), other.samples_.end());
    other.sorted_ = true;
  }
  return samples_ == other.samples_;
}

double LatencyStats::Percentile(double p) const {
  WEBCC_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace webcc::stats
