// Fuzz target: the live wire-grammar codec (net/wire.h).
//
// DecodeLine parses bytes straight off real TCP sockets. Invariant checked
// beyond memory safety: decode→encode→decode is a fixpoint — any message
// the codec accepts re-encodes to a line it parses back to the same bytes.
#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  const auto message = webcc::net::DecodeLine(line);
  if (!message.has_value()) return 0;

  const std::string encoded = webcc::net::EncodeLine(*message);
  const auto reparsed = webcc::net::DecodeLine(encoded);
  if (!reparsed.has_value()) __builtin_trap();
  if (webcc::net::EncodeLine(*reparsed) != encoded) __builtin_trap();
  return 0;
}
