// The Harvest-style server accelerator: the invalidation protocol's
// server-side brain.
//
// The accelerator fronts the origin server (the paper runs it on port 80
// with HTTPD moved to 81) and performs the three operations of Section 4:
//
//  1. tracking remote sites that cache each document (InvalidationTable,
//     fed pessimistically by every request),
//  2. detecting modifications — via check-in NOTIFY messages from the
//     modifier ("notify") or via a freshness check hinted by a local
//     browser request ("browser-based" detection), and
//  3. producing INVALIDATE messages for the sites on the modified
//     document's list.
//
// The accelerator is transport-agnostic: it turns protocol inputs into
// protocol outputs, and the replay engine (or the live socket server)
// moves them. Costs/queueing live with the caller.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/invalidation_table.h"
#include "core/journal.h"
#include "core/policy.h"
#include "core/site_registry.h"
#include "http/document_store.h"
#include "http/origin.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace webcc::core {

struct AcceleratorStats {
  std::uint64_t requests = 0;
  std::uint64_t notifies = 0;
  // Notifies/checks that found an actual version change.
  std::uint64_t modifications_detected = 0;
  std::uint64_t invalidations_generated = 0;
  // Site-list length at each detected modification (Table 5's "Avg./Max.
  // SiteList" statistics are taken over exactly these).
  std::vector<std::size_t> list_lengths_at_modification;
};

class Accelerator {
 public:
  Accelerator(const http::DocumentStore& store, LeaseConfig lease,
              std::string server_name = "origin")
      : origin_(store),
        store_(&store),
        table_(lease),
        server_name_(std::move(server_name)) {}

  // Serves a GET/IMS at protocol time `now`: answers from the origin,
  // registers the requesting site, and stamps the granted lease into the
  // reply. std::nullopt for unknown URLs.
  std::optional<net::Reply> HandleRequest(const net::Request& request,
                                          Time now);

  // Check-in notification: if the document changed since the accelerator
  // last saw it, returns one INVALIDATE per registered site (and forgets
  // them). Empty when nothing changed.
  std::vector<net::Invalidation> HandleNotify(const net::Notify& notify,
                                              Time now);

  // Browser-based detection: a request from a local browser for a local
  // document suggests checking its modification time. Same outcome as a
  // notify when the document did change.
  std::vector<net::Invalidation> CheckDocument(std::string_view url,
                                               Time now);

  // --- failure handling ----------------------------------------------------
  // Server-site crash: the in-memory invalidation table is lost; the
  // on-disk site registry and write-ahead journal survive.
  void Crash();

  // Recovery: one server-address INVALIDATE per site ever seen, telling each
  // to mark this server's documents questionable. The pre-journal fallback,
  // and what journal recovery degrades to when the journal is damaged.
  std::vector<net::Invalidation> Recover();

  // --- write-ahead journal (Section 4's persistent site lists) -------------
  // When enabled, every registration / invalidation / version pin is
  // journaled append-before-act, so RecoverFromJournal can rebuild the
  // exact table instead of broadcasting.
  void EnableJournal(bool enabled) { journal_enabled_ = enabled; }
  bool journal_enabled() const { return journal_enabled_; }
  SiteJournal& journal() { return journal_; }
  const SiteJournal& journal() const { return journal_; }

  struct RecoveryOutcome {
    // What to send: targeted kInvalidateUrl messages for documents that
    // changed while the server was down (journal intact), or the kRecover
    // style kInvalidateServer broadcast (journal damaged). All carry
    // recovery = true.
    std::vector<net::Invalidation> invalidations;
    bool journal_damaged = false;
    std::size_t records_applied = 0;
    std::size_t records_rejected = 0;
    std::size_t entries_restored = 0;  // live site-list entries rebuilt
  };

  // Rebuilds the invalidation table and version baselines from the journal
  // (call after Crash()). Intact journal: the table is restored exactly and
  // only documents whose store version advanced past the journaled baseline
  // produce (targeted) invalidations. Damaged journal: the valid prefix is
  // restored — a conservative superset, since replaying fewer 'I' records
  // can only leave extra entries — and the outcome carries the full
  // server-address broadcast. Finally the journal is compacted to a
  // snapshot of the restored state.
  RecoveryOutcome RecoverFromJournal(Time now);

  // Phase 1 of RecoverFromJournal on its own: replays the journal into the
  // table and version baselines and compacts it, emitting no events and
  // producing no invalidations. The sharded accelerator rebuilds every
  // shard through this, then runs phase 2 (targeted invalidations via
  // CheckDocument) across shards in global URL order so the recovery
  // stream is identical at any shard count.
  struct RebuildOutcome {
    bool journal_damaged = false;
    std::size_t records_applied = 0;
    std::size_t records_rejected = 0;
    std::size_t entries_restored = 0;
  };
  RebuildOutcome RebuildFromJournal(Time now);

  // Sorted URLs with a journaled version baseline (phase 2's candidates).
  std::vector<std::string> JournaledUrls() const;

  InvalidationTable& table() { return table_; }
  const InvalidationTable& table() const { return table_; }
  SiteRegistry& registry() { return registry_; }
  const AcceleratorStats& stats() const { return stats_; }
  const std::string& server_name() const { return server_name_; }

  // Optional tracing: lease grants (kLeaseGrant, detail = expiry),
  // modification detection (kInvalidateGenerated per INVALIDATE produced),
  // check-ins (kNotify) and recovery broadcasts (kInvalidateServer). The
  // sink also propagates to the invalidation table (lease expiries).
  void set_trace_sink(obs::TraceSink* sink) {
    trace_sink_ = sink;
    table_.set_trace_sink(sink);
  }

  // Snapshots AcceleratorStats into `registry` under `prefix`; the nested
  // invalidation table exports under "<prefix>table.".
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  std::vector<net::Invalidation> DetectAndInvalidate(std::string_view url,
                                                     Time now);

  http::OriginServer origin_;
  const http::DocumentStore* store_;
  InvalidationTable table_;
  SiteRegistry registry_;
  // Document version as of the last invalidation (or first sighting);
  // modifications are detected as version advances past this.
  std::unordered_map<std::string, std::uint64_t> last_seen_version_;
  std::string server_name_;
  AcceleratorStats stats_;
  SiteJournal journal_;
  bool journal_enabled_ = false;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::core
