#include "stats/table.h"

#include <algorithm>

#include "util/check.h"

namespace webcc::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WEBCC_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  WEBCC_CHECK_MSG(cells.size() == headers_.size(),
                  "row width does not match header");
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::size_t total = 1;  // leading '|'
  for (std::size_t w : widths) total += w + 3;

  std::string out;
  const auto emit_cells = [&](const std::vector<std::string>& cells) {
    out += '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      out += ' ';
      if (c == 0) {  // left-align the label column
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
      out += " |";
    }
    out += '\n';
  };

  const std::string rule(total, '-');
  emit_cells(headers_);
  out += rule;
  out += '\n';
  for (const Row& row : rows_) {
    if (row.separator) {
      out += rule;
      out += '\n';
    } else {
      emit_cells(row.cells);
    }
  }
  return out;
}

}  // namespace webcc::stats
