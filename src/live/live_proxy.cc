#include "live/live_proxy.h"

#include <chrono>
#include <utility>

#include "core/adaptive_ttl.h"
#include "core/lease.h"
#include "live/live_server.h"
#include "net/wire.h"
#include "util/log.h"

namespace webcc::live {

LiveProxy::LiveProxy(Options options) : options_(std::move(options)) {}

LiveProxy::~LiveProxy() { Stop(); }

bool LiveProxy::Start() {
  listener_.emplace(options_.port);
  if (!listener_->valid()) return false;
  port_ = listener_->port();
  cache_.emplace(options_.cache_bytes, options_.replacement);
  cache_->set_trace_sink(options_.trace_sink);  // eviction events
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void LiveProxy::Stop() {
  if (!running_.exchange(false)) return;
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
}

Time LiveProxy::Now() const {
  // Unix-epoch microseconds: server and proxy clocks must agree because
  // lease expiries and modification times cross the wire.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::size_t LiveProxy::cached_entries() const {
  const std::scoped_lock lock(mutex_);
  return cache_->entry_count();
}

void LiveProxy::SimulateRecovery() {
  const std::scoped_lock lock(mutex_);
  cache_->MarkAllQuestionable();
}

LiveProxy::FetchResult LiveProxy::Fetch(const std::string& client_name,
                                        const std::string& url) {
  const std::string client_id = MakeClientId(client_name, port_);
  const std::string key = url + "@" + client_id;
  const Time now = Now();

  net::Request request;
  request.url = url;
  request.client_id = client_id;
  request.type = net::MessageType::kGet;

  {
    const std::scoped_lock lock(mutex_);
    http::CacheEntry* entry = cache_->Lookup(key);
    if (entry != nullptr) {
      bool serve_local = false;
      switch (options_.protocol) {
        case core::Protocol::kAdaptiveTtl:
          serve_local = !entry->questionable && now < entry->ttl_expires;
          break;
        case core::Protocol::kPollEveryTime:
          serve_local = false;
          break;
        case core::Protocol::kInvalidation:
          // Half-open [grant, expiry): an exact-expiry fetch revalidates.
          serve_local = !entry->questionable &&
                        core::LeaseActive(entry->lease_expires, now);
          break;
      }
      if (serve_local) {
        obs::Emit(options_.trace_sink,
                  {.type = obs::EventType::kRequestServed,
                   .at = now,
                   .url = url,
                   .site = client_id,
                   .detail = static_cast<std::int64_t>(obs::ServeKind::kLocalHit)});
        FetchResult result;
        result.ok = true;
        result.local_hit = true;
        result.version = entry->version;
        result.size_bytes = entry->size_bytes;
        return result;
      }
      request.type = net::MessageType::kIfModifiedSince;
      request.if_modified_since = entry->last_modified;
    }
  }

  const std::optional<std::string> reply_line =
      Exchange(options_.server_port, net::EncodeLine(request));
  if (!reply_line.has_value()) return FetchResult{};
  const std::optional<net::Message> message = net::DecodeLine(*reply_line);
  if (!message.has_value()) return FetchResult{};
  const auto* reply = std::get_if<net::Reply>(&*message);
  if (reply == nullptr) return FetchResult{};

  FetchResult result;
  result.ok = true;
  result.version = reply->version;

  obs::Emit(options_.trace_sink,
            {.type = obs::EventType::kRequestServed,
             .at = now,
             .url = url,
             .site = client_id,
             .detail = static_cast<std::int64_t>(
                 reply->type == net::MessageType::kReply200
                     ? obs::ServeKind::kTransfer
                     : obs::ServeKind::kValidated)});

  const std::scoped_lock lock(mutex_);
  if (reply->type == net::MessageType::kReply200) {
    http::CacheEntry entry;
    entry.key = key;
    entry.url = url;
    entry.owner = client_id;
    entry.size_bytes = reply->body_bytes;
    entry.last_modified = reply->last_modified;
    entry.version = reply->version;
    entry.fetched_at = now;
    if (options_.protocol == core::Protocol::kAdaptiveTtl) {
      entry.ttl_expires =
          core::AdaptiveTtlExpiry(options_.ttl, now, reply->last_modified);
    }
    entry.lease_expires = reply->lease_until == net::kNoLease
                              ? http::kNeverExpires
                              : reply->lease_until;
    result.size_bytes = entry.size_bytes;
    cache_->Insert(std::move(entry), now);
  } else {
    result.validated = true;
    http::CacheEntry* entry = cache_->Peek(key);
    if (entry != nullptr) {
      entry->questionable = false;
      result.size_bytes = entry->size_bytes;
      result.version = entry->version;
      if (options_.protocol == core::Protocol::kAdaptiveTtl) {
        cache_->SetTtlExpiry(
            *entry, core::AdaptiveTtlExpiry(options_.ttl, now,
                                            reply->last_modified));
      }
      if (reply->lease_until != net::kNoLease) {
        entry->lease_expires = reply->lease_until;
      } else if (options_.protocol == core::Protocol::kInvalidation) {
        entry->lease_expires = http::kNeverExpires;
      }
    }
  }
  return result;
}

void LiveProxy::AcceptLoop() {
  while (running_.load()) {
    TcpStream stream = listener_->Accept();
    if (!stream.valid()) {
      if (!running_.load()) return;
      continue;
    }
    stream.SetReadTimeout(5000);
    const std::optional<std::string> line = stream.ReadLine();
    if (!line.has_value()) continue;
    const std::optional<net::Message> message = net::DecodeLine(*line);
    if (!message.has_value()) continue;
    const auto* invalidation = std::get_if<net::Invalidation>(&*message);
    if (invalidation == nullptr) continue;
    // A TTL or polling proxy predates the INVALIDATE extension and ignores
    // such messages, as the paper's weak-consistency baselines do.
    if (options_.protocol != core::Protocol::kInvalidation) continue;

    const std::scoped_lock lock(mutex_);
    if (invalidation->type == net::MessageType::kInvalidateUrl) {
      cache_->Erase(invalidation->url + "@" + invalidation->client_id);
      invalidations_received_.fetch_add(1);
    } else {
      // Server-address invalidation: the recovering server cannot know what
      // changed while it was down, so every copy of its documents at this
      // site becomes questionable (the wire message carries no client; with
      // a single origin that is this proxy's whole cache).
      cache_->MarkAllQuestionable();
      server_notices_received_.fetch_add(1);
    }
  }
}

}  // namespace webcc::live
