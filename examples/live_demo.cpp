// Live demo: the whole protocol over real TCP sockets on localhost.
//
// Starts an origin server fronted by the accelerator, and two proxy caches
// (imagine two firewall proxies at different organizations), then walks
// through the paper's story end to end: fetch, hit, modify-and-invalidate,
// two-tier registration, and a server crash/recovery drill.
#include <chrono>
#include <cstdio>
#include <thread>

#include "live/live_proxy.h"
#include "live/live_server.h"

using namespace webcc;
using namespace std::chrono_literals;

namespace {

void Report(const char* who, const live::LiveProxy::FetchResult& result) {
  std::printf("  %-8s -> %s (version %llu, %llu bytes)\n", who,
              !result.ok          ? "ERROR"
              : result.local_hit  ? "served from cache, no network"
              : result.validated  ? "validated with server (304)"
                                  : "fetched from server (200)",
              static_cast<unsigned long long>(result.version),
              static_cast<unsigned long long>(result.size_bytes));
}

// Invalidations arrive asynchronously over TCP; give them a beat.
void Settle() { std::this_thread::sleep_for(50ms); }

}  // namespace

int main() {
  // --- bring up the site ----------------------------------------------------
  live::LiveServer::Options server_options;
  server_options.server_name = "www.example.org";
  live::LiveServer server(server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "could not bind the server\n");
    return 1;
  }
  server.AddDocument("/index.html", 21 * 1024);
  server.AddDocument("/paper.ps", 480 * 1024);
  std::printf("origin+accelerator on 127.0.0.1:%u\n", server.port());

  live::LiveProxy::Options proxy_options;
  proxy_options.server_port = server.port();
  live::LiveProxy proxy_a(proxy_options);
  live::LiveProxy proxy_b(proxy_options);
  if (!proxy_a.Start() || !proxy_b.Start()) {
    std::fprintf(stderr, "could not bind a proxy\n");
    return 1;
  }
  std::printf("proxy A on :%u, proxy B on :%u\n\n", proxy_a.port(),
              proxy_b.port());

  // --- normal operation -------------------------------------------------------
  std::printf("1) cold fetches register each site with the accelerator\n");
  Report("alice@A", proxy_a.Fetch("alice", "/index.html"));
  Report("bob@B", proxy_b.Fetch("bob", "/index.html"));

  std::printf("2) repeat views are pure cache hits — zero server traffic\n");
  Report("alice@A", proxy_a.Fetch("alice", "/index.html"));
  Report("bob@B", proxy_b.Fetch("bob", "/index.html"));

  std::printf("3) the page is edited and checked in: the accelerator pushes "
              "INVALIDATE to both sites\n");
  const std::size_t pushed = server.TouchDocument("/index.html");
  Settle();
  std::printf("  accelerator pushed %zu invalidations; cached copies "
              "deleted (A holds %zu entries, B holds %zu)\n",
              pushed, proxy_a.cached_entries(), proxy_b.cached_entries());

  std::printf("4) the next views fetch the new version — no one ever saw "
              "stale data\n");
  Report("alice@A", proxy_a.Fetch("alice", "/index.html"));
  Report("bob@B", proxy_b.Fetch("bob", "/index.html"));

  std::printf("5) a site that stops viewing stops being notified\n");
  server.TouchDocument("/index.html");
  Settle();
  std::printf("  second edit pushed invalidations only to registered "
              "sites: %llu total pushes so far\n",
              static_cast<unsigned long long>(server.invalidations_pushed()));

  // --- failure drill ------------------------------------------------------------
  std::printf("6) server-site crash: in-memory site lists are lost\n");
  Report("alice@A", proxy_a.Fetch("alice", "/index.html"));  // re-register
  server.CrashTables();
  server.TouchDocument("/index.html");  // changes while tables are gone
  Settle();
  std::printf("  a modification during the outage pushed nothing "
              "(A still holds %zu entries)\n", proxy_a.cached_entries());

  std::printf("7) recovery: INVSRV to every site the disk registry "
              "remembers\n");
  const std::size_t notices = server.Recover();
  Settle();
  std::printf("  %zu recovery notices sent; cached copies are now "
              "questionable and revalidate before use:\n", notices);
  Report("alice@A", proxy_a.Fetch("alice", "/index.html"));

  proxy_a.Stop();
  proxy_b.Stop();
  server.Stop();
  std::printf("\ndone: strong consistency maintained across normal "
              "operation and a full crash/recovery cycle.\n");
  return 0;
}
