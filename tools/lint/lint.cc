// webcc_lint driver: tokenizes and parses every input file, merges the
// whole-program facts (annotations, acquired-before edges), then runs the
// per-file passes and the global cycle check. See lint.h for the rule
// catalogue and passes/ for the analyses themselves.
#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "passes/passes.h"
#include "scopes.h"
#include "tokenizer.h"

namespace webcc::lint {
namespace {

std::string Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// --- suppression pragmas ------------------------------------------------------
//
// Pragmas live in comments, which the tokenizer keeps as tokens — so this
// parses comment tokens, not raw lines, and a pragma spelled inside a
// string literal is (correctly) inert.

void ParsePragmaComment(const std::string& path, const Token& comment,
                        Reporter& reporter) {
  const std::string& text = comment.text;
  std::size_t pos = 0;
  while ((pos = text.find("webcc-lint:", pos)) != std::string::npos) {
    // Line of this occurrence (block comments can span lines).
    int line = comment.line;
    for (std::size_t i = 0; i < pos; ++i) {
      if (text[i] == '\n') ++line;
    }
    pos += std::string_view("webcc-lint:").size();
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    bool file_wide = false;
    if (text.compare(pos, 10, "allow-file") == 0) {
      file_wide = true;
      pos += 10;
    } else if (text.compare(pos, 5, "allow") == 0) {
      pos += 5;
    } else {
      continue;
    }
    if (pos >= text.size() || text[pos] != '(') continue;
    const std::size_t close = text.find(')', pos);
    if (close == std::string::npos) continue;
    std::istringstream rules(text.substr(pos + 1, close - pos - 1));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule = Trim(rule);
      // Rule ids are [a-z-]; anything else (like the `allow(<rule>)`
      // spelling in documentation) is not a pragma.
      const bool valid =
          !rule.empty() &&
          std::all_of(rule.begin(), rule.end(), [](char c) {
            return (c >= 'a' && c <= 'z') || c == '-';
          });
      if (!valid) continue;
      if (file_wide) {
        reporter.AddFileAllow(path, line, rule);
      } else {
        reporter.AddLineAllow(path, line, rule);
      }
    }
    pos = close;
  }
}

// --- the pipeline ---------------------------------------------------------------

FileContext BuildFileContext(std::string_view path, std::string_view text) {
  FileContext ctx;
  ctx.path = std::string(path);
  ctx.model = BuildScopeModel(Tokenize(text));
  ctx.unordered_names = CollectUnorderedNames(ctx.model);
  return ctx;
}

std::vector<Finding> LintContexts(std::vector<FileContext> files) {
  std::vector<Finding> findings;
  Reporter reporter(&findings);

  // Phase 0: suppressions, so every pass reports through them.
  for (const FileContext& file : files) {
    for (const Token& t : file.model.tokens) {
      if (t.kind == TokKind::kComment) {
        ParsePragmaComment(file.path, t, reporter);
      }
    }
  }

  // Phase 1: whole-program facts. A field annotated in a header is checked
  // in the .cc; a lock acquired in one TU orders against a lock acquired
  // in another.
  ProgramFacts facts;
  LockOrderGraph graph;
  for (const FileContext& file : files) {
    CollectProgramFacts(file, &facts);
    CollectLockOrder(file, &graph);
  }

  // Phase 2: per-file passes, then the global ones.
  for (const FileContext& file : files) {
    RunLegacyRules(file, reporter);
    RunLockDiscipline(file, facts, reporter);
    RunDeterminismTaint(file, reporter);
  }
  RunLockOrderCycles(graph, reporter);
  reporter.FlagStaleSuppressions();

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

// --- JSON ------------------------------------------------------------------------

void AppendJsonEscaped(std::string* out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += "\\u00";
          *out += kHex[(c >> 4) & 0xf];
          *out += kHex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

}  // namespace

// --- the reporter ------------------------------------------------------------------

void Reporter::AddLineAllow(const std::string& file, int line,
                            const std::string& rule) {
  pragmas_[file][line].push_back({rule, /*used=*/false, /*file_wide=*/false});
}

void Reporter::AddFileAllow(const std::string& file, int line,
                            const std::string& rule) {
  pragmas_[file][line].push_back({rule, /*used=*/false, /*file_wide=*/true});
}

bool Reporter::Suppress(const Finding& finding) {
  const auto fit = pragmas_.find(finding.file);
  if (fit == pragmas_.end()) return false;
  // File-wide allows first, then the finding's line or the line above.
  for (auto& [line, pragmas] : fit->second) {
    for (Pragma& p : pragmas) {
      if (p.file_wide && p.rule == finding.rule) {
        p.used = true;
        return true;
      }
    }
  }
  for (const int line : {finding.line, finding.line - 1}) {
    const auto lit = fit->second.find(line);
    if (lit == fit->second.end()) continue;
    for (Pragma& p : lit->second) {
      if (!p.file_wide && p.rule == finding.rule) {
        p.used = true;
        return true;
      }
    }
  }
  return false;
}

void Reporter::Report(Finding finding) {
  if (Suppress(finding)) return;
  std::string key = finding.file;
  key += '\0';
  key += std::to_string(finding.line);
  key += '\0';
  key += finding.rule;
  if (!seen_.insert(std::move(key)).second) return;  // duplicate
  findings_->push_back(std::move(finding));
}

void Reporter::FlagStaleSuppressions() {
  for (auto& [file, lines] : pragmas_) {
    for (auto& [line, pragmas] : lines) {
      for (const Pragma& p : pragmas) {
        if (p.used) continue;
        // A pragma for a rule that cannot fire here (path-exempt file) is
        // documentation, not staleness — thread_annotations.h keeps its
        // allow(raw-mutex) markers even though the rule skips the file.
        if (!RuleAppliesToPath(p.rule, file)) continue;
        Finding f;
        f.file = file;
        f.line = line;
        f.rule = "stale-suppression";
        f.pass = "suppressions";
        f.severity = "warning";
        f.message = std::string("suppression 'webcc-lint: ") +
                    (p.file_wide ? "allow-file(" : "allow(") + p.rule +
                    ")' never fires; remove it or fix the rule id";
        Report(std::move(f));  // itself suppressible and deduplicated
      }
    }
  }
}

// --- public API ---------------------------------------------------------------------

std::vector<std::string_view> RuleIds() {
  return {"determinism-clock",
          "unordered-iter-in-dump",
          "raw-mutex",
          "enum-switch-default",
          "naked-send",
          "scan-prune",
          "naked-evict",
          "guarded-by-unlocked",
          "lock-order-cycle",
          "determinism-taint",
          "stale-suppression"};
}

std::vector<Finding> LintFile(std::string_view path, std::string_view text) {
  std::vector<FileContext> files;
  files.push_back(BuildFileContext(path, text));
  return LintContexts(std::move(files));
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               std::vector<std::string>& errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h") names.push_back(it->path().string());
      }
      if (ec) errors.push_back(path + ": " + ec.message());
    } else if (fs::is_regular_file(path, ec)) {
      names.push_back(path);
    } else {
      errors.push_back(path + ": not a file or directory");
    }
  }
  std::sort(names.begin(), names.end());  // deterministic report order

  std::vector<FileContext> files;
  for (const std::string& name : names) {
    std::ifstream in(name, std::ios::binary);
    if (!in) {
      errors.push_back(name + ": cannot open");
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    files.push_back(BuildFileContext(name, text.str()));
  }
  return LintContexts(std::move(files));
}

void WriteFindings(std::ostream& out, const std::vector<Finding>& findings,
                   bool json) {
  for (const Finding& f : findings) {
    if (json) {
      std::string line = "{\"file\":" + JsonString(f.file) +
                         ",\"line\":" + std::to_string(f.line) +
                         ",\"rule\":" + JsonString(f.rule) +
                         ",\"severity\":" + JsonString(f.severity) +
                         ",\"pass\":" + JsonString(f.pass) +
                         ",\"message\":" + JsonString(f.message);
      if (!f.witness.empty()) {
        line += ",\"witness\":[";
        for (std::size_t i = 0; i < f.witness.size(); ++i) {
          const WitnessStep& w = f.witness[i];
          if (i > 0) line += ',';
          line += "{\"file\":" + JsonString(w.file) +
                  ",\"line\":" + std::to_string(w.line) +
                  ",\"note\":" + JsonString(w.note) + "}";
        }
        line += ']';
      }
      line += "}";
      out << line << "\n";
    } else {
      out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
      for (const WitnessStep& w : f.witness) {
        out << "    " << w.file << ":" << w.line << ": " << w.note << "\n";
      }
    }
  }
}

int RunLintMain(const std::vector<std::string>& argv, std::ostream& out,
                std::ostream& err) {
  bool json = false;
  bool strict_suppressions = false;
  std::vector<std::string> paths;
  for (const std::string& arg : argv) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict-suppressions") {
      strict_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      out << "usage: webcc_lint [--json] [--strict-suppressions] "
             "<file-or-dir>...\n"
             "rules:";
      for (const std::string_view rule : RuleIds()) out << ' ' << rule;
      out << "\nexit: 0 clean, 1 findings, 2 errors\n"
             "warnings (stale-suppression) exit 0 unless "
             "--strict-suppressions\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "webcc_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "webcc_lint: no paths given (try: webcc_lint src)\n";
    return 2;
  }
  std::vector<std::string> errors;
  const std::vector<Finding> findings = LintPaths(paths, errors);
  WriteFindings(out, findings, json);
  for (const std::string& error : errors) {
    err << "webcc_lint: " << error << "\n";
  }
  if (!errors.empty()) return 2;
  std::size_t error_count = 0, warning_count = 0;
  for (const Finding& f : findings) {
    (f.severity == "warning" ? warning_count : error_count) += 1;
  }
  if (error_count != 0 || (strict_suppressions && warning_count != 0)) {
    err << "webcc_lint: " << error_count << " finding(s), " << warning_count
        << " warning(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace webcc::lint
