// Replay configuration: everything Section 5.1's methodology parameterizes.
//
// The replay reproduces the paper's testbed: one pseudo-server (origin +
// accelerator + modifier) and a handful of pseudo-clients, each running a
// proxy cache and replaying its share of the trace's real clients (clientid
// mod num_pseudo_clients). A time coordinator advances simulated trace time
// in lock-step intervals; within an interval each pseudo-client issues its
// requests back-to-back, waiting for each reply (closed loop), exactly like
// the paper's replay programs. Wall (performance) time is therefore
// compressed relative to trace time; protocol decisions — TTLs, leases,
// mtime comparisons — run on trace time, while latency and utilization are
// measured in wall time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/piggyback.h"
#include "core/policy.h"
#include "fault/plan.h"
#include "http/origin.h"
#include "http/proxy_cache.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/network.h"
#include "synth/scenario.h"
#include "trace/modifier.h"
#include "trace/record.h"
#include "util/time.h"

namespace webcc::replay {

// Costs at the pseudo-client: replay-program overhead per request (trace
// parsing, socket setup — this dominates the paper's replay pacing) and the
// proxy's local serve/forward times.
struct ClientCosts {
  Time think_time = 1 * kSecond;
  Time proxy_hit_time = 1 * kMillisecond;
  Time proxy_forward_overhead = 1 * kMillisecond;
  // A request with no reply times out and the closed loop moves on. The
  // default is deliberately long: the paper's replay programs wait
  // indefinitely, and a request stalled behind a serialized invalidation
  // fan-out must complete so its (large) latency is measured. Failure
  // experiments lower this to ride out dead servers.
  Time request_timeout = 10 * kMinute;
};

// Failure injection, keyed by trace time; each event fires at the start of
// the first lock-step interval covering it.
enum class FailureKind {
  kProxyCrash,    // target = pseudo-client index; cache survives on disk
  kProxyRecover,  // proxy marks all entries questionable
  kServerCrash,   // accelerator loses its in-memory tables
  kServerRecover, // server sends INVSRV to every site ever seen
  kPartition,     // target pseudo-client <-> server link cut
  kHeal,
};

struct FailureEvent {
  Time trace_time = 0;
  FailureKind kind = FailureKind::kProxyCrash;
  int target = 0;  // pseudo-client index; ignored for server events
};

struct ReplayConfig {
  core::Protocol protocol = core::Protocol::kInvalidation;

  // The trace to replay (non-owning; must outlive the run).
  const trace::Trace* trace = nullptr;

  // Synthetic input: when `trace` is null and this is set, RunReplay
  // generates the workload in-process from the scenario (non-owning; must
  // outlive the run). The scenario's write stream becomes the modification
  // schedule. Because generation is a pure function of the scenario, farm
  // workers handed the same scenario regenerate bit-identical workloads
  // independently — no shared trace needs to cross thread boundaries.
  const synth::ScenarioConfig* scenario = nullptr;

  // Modifier process: mean file lifetime (Tables 3/4 sample 2.5-50 days).
  Time mean_lifetime = 50 * kDay;
  std::uint64_t modifier_seed = 42;
  // When non-empty, replaces the generated modifier schedule.
  std::vector<trace::ModEvent> explicit_modifications;
  // When true, an empty `explicit_modifications` means *no* writes instead
  // of "derive a modifier schedule from mean_lifetime". The scenario path
  // sets this so a read-only scenario stays read-only.
  bool suppress_generated_modifications = false;

  std::uint32_t num_pseudo_clients = 4;

  // Proxy cache capacity (unscaled bytes) and eviction policy; Harvest's
  // expired-first policy is the paper's default. `proxy_tier` optionally
  // adds a large/cold second tier (disabled by default — the paper's
  // proxies are single-tier).
  std::uint64_t proxy_cache_bytes = 128ull * 1024 * 1024;
  http::eviction::EvictionPolicyKind eviction_policy =
      http::eviction::EvictionPolicyKind::kExpiredFirstLru;
  http::TierConfig proxy_tier;

  // The paper replays with *separate* per-client caches (keys namespaced
  // url@client) because real client sites do not share caches. Setting this
  // true instead shares each pseudo-client's cache across its real clients
  // — the Section 7 firewall-proxy deployment, where the server tracks and
  // invalidates whole proxies rather than individual clients.
  bool shared_proxy_cache = false;

  // Hierarchical caching (the Worrell [14] configuration the paper
  // contrasts itself against): a parent proxy sits between the leaf
  // proxies and the server. Leaf misses go to the parent, which serves
  // them from its shared cache when it can; the server only ever tracks
  // and invalidates the parent, which forwards invalidations to the leaf
  // proxies that fetched the document. Only meaningful with
  // Protocol::kInvalidation.
  bool hierarchical = false;

  // Documents are stored scaled down by this factor (the paper uses 100);
  // transfer delays use scaled sizes, byte accounting scales back up.
  double size_scale = 100.0;

  sim::NetworkConfig network = sim::NetworkConfig::Lan();
  http::ServerCosts server_costs;
  ClientCosts client_costs;

  core::AdaptiveTtlConfig ttl;
  core::LeaseConfig lease;
  core::PiggybackConfig piggyback;

  // The paper's prototype sends all invalidations for a modification before
  // accepting new requests (shared FIFO CPU); false models the suggested
  // fix of a decoupled sender.
  bool serialized_invalidation = true;

  // Section 5.2's other suggested fix: "or use multicast schemes". With
  // multicast the server pays one send (CPU and bytes) per modification
  // regardless of list length; deliveries still reach each site
  // individually and all consistency bookkeeping is unchanged.
  bool multicast_invalidation = false;

  // Accelerator shards: the invalidation table (and its write-ahead
  // journal) is split across this many shards by consistent-hashed URL,
  // and decoupled mode runs one dedicated sender per shard. 1 reproduces
  // the paper's single accelerator. Protocol decisions and (in serialized
  // mode) all replay metrics except sitelist_storage_bytes are invariant
  // in this knob — tests/test_shard.cc proves it.
  std::uint32_t accelerator_shards = 1;

  // Batched fan-out: when > 0 (and invalidation sending is decoupled and
  // unicast), invalidations wait in a per-shard outbox for this long so a
  // drain can pack everything destined for one site into a single INVB
  // frame, coalescing duplicate (site, url) pairs across writes. 0 sends
  // each invalidation in its own frame (the pre-batching behavior).
  // Ignored under serialized/multicast/hierarchical configurations.
  Time invalidation_batch_window = 0;

  Time lockstep_interval = 5 * kMinute;

  std::vector<FailureEvent> failures;

  // --- fault injection (src/fault/) ----------------------------------------
  // A declarative fault plan (non-owning; must outlive the run). Crash and
  // partition events are expanded onto `failures`; link-fault windows drive
  // a seeded FaultClock installed on the sim network, so the whole scenario
  // replays bit-identically for a given (plan, fault_seed).
  const fault::FaultPlan* fault_plan = nullptr;
  std::uint64_t fault_seed = 0;

  // Server-recovery flavour. true: the accelerator journals registrations
  // and invalidations write-ahead and a restart rebuilds its site lists from
  // the journal, sending *targeted* invalidations only for documents that
  // changed during the downtime. false: the paper's blanket INVSRV
  // broadcast to every site ever seen. Only takes effect when a server
  // crash is actually scheduled (journaling is off otherwise).
  bool journaled_recovery = true;

  // Seeds initial document ages (exponential with mean_lifetime, predating
  // the trace) so adaptive TTL sees a realistic age distribution at t=0.
  std::uint64_t seed = 7;

  // When >= 0, every document starts exactly this old instead of sampling
  // from the exponential (used by tests that need the TTL trajectory to be
  // predictable).
  Time fixed_initial_age = -1;

  // --- observability (webcc::obs) -----------------------------------------
  // Structured trace sink, threaded through the engine, caches, accelerator
  // and network. Non-owning; nullptr (the default) disables tracing with one
  // untaken branch per event site. Protocol decisions never read the sink,
  // so enabling tracing cannot change a simulation.
  obs::TraceSink* trace_sink = nullptr;

  // When set, Engine::Run() snapshots the full metric superset (ReplayMetrics
  // plus component-level counters) into this registry at end of run.
  // Non-owning; use one registry per run (the farm runs configs
  // concurrently).
  obs::MetricsRegistry* metrics = nullptr;
};

}  // namespace webcc::replay
