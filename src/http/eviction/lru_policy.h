// Plain LRU and the paper's expired-first variant (Harvest's rule: prefer
// evicting entries whose TTL has already lapsed, in expiry order, before
// touching the recency order). Both are stateless over the host: recency
// comes from the cache's LRU list and expiry candidates from its TTL heap,
// which is what makes the extraction byte-identical to the pre-kernel
// inlined EvictOne.
#pragma once

#include "http/eviction/expiry_heap.h"
#include "http/eviction/policy.h"

namespace webcc::http::eviction {

class LruPolicy : public EvictionPolicy {
 public:
  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kLru;
  }
  void OnInsert(const EntryView&) override {}
  void OnHit(const EntryView&) override {}
  void OnErase(const EntryView&) override {}

  Victim PickVictim(Time /*now*/, EvictionHost& host) override {
    ++stats_.picks;
    return Victim{host.LruTailKey(), /*expired_rule=*/false};
  }
};

class ExpiredFirstLruPolicy : public EvictionPolicy {
 public:
  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kExpiredFirstLru;
  }
  void OnInsert(const EntryView&) override {}
  void OnHit(const EntryView&) override {}
  void OnErase(const EntryView&) override {}

  Victim PickVictim(Time now, EvictionHost& host) override {
    ExpiryHeap& heap = host.TtlHeap();
    while (!heap.empty()) {
      const ExpiryRecord top = heap.Top();
      if (!host.TtlRecordLive(top.key, top.stamp)) {
        heap.PopStale();  // superseded by SetTtlExpiry or a removed entry
        continue;
      }
      if (top.expires > now) break;  // earliest expiry still fresh
      // Expired but living in tier 2: not ours to evict (tier-2 cleanup
      // reclaims it); fall back to LRU like the still-fresh case.
      if (!host.InEvictableTier(top.key)) break;
      host.NoteTtlRecordConsumed(top.key);
      heap.PopLive();
      ++stats_.picks;
      ++stats_.expired_picks;
      return Victim{top.key, /*expired_rule=*/true};
    }
    ++stats_.picks;
    return Victim{host.LruTailKey(), /*expired_rule=*/false};
  }
};

}  // namespace webcc::http::eviction
