// Versioned document store: the origin server's "file system".
//
// Each document carries a last-modified time and a monotone version number.
// The version is the replay harness's ground truth for staleness accounting
// (the paper could only estimate stale hits; we count them exactly), while
// last-modified is what the protocol itself sees, as in real HTTP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/time.h"

namespace webcc::http {

struct Document {
  std::string path;
  std::uint64_t size_bytes = 0;
  Time last_modified = 0;
  std::uint64_t version = 1;
};

class DocumentStore {
 public:
  // Adds a document; `last_modified` may be negative (the file predates the
  // trace). Returns false if the path already exists.
  bool Add(std::string path, std::uint64_t size_bytes, Time last_modified);

  // nullptr when absent.
  const Document* Find(std::string_view path) const;

  // Simulates a write: bumps the version and sets last_modified. This is the
  // registration point at which a polling-every-time write is complete.
  // Returns false if the path is unknown.
  bool Touch(std::string_view path, Time now);

  std::size_t size() const { return documents_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

  void ForEach(const std::function<void(const Document&)>& fn) const;

 private:
  // Deque keeps Document addresses stable across Add (protocol handlers
  // hold Find() results across cost-station callbacks).
  std::unordered_map<std::string, std::size_t> index_;
  std::deque<Document> documents_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace webcc::http
