// Deterministic pseudo-random number generation.
//
// Every stochastic component in webcc (trace synthesis, modifier schedules,
// failure injection) draws from an explicitly seeded Rng so that a replay is
// reproducible byte-for-byte from its seed. The generator is xoshiro256**,
// which is fast, has a 256-bit state and passes BigCrush; we avoid
// std::mt19937_64 mainly for its bulky state and avoid std::*_distribution
// because their outputs are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace webcc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors, so that
    // nearby seeds give uncorrelated streams.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform in [0, 2^64).
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). `bound` must be positive. Uses Lemire's unbiased
  // multiply-shift rejection method.
  std::uint64_t NextBelow(std::uint64_t bound) {
    WEBCC_DCHECK(bound > 0);
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    WEBCC_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBelow(span));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

  // Derives an independent child stream; used to give each component of a
  // replay its own generator so adding draws in one component does not
  // perturb another.
  Rng Fork() { return Rng(NextU64()); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace webcc::util
