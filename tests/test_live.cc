// End-to-end tests for the live (real-TCP, loopback) prototype.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "live/live_proxy.h"
#include "live/live_server.h"
#include "live/socket.h"
#include "net/wire.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"

namespace webcc::live {
namespace {

using namespace std::chrono_literals;

// The server pushes invalidations asynchronously; poll briefly for them.
template <typename Predicate>
bool WaitFor(Predicate predicate, std::chrono::milliseconds budget = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return predicate();
}

// --- client id helpers ------------------------------------------------------------

TEST(ClientId, MakeAndParse) {
  const std::string id = MakeClientId("alice", 4321);
  EXPECT_EQ(id, "alice@4321");
  const auto port = ParseClientPort(id);
  ASSERT_TRUE(port.has_value());
  EXPECT_EQ(*port, 4321);
}

TEST(ClientId, ParseRejectsMissingOrBadPort) {
  EXPECT_FALSE(ParseClientPort("alice").has_value());
  EXPECT_FALSE(ParseClientPort("alice@").has_value());
  EXPECT_FALSE(ParseClientPort("alice@notaport").has_value());
  EXPECT_FALSE(ParseClientPort("alice@99999999").has_value());
}

// --- raw sockets -------------------------------------------------------------------

TEST(Socket, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  EXPECT_GT(listener.port(), 0);
  listener.Shutdown();
}

TEST(Socket, ConnectToClosedPortFails) {
  // Bind + immediately close to find a (very likely) dead port.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.Shutdown();
  }
  EXPECT_FALSE(Connect(dead_port).valid());
}

TEST(Socket, EchoRoundTrip) {
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  std::thread echo([&listener] {
    TcpStream stream = listener.Accept();
    if (!stream.valid()) return;
    const auto line = stream.ReadLine();
    if (line.has_value()) stream.WriteAll("echo:" + *line);
  });
  const auto reply = Exchange(listener.port(), "hello\n");
  echo.join();
  listener.Shutdown();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "echo:hello\n");
}

TEST(Socket, IoErrorNames) {
  EXPECT_EQ(IoErrorName(IoError::kNone), "none");
  EXPECT_EQ(IoErrorName(IoError::kPeerReset), "peer_reset");
  EXPECT_EQ(IoErrorName(IoError::kTimeout), "timeout");
  EXPECT_EQ(IoErrorName(IoError::kOther), "other");
}

TEST(Socket, WriteAllCompletesLargeFrameAcrossShortWrites) {
  // A frame much larger than the socket buffers forces send() to accept it
  // in pieces; WriteAll must deliver every byte of the frame anyway.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  std::size_t received = 0;
  std::thread reader([&listener, &received] {
    TcpStream stream = listener.Accept();
    if (!stream.valid()) return;
    const auto line = stream.ReadLine();  // one 16 MB "line"
    if (line.has_value()) received = line->size();
  });
  TcpStream writer = Connect(listener.port());
  ASSERT_TRUE(writer.valid());
  std::string frame(16u << 20, 'x');
  frame.back() = '\n';
  EXPECT_TRUE(writer.WriteAll(frame));
  EXPECT_EQ(writer.last_error(), IoError::kNone);
  reader.join();
  listener.Shutdown();
  EXPECT_EQ(received, frame.size());
}

TEST(Socket, WriteTimeoutSurfacesAsTimeout) {
  // The peer accepts but never drains: once both socket buffers fill, the
  // configured SO_SNDTIMEO expires and WriteAll reports a timeout instead
  // of blocking the handler thread forever.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  TcpStream writer = Connect(listener.port());
  ASSERT_TRUE(writer.valid());
  TcpStream idle = listener.Accept();
  ASSERT_TRUE(idle.valid());
  writer.SetWriteTimeout(100);
  const std::string frame(64u << 20, 'x');
  EXPECT_FALSE(writer.WriteAll(frame));
  EXPECT_EQ(writer.last_error(), IoError::kTimeout);
  listener.Shutdown();
}

TEST(Socket, PeerResetSurfacesAsPeerReset) {
  // The peer closes without reading; continuing to write must surface the
  // reset (EPIPE/ECONNRESET) rather than a generic failure, so callers can
  // tell a vanished proxy from a stalled one.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  TcpStream writer = Connect(listener.port());
  ASSERT_TRUE(writer.valid());
  {
    TcpStream victim = listener.Accept();  // accepted, then dropped
  }
  std::string frame(64u << 10, 'x');
  frame.back() = '\n';
  bool ok = true;
  // The first write may land in the kernel buffer before the RST arrives;
  // keep writing until the failure shows.
  for (int i = 0; i < 1000 && ok; ++i) ok = writer.WriteAll(frame);
  EXPECT_FALSE(ok);
  EXPECT_EQ(writer.last_error(), IoError::kPeerReset);
  listener.Shutdown();
}

TEST(Socket, ReadTimeoutKeepsPartialFrameAndResumes) {
  // A stalling peer sends half a line and goes quiet: the read times out
  // (kTimeout, no line) but the prefix stays buffered, so when the peer
  // wakes up the next ReadLine completes the original frame intact.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  TcpStream writer = Connect(listener.port());
  ASSERT_TRUE(writer.valid());
  TcpStream reader = listener.Accept();
  ASSERT_TRUE(reader.valid());
  reader.SetReadTimeout(100);

  ASSERT_TRUE(writer.WriteAll("INVALIDATE /inde"));  // stalls mid-frame
  EXPECT_FALSE(reader.ReadLine().has_value());
  EXPECT_EQ(reader.last_error(), IoError::kTimeout);

  ASSERT_TRUE(writer.WriteAll("x.html\n"));  // peer resumes
  const auto line = reader.ReadLine();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "INVALIDATE /index.html\n");
  EXPECT_EQ(reader.last_error(), IoError::kNone);
  listener.Shutdown();
}

TEST(Socket, ReadTimeoutNeverSurfacesPartialFrameAtEof) {
  // Orderly EOF after a resumed stall: the unterminated trailing line is
  // delivered exactly once, with kNone — never as a timeout's side effect.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  {
    TcpStream writer = Connect(listener.port());
    ASSERT_TRUE(writer.valid());
    TcpStream reader = listener.Accept();
    ASSERT_TRUE(reader.valid());
    reader.SetReadTimeout(100);
    ASSERT_TRUE(writer.WriteAll("tail-without-newline"));
    EXPECT_FALSE(reader.ReadLine().has_value());  // stall: buffered, no line
    EXPECT_EQ(reader.last_error(), IoError::kTimeout);
    writer = TcpStream(Fd());  // orderly close
    const auto line = reader.ReadLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "tail-without-newline");
    EXPECT_EQ(reader.last_error(), IoError::kNone);
  }
  listener.Shutdown();
}

TEST(Socket, ReadFromResetPeerClassifiesAsPeerReset) {
  // The peer closes with data we sent still unread, which makes TCP emit a
  // reset instead of a FIN; the read must classify it, not invent a line.
  TcpListener listener(0);
  ASSERT_TRUE(listener.valid());
  TcpStream reader = Connect(listener.port());
  ASSERT_TRUE(reader.valid());
  ASSERT_TRUE(reader.WriteAll("unread\n"));
  {
    TcpStream victim = listener.Accept();  // closes without reading -> RST
    ASSERT_TRUE(victim.valid());
  }
  // The RST may take a moment to arrive; a retry loop keeps this robust.
  IoError error = IoError::kNone;
  for (int i = 0; i < 100; ++i) {
    if (reader.ReadLine().has_value()) continue;
    error = reader.last_error();
    if (error == IoError::kPeerReset) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(error, IoError::kPeerReset);
  listener.Shutdown();
}

TEST(Socket, SendOneWayClassifiedRefusedReadsAsPeerReset) {
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    ASSERT_TRUE(listener.valid());
    dead_port = listener.port();
  }  // destroyed: nothing listens there now
  EXPECT_EQ(SendOneWayClassified(dead_port, "INVALIDATE /x\n", 100),
            IoError::kPeerReset);
}

TEST(LivePush, RefusedPushIsCountedAndNeverRetried) {
  // A proxy that died takes its callback port with it: the INVALIDATE push
  // is refused, counted as such, and not retried — the proxy's restart path
  // (mark-all-questionable) covers consistency, so retrying buys nothing.
  obs::BufferTraceSink sink;
  LiveServer::Options options;
  options.protocol = core::Protocol::kInvalidation;
  options.push_retries = 3;
  options.push_retry_backoff_ms = 1;
  options.trace_sink = &sink;
  LiveServer server(options);
  ASSERT_TRUE(server.Start());
  server.AddDocument("/index.html", 4096);

  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    ASSERT_TRUE(listener.valid());
    dead_port = listener.port();
  }
  net::Request request;
  request.type = net::MessageType::kGet;
  request.url = "/index.html";
  request.client_id = MakeClientId("ghost", dead_port);
  ASSERT_TRUE(Exchange(server.port(), net::EncodeLine(request)).has_value());

  EXPECT_EQ(server.TouchDocument("/index.html"), 0u);
  EXPECT_EQ(server.pushes_refused(), 1u);
  EXPECT_EQ(server.pushes_timed_out(), 0u);
  EXPECT_EQ(server.push_retries(), 0u);  // refused != stalled: no retry
  EXPECT_EQ(server.invalidations_pushed(), 0u);
  // The give-up is traced as a refusal, distinct from a timeout.
  EXPECT_NE(sink.Text().find("invalidate_refused"), std::string::npos);
  server.Stop();
}

// --- server + proxy fixtures ----------------------------------------------------------

class LiveFixture : public ::testing::Test {
 protected:
  void StartAll(core::Protocol protocol, core::LeaseConfig lease = {},
                core::AdaptiveTtlConfig ttl = {}) {
    LiveServer::Options server_options;
    server_options.protocol = protocol;
    server_options.lease = lease;
    server_ = std::make_unique<LiveServer>(server_options);
    ASSERT_TRUE(server_->Start());
    server_->AddDocument("/index.html", 4096);
    server_->AddDocument("/data.bin", 1 << 20);

    LiveProxy::Options proxy_options;
    proxy_options.server_port = server_->port();
    proxy_options.protocol = protocol;
    proxy_options.ttl = ttl;
    proxy_ = std::make_unique<LiveProxy>(proxy_options);
    ASSERT_TRUE(proxy_->Start());
  }

  void TearDown() override {
    if (proxy_) proxy_->Stop();
    if (server_) server_->Stop();
  }

  std::unique_ptr<LiveServer> server_;
  std::unique_ptr<LiveProxy> proxy_;
};

TEST_F(LiveFixture, ColdFetchThenLocalHit) {
  StartAll(core::Protocol::kInvalidation);
  const auto first = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(first.ok);
  EXPECT_FALSE(first.local_hit);
  EXPECT_EQ(first.size_bytes, 4096u);
  EXPECT_EQ(first.version, 1u);

  const auto second = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(second.ok);
  EXPECT_TRUE(second.local_hit);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(LiveFixture, PerClientNamespacing) {
  StartAll(core::Protocol::kInvalidation);
  proxy_->Fetch("alice", "/index.html");
  const auto bob = proxy_->Fetch("bob", "/index.html");
  EXPECT_FALSE(bob.local_hit);  // bob's namespace is separate
  EXPECT_EQ(server_->requests_served(), 2u);
  EXPECT_EQ(proxy_->cached_entries(), 2u);
}

TEST_F(LiveFixture, UnknownUrlFails) {
  StartAll(core::Protocol::kInvalidation);
  EXPECT_FALSE(proxy_->Fetch("alice", "/missing").ok);
}

TEST_F(LiveFixture, TouchPushesInvalidationAndNextFetchRefetches) {
  StartAll(core::Protocol::kInvalidation);
  proxy_->Fetch("alice", "/index.html");
  ASSERT_EQ(proxy_->cached_entries(), 1u);

  EXPECT_EQ(server_->TouchDocument("/index.html"), 1u);
  ASSERT_TRUE(WaitFor([&] { return proxy_->invalidations_received() == 1; }));
  EXPECT_EQ(proxy_->cached_entries(), 0u);  // copy deleted, space freed

  const auto refetch = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(refetch.ok);
  EXPECT_FALSE(refetch.local_hit);
  EXPECT_EQ(refetch.version, 2u);
}

TEST_F(LiveFixture, SiteForgottenAfterInvalidation) {
  StartAll(core::Protocol::kInvalidation);
  proxy_->Fetch("alice", "/index.html");
  server_->TouchDocument("/index.html");
  ASSERT_TRUE(WaitFor([&] { return proxy_->invalidations_received() == 1; }));
  // alice never re-requested: the second touch pushes nothing.
  EXPECT_EQ(server_->TouchDocument("/index.html"), 0u);
}

TEST_F(LiveFixture, PollingValidatesEveryFetch) {
  StartAll(core::Protocol::kPollEveryTime);
  proxy_->Fetch("alice", "/index.html");
  const auto second = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(second.ok);
  EXPECT_FALSE(second.local_hit);
  EXPECT_TRUE(second.validated);  // 304, not a transfer
  EXPECT_EQ(server_->requests_served(), 2u);
}

TEST_F(LiveFixture, PollingSeesNewVersionImmediately) {
  StartAll(core::Protocol::kPollEveryTime);
  proxy_->Fetch("alice", "/index.html");
  server_->TouchDocument("/index.html");
  const auto after = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(after.ok);
  EXPECT_FALSE(after.validated);  // changed: full 200
  EXPECT_EQ(after.version, 2u);
}

TEST_F(LiveFixture, AdaptiveTtlServesLocallyWithinTtl) {
  StartAll(core::Protocol::kAdaptiveTtl);
  // Document created at server start: age is tiny, TTL = min_ttl (1 min),
  // so an immediate re-fetch is a local hit.
  proxy_->Fetch("alice", "/index.html");
  const auto second = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(second.local_hit);
  // ...even after a modification: the weak protocol serves stale.
  server_->TouchDocument("/index.html");
  const auto stale = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(stale.local_hit);
  EXPECT_EQ(stale.version, 1u);  // stale!
}

TEST_F(LiveFixture, ServerCrashRecoveryMarksQuestionable) {
  StartAll(core::Protocol::kInvalidation);
  proxy_->Fetch("alice", "/index.html");
  server_->CrashTables();
  // A modification during the outage window goes unnoticed...
  server_->TouchDocument("/index.html");
  EXPECT_EQ(proxy_->invalidations_received(), 0u);
  // ...until recovery broadcasts a server-address invalidation.
  EXPECT_EQ(server_->Recover(), 1u);
  ASSERT_TRUE(
      WaitFor([&] { return proxy_->server_notices_received() == 1; }));
  // The questionable copy revalidates and picks up the new version.
  const auto after = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(after.ok);
  EXPECT_FALSE(after.local_hit);
  EXPECT_EQ(after.version, 2u);
}

TEST_F(LiveFixture, ProxyRecoveryRevalidatesEverything) {
  StartAll(core::Protocol::kInvalidation);
  proxy_->Fetch("alice", "/index.html");
  proxy_->SimulateRecovery();
  const auto after = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(after.ok);
  EXPECT_FALSE(after.local_hit);
  EXPECT_TRUE(after.validated);  // unchanged: 304 renewed it
  const auto then = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(then.local_hit);  // back to normal service
}

TEST_F(LiveFixture, TwoTierLeaseRegistersOnSecondRequest) {
  core::LeaseConfig lease;
  lease.mode = core::LeaseMode::kTwoTier;
  lease.duration = kHour;
  lease.short_duration = 0;
  StartAll(core::Protocol::kInvalidation, lease);

  proxy_->Fetch("alice", "/index.html");
  // One-time viewer: the zero lease means no invalidation on modification.
  EXPECT_EQ(server_->TouchDocument("/index.html"), 0u);

  // Second request: IMS (lease expired) earns the regular lease.
  const auto second = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(second.ok);
  EXPECT_FALSE(second.local_hit);
  // Now alice is registered: the next touch invalidates her.
  EXPECT_EQ(server_->TouchDocument("/index.html"), 1u);
}

TEST_F(LiveFixture, ManyClientsFanOut) {
  StartAll(core::Protocol::kInvalidation);
  for (int i = 0; i < 20; ++i) {
    proxy_->Fetch("client-" + std::to_string(i), "/data.bin");
  }
  EXPECT_EQ(server_->TouchDocument("/data.bin"), 20u);
  EXPECT_TRUE(WaitFor([&] { return proxy_->invalidations_received() == 20; }));
  EXPECT_EQ(proxy_->cached_entries(), 0u);
}

TEST_F(LiveFixture, ConcurrentFetchesAreSafe) {
  StartAll(core::Protocol::kInvalidation);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < 25; ++i) {
        const auto result =
            proxy_->Fetch("thread-" + std::to_string(t), "/index.html");
        if (!result.ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy_->cached_entries(), 8u);
}

TEST_F(LiveFixture, PcvPiggybackDropsInvalidCopies) {
  // Zero TTL: every cached entry is immediately a piggyback candidate.
  core::AdaptiveTtlConfig ttl;
  ttl.factor = 0.0;
  ttl.min_ttl = 0;
  StartAll(core::Protocol::kPiggybackValidation, {}, ttl);

  proxy_->Fetch("alice", "/index.html");
  server_->TouchDocument("/index.html");  // weak: no push happens
  EXPECT_EQ(proxy_->invalidations_received(), 0u);
  ASSERT_EQ(proxy_->cached_entries(), 1u);

  // The unrelated fetch piggybacks the expired /index.html entry; the
  // server's bulk validation finds it invalid and the proxy drops it.
  const auto other = proxy_->Fetch("alice", "/data.bin");
  EXPECT_TRUE(other.ok);
  EXPECT_EQ(proxy_->pcv_invalidated(), 1u);
  EXPECT_EQ(proxy_->cached_entries(), 1u);  // only /data.bin remains

  const auto refetch = proxy_->Fetch("alice", "/index.html");
  EXPECT_TRUE(refetch.ok);
  EXPECT_FALSE(refetch.local_hit);
  EXPECT_EQ(refetch.version, 2u);
}

TEST_F(LiveFixture, PcvPiggybackRearmsValidCopies) {
  core::AdaptiveTtlConfig ttl;
  ttl.factor = 0.0;
  ttl.min_ttl = 0;
  StartAll(core::Protocol::kPiggybackValidation, {}, ttl);

  proxy_->Fetch("alice", "/index.html");
  // Not modified: the piggybacked validation certifies the copy and re-arms
  // its TTL (still zero here, but the copy survives).
  proxy_->Fetch("alice", "/data.bin");
  EXPECT_EQ(proxy_->pcv_invalidated(), 0u);
  EXPECT_EQ(proxy_->cached_entries(), 2u);
}

TEST_F(LiveFixture, PsiPiggybackPurgesModifiedCopies) {
  StartAll(core::Protocol::kPiggybackInvalidation);

  proxy_->Fetch("alice", "/index.html");
  server_->TouchDocument("/index.html");  // weak: no push happens
  ASSERT_EQ(proxy_->cached_entries(), 1u);

  // The next server contact carries the change list; the stale copy is
  // purged proxy-wide even though the reply is for another document.
  const auto other = proxy_->Fetch("alice", "/data.bin");
  EXPECT_TRUE(other.ok);
  EXPECT_EQ(proxy_->psi_purged(), 1u);
  EXPECT_EQ(proxy_->cached_entries(), 1u);

  const auto refetch = proxy_->Fetch("alice", "/index.html");
  EXPECT_FALSE(refetch.local_hit);
  EXPECT_EQ(refetch.version, 2u);
}

TEST_F(LiveFixture, PsiCursorAdvancesPerContact) {
  StartAll(core::Protocol::kPiggybackInvalidation);
  proxy_->Fetch("alice", "/index.html");
  server_->TouchDocument("/index.html");
  proxy_->Fetch("alice", "/data.bin");  // consumes the notice
  EXPECT_EQ(proxy_->psi_purged(), 1u);
  // The cursor advanced: the same modification is not re-announced.
  proxy_->Fetch("alice", "/data.bin");
  EXPECT_EQ(proxy_->psi_purged(), 1u);
}

TEST(LiveTracing, EmitsServeAndInvalidationEvents) {
  // One sink shared by both ends (they are in-process here); handler
  // threads emit concurrently, which JsonlTraceSink's lock absorbs.
  obs::BufferTraceSink sink;
  LiveServer::Options server_options;
  server_options.trace_sink = &sink;
  LiveServer server(server_options);
  ASSERT_TRUE(server.Start());
  server.AddDocument("/a", 10);

  LiveProxy::Options proxy_options;
  proxy_options.server_port = server.port();
  proxy_options.protocol = core::Protocol::kInvalidation;
  proxy_options.trace_sink = &sink;
  LiveProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start());

  EXPECT_TRUE(proxy.Fetch("alice", "/a").ok);            // transfer
  EXPECT_TRUE(proxy.Fetch("alice", "/a").local_hit);     // local hit
  EXPECT_EQ(server.TouchDocument("/a"), 1u);
  ASSERT_TRUE(WaitFor([&] { return proxy.invalidations_received() == 1; }));
  proxy.Stop();
  server.Stop();

  std::istringstream stream(sink.Text());
  const obs::TraceSummary summary = obs::SummarizeTrace(stream);
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_EQ(summary.CountOf(obs::EventType::kRequestServed), 2u);
  EXPECT_EQ(summary.CountOf(obs::EventType::kNotify), 1u);
  EXPECT_EQ(summary.CountOf(obs::EventType::kInvalidateGenerated), 1u);
  EXPECT_EQ(summary.CountOf(obs::EventType::kInvalidateDelivered), 1u);
}

TEST(LiveServerStandalone, MalformedLineGetsError) {
  LiveServer server({});
  ASSERT_TRUE(server.Start());
  const auto reply = Exchange(server.port(), "GARBAGE\n");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ERR", 0), 0u);
  server.Stop();
}

TEST(LiveServerStandalone, NotifyLineAnswersCount) {
  LiveServer server({});
  ASSERT_TRUE(server.Start());
  server.AddDocument("/a", 10);
  const auto reply =
      Exchange(server.port(), net::EncodeLine(net::Notify{"/a"}));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("OK", 0), 0u);
  server.Stop();
}

}  // namespace
}  // namespace webcc::live
