// Unit and property tests for the million-site lease machinery (ROADMAP
// item 4): CompactSiteList, TimerWheel, and the rebuilt InvalidationTable's
// wheel-driven prune. The property test is the load-bearing one — it proves
// the wheel changes WHEN expiry work happens but never WHAT expires, by
// driving 10^5 seeded (grant, expiry) pairs through the real table and a
// reference model that scans every entry the way the old prune did.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/invalidation_table.h"
#include "core/lease.h"
#include "core/site_list.h"
#include "core/timer_wheel.h"
#include "obs/trace_sink.h"

namespace webcc::core {
namespace {

// Builds "prefix<n>" without the `const char* + string&&` operator, which
// GCC 12 flags with a spurious -Wrestrict when inlined.
std::string Name(std::string prefix, int n) {
  prefix += std::to_string(n);
  return prefix;
}

// --- compact site list ------------------------------------------------------

TEST(CompactSiteList, UpsertFindErase) {
  CompactSiteList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Find(7u), nullptr);

  auto [slot, inserted] = list.Upsert(7u, 100);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 100);
  EXPECT_EQ(list.size(), 1u);

  // Upsert of a present key finds the slot and leaves the value alone —
  // refresh semantics belong to the caller.
  auto [again, second] = list.Upsert(7u, 999);
  EXPECT_FALSE(second);
  EXPECT_EQ(*again, 100);
  *again = 250;
  EXPECT_EQ(*list.Find(7u), 250);

  EXPECT_TRUE(list.Erase(7u));
  EXPECT_FALSE(list.Erase(7u));
  EXPECT_EQ(list.Find(7u), nullptr);
  EXPECT_TRUE(list.empty());
}

TEST(CompactSiteList, SurvivesGrowthAndTombstoneChurn) {
  CompactSiteList list;
  // Sequential dense ids are the adversarial input for an identity hash;
  // the Fibonacci mix must keep probe chains finite through growth.
  for (InternId id = 0; id < 5000; ++id) list.Upsert(id, id * 10);
  EXPECT_EQ(list.size(), 5000u);
  for (InternId id = 0; id < 5000; id += 2) EXPECT_TRUE(list.Erase(id));
  EXPECT_EQ(list.size(), 2500u);
  // Re-insert into tombstoned territory, then verify every survivor.
  for (InternId id = 0; id < 5000; id += 4) list.Upsert(id, id * 10 + 1);
  for (InternId id = 0; id < 5000; ++id) {
    const Time* found = list.Find(id);
    if (id % 4 == 0) {
      ASSERT_NE(found, nullptr) << id;
      EXPECT_EQ(*found, id * 10 + 1);
    } else if (id % 2 == 0) {
      EXPECT_EQ(found, nullptr) << id;
    } else {
      ASSERT_NE(found, nullptr) << id;
      EXPECT_EQ(*found, id * 10);
    }
  }
}

TEST(CompactSiteList, ForEachVisitsEveryPresentEntryOnce) {
  CompactSiteList list;
  for (InternId id = 0; id < 100; ++id) list.Upsert(id, id);
  for (InternId id = 10; id < 20; ++id) list.Erase(id);
  std::set<InternId> seen;
  list.ForEach([&](InternId site, Time lease) {
    EXPECT_EQ(lease, static_cast<Time>(site));
    EXPECT_TRUE(seen.insert(site).second) << "visited twice: " << site;
  });
  EXPECT_EQ(seen.size(), 90u);
  EXPECT_EQ(seen.count(15u), 0u);
}

TEST(CompactSiteList, TwelveBytesPerSlot) {
  CompactSiteList list;
  for (InternId id = 0; id < 1000; ++id) list.Upsert(id, id);
  // Parallel 4-byte-id / 8-byte-time arrays: exactly 12 bytes per slot, and
  // occupancy at least the 7/16 the post-rehash load factor guarantees.
  const double per_entry =
      static_cast<double>(list.MemoryFootprintBytes()) / list.size();
  EXPECT_GE(per_entry, 12.0);
  EXPECT_LE(per_entry, 12.0 * 16 / 7);
}

// --- timer wheel ------------------------------------------------------------

// Authority backed by a map: the table stand-in for wheel unit tests.
struct MapAuthority {
  std::map<std::pair<InternId, InternId>, Time> leases;
  std::vector<std::pair<InternId, InternId>> dropped;

  auto Callback(Time now) {
    return [this, now](InternId url, InternId site) -> Time {
      const auto it = leases.find({url, site});
      if (it == leases.end()) return net::kNoLease;  // stale wheel entry
      if (it->second > now) return it->second;
      dropped.push_back({url, site});
      leases.erase(it);
      return now;  // expired and handled
    };
  }
};

TEST(TimerWheel, ExactHalfOpenExpiryBoundary) {
  TimerWheel wheel;
  wheel.Configure(/*granularity=*/kMinute, /*slots=*/64);
  MapAuthority table;
  const Time expiry = 10 * kMinute + 30;  // mid-slot, not slot-aligned
  table.leases[{1, 2}] = expiry;
  wheel.Schedule(1, 2, expiry);

  // One tick before expiry the lease is still in force ([grant, expiry)).
  wheel.Advance(expiry - 1, table.Callback(expiry - 1));
  EXPECT_TRUE(table.dropped.empty());
  EXPECT_EQ(wheel.scheduled(), 1u);
  // At the exact expiry instant the lease is already dead — even though
  // the cursor never left the slot (cursor-slot revisiting).
  wheel.Advance(expiry, table.Callback(expiry));
  ASSERT_EQ(table.dropped.size(), 1u);
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheel, LazyRenewalReschedulesInsteadOfDropping) {
  TimerWheel wheel;
  wheel.Configure(kMinute, 64);
  MapAuthority table;
  table.leases[{1, 2}] = 5 * kMinute;
  wheel.Schedule(1, 2, 5 * kMinute);
  // The lease is renewed without touching the wheel (Register's renewal
  // path): the old slot's visit must find it alive and reschedule.
  table.leases[{1, 2}] = 20 * kMinute;
  wheel.Advance(10 * kMinute, table.Callback(10 * kMinute));
  EXPECT_TRUE(table.dropped.empty());
  EXPECT_EQ(wheel.scheduled(), 1u);  // rescheduled at the renewed expiry
  wheel.Advance(20 * kMinute, table.Callback(20 * kMinute));
  EXPECT_EQ(table.dropped.size(), 1u);
}

TEST(TimerWheel, StaleEntriesAreForgotten) {
  TimerWheel wheel;
  wheel.Configure(kMinute, 64);
  MapAuthority table;  // entry never added: list was taken before the visit
  wheel.Schedule(1, 2, 5 * kMinute);
  wheel.Advance(10 * kMinute, table.Callback(10 * kMinute));
  EXPECT_TRUE(table.dropped.empty());
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheel, BeyondHorizonExpiryClampsAndStaysExact) {
  // A tiny wheel (4 slots) with an expiry many revolutions out: Schedule
  // clamps to the furthest slot and each visit reschedules, so the drop
  // still happens at exactly the authoritative expiry.
  TimerWheel wheel;
  wheel.Configure(/*granularity=*/10, /*slots=*/4);
  MapAuthority table;
  const Time expiry = 1000;
  table.leases[{1, 2}] = expiry;
  wheel.Schedule(1, 2, expiry);
  for (Time now = 25; now < expiry; now += 25) {
    wheel.Advance(now, table.Callback(now));
    EXPECT_TRUE(table.dropped.empty()) << "dropped early at " << now;
    EXPECT_EQ(wheel.scheduled(), 1u);
  }
  wheel.Advance(expiry, table.Callback(expiry));
  EXPECT_EQ(table.dropped.size(), 1u);
}

TEST(TimerWheel, LongIdleGapVisitsEachSlotOnce) {
  TimerWheel wheel;
  wheel.Configure(10, 8);
  MapAuthority table;
  for (InternId site = 0; site < 8; ++site) {
    const Time expiry = 10 * site + 5;
    table.leases[{1, site}] = expiry;
    wheel.Schedule(1, site, expiry);
  }
  // One Advance spanning many revolutions must drop everything exactly once
  // (the visit range is clamped to one revolution, modulo covers all).
  wheel.Advance(100000, table.Callback(100000));
  EXPECT_EQ(table.dropped.size(), 8u);
  EXPECT_EQ(wheel.scheduled(), 0u);
}

TEST(TimerWheel, OutOfOrderAdvanceNeverMovesCursorBack) {
  TimerWheel wheel;
  wheel.Configure(kMinute, 64);
  MapAuthority table;
  wheel.Advance(30 * kMinute, table.Callback(30 * kMinute));
  // An entry due "in the past" relative to the cursor lands in the cursor
  // slot and dies on the next Advance, even one with an earlier `now`.
  table.leases[{1, 2}] = 5 * kMinute;
  wheel.Schedule(1, 2, 5 * kMinute);
  wheel.Advance(10 * kMinute, table.Callback(10 * kMinute));
  EXPECT_EQ(table.dropped.size(), 1u);
  EXPECT_EQ(wheel.scheduled(), 0u);
}

// --- invalidation table: wheel-driven prune ≡ full scan ---------------------

// Reference model of the pre-wheel table: every operation scans, exactly
// like the old unordered_map implementation (semantics, not layout).
struct ScanModel {
  std::map<std::pair<std::string, std::string>, Time> entries;
  std::uint64_t expired = 0;

  void Restore(const std::string& url, const std::string& site, Time lease,
               Time now) {
    if (!LeaseActive(lease, now)) return;
    auto [it, inserted] = entries.try_emplace({url, site}, lease);
    if (!inserted && it->second != net::kNoLease &&
        (lease == net::kNoLease || lease > it->second)) {
      it->second = lease;
    }
  }

  std::vector<std::string> Take(const std::string& url, Time now) {
    std::vector<std::string> sites;
    for (auto it = entries.lower_bound({url, ""});
         it != entries.end() && it->first.first == url;) {
      if (LeaseActive(it->second, now)) {
        sites.push_back(it->first.second);
      } else {
        ++expired;
      }
      it = entries.erase(it);
    }
    return sites;  // std::map iterates site-sorted already
  }

  // Returns the dropped set as "url|site|lease" keys for set comparison.
  std::set<std::string> Prune(Time now) {
    std::set<std::string> dropped;
    for (auto it = entries.begin(); it != entries.end();) {
      if (!LeaseActive(it->second, now)) {
        dropped.insert(it->first.first + "|" + it->first.second + "|" +
                       std::to_string(it->second));
        ++expired;
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
    return dropped;
  }
};

TEST(InvalidationTableProperty, WheelPruneMatchesFullScanOver1e5Pairs) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kHour;  // wheel revolution: 2h; expiries run far past it
  InvalidationTable table(lease);
  ScanModel model;
  std::mt19937 rng(0x5eed);

  const int kUrls = 97;
  const int kSites = 311;
  const Time kSpan = 4 * kHour;  // exercises the horizon clamp heavily
  std::uniform_int_distribution<int> url_of(0, kUrls - 1);
  std::uniform_int_distribution<int> site_of(0, kSites - 1);
  std::uniform_int_distribution<Time> lease_len(1, kSpan);

  Time now = 0;
  std::size_t pairs = 0;
  while (pairs < 100000) {
    // A burst of inserts/renewals at `now` (Restore lets the test pick
    // arbitrary expiries; its refresh rule matches Register's).
    const int burst = 200;
    for (int i = 0; i < burst; ++i, ++pairs) {
      const std::string url = Name("/u", url_of(rng));
      const std::string site = Name("s", site_of(rng));
      const Time until = now + lease_len(rng);
      table.Restore(url, site, until, now);
      model.Restore(url, site, until, now);
    }
    // Occasionally a modification takes a whole list on both sides.
    if (pairs % 1700 == 0) {
      const std::string url = Name("/u", url_of(rng));
      EXPECT_EQ(table.TakeSitesForInvalidation(url, now),
                model.Take(url, now));
    }
    // Advance time and prune; the dropped sets must be identical.
    now += std::uniform_int_distribution<Time>(0, kSpan / 8)(rng);
    std::vector<InvalidationTable::ExpiredEntry> dropped;
    table.PruneExpiredInto(now, dropped);
    std::set<std::string> wheel_dropped;
    for (const auto& e : dropped) {
      wheel_dropped.insert(std::string(e.url) + "|" + std::string(e.site) +
                           "|" + std::to_string(e.lease_until));
    }
    ASSERT_EQ(wheel_dropped, model.Prune(now)) << "at t=" << now;
  }

  // Drain everything left and compare the final tables entry-for-entry.
  now += 2 * kSpan;
  std::vector<InvalidationTable::ExpiredEntry> dropped;
  table.PruneExpiredInto(now, dropped);
  model.Prune(now);
  EXPECT_TRUE(model.entries.empty());
  EXPECT_EQ(table.TotalEntries(), 0u);
  EXPECT_EQ(table.leases_expired(), model.expired);
}

TEST(InvalidationTable, TakePathEmitsLeaseExpiryForLapsedEntries) {
  // Regression (ISSUE 7): TakeSitesWithLeases used to discard expired
  // entries silently while erasing the list — they never emitted
  // kLeaseExpiry, so the §8 reconciliation (expiry events == entries
  // retired by lapse) undercounted. Both retirement paths must account.
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kDay;
  InvalidationTable table(lease);
  obs::BufferTraceSink sink;
  table.set_trace_sink(&sink);
  table.Register("/a", "c-dead", net::MessageType::kGet, 0);  // expires 24h
  table.Register("/a", "c-live", net::MessageType::kGet, 20 * kHour);

  const auto sites = table.TakeSitesForInvalidation("/a", 30 * kHour);
  EXPECT_EQ(sites, std::vector<std::string>{"c-live"});
  EXPECT_EQ(table.leases_expired(), 1u);
  const std::string trace = sink.Text();
  EXPECT_NE(trace.find("lease_expiry"), std::string::npos);
  EXPECT_NE(trace.find("c-dead"), std::string::npos);
}

TEST(InvalidationTable, ExpiryCounterReconcilesAcrossBothPaths) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kHour;
  InvalidationTable table(lease);
  obs::BufferTraceSink sink;
  table.set_trace_sink(&sink);
  for (int i = 0; i < 6; ++i) {
    table.Register("/a", Name("a", i), net::MessageType::kGet, 0);
    table.Register("/b", Name("b", i), net::MessageType::kGet, 0);
  }
  table.Register("/a", "late", net::MessageType::kGet, 90 * kMinute);
  // /a retires its 6 lapsed entries through the take path, /b through the
  // prune path; the counter and the event stream agree with both.
  table.TakeSitesForInvalidation("/a", 2 * kHour);
  table.PruneExpired(2 * kHour);
  EXPECT_EQ(table.leases_expired(), 12u);
  const std::string trace = sink.Text();
  std::size_t events = 0;
  for (std::size_t pos = trace.find("lease_expiry"); pos != std::string::npos;
       pos = trace.find("lease_expiry", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 12u);
}

TEST(InvalidationTable, RenewalRefreshesInPlace) {
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kHour;
  InvalidationTable table(lease);
  table.Register("/a", "c1", net::MessageType::kGet, 0);
  EXPECT_EQ(table.lease_renewals(), 0u);
  table.Register("/a", "c1", net::MessageType::kGet, 30 * kMinute);
  EXPECT_EQ(table.lease_renewals(), 1u);
  EXPECT_EQ(table.TotalEntries(), 1u);
  // The renewed lease survives past the original expiry and dies at the
  // renewed one — the wheel's lazy reschedule, observed through the table.
  EXPECT_EQ(table.PruneExpired(kHour), 0u);
  EXPECT_EQ(table.ListLength("/a", 80 * kMinute), 1u);
  EXPECT_EQ(table.PruneExpired(90 * kMinute), 1u);
  EXPECT_EQ(table.TotalEntries(), 0u);
}

TEST(InvalidationTable, RestoreDropsDeadLeases) {
  // Regression (ISSUE 7): Restore used to resurrect already-expired leases
  // verbatim, inflating entries/storage_bytes after journal recovery and
  // seeding the wheel with dead slots.
  LeaseConfig lease;
  lease.mode = LeaseMode::kFixed;
  lease.duration = kHour;
  InvalidationTable table(lease);
  EXPECT_FALSE(table.Restore("/a", "stale", 30 * kMinute, kHour));
  EXPECT_FALSE(table.Restore("/a", "boundary", kHour, kHour));  // half-open
  EXPECT_TRUE(table.Restore("/a", "alive", kHour + 1, kHour));
  EXPECT_EQ(table.TotalEntries(), 1u);
  const auto entries = table.SnapshotEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].site, "alive");
}

}  // namespace
}  // namespace webcc::core
