// Compact per-URL site list for million-site scale (ROADMAP item 4).
//
// The invalidation table used to hold one `unordered_map<InternId, Time>`
// per URL. At 10^6-10^7 registered sites the node-based map is the memory
// bottleneck: ~24 bytes of node plus malloc header plus a bucket pointer
// per 12 bytes of payload. CompactSiteList replaces it with a dense
// open-addressing table keyed on the interner's site ids, stored as two
// parallel arrays (4-byte id, 8-byte lease expiry) so a slot costs exactly
// 12 bytes with no struct padding and the whole list is two allocations.
//
// Layout and invariants:
//  * capacity is a power of two; probing is linear from a Fibonacci-mixed
//    hash of the dense id (dense ids are sequential, so identity hashing
//    would cluster an entire trace's sites into one run);
//  * erasure tombstones the slot (id = kTombstoneId); tombstones are
//    reclaimed by the rehash triggered when live+dead crosses 7/8 of
//    capacity, so probe chains stay short without per-erase compaction —
//    the timer-wheel prune path erases one entry at a time and must stay
//    O(1) amortized;
//  * iteration order is slot order, a pure function of the insertion
//    sequence — callers that publish entries (snapshots, prune emission)
//    sort by name first, exactly as they did over the unordered_map.
//
// Not thread-safe; owned by InvalidationTable which is externally locked
// (live stack) or single-threaded (replay).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

#include "core/intern.h"
#include "util/check.h"
#include "util/time.h"

namespace webcc::core {

class CompactSiteList {
 public:
  CompactSiteList() = default;
  CompactSiteList(CompactSiteList&&) = default;
  CompactSiteList& operator=(CompactSiteList&&) = default;

  // Present entries (live leases plus expired-but-not-yet-pruned ones),
  // excluding tombstones — the same count the old map's size() reported.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Pointer to the lease expiry for `site`, or nullptr when absent. Stable
  // only until the next Upsert (rehash moves slots).
  Time* Find(InternId site) {
    if (capacity_ == 0) return nullptr;
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(site) & mask;
    while (true) {
      const InternId slot = sites_[i];
      if (slot == site) return &leases_[i];
      if (slot == kEmptyId) return nullptr;
      i = (i + 1) & mask;
    }
  }
  const Time* Find(InternId site) const {
    return const_cast<CompactSiteList*>(this)->Find(site);
  }

  // Inserts (site -> lease_until) or finds the existing slot. Returns the
  // slot's expiry pointer and whether a new entry was created; an existing
  // entry's expiry is left untouched (the caller owns refresh semantics).
  std::pair<Time*, bool> Upsert(InternId site, Time lease_until) {
    WEBCC_DCHECK(site < kTombstoneId);
    if ((live_ + dead_ + 1) * 8 > capacity_ * 7) Rehash();
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(site) & mask;
    std::size_t tombstone = capacity_;  // first reusable slot on the chain
    while (true) {
      const InternId slot = sites_[i];
      if (slot == site) return {&leases_[i], false};
      if (slot == kEmptyId) break;
      if (slot == kTombstoneId && tombstone == capacity_) tombstone = i;
      i = (i + 1) & mask;
    }
    if (tombstone != capacity_) {
      i = tombstone;
      --dead_;
    }
    sites_[i] = site;
    leases_[i] = lease_until;
    ++live_;
    return {&leases_[i], true};
  }

  // Tombstones `site`'s slot. Returns false when absent.
  bool Erase(InternId site) {
    if (capacity_ == 0) return false;
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash(site) & mask;
    while (true) {
      const InternId slot = sites_[i];
      if (slot == site) {
        sites_[i] = kTombstoneId;
        --live_;
        ++dead_;
        return true;
      }
      if (slot == kEmptyId) return false;
      i = (i + 1) & mask;
    }
  }

  // Visits every present entry as fn(site, lease_until), in slot order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (sites_[i] < kTombstoneId) fn(sites_[i], leases_[i]);
    }
  }

  // Releases all storage (the whole list was taken for invalidation).
  void Reset() {
    sites_.reset();
    leases_.reset();
    capacity_ = 0;
    live_ = 0;
    dead_ = 0;
  }

  // Actual bytes held by the two slot arrays — the measured (not modeled)
  // footprint the lease-scale bench reports as bytes_per_entry.
  std::uint64_t MemoryFootprintBytes() const {
    return static_cast<std::uint64_t>(capacity_) *
           (sizeof(InternId) + sizeof(Time));
  }

 private:
  static constexpr InternId kEmptyId = 0xffffffffu;      // == kNoInternId
  static constexpr InternId kTombstoneId = 0xfffffffeu;  // erased slot

  static std::size_t Hash(InternId site) {
    // Fibonacci multiplicative mix; dense sequential ids spread uniformly.
    return static_cast<std::size_t>(site) * 0x9e3779b9u;
  }

  void Rehash() {
    // Size for the live population only: tombstones die here, which is
    // what makes per-entry Erase O(1) amortized.
    std::size_t new_capacity = 8;
    while ((live_ + 1) * 2 > new_capacity) new_capacity *= 2;
    std::unique_ptr<InternId[]> old_sites = std::move(sites_);
    std::unique_ptr<Time[]> old_leases = std::move(leases_);
    const std::size_t old_capacity = capacity_;
    sites_ = std::make_unique<InternId[]>(new_capacity);
    leases_ = std::make_unique<Time[]>(new_capacity);
    std::memset(sites_.get(), 0xff,
                new_capacity * sizeof(InternId));  // all kEmptyId
    capacity_ = new_capacity;
    live_ = 0;
    dead_ = 0;
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_sites[i] < kTombstoneId) Upsert(old_sites[i], old_leases[i]);
    }
  }

  std::unique_ptr<InternId[]> sites_;  // kEmptyId / kTombstoneId / site id
  std::unique_ptr<Time[]> leases_;     // parallel to sites_
  std::size_t capacity_ = 0;           // power of two (or 0 before first use)
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
};

}  // namespace webcc::core
