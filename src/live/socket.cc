#include "live/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace webcc::live {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string_view IoErrorName(IoError error) {
  switch (error) {
    case IoError::kNone:
      return "none";
    case IoError::kPeerReset:
      return "peer_reset";
    case IoError::kTimeout:
      return "timeout";
    case IoError::kOther:
      return "other";
  }
  return "other";
}

namespace {

IoError ClassifyErrno(int err) {
  if (err == EPIPE || err == ECONNRESET) return IoError::kPeerReset;
  if (err == EAGAIN || err == EWOULDBLOCK) return IoError::kTimeout;
  return IoError::kOther;
}

// How long WriteAll (ReadLine) waits for POLLOUT (POLLIN) after an EAGAIN
// from a non-blocking fd before giving up. SO_SNDTIMEO / SO_RCVTIMEO
// expiries fail immediately instead — the kernel already waited the
// configured time.
constexpr int kWritePollMs = 5000;
constexpr int kReadPollMs = 5000;

}  // namespace

bool TcpStream::WriteAll(std::string_view data) {
  if (!fd_.valid()) {
    last_error_ = IoError::kOther;
    return false;
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd_.get(), data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A write timeout means the kernel already blocked for the
        // configured period with the send buffer full: the peer stalled.
        if (write_timeout_set_) {
          last_error_ = IoError::kTimeout;
          return false;
        }
        // Non-blocking fd: wait for buffer space, then resume the frame.
        pollfd pfd{};
        pfd.fd = fd_.get();
        pfd.events = POLLOUT;
        const int ready = ::poll(&pfd, 1, kWritePollMs);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) {
          last_error_ = ready == 0 ? IoError::kTimeout : IoError::kOther;
          return false;
        }
        continue;
      }
      last_error_ = ClassifyErrno(errno);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  last_error_ = IoError::kNone;
  return true;
}

std::optional<std::string> TcpStream::ReadLine() {
  if (!fd_.valid()) {
    last_error_ = IoError::kOther;
    return std::nullopt;
  }
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline + 1);
      buffer_.erase(0, newline + 1);
      last_error_ = IoError::kNone;
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A read timeout means the kernel already blocked for the
        // configured period with nothing arriving: the peer stalled.
        // Buffered bytes stay put — they are a frame prefix, not a line,
        // and a later call may still complete them.
        if (read_timeout_set_) {
          last_error_ = IoError::kTimeout;
          return std::nullopt;
        }
        // Non-blocking fd: wait for data, then resume the frame —
        // symmetric to WriteAll's POLLOUT resume.
        pollfd pfd{};
        pfd.fd = fd_.get();
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, kReadPollMs);
        if (ready < 0 && errno == EINTR) continue;
        if (ready <= 0) {
          last_error_ = ready == 0 ? IoError::kTimeout : IoError::kOther;
          return std::nullopt;
        }
        continue;
      }
      // Hard error (reset or otherwise): never surface the partial frame
      // as if it were a complete final line.
      last_error_ = ClassifyErrno(errno);
      return std::nullopt;
    }
    if (n == 0) {
      // Orderly EOF: an unterminated trailing line is legitimately final.
      last_error_ = IoError::kNone;
      if (!buffer_.empty()) {
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::SetReadTimeout(int milliseconds) {
  if (!fd_.valid()) return;
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0) {
    read_timeout_set_ = true;
  }
}

void TcpStream::SetWriteTimeout(int milliseconds) {
  if (!fd_.valid()) return;
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0) {
    write_timeout_set_ = true;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return;
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return;
  }
  if (::listen(fd.get(), 64) != 0) return;

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return;
  }
  port_ = ntohs(addr.sin_port);
  fd_ = std::move(fd);
}

TcpStream TcpListener::Accept() {
  if (!fd_.valid()) return TcpStream(Fd());
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  return TcpStream(Fd(client));
}

void TcpListener::Shutdown() {
  // shutdown() only — it unblocks a concurrent Accept() without rewriting
  // fd_, which the accept thread may be reading right now. The close (and
  // the fd_ = -1 store) waits for the destructor, which callers run after
  // joining their accept thread.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

TcpStream Connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return TcpStream(Fd());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return TcpStream(Fd());
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(fd));
}

std::optional<std::string> Exchange(std::uint16_t port, std::string_view line) {
  TcpStream stream = Connect(port);
  if (!stream.valid()) return std::nullopt;
  stream.SetReadTimeout(5000);
  if (!stream.WriteAll(line)) return std::nullopt;
  return stream.ReadLine();
}

bool SendOneWay(std::uint16_t port, std::string_view line) {
  return SendOneWayClassified(port, line, /*timeout_ms=*/0) == IoError::kNone;
}

IoError SendOneWayClassified(std::uint16_t port, std::string_view line,
                             int timeout_ms) {
  TcpStream stream = Connect(port);
  if (!stream.valid()) {
    // A refused connection means the peer process is gone — the same
    // signal as a reset on an established stream.
    return errno == ECONNREFUSED ? IoError::kPeerReset : IoError::kOther;
  }
  if (timeout_ms > 0) stream.SetWriteTimeout(timeout_ms);
  stream.WriteAll(line);
  return stream.last_error();
}

}  // namespace webcc::live
