// Subcommand implementations for the `webcc` command-line tool.
//
// Each command takes parsed flags plus output streams and returns a
// process exit code, so the whole tool is unit-testable; tools/webcc.cc is
// a thin dispatcher.
//
//   webcc generate  --preset SASK --out sask.log
//   webcc generate  --requests 50000 --documents 2000 --clients 800 \
//                   --duration-hours 24 --out synth.log
//   webcc summarize --in access.log
//   webcc filter    --in client.log --out server.log --browser-ttl-minutes 60
//   webcc replay    --in access.log --protocol invalidation \
//                   --lifetime-days 14 [--lease-days 3]
//                   [--lease none|fixed|two-tier] [--two-tier]
//                   [--multicast] [--decoupled] [--cache-mb 128]
//   webcc protocols                      # list protocol names
#pragma once

#include <iosfwd>

#include "cli/flags.h"
#include "core/policy.h"

namespace webcc::cli {

// Maps "ttl" / "poll" / "invalidation" / "pcv" / "psi" (plus long aliases
// and the core::ToString display names, so parse → ToString → parse
// round-trips).
std::optional<core::Protocol> ParseProtocol(const std::string& name);

// Maps "none" / "fixed" / "two-tier" (and the core::ToString names).
std::optional<core::LeaseMode> ParseLeaseMode(const std::string& name);

int RunGenerate(const Flags& flags, std::ostream& out, std::ostream& err);
int RunSummarize(const Flags& flags, std::ostream& out, std::ostream& err);
int RunFilter(const Flags& flags, std::ostream& out, std::ostream& err);
int RunReplayCommand(const Flags& flags, std::ostream& out, std::ostream& err);
// `webcc synth`: build a scenario (JSON file or flags), then print its
// canonical config, its workload digest, write it as CLF, and/or replay it
// in-process — the CLI face of src/synth/.
int RunSynth(const Flags& flags, std::ostream& out, std::ostream& err);
// `webcc trace summarize --in FILE`: aggregates a --trace-out JSONL stream.
int RunTraceCommand(const Flags& flags, std::ostream& out, std::ostream& err);
int RunProtocols(std::ostream& out);

// Dispatches on flags.positional()[0]; prints usage on errors.
int RunCli(const Flags& flags, std::ostream& out, std::ostream& err);

// The usage text.
void PrintUsage(std::ostream& out);

}  // namespace webcc::cli
