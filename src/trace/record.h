// In-memory trace representation.
//
// A Trace is the unit the replay engine consumes: a document table, a client
// table, and a time-sorted request stream indexing into both. Traces come
// either from the synthetic workload generator (trace/workload.h) or from
// real Common-Log-Format server logs (trace/clf.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace webcc::trace {

using DocId = std::uint32_t;
using ClientId = std::uint32_t;

struct DocumentInfo {
  std::string path;          // e.g. "/docs/00042.html"
  std::uint64_t size_bytes;  // unscaled size
};

struct TraceRecord {
  Time timestamp = 0;  // relative to the start of the trace
  ClientId client = 0;
  DocId doc = 0;
};

struct Trace {
  std::string name;
  Time duration = 0;
  std::vector<DocumentInfo> documents;
  std::vector<std::string> clients;  // real-client identifiers (IP-like)
  std::vector<TraceRecord> records;  // sorted by timestamp

  // Checks internal consistency (indices in range, sorted timestamps,
  // records within [0, duration]); returns an empty string when valid and
  // a description of the first problem otherwise.
  std::string Validate() const;
};

}  // namespace webcc::trace
