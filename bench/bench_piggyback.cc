// Extension benchmark: the paper's three approaches versus the piggyback
// schemes that followed it (PCV and PSI), on the SASK replay.
//
// The paper's related work positions piggybacking as the contemporaneous
// alternative to dedicated consistency traffic; this bench quantifies all
// five mechanisms under identical conditions: messages, bytes, server load,
// staleness, latency.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Extension: piggyback schemes vs the paper's three "
              "(SASK, 14-day lifetime) ===\n\n");

  const replay::ExperimentSpec spec = replay::Table3Experiments()[1];
  const trace::Trace& trace = bench::TraceFor(spec.trace);

  const core::Protocol protocols[] = {
      core::Protocol::kAdaptiveTtl, core::Protocol::kPiggybackValidation,
      core::Protocol::kPiggybackInvalidation, core::Protocol::kPollEveryTime,
      core::Protocol::kInvalidation};
  std::vector<replay::ReplayMetrics> runs;
  for (const core::Protocol protocol : protocols) {
    runs.push_back(
        replay::RunReplay(replay::MakeReplayConfig(spec, protocol, trace)));
  }

  stats::Table table({"", "TTL", "PCV", "PSI", "Polling", "Invalidation"});
  const auto row = [&table, &runs](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (const replay::ReplayMetrics& metrics : runs) {
      cells.push_back(get(metrics));
    }
    table.AddRow(std::move(cells));
  };

  row("Total messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("If-Modified-Since", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.ims_requests));
  });
  row("Message bytes", [](const auto& m) {
    return util::HumanBytes(m.message_bytes);
  });
  row("Server CPU", [](const auto& m) {
    return util::Fixed(m.server_cpu_utilization * 100, 1) + "%";
  });
  row("Avg latency (ms)", [](const auto& m) {
    return util::Fixed(m.latency_ms.mean(), 1);
  });
  row("Stale serves", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.stale_serves));
  });
  row("PCV items / invalidated", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.pcv_items_piggybacked)) +
           "/" + util::WithCommas(static_cast<std::int64_t>(m.pcv_invalidated));
  });
  row("PSI notices / erased", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.psi_notices)) + "/" +
           util::WithCommas(static_cast<std::int64_t>(m.psi_entries_erased));
  });
  row("Strong violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: PCV trims adaptive TTL's validation traffic (bulk-validated\n"
      "entries stop costing an IMS each); PSI trims its staleness (change\n"
      "lists purge dead copies at every contact) — both without new message\n"
      "types. Neither is strong: only invalidation (and polling) guarantee\n"
      "freshness, and invalidation still does it at TTL-like cost, which is\n"
      "the paper's central claim.\n");
  return 0;
}
