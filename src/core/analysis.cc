#include "core/analysis.h"

#include <cctype>

#include "core/adaptive_ttl.h"
#include "util/check.h"

namespace webcc::core {

std::vector<SeqEvent> ParseSequence(std::string_view text, Time spacing) {
  WEBCC_CHECK_MSG(spacing > 0, "spacing must be positive");
  std::vector<SeqEvent> events;
  Time at = spacing;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    WEBCC_CHECK_MSG(c == 'r' || c == 'm', "sequence must be 'r'/'m' only");
    events.push_back(SeqEvent{at, c == 'r'});
    at += spacing;
  }
  return events;
}

SequenceShape AnalyzeSequence(std::span<const SeqEvent> events) {
  SequenceShape shape;
  bool in_run = false;
  for (const SeqEvent& event : events) {
    if (event.is_request) {
      ++shape.requests;
      if (!in_run) {
        ++shape.request_intervals;
        in_run = true;
      }
    } else {
      ++shape.modifications;
      if (in_run) {
        ++shape.closed_intervals;
        in_run = false;
      }
    }
  }
  return shape;
}

MessageCounts Table1Polling(const SequenceShape& shape) {
  MessageCounts counts;
  if (shape.requests == 0) return counts;
  counts.gets = 1;  // cold start
  counts.ims = shape.requests - 1;
  counts.replies_200 = shape.request_intervals;
  counts.replies_304 = shape.requests - shape.request_intervals;
  return counts;
}

MessageCounts Table1Invalidation(const SequenceShape& shape) {
  MessageCounts counts;
  counts.gets = shape.request_intervals;
  counts.replies_200 = shape.request_intervals;
  counts.invalidations = shape.closed_intervals;
  return counts;
}

MessageCounts Table1Minimum(const SequenceShape& shape) {
  MessageCounts counts;
  counts.gets = shape.request_intervals;
  counts.replies_200 = shape.request_intervals;
  return counts;
}

namespace {

// Shared walker state for the exact simulations: tracks the document's true
// version/mtime as modifications stream past.
struct DocState {
  std::uint64_t version = 1;
  Time last_modified = 0;

  void ApplyModification(Time at) {
    ++version;
    last_modified = at;
  }
};

}  // namespace

MessageCounts SimulatePollingSequence(std::span<const SeqEvent> events) {
  MessageCounts counts;
  DocState doc;
  bool cached = false;
  std::uint64_t cached_version = 0;
  for (const SeqEvent& event : events) {
    if (!event.is_request) {
      doc.ApplyModification(event.at);
      continue;
    }
    if (!cached) {
      ++counts.gets;
      ++counts.replies_200;
      cached = true;
      cached_version = doc.version;
    } else {
      ++counts.ims;
      if (cached_version == doc.version) {
        ++counts.replies_304;
      } else {
        ++counts.replies_200;
        cached_version = doc.version;
      }
    }
  }
  return counts;
}

MessageCounts SimulateInvalidationSequence(std::span<const SeqEvent> events) {
  MessageCounts counts;
  DocState doc;
  bool cached = false;  // valid copy at the client <=> client on site list
  for (const SeqEvent& event : events) {
    if (!event.is_request) {
      doc.ApplyModification(event.at);
      if (cached) {
        ++counts.invalidations;  // server notifies, then forgets the client
        cached = false;
      }
      continue;
    }
    if (cached) continue;  // pure local hit, no traffic
    ++counts.gets;
    ++counts.replies_200;
    cached = true;
  }
  return counts;
}

MessageCounts SimulateAdaptiveTtlSequence(std::span<const SeqEvent> events,
                                          const AdaptiveTtlConfig& config,
                                          Time initial_last_modified) {
  MessageCounts counts;
  DocState doc;
  doc.last_modified = initial_last_modified;
  bool cached = false;
  std::uint64_t cached_version = 0;
  Time ttl_expires = 0;
  for (const SeqEvent& event : events) {
    if (!event.is_request) {
      doc.ApplyModification(event.at);
      continue;
    }
    const Time now = event.at;
    if (cached && now < ttl_expires) {
      // Fresh by TTL: served locally, possibly stale.
      if (cached_version != doc.version) ++counts.stale_hits;
      continue;
    }
    if (!cached) {
      ++counts.gets;
      ++counts.replies_200;
    } else {
      // TTL miss: validate with If-Modified-Since (Harvest optimization the
      // paper applies: expired copies are revalidated, not refetched).
      ++counts.ims;
      if (cached_version == doc.version) {
        ++counts.replies_304;
      } else {
        ++counts.replies_200;
      }
    }
    cached = true;
    cached_version = doc.version;
    ttl_expires = AdaptiveTtlExpiry(config, now, doc.last_modified);
  }
  return counts;
}

}  // namespace webcc::core
