// Per-shard invalidation outbox: the queue between modification detection
// and the dedicated sender.
//
// The paper's prototype sends each INVALIDATE inline with the check-in;
// decoupled mode queues them here instead, and a drain groups everything
// destined for one site into a single batched wire frame (net's INVB verb)
// — one control-header charge carries the whole URL list.
//
// Coalescing: queueing a (site, url) pair that is already pending merges
// into the existing entry instead of duplicating it, accumulating every
// DISTINCT write id it satisfies. A site partitioned through two writes of
// the same document therefore receives ONE batched frame on heal, whose
// delivery acks both writes' delivery machines — and a retried queue of
// the same (site, url, write_id) merges to a no-op, so no write's machine
// is ever acked twice for one site.
//
// Draining is deterministic: sites leave in lexicographic order, each
// site's URLs in first-queued order. A `ready` predicate lets the sender
// hold sites it cannot currently reach (partitioned but alive), so their
// entries keep accumulating until the link heals.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace webcc::core {

class InvalidationOutbox {
 public:
  struct Batch {
    std::string site;
    std::vector<std::string> urls;  // first-queued order, no duplicates
    // Parallel to `urls`: the write (modification) ids each URL's delivery
    // resolves — more than one when dup-writes coalesced.
    std::vector<std::vector<std::uint64_t>> write_ids;
    // Earliest queue time across the batch's entries — the sender's
    // flush-latency measurement point.
    Time oldest_queued = 0;
  };

  // Queues one invalidation for `site`. Returns true when the (site, url)
  // pair was already pending and the write id merged into it (coalesced).
  bool Add(std::string_view site, std::string_view url, std::uint64_t write_id,
           Time queued_at);

  // Removes and returns one batch per site for which `ready` returns true
  // (every site when `ready` is null), in sorted site order. Entries of
  // not-ready sites stay queued and keep coalescing.
  std::vector<Batch> Drain(
      const std::function<bool(const std::string&)>& ready = nullptr);

  bool empty() const { return pending_.empty(); }
  std::size_t pending_sites() const { return pending_.size(); }
  std::size_t pending_urls() const { return pending_url_count_; }

 private:
  struct Entry {
    std::string url;
    std::vector<std::uint64_t> write_ids;
    Time queued_at = 0;  // when the entry was first queued
  };
  // Ordered by site so drains fan out in a deterministic order.
  std::map<std::string, std::vector<Entry>> pending_;
  std::size_t pending_url_count_ = 0;
};

}  // namespace webcc::core
