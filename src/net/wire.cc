#include "net/wire.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <vector>

namespace webcc::net {
namespace {

bool NeedsEscape(unsigned char c) {
  return c == '%' || c == ' ' || c < 0x21 || c == 0x7f;
}

// Splits on single spaces; returns false if the line has empty fields.
bool SplitFields(std::string_view line, std::vector<std::string_view>& out) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string_view::npos ? line.size() : space;
    if (end == start) return false;
    out.push_back(line.substr(start, end - start));
    if (space == std::string_view::npos) break;
    start = space + 1;
  }
  return !out.empty();
}

template <typename Int>
bool ParseInt(std::string_view field, Int& out) {
  const auto result =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc{} && result.ptr == field.data() + field.size();
}

std::optional<std::string> ParseField(std::string_view field) {
  return UnescapeField(field);
}

// --- optional piggyback sections ---------------------------------------------
// Requests may end with   PCV <n> (<url> <owner> <last_modified>)*n
// Replies may end with    PCVINV <n> (<url> <owner>)*n  then
//                         PSI <n> (<url>)*n
// Messages without piggyback data keep their historical fixed field counts,
// so pre-extension peers interoperate for every non-piggyback protocol.

void AppendPcvSection(std::string& out, const std::vector<PcvQuery>& queries) {
  if (queries.empty()) return;
  char buf[32];
  out += " PCV ";
  out += std::to_string(queries.size());
  for (const PcvQuery& query : queries) {
    std::snprintf(buf, sizeof(buf), " %lld",
                  static_cast<long long>(query.last_modified));
    out += " " + EscapeField(query.url) + " " + EscapeField(query.owner) + buf;
  }
}

void AppendReplySections(std::string& out, const Reply& reply) {
  if (!reply.pcv_invalid.empty()) {
    out += " PCVINV ";
    out += std::to_string(reply.pcv_invalid.size());
    for (const PcvStale& stale : reply.pcv_invalid) {
      out += " " + EscapeField(stale.url) + " " + EscapeField(stale.owner);
    }
  }
  if (!reply.psi_modified.empty()) {
    out += " PSI ";
    out += std::to_string(reply.psi_modified.size());
    for (const std::string& url : reply.psi_modified) {
      out += " " + EscapeField(url);
    }
  }
}

// Parses a piggyback section starting at fields[cursor] (the marker), with
// `arity` fields per item; calls `consume` per item. False on malformed
// counts.
template <typename Consume>
bool ParseSection(const std::vector<std::string_view>& fields,
                  std::size_t& cursor, std::size_t arity, Consume&& consume) {
  ++cursor;  // the marker itself
  if (cursor >= fields.size()) return false;
  std::size_t count = 0;
  if (!ParseInt(fields[cursor], count)) return false;
  ++cursor;
  // Division form avoids overflow on a hostile count.
  if (count > (fields.size() - cursor) / arity) return false;
  for (std::size_t i = 0; i < count; ++i, cursor += arity) {
    if (!consume(&fields[cursor])) return false;
  }
  return true;
}

bool ParseRequestPcv(const std::vector<std::string_view>& fields,
                     std::size_t cursor, Request& request) {
  if (cursor == fields.size()) return true;  // no section: fine
  if (fields[cursor] != "PCV") return false;
  if (!ParseSection(fields, cursor, 3, [&request](const std::string_view* f) {
        PcvQuery query;
        auto url = ParseField(f[0]);
        auto owner = ParseField(f[1]);
        if (!url || !owner || !ParseInt(f[2], query.last_modified)) {
          return false;
        }
        query.url = std::move(*url);
        query.owner = std::move(*owner);
        request.pcv_queries.push_back(std::move(query));
        return true;
      })) {
    return false;
  }
  return cursor == fields.size();
}

bool ParseReplySections(const std::vector<std::string_view>& fields,
                        std::size_t cursor, Reply& reply) {
  if (cursor < fields.size() && fields[cursor] == "PCVINV") {
    if (!ParseSection(fields, cursor, 2, [&reply](const std::string_view* f) {
          PcvStale stale;
          auto url = ParseField(f[0]);
          auto owner = ParseField(f[1]);
          if (!url || !owner) return false;
          stale.url = std::move(*url);
          stale.owner = std::move(*owner);
          reply.pcv_invalid.push_back(std::move(stale));
          return true;
        })) {
      return false;
    }
  }
  if (cursor < fields.size() && fields[cursor] == "PSI") {
    if (!ParseSection(fields, cursor, 1, [&reply](const std::string_view* f) {
          auto url = ParseField(f[0]);
          if (!url) return false;
          reply.psi_modified.push_back(std::move(*url));
          return true;
        })) {
      return false;
    }
  }
  return cursor == fields.size();
}

}  // namespace

std::string EscapeField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (NeedsEscape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::optional<std::string> UnescapeField(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '%') {
      out += c;
      continue;
    }
    if (i + 2 >= escaped.size() || !std::isxdigit(escaped[i + 1]) ||
        !std::isxdigit(escaped[i + 2])) {
      return std::nullopt;
    }
    unsigned value = 0;
    for (int k = 1; k <= 2; ++k) {
      const char h = escaped[i + k];
      value = value * 16 +
              (std::isdigit(h) ? h - '0' : std::tolower(h) - 'a' + 10);
    }
    out += static_cast<char>(value);
    i += 2;
  }
  return out;
}

std::string EncodeLine(const Message& message) {
  char buf[128];
  std::string out;
  if (const auto* request = std::get_if<Request>(&message)) {
    if (request->type == MessageType::kGet) {
      out = "GET " + EscapeField(request->url) + " " +
            EscapeField(request->client_id);
    } else {
      std::snprintf(buf, sizeof(buf), " %lld",
                    static_cast<long long>(request->if_modified_since));
      out = "IMS " + EscapeField(request->url) + " " +
            EscapeField(request->client_id) + buf;
    }
    AppendPcvSection(out, request->pcv_queries);
  } else if (const auto* reply = std::get_if<Reply>(&message)) {
    if (reply->type == MessageType::kReply200) {
      std::snprintf(buf, sizeof(buf), " %llu %lld %llu %lld",
                    static_cast<unsigned long long>(reply->body_bytes),
                    static_cast<long long>(reply->last_modified),
                    static_cast<unsigned long long>(reply->version),
                    static_cast<long long>(reply->lease_until));
      out = "200 " + EscapeField(reply->url) + buf;
    } else {
      std::snprintf(buf, sizeof(buf), " %lld %lld",
                    static_cast<long long>(reply->last_modified),
                    static_cast<long long>(reply->lease_until));
      out = "304 " + EscapeField(reply->url) + buf;
    }
    AppendReplySections(out, *reply);
  } else if (const auto* inv = std::get_if<Invalidation>(&message)) {
    if (inv->type == MessageType::kInvalidateUrl) {
      out = "INV " + EscapeField(inv->url) + " " + EscapeField(inv->client_id);
    } else {
      out = "INVSRV " + EscapeField(inv->server);
    }
  } else if (const auto* batch = std::get_if<BatchInvalidation>(&message)) {
    out = "INVB " + EscapeField(batch->client_id) + " " +
          std::to_string(batch->urls.size());
    for (const std::string& url : batch->urls) {
      out += " " + EscapeField(url);
    }
  } else if (const auto* notify = std::get_if<Notify>(&message)) {
    out = "NOTIFY " + EscapeField(notify->url);
  }
  out += '\n';
  return out;
}

std::optional<Message> DecodeLine(std::string_view line) {
  std::vector<std::string_view> fields;
  if (!SplitFields(line, fields)) return std::nullopt;
  const std::string_view verb = fields[0];

  if (verb == "GET" || verb == "IMS") {
    Request request;
    request.type =
        verb == "GET" ? MessageType::kGet : MessageType::kIfModifiedSince;
    const std::size_t fixed = verb == "GET" ? 3u : 4u;
    if (fields.size() < fixed) return std::nullopt;
    auto url = ParseField(fields[1]);
    auto client = ParseField(fields[2]);
    if (!url || !client) return std::nullopt;
    request.url = std::move(*url);
    request.client_id = std::move(*client);
    if (verb == "IMS" && !ParseInt(fields[3], request.if_modified_since)) {
      return std::nullopt;
    }
    if (!ParseRequestPcv(fields, fixed, request)) return std::nullopt;
    return request;
  }

  if (verb == "200") {
    if (fields.size() < 6) return std::nullopt;
    Reply reply;
    reply.type = MessageType::kReply200;
    auto url = ParseField(fields[1]);
    if (!url || !ParseInt(fields[2], reply.body_bytes) ||
        !ParseInt(fields[3], reply.last_modified) ||
        !ParseInt(fields[4], reply.version) ||
        !ParseInt(fields[5], reply.lease_until)) {
      return std::nullopt;
    }
    reply.url = std::move(*url);
    if (!ParseReplySections(fields, 6, reply)) return std::nullopt;
    return reply;
  }

  if (verb == "304") {
    if (fields.size() < 4) return std::nullopt;
    Reply reply;
    reply.type = MessageType::kReply304;
    auto url = ParseField(fields[1]);
    if (!url || !ParseInt(fields[2], reply.last_modified) ||
        !ParseInt(fields[3], reply.lease_until)) {
      return std::nullopt;
    }
    reply.url = std::move(*url);
    if (!ParseReplySections(fields, 4, reply)) return std::nullopt;
    return reply;
  }

  if (verb == "INV") {
    if (fields.size() != 3) return std::nullopt;
    Invalidation inv;
    inv.type = MessageType::kInvalidateUrl;
    auto url = ParseField(fields[1]);
    auto client = ParseField(fields[2]);
    if (!url || !client) return std::nullopt;
    inv.url = std::move(*url);
    inv.client_id = std::move(*client);
    return inv;
  }

  if (verb == "INVB") {
    // Exactly <n> URLs, <n> >= 1: a frame that names no documents is as
    // malformed as a count that disagrees with the URL list it frames.
    if (fields.size() < 3) return std::nullopt;
    BatchInvalidation batch;
    auto client = ParseField(fields[1]);
    std::size_t count = 0;
    if (!client || !ParseInt(fields[2], count)) return std::nullopt;
    if (count == 0 || count != fields.size() - 3) return std::nullopt;
    batch.client_id = std::move(*client);
    batch.urls.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto url = ParseField(fields[3 + i]);
      if (!url) return std::nullopt;
      batch.urls.push_back(std::move(*url));
    }
    return batch;
  }

  if (verb == "INVSRV") {
    if (fields.size() != 2) return std::nullopt;
    Invalidation inv;
    inv.type = MessageType::kInvalidateServer;
    auto server = ParseField(fields[1]);
    if (!server) return std::nullopt;
    inv.server = std::move(*server);
    return inv;
  }

  if (verb == "NOTIFY") {
    if (fields.size() != 2) return std::nullopt;
    Notify notify;
    auto url = ParseField(fields[1]);
    if (!url) return std::nullopt;
    notify.url = std::move(*url);
    return notify;
  }

  return std::nullopt;
}

}  // namespace webcc::net
