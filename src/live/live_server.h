// Real-TCP origin server + accelerator, the live counterpart of the
// replay's pseudo-server.
//
// Mirrors the paper's deployment: the origin answers GET/IMS, and — when
// the configured protocol's traits call for invalidation callbacks — the
// accelerator fronts it, registers every requesting site, and pushes
// INVALIDATE messages over TCP when a document is touched and checked in.
// Which machinery runs is the consistency kernel's decision
// (core/consistency): the same traits and OnWrite() calls that drive the
// replay engine drive this server, so simulated and deployed behavior match
// by construction. One request per connection; the wire format is
// net/wire.h (including the optional PCV/PSI piggyback sections).
//
// Invalidations must reach the requesting proxy's listener, so live client
// identifiers embed the proxy's callback port: "name@port" (see
// MakeClientId). This plays the role of the IP address the paper's
// accelerator records per site; PSI contact cursors key on the same port.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/consistency/policy.h"
#include "core/sharded_accelerator.h"
#include "core/piggyback.h"
#include "core/policy.h"
#include "http/document_store.h"
#include "http/origin.h"
#include "live/socket.h"
#include "obs/trace_sink.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace webcc::live {

// "alice@45123": real-client name plus the proxy listener to call back.
std::string MakeClientId(std::string_view name, std::uint16_t proxy_port);
// Extracts the callback port; std::nullopt if the id has no port suffix.
std::optional<std::uint16_t> ParseClientPort(std::string_view client_id);

class LiveServer {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 = pick an ephemeral port
    core::Protocol protocol = core::Protocol::kInvalidation;
    core::LeaseConfig lease;
    core::PiggybackConfig piggyback;
    std::string server_name = "origin";
    // Accelerator shard count (consistent-hashed by URL). The observable
    // push stream is shard-invariant; shards only change which internal
    // table a URL lives in and which journal records it on recovery.
    std::uint32_t shards = 1;
    // Group same-proxy URL invalidations from one check-in into a single
    // INVB wire frame. Per-URL delivery events and counters are unchanged;
    // only the frame count differs. Server-address (recovery) notices are
    // never batched.
    bool batch_invalidations = true;
    // INVALIDATE push delivery policy: a push that times out (the proxy is
    // alive but stalled) is retried up to push_retries times with linear
    // backoff; a refused connection (proxy down) is never retried — the
    // proxy's restart path revalidates everything it holds.
    int push_retries = 2;
    int push_retry_backoff_ms = 50;
    int push_timeout_ms = 1000;  // SO_SNDTIMEO per push attempt
    // Optional structured-event sink (not owned; must outlive the server).
    // Live timestamps are wall-clock microseconds from Now(), and the sink
    // must be internally synchronized (JsonlTraceSink is) because handler
    // and admin threads emit concurrently.
    obs::TraceSink* trace_sink = nullptr;
  };

  explicit LiveServer(Options options);
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  // Binds and spawns the accept loop. False if the port could not be bound.
  bool Start();
  void Stop();

  std::uint16_t port() const { return port_; }

  // --- document administration (thread-safe) -------------------------------
  void AddDocument(std::string path, std::uint64_t size_bytes);
  // Simulates an edit plus check-in: bumps the version and, when the
  // protocol's OnWrite decision owes a fan-out, runs the accelerator's
  // detection and pushes invalidations to registered proxies. Returns the
  // number of INVALIDATE messages pushed.
  std::size_t TouchDocument(const std::string& path);

  // --- failure drill --------------------------------------------------------
  // Drops the in-memory invalidation table (server-site crash)...
  void CrashTables();
  // ...and the recovery path: pushes a server-address INVALIDATE to every
  // site ever seen. Returns how many were pushed.
  std::size_t Recover();

  // Monotonic protocol time (microseconds since Start).
  Time Now() const;

  std::uint64_t requests_served() const { return requests_served_.load(); }
  std::uint64_t invalidations_pushed() const {
    return invalidations_pushed_.load();
  }
  // Wire frames carrying those invalidations; < invalidations_pushed()
  // whenever batching packed several URLs into one INVB frame.
  std::uint64_t invalidation_frames_pushed() const {
    return invalidation_frames_pushed_.load();
  }
  std::uint64_t pushes_timed_out() const { return pushes_timed_out_.load(); }
  std::uint64_t pushes_refused() const { return pushes_refused_.load(); }
  std::uint64_t push_retries() const { return push_retries_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(TcpStream stream);
  std::size_t PushInvalidations(
      const std::vector<net::Invalidation>& invalidations);

  Options options_;
  std::unique_ptr<const core::consistency::ConsistencyPolicy> policy_;
  std::uint16_t port_ = 0;

  mutable util::Mutex mutex_;
  // The document store, accelerator (site lists + journal), origin and PSI
  // state are all confined behind mutex_: handler threads, the admin
  // surface (AddDocument/TouchDocument) and the failure drills mutate them
  // concurrently.
  http::DocumentStore docs_ WEBCC_GUARDED_BY(mutex_);
  core::ShardedAccelerator accel_ WEBCC_GUARDED_BY(mutex_);
  // Plain origin service for the protocols whose traits run no accelerator
  // (TTL, polling, PCV, PSI) — the replay routes these the same way.
  http::OriginServer origin_ WEBCC_GUARDED_BY(mutex_);
  // PSI server state: every modification in arrival order, plus each
  // proxy's last-contact cursor (keyed by its callback port).
  core::ModificationLog mod_log_ WEBCC_GUARDED_BY(mutex_);
  std::unordered_map<std::uint16_t, Time> psi_cursor_ WEBCC_GUARDED_BY(mutex_);

  // Shared by design without a lock: the accept thread blocks in Accept()
  // while Stop() calls Shutdown() — TcpListener's fd-based handoff is the
  // synchronization (shutdown(2) wakes the blocked accept).
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> invalidations_pushed_{0};
  std::atomic<std::uint64_t> invalidation_frames_pushed_{0};
  std::atomic<std::uint64_t> pushes_timed_out_{0};
  std::atomic<std::uint64_t> pushes_refused_{0};
  std::atomic<std::uint64_t> push_retries_{0};
};

}  // namespace webcc::live
