// Fixture pair of naked_evict_violation.cc: the same pressure resolved by
// handing the entry to the proxy cache, whose eviction kernel chooses every
// victim. No budget-balancing erase loop, so no naked-evict finding.
#include <string>

struct ProxyCacheFacade {
  void Insert(std::string key, unsigned long long size, long long now);
};

struct KernelBackedCache {
  ProxyCacheFacade cache_;

  void Store(const std::string& key, unsigned long long size, long long now) {
    cache_.Insert(key, size, now);
  }
};
