// Real-TCP caching proxy, the live counterpart of the replay's
// pseudo-client proxies (Harvest "cached").
//
// Serves Fetch() calls on behalf of named real clients (entries are
// namespaced url@name, as in the paper's replay), forwards misses and
// validations to the live server, and runs a listener for the server's
// INVALIDATE pushes. Supports all three consistency protocols so the live
// demo can show their behavioral differences end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/policy.h"
#include "http/proxy_cache.h"
#include "live/socket.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::live {

class LiveProxy {
 public:
  struct Options {
    std::uint16_t port = 0;       // invalidation listener; 0 = ephemeral
    std::uint16_t server_port = 0;
    core::Protocol protocol = core::Protocol::kInvalidation;
    core::AdaptiveTtlConfig ttl;
    std::uint64_t cache_bytes = 64ull * 1024 * 1024;
    http::ReplacementPolicy replacement =
        http::ReplacementPolicy::kExpiredFirstLru;
    // Optional structured-event sink (not owned; must outlive the proxy).
    // Must be internally synchronized: Fetch() callers and the accept loop
    // emit concurrently.
    obs::TraceSink* trace_sink = nullptr;
  };

  explicit LiveProxy(Options options);
  ~LiveProxy();

  LiveProxy(const LiveProxy&) = delete;
  LiveProxy& operator=(const LiveProxy&) = delete;

  bool Start();
  void Stop();

  std::uint16_t port() const { return port_; }

  struct FetchResult {
    bool ok = false;
    // Served from cache without contacting the server.
    bool local_hit = false;
    // Contacted the server and got a 304 (copy certified fresh).
    bool validated = false;
    std::uint64_t version = 0;
    std::uint64_t size_bytes = 0;
  };

  // Fetches `url` on behalf of real client `client_name`. Thread-safe.
  FetchResult Fetch(const std::string& client_name, const std::string& url);

  // Simulated proxy restart: every cached entry becomes questionable.
  void SimulateRecovery();

  std::uint64_t invalidations_received() const {
    return invalidations_received_.load();
  }
  std::uint64_t server_notices_received() const {
    return server_notices_received_.load();
  }
  std::size_t cached_entries() const;

 private:
  void AcceptLoop();
  Time Now() const;

  Options options_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;  // guards cache_
  std::optional<http::ProxyCache> cache_;

  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> invalidations_received_{0};
  std::atomic<std::uint64_t> server_notices_received_{0};
};

}  // namespace webcc::live
