// Unit tests for sim/: event ordering, FIFO stations, the network model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/station.h"

namespace webcc::sim {
namespace {

// --- Simulator ----------------------------------------------------------------

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  Time fired_at = -1;
  sim.At(50, [&] {
    sim.After(25, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 75);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.After(1, chain);
  };
  sim.After(1, chain);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 10);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(20, [&] { ++fired; });
  sim.At(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.Step());
  sim.At(1, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.At(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.executed(), 7u);
}

// --- FifoStation -----------------------------------------------------------------

TEST(FifoStation, SingleJobCompletesAfterCost) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  Time done = -1;
  station.Enqueue(100, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_EQ(done, 100);
}

TEST(FifoStation, JobsQueueFifo) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  std::vector<Time> completions;
  for (int i = 0; i < 3; ++i) {
    station.Enqueue(10, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Time>{10, 20, 30}));
}

TEST(FifoStation, ReturnsCompletionTime) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  EXPECT_EQ(station.Enqueue(5), 5);
  EXPECT_EQ(station.Enqueue(5), 10);
  EXPECT_EQ(station.busy_until(), 10);
}

TEST(FifoStation, IdleGapThenNewJob) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  station.Enqueue(10);
  sim.Run();  // completes at 10
  Time done = -1;
  sim.At(50, [&] { station.Enqueue(5, [&] { done = sim.now(); }); });
  sim.Run();
  EXPECT_EQ(done, 55);  // starts at 50, not queued behind the old job
}

TEST(FifoStation, AccumulatesUtilization) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  station.Enqueue(30);
  station.Enqueue(30);
  sim.Run();
  EXPECT_EQ(station.utilization().busy_time(), 60);
  EXPECT_DOUBLE_EQ(station.utilization().BusyFraction(120), 0.5);
}

TEST(FifoStation, ZeroCostJobRunsImmediately) {
  Simulator sim;
  FifoStation station(sim, "cpu");
  Time done = -1;
  station.Enqueue(0, [&] { done = sim.now(); });
  sim.Run();
  EXPECT_EQ(done, 0);
}

// --- Network ----------------------------------------------------------------------

NetworkConfig FastConfig() {
  NetworkConfig config;
  config.one_way_latency = 1000;       // 1 ms
  config.bandwidth_bps = 8e6;          // 1 byte/us
  config.per_message_overhead_bytes = 0;
  config.retry_interval = 100 * kMillisecond;
  return config;
}

TEST(Network, TransferDelayIncludesSerializationTerm) {
  Simulator sim;
  Network net(sim, FastConfig());
  EXPECT_EQ(net.TransferDelay(0), 1000);
  EXPECT_EQ(net.TransferDelay(1000), 2000);  // 1000 bytes at 1 byte/us
}

TEST(Network, OverheadBytesCounted) {
  Simulator sim;
  NetworkConfig config = FastConfig();
  config.per_message_overhead_bytes = 40;
  Network net(sim, config);
  EXPECT_EQ(net.TransferDelay(0), 1040);
}

TEST(Network, DeliversAfterDelay) {
  Simulator sim;
  Network net(sim, FastConfig());
  Time delivered = -1;
  EXPECT_TRUE(net.Send(0, 1, 500, [&] { delivered = sim.now(); }));
  sim.Run();
  EXPECT_EQ(delivered, 1500);
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.bytes_delivered(), 500u);
}

TEST(Network, PartitionDropsDatagrams) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.Partition(0, 1);
  bool delivered = false;
  EXPECT_FALSE(net.Send(0, 1, 10, [&] { delivered = true; }));
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Network, PartitionIsSymmetricAndHealable) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.Partition(3, 1);
  EXPECT_TRUE(net.IsPartitioned(1, 3));
  EXPECT_FALSE(net.Reachable(1, 3));
  EXPECT_FALSE(net.Reachable(3, 1));
  net.Heal(1, 3);
  EXPECT_TRUE(net.Reachable(3, 1));
}

TEST(Network, DownNodeUnreachableBothWays) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.SetNodeUp(2, false);
  EXPECT_FALSE(net.Reachable(0, 2));
  EXPECT_FALSE(net.Reachable(2, 0));
  EXPECT_TRUE(net.Reachable(0, 1));
  net.SetNodeUp(2, true);
  EXPECT_TRUE(net.Reachable(0, 2));
}

TEST(Network, ReliableSendDeliversImmediatelyWhenHealthy) {
  Simulator sim;
  Network net(sim, FastConfig());
  Network::SendResult result{};
  Time delivered = -1;
  net.SendReliable(
      0, 1, 100, [&] { delivered = sim.now(); },
      [&](Network::SendResult r, Time) { result = r; });
  sim.Run();
  EXPECT_EQ(result, Network::SendResult::kDelivered);
  EXPECT_EQ(delivered, 1100);
}

TEST(Network, ReliableSendRefusedByDownNode) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.SetNodeUp(1, false);
  bool delivered = false;
  Network::SendResult result{};
  net.SendReliable(
      0, 1, 100, [&] { delivered = true; },
      [&](Network::SendResult r, Time) { result = r; });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(result, Network::SendResult::kRefused);
}

TEST(Network, ReliableSendRetriesAcrossPartitionUntilHeal) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.Partition(0, 1);
  Time delivered = -1;
  net.SendReliable(0, 1, 0, [&] { delivered = sim.now(); }, nullptr);
  // Heal after 250 ms; with a 100 ms retry interval the send succeeds on
  // the third retry at 300 ms.
  sim.At(250 * kMillisecond, [&] { net.Heal(0, 1); });
  sim.Run();
  EXPECT_EQ(delivered, 300 * kMillisecond + 1000);
  EXPECT_GE(net.retries(), 3u);
}

TEST(Network, ReliableSendGivesUpAfterMaxRetries) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.Partition(0, 1);
  Network::SendResult result{};
  bool done = false;
  net.SendReliable(
      0, 1, 0, [] {},
      [&](Network::SendResult r, Time) {
        result = r;
        done = true;
      },
      /*max_retries=*/3);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(result, Network::SendResult::kGaveUp);
  EXPECT_EQ(sim.now(), 3 * 100 * kMillisecond);
}

TEST(Network, SenderDeathSilencesPendingRetries) {
  Simulator sim;
  Network net(sim, FastConfig());
  net.Partition(0, 1);
  bool delivered = false;
  bool done_called = false;
  net.SendReliable(
      0, 1, 0, [&] { delivered = true; },
      [&](Network::SendResult, Time) { done_called = true; });
  sim.At(150 * kMillisecond, [&] {
    net.SetNodeUp(0, false);
    net.Heal(0, 1);
  });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_FALSE(done_called);
}

TEST(Network, WanProfileSlowerThanLan) {
  Simulator sim;
  Network lan(sim, NetworkConfig::Lan());
  Network wan(sim, NetworkConfig::Wan());
  EXPECT_GT(wan.TransferDelay(1000), lan.TransferDelay(1000));
}

}  // namespace
}  // namespace webcc::sim
