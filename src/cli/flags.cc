#include "cli/flags.h"

#include <charconv>
#include <cstdlib>

namespace webcc::cli {

std::optional<Flags> Flags::Parse(int argc, const char* const* argv,
                                  std::string* error) {
  Flags flags;
  int i = 1;
  // Positional arguments (the subcommand) come first.
  while (i < argc && argv[i][0] != '-') {
    flags.positional_.emplace_back(argv[i]);
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2 || arg[2] == '-') {
      if (error != nullptr) *error = "unexpected argument: " + arg;
      return std::nullopt;
    }
    const std::size_t equals = arg.find('=');
    if (equals != std::string::npos) {
      flags.values_[arg.substr(2, equals - 2)] = arg.substr(equals + 1);
      continue;
    }
    const std::string name = arg.substr(2);
    // `--name value` unless the next token is another flag (then a switch).
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values_[name] = argv[++i];
    } else {
      flags.values_[name] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  return it->second;
}

std::optional<std::int64_t> Flags::GetInt(const std::string& name,
                                          std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  std::int64_t value = 0;
  const auto& text = it->second;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> Flags::GetDouble(const std::string& name,
                                       double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  used_[name] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return value;
}

bool Flags::GetBool(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

std::vector<std::string> Flags::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : values_) {
    if (used_.find(name) == used_.end()) unused.push_back(name);
  }
  return unused;
}

}  // namespace webcc::cli
