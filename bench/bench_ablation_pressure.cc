// Ablation A2: consistency protocol × replacement policy × cache pressure.
//
// The paper runs every replay with a generously sized proxy cache, so its
// protocol comparison is almost pressure-free — except SASK, whose 24MB
// cache is small enough that Harvest's expired-first replacement starts
// interacting with adaptive TTL (Section 5's anomaly: evicting expired
// documents first throws away exactly the copies a TTL protocol could have
// revalidated with a cheap 304, so the "optimization" lowers the hit ratio).
// This ablation makes that interaction measurable: the six Table 3/4
// workloads rerun as a protocol × policy × capacity grid, with each run's
// cache scaled to {5%, 20%, 100%} of the trace's per-proxy working set
// (the distinct (client, document) bytes a proxy would hold with an
// infinite cache).
//
// The exit code enforces the paper's SASK anomaly as a pinned assertion:
// under adaptive TTL at the 5% capacity point, expired-first replacement
// must land a strictly lower hit ratio than plain LRU. `--gate-only` runs
// just that smallest grid point (the CI default-preset job's mode); the
// full grid additionally records every cell under the "pressure_ablation"
// top-level key of BENCH_farm.json.
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "http/eviction/policy.h"

using namespace webcc;

namespace {

constexpr double kFractions[] = {0.05, 0.20, 1.00};

const http::eviction::EvictionPolicyKind kPolicies[] = {
    http::eviction::EvictionPolicyKind::kLru,
    http::eviction::EvictionPolicyKind::kExpiredFirstLru,
    http::eviction::EvictionPolicyKind::kGds,
};

// Per-proxy working set: every distinct (client, document) pair becomes a
// namespaced cache entry, and the replay splits clients across
// num_pseudo_clients proxies — so an infinite cache would converge to
// roughly this many bytes per proxy.
std::uint64_t WorkingSetBytes(const trace::Trace& trace,
                              std::uint32_t pseudo_clients) {
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t total = 0;
  for (const trace::TraceRecord& record : trace.records) {
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(record.client) << 32) | record.doc;
    if (!seen.insert(pair).second) continue;
    total += trace.documents[record.doc].size_bytes;
  }
  return total / pseudo_clients;
}

struct GridCell {
  const replay::ExperimentSpec* spec = nullptr;
  core::Protocol protocol = core::Protocol::kAdaptiveTtl;
  http::eviction::EvictionPolicyKind policy =
      http::eviction::EvictionPolicyKind::kLru;
  double fraction = 1.0;
  std::uint64_t capacity_bytes = 0;
  replay::ReplayMetrics metrics;

  double hit_ratio() const {
    return metrics.requests_issued > 0
               ? static_cast<double>(metrics.cache_hits()) /
                     static_cast<double>(metrics.requests_issued)
               : 0.0;
  }
};

replay::ReplayConfig ConfigFor(const GridCell& cell,
                               const trace::Trace& trace) {
  replay::ReplayConfig config =
      replay::MakeReplayConfig(*cell.spec, cell.protocol, trace);
  config.proxy_cache_bytes = cell.capacity_bytes;
  config.eviction_policy = cell.policy;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate-only") == 0) gate_only = true;
  }

  const std::vector<replay::ExperimentSpec> all_specs =
      replay::AllTableExperiments();
  std::vector<const replay::ExperimentSpec*> specs;
  std::vector<core::Protocol> protocols;
  std::vector<http::eviction::EvictionPolicyKind> policies(
      std::begin(kPolicies), std::end(kPolicies));
  std::vector<double> fractions(std::begin(kFractions), std::end(kFractions));
  if (gate_only) {
    // Just the gate's grid point: SASK, adaptive TTL, 5%, LRU vs
    // expired-first — two replays, CI-sized.
    for (const replay::ExperimentSpec& spec : all_specs) {
      if (spec.id == "SASK") specs.push_back(&spec);
    }
    protocols = {core::Protocol::kAdaptiveTtl};
    policies = {http::eviction::EvictionPolicyKind::kLru,
                http::eviction::EvictionPolicyKind::kExpiredFirstLru};
    fractions = {kFractions[0]};
  } else {
    for (const replay::ExperimentSpec& spec : all_specs) {
      specs.push_back(&spec);
    }
    protocols = bench::PaperProtocolOrder();
  }

  // Trace generation is cached and not thread-safe: run it before the farm.
  for (const replay::ExperimentSpec* spec : specs) bench::TraceFor(spec->trace);

  std::vector<GridCell> cells;
  std::vector<replay::ReplayConfig> configs;
  for (const replay::ExperimentSpec* spec : specs) {
    const std::uint64_t working_set = WorkingSetBytes(
        bench::TraceFor(spec->trace), replay::ReplayConfig{}.num_pseudo_clients);
    for (const core::Protocol protocol : protocols) {
      for (const http::eviction::EvictionPolicyKind policy : policies) {
        for (const double fraction : fractions) {
          GridCell cell;
          cell.spec = spec;
          cell.protocol = protocol;
          cell.policy = policy;
          cell.fraction = fraction;
          cell.capacity_bytes = static_cast<std::uint64_t>(
              fraction * static_cast<double>(working_set));
          cells.push_back(cell);
          configs.push_back(ConfigFor(cells.back(),
                                      bench::TraceFor(spec->trace)));
        }
      }
    }
  }

  std::printf("=== Ablation: policy × pressure (%zu replay cells) ===\n\n",
              cells.size());
  const std::vector<replay::ReplayMetrics> runs = replay::Farm::RunAll(configs);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].metrics = runs[i];

  // One table per (trace, protocol): policy rows × capacity columns.
  for (const replay::ExperimentSpec* spec : specs) {
    for (const core::Protocol protocol : protocols) {
      std::vector<std::string> header{std::string(spec->id) + " / " +
                                      core::ToString(protocol)};
      for (const double fraction : fractions) {
        header.push_back("hit% @" + util::Fixed(fraction * 100.0, 0) + "%");
        header.push_back("evict @" + util::Fixed(fraction * 100.0, 0) + "%");
      }
      stats::Table table(header);
      for (const http::eviction::EvictionPolicyKind policy : policies) {
        std::vector<std::string> row{
            std::string(http::eviction::ToString(policy))};
        for (const double fraction : fractions) {
          for (const GridCell& cell : cells) {
            if (cell.spec != spec || cell.protocol != protocol ||
                cell.policy != policy || cell.fraction != fraction) {
              continue;
            }
            row.push_back(util::Fixed(cell.hit_ratio() * 100.0, 2));
            row.push_back(std::to_string(cell.metrics.proxy_evictions));
          }
        }
        table.AddRow(std::move(row));
      }
      std::printf("%s\n", table.Render().c_str());
    }
  }

  // The pinned SASK anomaly: at the smallest capacity, expired-first
  // replacement under adaptive TTL evicts exactly the documents a cheap
  // 304 would have refreshed, so its hit ratio must fall below plain LRU's.
  const auto cell_at = [&cells](const std::string& id, core::Protocol protocol,
                                http::eviction::EvictionPolicyKind policy,
                                double fraction) -> const GridCell* {
    for (const GridCell& cell : cells) {
      if (cell.spec->id == id && cell.protocol == protocol &&
          cell.policy == policy && cell.fraction == fraction) {
        return &cell;
      }
    }
    return nullptr;
  };
  const GridCell* sask_lru =
      cell_at("SASK", core::Protocol::kAdaptiveTtl,
              http::eviction::EvictionPolicyKind::kLru, kFractions[0]);
  const GridCell* sask_expired = cell_at(
      "SASK", core::Protocol::kAdaptiveTtl,
      http::eviction::EvictionPolicyKind::kExpiredFirstLru, kFractions[0]);
  if (sask_lru == nullptr || sask_expired == nullptr) {
    std::printf("SASK gate cells missing from the grid\n");
    return 1;
  }
  const bool anomaly = sask_expired->hit_ratio() < sask_lru->hit_ratio();
  std::printf(
      "SASK @5%% capacity (%llu bytes), adaptive TTL: expired-first hit "
      "ratio %.2f%% vs plain LRU %.2f%% (gate: expired-first < LRU): %s\n",
      static_cast<unsigned long long>(sask_lru->capacity_bytes),
      sask_expired->hit_ratio() * 100.0, sask_lru->hit_ratio() * 100.0,
      anomaly ? "holds" : "VIOLATED");

  if (!gate_only) {
    std::string cells_json = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const GridCell& cell = cells[i];
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"trace\": \"%s\", \"protocol\": \"%s\", \"policy\": \"%s\", "
          "\"capacity_fraction\": %.2f, \"capacity_bytes\": %llu, "
          "\"hit_ratio\": %.4f, \"evictions\": %llu, "
          "\"expired_evictions\": %llu, \"oversize_rejections\": %llu, "
          "\"stale_serves\": %llu}",
          i == 0 ? "" : ", ", cell.spec->id.c_str(),
          core::ToString(cell.protocol),
          std::string(http::eviction::ToString(cell.policy)).c_str(),
          cell.fraction, static_cast<unsigned long long>(cell.capacity_bytes),
          cell.hit_ratio(),
          static_cast<unsigned long long>(cell.metrics.proxy_evictions),
          static_cast<unsigned long long>(
              cell.metrics.proxy_expired_evictions),
          static_cast<unsigned long long>(
              cell.metrics.proxy_oversize_rejections),
          static_cast<unsigned long long>(cell.metrics.stale_serves));
      cells_json += buf;
    }
    cells_json += "]";
    const std::string payload =
        std::string("{\"bench\": \"pressure_ablation\", "
                    "\"sask_anomaly_expired_first_hit_ratio\": ") +
        util::Fixed(sask_expired->hit_ratio(), 4) +
        ", \"sask_anomaly_lru_hit_ratio\": " +
        util::Fixed(sask_lru->hit_ratio(), 4) +
        ", \"pass\": " + (anomaly ? "true" : "false") +
        ", \"cells\": " + cells_json + "}";
    bench::WriteBenchJsonKey("BENCH_farm.json", "pressure_ablation", payload);
  }
  return anomaly ? 0 : 1;
}
