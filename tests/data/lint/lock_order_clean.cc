// Fixture pair of lock_order_violation.cc: both paths take table before
// outbox, and the declared WEBCC_ACQUIRED_BEFORE edge pins the order —
// the acquired-before graph stays acyclic.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace util
#define WEBCC_ACQUIRED_BEFORE(...)

class OrderedFanout {
 public:
  void PushInvalidation() {
    const util::MutexLock table(table_mu_);
    const util::MutexLock outbox(outbox_mu_);
  }
  void DrainOutbox() {
    const util::MutexLock table(table_mu_);
    const util::MutexLock outbox(outbox_mu_);
  }

 private:
  util::Mutex table_mu_ WEBCC_ACQUIRED_BEFORE(outbox_mu_);
  util::Mutex outbox_mu_;
};
