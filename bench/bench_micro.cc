// Microbenchmarks (google-benchmark) for the hot data structures and codecs
// underlying the replay engine and live prototype.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "http/eviction/expiry_heap.h"
#include "obs/trace_sink.h"
#include "core/accelerator.h"
#include "core/analysis.h"
#include "core/intern.h"
#include "core/invalidation_table.h"
#include "http/document_store.h"
#include "http/proxy_cache.h"
#include "net/wire.h"
#include "replay/engine.h"
#include "replay/experiments.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "trace/workload.h"
#include "util/distributions.h"
#include "util/rng.h"

using namespace webcc;

namespace {

// --- invalidation table -----------------------------------------------------------

void BM_InvalidationTableRegister(benchmark::State& state) {
  core::InvalidationTable table(core::LeaseConfig{});
  std::vector<std::string> clients;
  for (int i = 0; i < 1024; ++i) {
    clients.push_back("10.0." + std::to_string(i / 256) + "." +
                      std::to_string(i % 256));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    table.Register("/doc", clients[i++ & 1023], net::MessageType::kGet, 0);
  }
}
BENCHMARK(BM_InvalidationTableRegister);

void BM_InvalidationTableTakeSites(benchmark::State& state) {
  const auto list_length = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    core::InvalidationTable table(core::LeaseConfig{});
    for (int i = 0; i < list_length; ++i) {
      table.Register("/doc", "client-" + std::to_string(i),
                     net::MessageType::kGet, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.TakeSitesForInvalidation("/doc", 0));
  }
  state.SetItemsProcessed(state.iterations() * list_length);
}
BENCHMARK(BM_InvalidationTableTakeSites)->Arg(16)->Arg(256)->Arg(4096);

// --- proxy cache -------------------------------------------------------------------

http::CacheEntry MicroEntry(int i, Time ttl) {
  http::CacheEntry entry;
  entry.key = "/doc" + std::to_string(i) + "@c";
  entry.url = "/doc" + std::to_string(i);
  entry.owner = "c";
  entry.size_bytes = 4096;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

void BM_ProxyCacheLookupHit(benchmark::State& state) {
  http::ProxyCache cache(1 << 26, http::ReplacementPolicy::kLru);
  for (int i = 0; i < 4096; ++i) cache.Insert(MicroEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_ProxyCacheLookupHit);

void BM_ProxyCacheInsertWithEviction(benchmark::State& state) {
  // Cache holds 1024 entries; every insert evicts.
  http::ProxyCache cache(4096 * 1024, http::ReplacementPolicy::kLru);
  int i = 0;
  for (auto _ : state) {
    cache.Insert(MicroEntry(i++, 1 << 20), 0);
  }
}
BENCHMARK(BM_ProxyCacheInsertWithEviction);

void BM_ProxyCacheExpiredFirstEviction(benchmark::State& state) {
  http::ProxyCache cache(4096 * 1024,
                         http::ReplacementPolicy::kExpiredFirstLru);
  int i = 0;
  for (auto _ : state) {
    // Half the entries are already expired at insertion time of later ones.
    cache.Insert(MicroEntry(i, (i % 2 == 0) ? i : 1 << 30), i);
    ++i;
  }
}
BENCHMARK(BM_ProxyCacheExpiredFirstEviction);

// --- eviction-kernel dispatch ------------------------------------------------------
//
// The eviction refactor replaced ProxyCache's two-value enum branch inside
// EvictOne with a virtual PickVictim (plus OnInsert/OnHit/OnErase hooks).
// LegacyInlinedCache replicates the pre-refactor cache structure for
// structure — the same Interner tables, entry index, per-url index,
// lazy-deletion ExpiryHeap, stats counters, and kEviction emission; only
// the victim choice is the old inlined branch and the lifecycle hooks are
// absent. Timing it against the kernel-backed ProxyCache on identical
// streams therefore isolates the dispatch cost. The custom main() below
// does the measured comparison, checks the victim sequences are identical
// for the two legacy policies, and records the "cache_kernel" key in
// BENCH_farm.json with the same ≤1% hot-path bar the consistency-kernel
// refactor used.

class LegacyInlinedCache {
 public:
  struct Entry {
    std::string key;
    std::string url;
    std::string owner;
    std::uint64_t size_bytes = 0;
    std::uint64_t version = 0;
    Time ttl_expires = http::kNeverExpires;
    std::uint64_t heap_stamp = 0;
    core::InternId key_id = core::kNoInternId;
    core::InternId url_id = core::kNoInternId;
    bool heap_record_live = false;
  };

  LegacyInlinedCache(std::uint64_t capacity_bytes, bool expired_first)
      : capacity_bytes_(capacity_bytes), expired_first_(expired_first) {}

  Entry* Lookup(const std::string& key) {
    const core::InternId id = keys_.Find(key);
    if (id == core::kNoInternId) return nullptr;
    const auto it = index_.find(id);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*it->second;
  }

  void Insert(Entry entry, Time now) {
    entry.key_id = keys_.Intern(entry.key);
    entry.url_id = urls_.Intern(entry.url);
    EraseById(entry.key_id);
    if (entry.size_bytes > capacity_bytes_) return;  // uncacheable
    while (bytes_used_ + entry.size_bytes > capacity_bytes_) EvictOne(now);
    entry.heap_stamp = next_stamp_++;
    bytes_used_ += entry.size_bytes;
    lru_.push_front(std::move(entry));
    index_[lru_.front().key_id] = lru_.begin();
    url_index_[lru_.front().url_id].push_back(lru_.front().key_id);
    if (lru_.front().ttl_expires != http::kNeverExpires) {
      ttl_heap_.Push(lru_.front().ttl_expires, lru_.front().heap_stamp,
                     lru_.front().key_id);
      lru_.front().heap_record_live = true;
    }
  }

  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

 private:
  using LruList = std::list<Entry>;

  // The pre-refactor EvictOne: the two-policy choice is an inlined branch
  // over the same heap/index state the kernel's PickVictim reads.
  void EvictOne(Time now) {
    if (expired_first_) {
      while (!ttl_heap_.empty()) {
        const http::eviction::ExpiryRecord top = ttl_heap_.Top();
        const auto it = index_.find(top.key);
        const bool live =
            it != index_.end() && it->second->heap_stamp == top.stamp;
        if (!live) {
          ttl_heap_.PopStale();
          continue;
        }
        if (top.expires > now) break;
        it->second->heap_record_live = false;
        ttl_heap_.PopLive();
        EvictEntry(it->second, now, /*expired_rule=*/true);
        return;
      }
    }
    EvictEntry(std::prev(lru_.end()), now, /*expired_rule=*/false);
  }

  void EvictEntry(LruList::iterator it, Time now, bool expired_rule) {
    obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                            .at = now,
                            .url = it->url,
                            .site = it->owner,
                            .detail = expired_rule ? 1 : 0});
    RemoveEntry(it);
  }

  void EraseById(core::InternId key_id) {
    const auto it = index_.find(key_id);
    if (it != index_.end()) RemoveEntry(it->second);
  }

  void RemoveEntry(LruList::iterator it) {
    if (it->heap_record_live) ttl_heap_.NoteStale();
    const auto url_it = url_index_.find(it->url_id);
    if (url_it != url_index_.end()) {
      std::vector<core::InternId>& keys = url_it->second;
      keys.erase(std::find(keys.begin(), keys.end(), it->key_id));
      if (keys.empty()) url_index_.erase(url_it);
    }
    index_.erase(it->key_id);
    bytes_used_ -= it->size_bytes;
    lru_.erase(it);
    ttl_heap_.CompactIfStale([this](const http::eviction::ExpiryRecord& r) {
      const auto live_it = index_.find(r.key);
      return live_it != index_.end() && live_it->second->heap_stamp == r.stamp;
    });
  }

  std::uint64_t capacity_bytes_;
  bool expired_first_;
  std::uint64_t bytes_used_ = 0;
  std::uint64_t next_stamp_ = 1;
  core::Interner keys_;
  core::Interner urls_;
  LruList lru_;
  std::unordered_map<core::InternId, LruList::iterator> index_;
  std::unordered_map<core::InternId, std::vector<core::InternId>> url_index_;
  http::eviction::ExpiryHeap ttl_heap_;
  obs::TraceSink* trace_sink_ = nullptr;
};

LegacyInlinedCache::Entry LegacyEntry(int i, Time ttl) {
  LegacyInlinedCache::Entry entry;
  entry.key = "/doc" + std::to_string(i) + "@c";
  entry.url = "/doc" + std::to_string(i);
  entry.owner = "c";
  entry.size_bytes = 4096;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

// Insert stream shared by the timed comparison: 1024-entry capacity, every
// insert evicts, every other entry already expired (the stream where the
// expired-first branch actually runs).
Time StreamTtl(int i) { return (i % 2 == 0) ? Time(i) : Time(1) << 30; }

template <http::ReplacementPolicy P>
void BM_CacheInsertEvict(benchmark::State& state) {
  http::ProxyCache cache(4096 * 1024, P);
  int i = 0;
  for (auto _ : state) {
    cache.Insert(MicroEntry(i, StreamTtl(i)), i);
    ++i;
  }
}
BENCHMARK_TEMPLATE(BM_CacheInsertEvict, http::ReplacementPolicy::kLru);
BENCHMARK_TEMPLATE(BM_CacheInsertEvict,
                   http::ReplacementPolicy::kExpiredFirstLru);
BENCHMARK_TEMPLATE(BM_CacheInsertEvict, http::ReplacementPolicy::kGds);

void BM_CacheInsertEvictInlined(benchmark::State& state) {
  LegacyInlinedCache cache(4096 * 1024, /*expired_first=*/true);
  int i = 0;
  for (auto _ : state) {
    cache.Insert(LegacyEntry(i, StreamTtl(i)), i);
    ++i;
  }
}
BENCHMARK(BM_CacheInsertEvictInlined);

void BM_CacheLookupHit(benchmark::State& state) {
  http::ProxyCache cache(1 << 26, http::ReplacementPolicy::kExpiredFirstLru);
  for (int i = 0; i < 4096; ++i) cache.Insert(MicroEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheLookupHitInlined(benchmark::State& state) {
  LegacyInlinedCache cache(1 << 26, /*expired_first=*/true);
  for (int i = 0; i < 4096; ++i) cache.Insert(LegacyEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_CacheLookupHitInlined);

// --- simulator ------------------------------------------------------------------------

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < events; ++i) {
      sim.At((i * 7919) % 100000, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(65536);

// --- string interner --------------------------------------------------------------------

void BM_InternerInternHit(benchmark::State& state) {
  core::Interner interner;
  std::vector<std::string> urls;
  for (int i = 0; i < 4096; ++i) {
    urls.push_back("/docs/" + std::to_string(i) + ".html");
    interner.Intern(urls.back());
  }
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.Intern(urls[rng.NextBelow(4096)]));
  }
}
BENCHMARK(BM_InternerInternHit);

// --- replay engine ----------------------------------------------------------------------

void BM_ReplaySmallTrace(benchmark::State& state) {
  // End-to-end replay of a miniature EPA row; counters report the hot
  // loop's throughput (simulator events per host second) and its working
  // set (the event queue's high-water mark).
  const auto spec = replay::Table3Experiments()[0];
  trace::WorkloadConfig small = trace::GetPreset(spec.trace).workload;
  small.total_requests /= 50;
  small.num_documents /= 10;
  small.num_clients /= 10;
  const trace::Trace trace = trace::GenerateTrace(small);
  const replay::ReplayConfig config =
      replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);

  replay::ReplayMetrics last;
  for (auto _ : state) {
    last = replay::RunReplay(config);
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(last.sim_events_executed));
  state.counters["events/s"] = last.events_per_second();
  state.counters["requests/s"] = last.requests_per_second();
  state.counters["peak_queue"] =
      static_cast<double>(last.sim_peak_queue_depth);
}
BENCHMARK(BM_ReplaySmallTrace)->Unit(benchmark::kMillisecond);

// --- wire codec ------------------------------------------------------------------------

void BM_WireEncodeRequest(benchmark::State& state) {
  net::Request request;
  request.type = net::MessageType::kIfModifiedSince;
  request.url = "/docs/00042.html";
  request.client_id = "10.1.2.3";
  request.if_modified_since = 123456789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::EncodeLine(request));
  }
}
BENCHMARK(BM_WireEncodeRequest);

void BM_WireDecodeReply(benchmark::State& state) {
  net::Reply reply;
  reply.type = net::MessageType::kReply200;
  reply.url = "/docs/00042.html";
  reply.body_bytes = 21504;
  reply.last_modified = 99;
  reply.version = 3;
  reply.lease_until = 987654321;
  const std::string line = net::EncodeLine(reply);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::DecodeLine(line));
  }
}
BENCHMARK(BM_WireDecodeReply);

// --- distributions & trace generation ----------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfDistribution zipf(
      static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_GenerateTrace(benchmark::State& state) {
  trace::WorkloadConfig config;
  config.total_requests = static_cast<std::uint64_t>(state.range(0));
  config.num_documents = 1000;
  config.num_clients = 500;
  config.duration = kDay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::GenerateTrace(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTrace)->Arg(10000)->Arg(50000);

// --- analytic model -----------------------------------------------------------------------

void BM_SequenceSimulation(benchmark::State& state) {
  util::Rng rng(3);
  std::string sequence;
  for (int i = 0; i < 10000; ++i) sequence += rng.NextBool(0.8) ? 'r' : 'm';
  const auto events = core::ParseSequence(sequence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateInvalidationSequence(events));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SequenceSimulation);

// --- consistency-kernel dispatch -----------------------------------------------------------

// The same hit-decision stream through the pre-refactor inlined switch
// (bench::InlinedOnHit) and through the kernel's virtual dispatch. The
// absolute delta is a few ns/op; BENCH_farm.json (bench_farm) records it as
// a fraction of the replay hot path's per-request cost, which is the ≤1%
// acceptance bar for the refactor.

void BM_ConsistencyOnHitInlinedSwitch(benchmark::State& state) {
  const bench::DispatchWorkload workload = bench::MakeDispatchWorkload(1 << 16);
  std::size_t i = 0;
  const std::size_t mask = workload.entries.size() - 1;
  for (auto _ : state) {
    const std::size_t j = i++ & mask;
    benchmark::DoNotOptimize(
        bench::InlinedOnHit(workload.protocols[j], workload.entries[j], 1));
  }
}
BENCHMARK(BM_ConsistencyOnHitInlinedSwitch);

void BM_ConsistencyOnHitKernelDispatch(benchmark::State& state) {
  const bench::DispatchWorkload workload = bench::MakeDispatchWorkload(1 << 16);
  std::size_t i = 0;
  const std::size_t mask = workload.entries.size() - 1;
  for (auto _ : state) {
    const std::size_t j = i++ & mask;
    benchmark::DoNotOptimize(
        workload.policies[j]->OnHit(workload.entries[j], 1));
  }
}
BENCHMARK(BM_ConsistencyOnHitKernelDispatch);

// --- accelerator end-to-end ----------------------------------------------------------------

void BM_AcceleratorRequestPath(benchmark::State& state) {
  http::DocumentStore docs;
  for (int i = 0; i < 1000; ++i) {
    docs.Add("/doc" + std::to_string(i), 4096, 0);
  }
  core::Accelerator accel(docs, core::LeaseConfig{});
  util::Rng rng(11);
  for (auto _ : state) {
    net::Request request;
    request.type = net::MessageType::kGet;
    request.url = "/doc" + std::to_string(rng.NextBelow(1000));
    request.client_id = "10.0.0." + std::to_string(rng.NextBelow(256));
    benchmark::DoNotOptimize(accel.HandleRequest(request, 0));
  }
}
BENCHMARK(BM_AcceleratorRequestPath);

// --- cache_kernel gate ---------------------------------------------------------------
//
// The measured (not sampled) version of the BM_CacheInsertEvict /
// BM_CacheLookupHit pairs above: fixed-op-count streams through both caches,
// victim sequences compared entry by entry, and the worst per-op delta
// expressed against the replay hot path's per-request cost. Written to
// BENCH_farm.json under "cache_kernel"; the exit code is the ≤1% bar.

using GateClock = std::chrono::steady_clock;

double GateMillisSince(GateClock::time_point start) {
  return std::chrono::duration<double, std::milli>(GateClock::now() - start)
      .count();
}

// Collects the urls of real evictions (oversize rejections, detail 2, never
// name a victim; this stream produces none anyway).
class VictimSink : public obs::TraceSink {
 public:
  void Emit(const obs::TraceEvent& event) override {
    if (event.type == obs::EventType::kEviction && event.detail != 2) {
      victims_.emplace_back(event.url);
    }
  }
  void WriteRaw(std::string_view) override {}
  const std::vector<std::string>& victims() const { return victims_; }

 private:
  std::vector<std::string> victims_;
};

constexpr std::size_t kGateInsertOps = std::size_t{1} << 18;
constexpr std::size_t kGateLookupOps = std::size_t{1} << 21;

struct StreamTiming {
  double ns_per_op = 0.0;
  std::vector<std::string> victims;  // insert streams only
  std::uint64_t hits = 0;            // lookup streams only
};

// Each stream runs twice: an untimed pass with a recording sink for the
// victim sequence, then a timed pass with tracing off (matching how the
// replay uses the cache), so the sink's string materialization never lands
// in the measured region.
StreamTiming TimeKernelInserts(http::ReplacementPolicy policy) {
  StreamTiming timing;
  {
    http::ProxyCache cache(4096 * 1024, policy);
    VictimSink sink;
    cache.set_trace_sink(&sink);
    for (std::size_t i = 0; i < kGateInsertOps; ++i) {
      const int n = static_cast<int>(i);
      cache.Insert(MicroEntry(n, StreamTtl(n)), static_cast<Time>(i));
    }
    timing.victims = sink.victims();
  }
  http::ProxyCache cache(4096 * 1024, policy);
  const auto start = GateClock::now();
  for (std::size_t i = 0; i < kGateInsertOps; ++i) {
    const int n = static_cast<int>(i);
    cache.Insert(MicroEntry(n, StreamTtl(n)), static_cast<Time>(i));
  }
  timing.ns_per_op =
      GateMillisSince(start) * 1e6 / static_cast<double>(kGateInsertOps);
  return timing;
}

StreamTiming TimeInlinedInserts(bool expired_first) {
  StreamTiming timing;
  {
    LegacyInlinedCache cache(4096 * 1024, expired_first);
    VictimSink sink;
    cache.set_trace_sink(&sink);
    for (std::size_t i = 0; i < kGateInsertOps; ++i) {
      const int n = static_cast<int>(i);
      cache.Insert(LegacyEntry(n, StreamTtl(n)), static_cast<Time>(i));
    }
    timing.victims = sink.victims();
  }
  LegacyInlinedCache cache(4096 * 1024, expired_first);
  const auto start = GateClock::now();
  for (std::size_t i = 0; i < kGateInsertOps; ++i) {
    const int n = static_cast<int>(i);
    cache.Insert(LegacyEntry(n, StreamTtl(n)), static_cast<Time>(i));
  }
  timing.ns_per_op =
      GateMillisSince(start) * 1e6 / static_cast<double>(kGateInsertOps);
  return timing;
}

StreamTiming TimeKernelLookups() {
  http::ProxyCache cache(1 << 26, http::ReplacementPolicy::kExpiredFirstLru);
  for (int i = 0; i < 4096; ++i) cache.Insert(MicroEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  StreamTiming timing;
  const auto start = GateClock::now();
  for (std::size_t i = 0; i < kGateLookupOps; ++i) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    if (cache.Lookup(key) != nullptr) ++timing.hits;
  }
  timing.ns_per_op =
      GateMillisSince(start) * 1e6 / static_cast<double>(kGateLookupOps);
  return timing;
}

StreamTiming TimeInlinedLookups() {
  LegacyInlinedCache cache(1 << 26, /*expired_first=*/true);
  for (int i = 0; i < 4096; ++i) cache.Insert(LegacyEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  StreamTiming timing;
  const auto start = GateClock::now();
  for (std::size_t i = 0; i < kGateLookupOps; ++i) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    if (cache.Lookup(key) != nullptr) ++timing.hits;
  }
  timing.ns_per_op =
      GateMillisSince(start) * 1e6 / static_cast<double>(kGateLookupOps);
  return timing;
}

bool SameVictims(const std::vector<std::string>& kernel_urls,
                 const std::vector<std::string>& inlined_urls) {
  return kernel_urls == inlined_urls;
}

double ReplayNsPerRequest() {
  const auto spec = replay::Table3Experiments()[0];
  trace::WorkloadConfig small = trace::GetPreset(spec.trace).workload;
  small.total_requests /= 50;
  small.num_documents /= 10;
  small.num_clients /= 10;
  const trace::Trace trace = trace::GenerateTrace(small);
  const replay::ReplayConfig config =
      replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
  const auto start = GateClock::now();
  const replay::ReplayMetrics metrics = replay::RunReplay(config);
  return GateMillisSince(start) * 1e6 /
         static_cast<double>(std::max<std::uint64_t>(
             metrics.requests_issued, 1));
}

int RunCacheKernelGate() {
  const StreamTiming inlined_lru = TimeInlinedInserts(/*expired_first=*/false);
  const StreamTiming kernel_lru =
      TimeKernelInserts(http::ReplacementPolicy::kLru);
  const StreamTiming inlined_ef = TimeInlinedInserts(/*expired_first=*/true);
  const StreamTiming kernel_ef =
      TimeKernelInserts(http::ReplacementPolicy::kExpiredFirstLru);
  const StreamTiming kernel_gds =
      TimeKernelInserts(http::ReplacementPolicy::kGds);
  const StreamTiming inlined_lookup = TimeInlinedLookups();
  const StreamTiming kernel_lookup = TimeKernelLookups();

  const bool lru_identical = SameVictims(kernel_lru.victims, inlined_lru.victims);
  const bool ef_identical = SameVictims(kernel_ef.victims, inlined_ef.victims);
  const bool lookups_identical =
      kernel_lookup.hits == kGateLookupOps &&
      inlined_lookup.hits == kGateLookupOps;

  const double replay_ns = ReplayNsPerRequest();
  const double insert_delta =
      std::max(kernel_lru.ns_per_op - inlined_lru.ns_per_op,
               kernel_ef.ns_per_op - inlined_ef.ns_per_op);
  const double lookup_delta =
      kernel_lookup.ns_per_op - inlined_lookup.ns_per_op;
  const double worst_delta = std::max({insert_delta, lookup_delta, 0.0});
  const double overhead_percent = 100.0 * worst_delta / replay_ns;

  std::printf(
      "\n=== cache_kernel gate (%zu inserts, %zu lookups per stream) ===\n"
      "insert  lru:           inlined %.1f ns/op, kernel %.1f ns/op, "
      "victims %s\n"
      "insert  expired_first: inlined %.1f ns/op, kernel %.1f ns/op, "
      "victims %s\n"
      "insert  gds:           kernel %.1f ns/op (no pre-refactor twin)\n"
      "lookup  hit:           inlined %.1f ns/op, kernel %.1f ns/op, "
      "all-hit %s\n"
      "replay hot path: %.0f ns/request -> worst-case dispatch overhead "
      "%.4f%% (bar: <= 1%%)\n",
      kGateInsertOps, kGateLookupOps, inlined_lru.ns_per_op,
      kernel_lru.ns_per_op, lru_identical ? "identical" : "DIVERGED",
      inlined_ef.ns_per_op, kernel_ef.ns_per_op,
      ef_identical ? "identical" : "DIVERGED", kernel_gds.ns_per_op,
      inlined_lookup.ns_per_op, kernel_lookup.ns_per_op,
      lookups_identical ? "yes" : "NO", replay_ns, overhead_percent);

  const bool pass = lru_identical && ef_identical && lookups_identical &&
                    overhead_percent <= 1.0;

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"cache_kernel\", \"insert_ops\": %zu, "
      "\"lookup_ops\": %zu, \"insert\": ["
      "{\"policy\": \"lru\", \"inlined_ns_per_op\": %.2f, "
      "\"kernel_ns_per_op\": %.2f, \"victims_identical\": %s}, "
      "{\"policy\": \"expired_first_lru\", \"inlined_ns_per_op\": %.2f, "
      "\"kernel_ns_per_op\": %.2f, \"victims_identical\": %s}, "
      "{\"policy\": \"gds\", \"kernel_ns_per_op\": %.2f}], "
      "\"lookup\": {\"inlined_ns_per_op\": %.2f, \"kernel_ns_per_op\": %.2f, "
      "\"all_hits\": %s}, \"replay_ns_per_request\": %.0f, "
      "\"hot_path_overhead_percent\": %.4f, \"pass\": %s}",
      kGateInsertOps, kGateLookupOps, inlined_lru.ns_per_op,
      kernel_lru.ns_per_op, lru_identical ? "true" : "false",
      inlined_ef.ns_per_op, kernel_ef.ns_per_op,
      ef_identical ? "true" : "false", kernel_gds.ns_per_op,
      inlined_lookup.ns_per_op, kernel_lookup.ns_per_op,
      lookups_identical ? "true" : "false", replay_ns, overhead_percent,
      pass ? "true" : "false");
  bench::WriteBenchJsonKey("BENCH_farm.json", "cache_kernel", json);
  return pass ? 0 : 1;
}

}  // namespace

// Custom main (instead of benchmark_main): the sampled google-benchmark
// suite runs first, then the measured cache_kernel gate decides the exit
// code and records its BENCH_farm.json key. `--gate-only` skips the
// sampled suite.
int main(int argc, char** argv) {
  bool gate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gate-only") {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      gate_only = true;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!gate_only) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return RunCacheKernelGate();
}
