// FaultClock: the runtime half of the fault layer — turns a FaultPlan's
// link-fault windows into per-message Perturbation decisions behind
// sim::LinkFaultInjector.
//
// Determinism contract: the clock draws from its seeded RNG only while at
// least one link-fault window is active AND the message touches a targeted
// node. A run whose plan has no link faults therefore makes zero draws and
// is byte-identical to a run with no injector at all; and because the sim
// is single-threaded and calls Perturb in event order, the same (plan,
// seed) always yields the same decision sequence.
//
// The engine advances the clock at lock-step interval boundaries (trace
// time), which matches how the rest of the replay applies failures: a
// window is active for every message sent during intervals that overlap it.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.h"
#include "sim/network.h"
#include "util/rng.h"

namespace webcc::fault {

class FaultClock : public sim::LinkFaultInjector {
 public:
  FaultClock(const FaultPlan& plan, std::uint64_t seed);

  // Binds plan targets (proxy indices) to simulator node ids. `server` is
  // the pseudo-server's node; `client_nodes[i]` is proxy i's node. Messages
  // touching unlisted nodes (e.g. the hierarchy parent) are matched only by
  // target -1 windows.
  void BindNodes(sim::NodeId server, std::vector<sim::NodeId> client_nodes);

  // Latches which link-fault windows overlap the half-open trace-time
  // interval [window_begin, window_end). Called by the engine at every
  // lock-step boundary; overlap (not point-in-window) semantics mean a
  // fault window shorter than the lock-step interval still takes effect,
  // mirroring how the engine applies crash/partition failures.
  void Advance(Time window_begin, Time window_end);

  // sim::LinkFaultInjector. Combines all active windows that match the
  // (from, to) pair: loss/duplication probabilities compose as independent
  // events, extra delays add.
  sim::Perturbation Perturb(sim::NodeId from, sim::NodeId to) override;

  // Number of windows currently latched active (for tests).
  int active_windows() const { return static_cast<int>(active_.size()); }

 private:
  struct Window {
    Time begin = 0;
    Time end = 0;  // half-open [begin, end)
    int target = -1;
    double drop = 0.0;
    double duplicate = 0.0;
    Time extra_delay = 0;
  };

  bool Matches(const Window& window, sim::NodeId from, sim::NodeId to) const;

  std::vector<Window> windows_;  // all kLinkFault events, canonical order
  std::vector<const Window*> active_;
  sim::NodeId server_node_ = -1;
  std::vector<sim::NodeId> client_nodes_;
  util::Rng rng_;
};

}  // namespace webcc::fault
