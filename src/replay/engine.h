// The trace-replay engine: Section 5.1's methodology as a deterministic
// discrete-event simulation.
//
// Topology: `num_pseudo_clients` pseudo-client workstations, each running a
// proxy cache and replaying the real clients assigned to it (clientid mod
// num_pseudo_clients), plus one pseudo-server running the origin server,
// the accelerator (in invalidation mode) and the modifier process. A time
// coordinator advances trace time in lock-step intervals; within an
// interval each pseudo-client issues its requests sequentially, waiting for
// each reply, and the modifier applies its touches, each followed by a
// check-in notification.
//
// Two clocks:
//  * trace time  — the trace's own timestamps; drives TTLs, leases,
//    modification times and If-Modified-Since comparisons.
//  * wall time   — the simulator clock; drives latencies, queueing, and
//    utilization, compressed relative to trace time exactly as the paper's
//    replay was.
#pragma once

#include <string_view>

#include "replay/config.h"
#include "replay/metrics.h"

namespace webcc::replay {

// Runs a full replay; deterministic for a given config (including seeds).
ReplayMetrics RunReplay(const ReplayConfig& config);

// Parses the pseudo-client index out of a hierarchy site name of the exact
// form "leaf-<digits>" (the names the engine registers with the parent's
// interest table). Returns false — without touching `index` — for any other
// shape: wrong prefix, empty/non-numeric suffix, trailing garbage, or a
// value that overflows int. Exposed for testing; the engine treats a parse
// failure as a corrupted-table invariant violation.
bool ParseLeafIndex(std::string_view site, int& index);

}  // namespace webcc::replay
