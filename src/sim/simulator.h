// Single-threaded discrete-event simulator.
//
// Everything in a replay — request arrivals, network deliveries, station
// completions, the lock-step time coordinator — is an event on one queue.
// Events at equal timestamps run in scheduling order (a monotone sequence
// number breaks ties), which together with seeded RNGs makes whole replays
// deterministic.
//
// The queue stores sim::Task actions (inline storage for small captures) so
// scheduling the common event allocates nothing, and its backing vector can
// be Reserve()d up front; peak_pending() reports the high-water mark so
// replays can size it from measurement.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/task.h"
#include "util/time.h"

namespace webcc::sim {

class Simulator {
 public:
  using Action = Task;

  Time now() const { return now_; }

  // Schedules `action` at absolute time `t` (>= now()).
  void At(Time t, Action action);

  // Schedules `action` `delay` microseconds from now (delay >= 0).
  void After(Time delay, Action action);

  // Runs the earliest event; returns false when the queue is empty.
  bool Step();

  // Runs until the queue drains.
  void Run();

  // Runs all events with timestamp <= `t`, then advances the clock to `t`
  // even if the queue still holds later events.
  void RunUntil(Time t);

  // Pre-sizes the event queue's backing storage.
  void Reserve(std::size_t events) { queue_.Reserve(events); }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }
  // Largest number of simultaneously pending events so far.
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Task action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  // Thin subclass exposing the protected container for Reserve().
  class EventQueue
      : public std::priority_queue<Event, std::vector<Event>, Later> {
   public:
    void Reserve(std::size_t events) { c.reserve(events); }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  EventQueue queue_;
};

}  // namespace webcc::sim
