// Real-TCP caching proxy, the live counterpart of the replay's
// pseudo-client proxies (Harvest "cached").
//
// Serves Fetch() calls on behalf of named real clients (entries are
// namespaced by http::ComposeCacheKey(url, client), as in the paper's
// replay), forwards misses and validations to the live server, and runs a
// listener for the server's INVALIDATE pushes. Every consistency decision —
// serve-local vs validate, TTL/lease state on insert and on a 304 — comes
// from the same core/consistency kernel the replay engine dispatches
// through, so all five protocols (adaptive TTL, poll-every-time,
// invalidation, PCV, PSI) and the lease modes behave identically in
// simulation and deployment (tests/test_differential.cc asserts this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/consistency/policy.h"
#include "core/piggyback.h"
#include "core/policy.h"
#include "http/proxy_cache.h"
#include "live/socket.h"
#include "obs/trace_sink.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace webcc::live {

class LiveProxy {
 public:
  struct Options {
    std::uint16_t port = 0;       // invalidation listener; 0 = ephemeral
    std::uint16_t server_port = 0;
    core::Protocol protocol = core::Protocol::kInvalidation;
    core::AdaptiveTtlConfig ttl;
    core::PiggybackConfig piggyback;
    std::uint64_t cache_bytes = 64ull * 1024 * 1024;
    http::eviction::EvictionPolicyKind eviction_policy =
        http::eviction::EvictionPolicyKind::kExpiredFirstLru;
    http::TierConfig cache_tier;
    // Optional structured-event sink (not owned; must outlive the proxy).
    // Must be internally synchronized: Fetch() callers and the accept loop
    // emit concurrently.
    obs::TraceSink* trace_sink = nullptr;
  };

  explicit LiveProxy(Options options);
  ~LiveProxy();

  LiveProxy(const LiveProxy&) = delete;
  LiveProxy& operator=(const LiveProxy&) = delete;

  bool Start();
  void Stop();

  std::uint16_t port() const { return port_; }

  struct FetchResult {
    bool ok = false;
    // Served from cache without contacting the server.
    bool local_hit = false;
    // Contacted the server and got a 304 (copy certified fresh).
    bool validated = false;
    std::uint64_t version = 0;
    std::uint64_t size_bytes = 0;
  };

  // Fetches `url` on behalf of real client `client_name`. Thread-safe.
  FetchResult Fetch(const std::string& client_name, const std::string& url);

  // Simulated proxy restart: every cached entry becomes questionable.
  void SimulateRecovery();

  std::uint64_t invalidations_received() const {
    return invalidations_received_.load();
  }
  std::uint64_t server_notices_received() const {
    return server_notices_received_.load();
  }
  // PCV: piggybacked entries the server found invalid (and we dropped).
  std::uint64_t pcv_invalidated() const { return pcv_invalidated_.load(); }
  // PSI: cache entries purged by piggybacked server notices.
  std::uint64_t psi_purged() const { return psi_purged_.load(); }
  std::size_t cached_entries() const;

 private:
  void AcceptLoop();
  Time Now() const;

  Options options_;
  std::unique_ptr<const core::consistency::ConsistencyPolicy> policy_;
  std::uint16_t port_ = 0;

  mutable util::Mutex mutex_;
  std::optional<http::ProxyCache> cache_ WEBCC_GUARDED_BY(mutex_);

  // Shared by design without a lock: the accept thread blocks in Accept()
  // while Stop() calls Shutdown() — TcpListener's fd-based handoff is the
  // synchronization (shutdown(2) wakes the blocked accept).
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> invalidations_received_{0};
  std::atomic<std::uint64_t> server_notices_received_{0};
  std::atomic<std::uint64_t> pcv_invalidated_{0};
  std::atomic<std::uint64_t> psi_purged_{0};
};

}  // namespace webcc::live
