// Shared plumbing for the table-regeneration benches.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/consistency/policy.h"
#include "core/lease.h"
#include "core/policy.h"
#include "replay/engine.h"
#include "replay/experiments.h"
#include "replay/farm.h"
#include "stats/table.h"
#include "trace/presets.h"
#include "trace/summary.h"
#include "trace/workload.h"
#include "util/format.h"

namespace webcc::bench {

inline const std::vector<core::Protocol>& PaperProtocolOrder() {
  // Column order of Tables 3/4: TTL, polling, invalidation.
  static const std::vector<core::Protocol> order = {
      core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
      core::Protocol::kInvalidation};
  return order;
}

// Generates (and caches) the synthetic trace for a preset; rows of the same
// trace at different lifetimes share one generation.
inline const trace::Trace& TraceFor(trace::TraceName name) {
  static std::map<trace::TraceName, trace::Trace> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, trace::GenerateTrace(GetPreset(name).workload))
             .first;
  }
  return it->second;
}

// --- shared BENCH_farm.json maintenance --------------------------------------
//
// bench_farm (worker sweep + kernel dispatch) and bench_ablation_decoupled
// (shard × batching sweep) both record into BENCH_farm.json. Each bench
// owns one top-level key; writes go through this read-modify-write pair so
// one bench's run never clobbers the other's results.

// Splits a JSON object's top level into (key, raw value text) pairs,
// preserving order. Tolerant scanner, not a validator: anything that is not
// an object (missing file, old single-object layout without the expected
// keys) comes back empty and the caller starts a fresh object.
inline std::vector<std::pair<std::string, std::string>> BenchJsonTopLevel(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const std::size_t open = text.find('{');
  if (open == std::string::npos) return pairs;
  std::size_t i = open + 1;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '"') return {};
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key += text[i++];
      key += text[i++];
    }
    if (i >= text.size()) return {};
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') return {};
    ++i;
    skip_ws();
    // Raw value: everything up to the next top-level ',' or the closing '}'.
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() &&
           std::isspace(static_cast<unsigned char>(value.back())) != 0) {
      value.pop_back();
    }
    pairs.emplace_back(std::move(key), std::move(value));
  }
  return pairs;
}

// Replaces (or appends) one top-level key's value in the JSON object at
// `path`, preserving every other key's raw text, and echoes the written
// object to stdout.
inline void WriteBenchJsonKey(const std::string& path, const std::string& key,
                              const std::string& value) {
  std::string existing;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  std::vector<std::pair<std::string, std::string>> pairs =
      BenchJsonTopLevel(existing);
  bool replaced = false;
  for (auto& [existing_key, existing_value] : pairs) {
    if (existing_key != key) continue;
    existing_value = value;
    replaced = true;
  }
  if (!replaced) pairs.emplace_back(key, value);

  std::string object = "{";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i != 0) object += ", ";
    object += "\"" + pairs[i].first + "\": " + pairs[i].second;
  }
  object += "}";
  std::ofstream out(path);
  out << object << "\n";
  std::printf("%s\n", object.c_str());
}

// Runs one (experiment, protocol) cell.
inline replay::ReplayMetrics RunCell(const replay::ExperimentSpec& spec,
                                     core::Protocol protocol) {
  const trace::Trace& trace = TraceFor(spec.trace);
  return replay::RunReplay(replay::MakeReplayConfig(spec, protocol, trace));
}

// Renders one experiment's three-protocol comparison in the layout of
// Tables 3/4, with the paper's legible values alongside.
inline void PrintReplayTable(const replay::ExperimentSpec& spec,
                             const std::vector<replay::ReplayMetrics>& runs) {
  using util::Fixed;
  using util::WithCommas;
  const trace::Trace& trace = TraceFor(spec.trace);

  std::printf("Trace %s, %s requests, %s files modified (mean lifetime %s)\n",
              spec.id.c_str(),
              WithCommas(static_cast<std::int64_t>(trace.records.size())).c_str(),
              WithCommas(static_cast<std::int64_t>(
                             runs[0].modifications_applied)).c_str(),
              util::HumanDuration(spec.mean_lifetime).c_str());

  stats::Table table({"", "Adaptive TTL", "Polling-every-time",
                      "Invalidation"});
  const auto row = [&table, &runs](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const replay::ReplayMetrics& metrics : runs) {
      cells.push_back(getter(metrics));
    }
    table.AddRow(std::move(cells));
  };

  row("Hits", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.cache_hits()));
  });
  row("GET Requests", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.get_requests));
  });
  row("If-Modified-Since", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.ims_requests));
  });
  row("Reply 200", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.replies_200));
  });
  row("Reply 304", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.replies_304));
  });
  row("Invalidations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.invalidations_sent));
  });
  row("Total Messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("Messages Bytes", [](const auto& m) {
    return util::HumanBytes(m.message_bytes);
  });
  row("Avg. Latency (ms)",
      [](const auto& m) { return util::Fixed(m.latency_ms.mean(), 1); });
  row("Min Latency (ms)",
      [](const auto& m) { return util::Fixed(m.latency_ms.min(), 1); });
  row("Max Latency (ms)",
      [](const auto& m) { return util::Fixed(m.latency_ms.max(), 1); });
  row("Server CPU", [](const auto& m) {
    return util::Fixed(m.server_cpu_utilization * 100.0, 1) + "%";
  });
  row("Disk R;W /s", [](const auto& m) {
    return util::Fixed(m.disk_reads_per_second, 2) + ";" +
           util::Fixed(m.disk_writes_per_second, 2);
  });
  row("Stale serves (exact)", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.stale_serves));
  });
  row("Strong violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });
  std::printf("%s", table.Render().c_str());

  std::printf("paper: server CPU %.1f%% / %.1f%% / %.1f%%, message bytes %s\n",
              spec.paper.cpu_percent[0], spec.paper.cpu_percent[1],
              spec.paper.cpu_percent[2], spec.paper.message_bytes);
  const double polling_over_invalidation =
      100.0 *
      (static_cast<double>(runs[1].total_messages()) /
           static_cast<double>(runs[2].total_messages()) -
       1.0);
  std::printf("shape: polling sends %+.0f%% messages vs invalidation; "
              "invalidation/TTL message ratio %.3f\n\n",
              polling_over_invalidation,
              static_cast<double>(runs[2].total_messages()) /
                  static_cast<double>(runs[0].total_messages()));
}

// Runs every (spec, protocol) cell through the replay farm and prints each
// spec's table. Cells are independent deterministic replays, so the farmed
// output is byte-identical to the serial loop this replaces — results come
// back in submission order. `workers` = 0 uses the hardware concurrency.
inline void RunAndPrintExperiments(
    const std::vector<replay::ExperimentSpec>& specs, unsigned workers = 0) {
  // TraceFor's cache is not thread-safe: generate (serially) before the
  // farm starts, then share the parsed traces immutably across workers.
  for (const replay::ExperimentSpec& spec : specs) TraceFor(spec.trace);

  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size() * PaperProtocolOrder().size());
  for (const replay::ExperimentSpec& spec : specs) {
    for (const core::Protocol protocol : PaperProtocolOrder()) {
      configs.push_back(
          replay::MakeReplayConfig(spec, protocol, TraceFor(spec.trace)));
    }
  }
  const std::vector<replay::ReplayMetrics> all =
      replay::Farm::RunAll(configs, workers);

  const std::size_t per_spec = PaperProtocolOrder().size();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const std::vector<replay::ReplayMetrics> runs(
        all.begin() + static_cast<std::ptrdiff_t>(s * per_spec),
        all.begin() + static_cast<std::ptrdiff_t>((s + 1) * per_spec));
    PrintReplayTable(specs[s], runs);
  }
}

// --- kernel-dispatch comparison ----------------------------------------------
//
// The consistency refactor replaced engine.cc's inlined per-protocol
// switches with one virtual call into core::consistency. InlinedOnHit
// replicates the pre-refactor hit decision exactly (same branches, same
// results), so timing it against ConsistencyPolicy::OnHit isolates the cost
// of the strategy indirection on the replay hot path.

inline core::consistency::HitDecision InlinedOnHit(
    core::Protocol protocol, const core::consistency::EntryMeta& entry,
    Time now) {
  using core::consistency::HitAction;
  switch (protocol) {
    case core::Protocol::kAdaptiveTtl:
    case core::Protocol::kPiggybackValidation:
    case core::Protocol::kPiggybackInvalidation:
      if (!entry.questionable && now < entry.ttl_expires) {
        return {HitAction::kServeLocal, false};
      }
      return {HitAction::kValidate, false};
    case core::Protocol::kPollEveryTime:
      return {HitAction::kValidate, false};
    case core::Protocol::kInvalidation: {
      const bool lease_ok = core::LeaseActive(entry.lease_expires, now);
      if (!entry.questionable && lease_ok) {
        return {HitAction::kServeLocal, false};
      }
      return {HitAction::kValidate, !entry.questionable && !lease_ok};
    }
  }
  return {};
}

// A deterministic stream of hit decisions with a realistic mix of fresh,
// TTL-expired, lease-lapsed, and questionable entries across all five
// protocols.
struct DispatchWorkload {
  std::vector<core::consistency::EntryMeta> entries;
  std::vector<core::Protocol> protocols;
  std::vector<const core::consistency::ConsistencyPolicy*> policies;
  std::vector<std::unique_ptr<const core::consistency::ConsistencyPolicy>>
      owned;
};

inline DispatchWorkload MakeDispatchWorkload(std::size_t size) {
  static constexpr core::Protocol kProtocols[] = {
      core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
      core::Protocol::kInvalidation, core::Protocol::kPiggybackValidation,
      core::Protocol::kPiggybackInvalidation};
  DispatchWorkload workload;
  for (const core::Protocol protocol : kProtocols) {
    workload.owned.push_back(
        core::consistency::MakePolicy(protocol, core::AdaptiveTtlConfig{}));
  }
  workload.entries.reserve(size);
  workload.protocols.reserve(size);
  workload.policies.reserve(size);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // splitmix64 stream
  for (std::size_t i = 0; i < size; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    core::consistency::EntryMeta entry;
    entry.ttl_expires = (z & 1) != 0 ? core::consistency::kNeverExpires
                                     : static_cast<Time>(z % kHour);
    entry.lease_expires = (z & 2) != 0 ? core::consistency::kNeverExpires
                                       : static_cast<Time>(z % kDay);
    entry.questionable = (z & 4) == 0 && (z & 8) == 0;
    workload.entries.push_back(entry);
    const std::size_t p = static_cast<std::size_t>(z >> 8) % std::size(kProtocols);
    workload.protocols.push_back(kProtocols[p]);
    workload.policies.push_back(workload.owned[p].get());
  }
  return workload;
}

}  // namespace webcc::bench
