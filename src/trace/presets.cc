#include "trace/presets.h"

#include "util/check.h"

namespace webcc::trace {

const char* ToString(TraceName name) {
  switch (name) {
    case TraceName::kEpa:
      return "EPA";
    case TraceName::kSdsc:
      return "SDSC";
    case TraceName::kClarkNet:
      return "ClarkNet";
    case TraceName::kNasa:
      return "NASA";
    case TraceName::kSask:
      return "SASK";
  }
  return "?";
}

TracePreset GetPreset(TraceName name) {
  TracePreset preset;
  preset.id = name;
  WorkloadConfig& w = preset.workload;
  w.name = ToString(name);

  switch (name) {
    case TraceName::kEpa:
      // EPA WWW server, 1 day (40,658 requests; avg file 21 KB;
      // popularity 1642 max / 8.2 avg). 72 files modified at a 50-day
      // lifetime over 1 day implies ~3600 files.
      w.duration = kDay;
      w.total_requests = 40658;
      w.num_documents = 3600;
      w.num_clients = 2400;
      w.mean_file_size_bytes = 21.0 * 1024;
      w.doc_zipf_exponent = 0.97;
      w.revisit_probability = 0.05;
      w.seed = 1;  // distinct fixed seeds per preset
      preset.paper = {"1 day", 40658, 3600, 21.0 * 1024, 1642, 8.2};
      preset.paper_mean_lifetime = 50 * kDay;
      break;
    case TraceName::kSdsc:
      // San Diego Supercomputer Center, 1 day (25,430 requests; 14 KB;
      // 1020 max / 12 avg). 57 mods at 25 days ~ 576 at 2.5 days ~ 1430
      // files.
      w.duration = kDay;
      w.total_requests = 25430;
      w.num_documents = 1430;
      w.num_clients = 1700;
      w.mean_file_size_bytes = 14.0 * 1024;
      w.doc_zipf_exponent = 0.92;
      w.revisit_probability = 0.08;
      w.seed = 2;
      preset.paper = {"1 day", 25430, 1430, 14.0 * 1024, 1020, 12.0};
      preset.paper_mean_lifetime = 25 * kDay;
      break;
    case TraceName::kClarkNet:
      // ClarkNet commercial ISP, 10 hours (61,703 requests; 13 KB;
      // 680 max / 8 avg). 40 mods at 50 days over 10 hours ~ 4800 files.
      w.duration = 10 * kHour;
      w.total_requests = 61703;
      w.num_documents = 4800;
      w.num_clients = 6000;
      w.mean_file_size_bytes = 13.0 * 1024;
      w.doc_zipf_exponent = 0.62;
      w.revisit_probability = 0.15;
      w.seed = 3;
      preset.paper = {"10 hours", 61703, 4800, 13.0 * 1024, 680, 8.0};
      preset.paper_mean_lifetime = 50 * kDay;
      break;
    case TraceName::kNasa:
      // NASA Kennedy Space Center, 1 day (61,823 requests; 44 KB;
      // 3138 max / 31 avg). 144 mods at 7 days ~ 1008 files. Heavily
      // front-page dominated: nearly every client hits the top document.
      w.duration = kDay;
      w.total_requests = 61823;
      w.num_documents = 1008;
      w.num_clients = 3600;
      w.mean_file_size_bytes = 44.0 * 1024;
      w.doc_zipf_exponent = 1.12;
      w.revisit_probability = 0.05;
      w.seed = 4;
      preset.paper = {"1 day", 61823, 1008, 44.0 * 1024, 3138, 31.0};
      preset.paper_mean_lifetime = 7 * kDay;
      break;
    case TraceName::kSask:
      // University of Saskatchewan, 8 days (51,471 requests; 12 KB;
      // 1155 max / 14 avg). 1148 mods at 14 days over 8 days ~ 2009 files.
      w.duration = 8 * kDay;
      w.total_requests = 51471;
      w.num_documents = 2009;
      w.num_clients = 1300;
      w.mean_file_size_bytes = 12.0 * 1024;
      w.doc_zipf_exponent = 0.95;
      w.revisit_probability = 0.12;
      w.seed = 5;
      preset.paper = {"8 days", 51471, 2009, 12.0 * 1024, 1155, 14.0};
      preset.paper_mean_lifetime = 14 * kDay;
      break;
  }
  return preset;
}

std::vector<TraceName> AllTraces() {
  return {TraceName::kEpa, TraceName::kSdsc, TraceName::kClarkNet,
          TraceName::kNasa, TraceName::kSask};
}

}  // namespace webcc::trace
