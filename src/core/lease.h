// Lease grants for the Section 6 lease-augmented invalidation schemes.
#pragma once

#include "core/policy.h"
#include "net/message.h"
#include "util/time.h"

namespace webcc::core {

// The absolute lease expiry a reply to `request_type` (kGet or
// kIfModifiedSince) earns at time `now`; net::kNoLease when leases are off
// (the server promises invalidations forever).
Time GrantLease(const LeaseConfig& config, net::MessageType request_type,
                Time now);

// True when a lease granted as `lease_until` is still in force at `now`.
// kNoLease never expires.
bool LeaseActive(Time lease_until, Time now);

}  // namespace webcc::core
