#include "sim/network.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace webcc::sim {

void Network::Partition(NodeId a, NodeId b) {
  WEBCC_CHECK(a != b);
  const auto [lo, hi] = Ordered(a, b);
  partitions_.insert({lo, hi});
  obs::Emit(trace_sink_, {.type = obs::EventType::kPartition,
                          .at = sim_.now(),
                          .detail = static_cast<std::int64_t>(lo) * 1000 + hi});
}

void Network::Heal(NodeId a, NodeId b) {
  const auto [lo, hi] = Ordered(a, b);
  if (partitions_.erase({lo, hi}) > 0) {
    obs::Emit(trace_sink_,
              {.type = obs::EventType::kPartitionHeal,
               .at = sim_.now(),
               .detail = static_cast<std::int64_t>(lo) * 1000 + hi});
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(Ordered(a, b)) != 0;
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

bool Network::IsNodeUp(NodeId node) const {
  return down_nodes_.count(node) == 0;
}

bool Network::Reachable(NodeId from, NodeId to) const {
  return IsNodeUp(from) && IsNodeUp(to) && !IsPartitioned(from, to);
}

Time Network::TransferDelay(std::uint64_t bytes) const {
  const double wire_bytes =
      static_cast<double>(bytes + config_.per_message_overhead_bytes);
  const double serialization_s = wire_bytes * 8.0 / config_.bandwidth_bps;
  return config_.one_way_latency + FromSeconds(serialization_s);
}

bool Network::Send(NodeId from, NodeId to, std::uint64_t bytes,
                   DeliverFn on_deliver) {
  WEBCC_CHECK_MSG(static_cast<bool>(on_deliver), "null delivery handler");
  if (!Reachable(from, to)) {
    ++messages_dropped_;
    return false;
  }
  ++messages_delivered_;
  bytes_delivered_ += bytes;
  sim_.After(TransferDelay(bytes), std::move(on_deliver));
  return true;
}

void Network::SendReliable(NodeId from, NodeId to, std::uint64_t bytes,
                           DeliverFn on_deliver, ReliableDoneFn done,
                           int max_retries) {
  TryReliable(from, to, bytes, std::move(on_deliver), std::move(done),
              max_retries);
}

void Network::TryReliable(NodeId from, NodeId to, std::uint64_t bytes,
                          DeliverFn on_deliver, ReliableDoneFn done,
                          int retries_left) {
  if (!IsNodeUp(from)) {
    // The sender itself died; its pending sends evaporate with it.
    return;
  }
  if (!IsNodeUp(to)) {
    // Connection refused: surface immediately, no retry. The paper's
    // recovery path (mark-all-questionable at the proxy) covers safety.
    ++messages_dropped_;
    if (done) done(SendResult::kRefused, sim_.now());
    return;
  }
  if (IsPartitioned(from, to)) {
    if (retries_left == 0) {
      ++messages_dropped_;
      if (done) done(SendResult::kGaveUp, sim_.now());
      return;
    }
    ++retries_;
    const int next = retries_left > 0 ? retries_left - 1 : -1;
    sim_.After(config_.retry_interval,
               [this, from, to, bytes, on_deliver = std::move(on_deliver),
                done = std::move(done), next]() mutable {
                 TryReliable(from, to, bytes, std::move(on_deliver),
                             std::move(done), next);
               });
    return;
  }
  ++messages_delivered_;
  bytes_delivered_ += bytes;
  const Time delivery = sim_.now() + TransferDelay(bytes);
  sim_.At(delivery, std::move(on_deliver));
  if (done) done(SendResult::kDelivered, delivery);
}

void Network::ExportMetrics(obs::MetricsRegistry& registry,
                            std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("messages_delivered"), messages_delivered_);
  registry.SetCounter(name("bytes_delivered"), bytes_delivered_);
  registry.SetCounter(name("messages_dropped"), messages_dropped_);
  registry.SetCounter(name("retries"), retries_);
  registry.SetCounter(name("partitions_active"), partitions_.size());
}

}  // namespace webcc::sim
