// Fixture: enum-switch-default — default: hides missing enumerators.
enum class Protocol { kPolling, kInvalidation };

int Cost(Protocol protocol) {
  switch (protocol) {
    case Protocol::kPolling:
      return 1;
    default:
      return 0;
  }
}
