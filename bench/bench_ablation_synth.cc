// Ablation A3: consistency protocol × site-population scale × write rate
// on synthetic workloads.
//
// The paper's trace-driven tables stop at a few thousand distinct clients,
// so the strong-consistency claim is only ever exercised at trace scale.
// This ablation reruns the protocol comparison on `webcc synth` workloads
// whose site population sweeps 10^3..10^5 while a flash crowd lands in the
// middle of the write stream — the regime where invalidation fan-out and
// TTL staleness diverge hardest. Every cell is generated from the same
// seeded ScenarioConfig dialect the golden corpus pins, so the grid is
// bit-reproducible.
//
// The exit code enforces the paper's core claim as a pinned assertion: the
// strong protocols (polling-every-time, invalidation, PSI) must report zero
// strong violations in every cell, and at the write-heavy point adaptive
// TTL must serve stale documents while invalidation serves none.
// `--gate-only` runs just the smallest scale (the CI default-preset job's
// mode); the full grid additionally records every cell under the
// "synth_ablation" top-level key of BENCH_farm.json.
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.h"
#include "synth/scenario.h"

using namespace webcc;

namespace {

constexpr std::uint32_t kScales[] = {1000, 10000, 100000};
constexpr double kWriteFractions[] = {0.02, 0.30};

synth::ScenarioConfig ScenarioFor(std::uint32_t sites, double write_fraction) {
  synth::ScenarioConfig config;
  config.name = "ablation-synth";
  config.duration = 2 * kHour;
  config.requests = 20000;
  config.sites = sites;
  config.documents = 500;
  config.doc_zipf = 0.8;
  config.site_zipf = 0.6;
  config.write_fraction = write_fraction;
  config.write_zipf = 1.0;
  config.locality = 0.2;
  config.seed = 97;
  synth::Phase crowd;
  crowd.kind = synth::PhaseKind::kFlashCrowd;
  crowd.start = kHour / 2;
  crowd.duration = kHour / 2;
  crowd.rate_multiplier = 5.0;
  crowd.write_multiplier = 2.0;
  crowd.focus = 0.7;
  crowd.hot_docs = 5;
  config.phases.push_back(crowd);
  return config;
}

struct GridCell {
  std::uint32_t sites = 0;
  double write_fraction = 0.0;
  core::Protocol protocol = core::Protocol::kAdaptiveTtl;
  replay::ReplayMetrics metrics;

  double hit_ratio() const {
    return metrics.requests_issued > 0
               ? static_cast<double>(metrics.cache_hits()) /
                     static_cast<double>(metrics.requests_issued)
               : 0.0;
  }
  double stale_ratio() const {
    return metrics.requests_issued > 0
               ? static_cast<double>(metrics.stale_serves) /
                     static_cast<double>(metrics.requests_issued)
               : 0.0;
  }
};

bool IsStrong(core::Protocol protocol) {
  return protocol != core::Protocol::kAdaptiveTtl;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate-only") == 0) gate_only = true;
  }

  std::vector<std::uint32_t> scales(std::begin(kScales), std::end(kScales));
  std::vector<core::Protocol> protocols = bench::PaperProtocolOrder();
  if (gate_only) {
    // Just the gate's scale: both write rates, TTL vs invalidation — four
    // replays, CI-sized.
    scales = {kScales[0]};
    protocols = {core::Protocol::kAdaptiveTtl, core::Protocol::kInvalidation};
  }

  // Scenario storage must outlive the farm: ReplayConfig carries a pointer
  // and each worker regenerates the workload from it in-process.
  std::deque<synth::ScenarioConfig> scenarios;
  std::vector<GridCell> cells;
  std::vector<replay::ReplayConfig> configs;
  for (const std::uint32_t sites : scales) {
    for (const double write_fraction : kWriteFractions) {
      scenarios.push_back(ScenarioFor(sites, write_fraction));
      const synth::ScenarioConfig& scenario = scenarios.back();
      for (const core::Protocol protocol : protocols) {
        GridCell cell;
        cell.sites = sites;
        cell.write_fraction = write_fraction;
        cell.protocol = protocol;
        cells.push_back(cell);
        replay::ReplayConfig config;
        config.scenario = &scenario;
        config.protocol = protocol;
        configs.push_back(config);
      }
    }
  }

  std::printf("=== Ablation: protocol × synth scale × write rate "
              "(%zu replay cells) ===\n\n",
              cells.size());
  const std::vector<replay::ReplayMetrics> runs = replay::Farm::RunAll(configs);
  for (std::size_t i = 0; i < cells.size(); ++i) cells[i].metrics = runs[i];

  // One table per write rate: protocol rows × scale columns.
  for (const double write_fraction : kWriteFractions) {
    std::vector<std::string> header{"wf=" + util::Fixed(write_fraction, 2)};
    for (const std::uint32_t sites : scales) {
      header.push_back("hit% @" + std::to_string(sites));
      header.push_back("stale% @" + std::to_string(sites));
      header.push_back("msgs @" + std::to_string(sites));
    }
    stats::Table table(header);
    for (const core::Protocol protocol : protocols) {
      std::vector<std::string> row{core::ToString(protocol)};
      for (const std::uint32_t sites : scales) {
        for (const GridCell& cell : cells) {
          if (cell.sites != sites || cell.write_fraction != write_fraction ||
              cell.protocol != protocol) {
            continue;
          }
          row.push_back(util::Fixed(cell.hit_ratio() * 100.0, 2));
          row.push_back(util::Fixed(cell.stale_ratio() * 100.0, 2));
          row.push_back(std::to_string(cell.metrics.total_messages()));
        }
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Pinned gates.
  bool pass = true;
  std::uint64_t ttl_stale_heavy = 0;
  std::uint64_t inv_stale_heavy = 0;
  for (const GridCell& cell : cells) {
    if (IsStrong(cell.protocol) && cell.metrics.strong_violations != 0) {
      std::printf("GATE VIOLATED: %s at %u sites, wf=%.2f reported %llu "
                  "strong violations\n",
                  core::ToString(cell.protocol), cell.sites,
                  cell.write_fraction,
                  static_cast<unsigned long long>(
                      cell.metrics.strong_violations));
      pass = false;
    }
    if (cell.sites != scales.front()) continue;
    if (cell.write_fraction != kWriteFractions[1]) continue;
    if (cell.protocol == core::Protocol::kAdaptiveTtl) {
      ttl_stale_heavy = cell.metrics.stale_serves;
    }
    if (cell.protocol == core::Protocol::kInvalidation) {
      inv_stale_heavy = cell.metrics.stale_serves -
                        cell.metrics.stale_while_invalidation_in_flight;
    }
  }
  const bool divergence = ttl_stale_heavy > 0 && inv_stale_heavy == 0;
  if (!divergence) pass = false;
  std::printf(
      "write-heavy point (wf=%.2f, %u sites): adaptive TTL stale serves "
      "%llu vs invalidation post-write stale serves %llu (gate: TTL > 0, "
      "invalidation == 0): %s\n",
      kWriteFractions[1], scales.front(),
      static_cast<unsigned long long>(ttl_stale_heavy),
      static_cast<unsigned long long>(inv_stale_heavy),
      divergence ? "holds" : "VIOLATED");

  if (!gate_only) {
    std::string cells_json = "[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const GridCell& cell = cells[i];
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"sites\": %u, \"write_fraction\": %.2f, \"protocol\": "
          "\"%s\", \"hit_ratio\": %.4f, \"stale_serves\": %llu, "
          "\"strong_violations\": %llu, \"total_messages\": %llu}",
          i == 0 ? "" : ", ", cell.sites, cell.write_fraction,
          core::ToString(cell.protocol), cell.hit_ratio(),
          static_cast<unsigned long long>(cell.metrics.stale_serves),
          static_cast<unsigned long long>(cell.metrics.strong_violations),
          static_cast<unsigned long long>(cell.metrics.total_messages()));
      cells_json += buf;
    }
    cells_json += "]";
    const std::string payload =
        std::string("{\"bench\": \"synth_ablation\", \"pass\": ") +
        (pass ? "true" : "false") + ", \"cells\": " + cells_json + "}";
    bench::WriteBenchJsonKey("BENCH_farm.json", "synth_ablation", payload);
  }
  return pass ? 0 : 1;
}
