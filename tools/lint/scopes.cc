#include "scopes.h"

#include <algorithm>

namespace webcc::lint {
namespace {

const std::set<std::string, std::less<>>& Keywords() {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",     "for",    "while",   "switch",        "catch",
      "return", "sizeof", "alignof", "static_assert", "decltype",
      "new",    "delete", "do",      "else",          "co_return",
      "co_await"};
  return kKeywords;
}

bool IsSpecifier(std::string_view word) {
  return word == "const" || word == "noexcept" || word == "override" ||
         word == "final" || word == "mutable" || word == "try" ||
         word == "volatile" || word == "constexpr";
}

bool IsAnnotationMacro(std::string_view word) {
  return word.substr(0, 6) == "WEBCC_";
}

// Enum types whose switches must stay default-free so -Wswitch can prove
// exhaustiveness (rule config for enum-switch-default). Extend when adding
// a protocol-level enum.
bool IsProtocolEnumType(std::string_view word) {
  static const std::set<std::string, std::less<>> kTypes = {
      "Protocol",  "LeaseMode",         "MessageType",
      "EventType", "FaultKind",         "HitAction",
      "WriteCompleteKind", "ServeKind", "IoError",
      "TraceName", "ReplacementPolicy", "EvictionPolicyKind",
      "Completion"};
  return kTypes.count(word) != 0;
}

// Bare variable spellings that conventionally hold protocol enums here.
bool IsEnumishIdentifier(std::string_view word) {
  return word == "protocol" || word == "mode" || word == "kind" ||
         word == "name" || word == "type";
}

struct Builder {
  ScopeModel model;

  const Token& Tok(std::size_t k) const { return model.Tok(k); }
  bool IsPunct(std::size_t k, std::string_view p) const {
    const Token& t = Tok(k);
    return t.kind == TokKind::kPunct && t.text == p;
  }
  bool IsIdent(std::size_t k) const {
    return Tok(k).kind == TokKind::kIdent;
  }
  bool IsIdent(std::size_t k, std::string_view word) const {
    const Token& t = Tok(k);
    return t.kind == TokKind::kIdent && t.text == word;
  }

  // Matching ')' / ']' / '>' for the opener at `open`; returns `end` (the
  // exclusive bound) when unbalanced.
  std::size_t FindClose(std::size_t open, std::size_t end, char oc,
                        char cc) const {
    int depth = 0;
    for (std::size_t k = open; k < end; ++k) {
      const Token& t = Tok(k);
      if (t.kind != TokKind::kPunct) continue;
      if (t.text.size() == 1 && t.text[0] == oc) ++depth;
      if (t.text.size() == 1 && t.text[0] == cc && --depth == 0) return k;
    }
    return end;
  }

  // Matching '(' for the ')' at `close`, scanning back to `begin`.
  std::size_t FindOpenBack(std::size_t close, std::size_t begin) const {
    int depth = 0;
    for (std::size_t k = close + 1; k-- > begin;) {
      if (IsPunct(k, ")")) ++depth;
      if (IsPunct(k, "(") && --depth == 0) return k;
    }
    return close;  // unbalanced
  }

  // --- head classification --------------------------------------------------

  bool HeadHasKeyword(std::size_t hb, std::size_t he,
                      std::string_view word) const {
    for (std::size_t k = hb; k < he; ++k) {
      if (IsIdent(k, word)) return true;
    }
    return false;
  }

  // `[captures](params) specifiers -> ret {`: true when the tail of the
  // head is a lambda introducer chain ending exactly at `he`.
  bool IsLambdaHead(std::size_t hb, std::size_t he, bool* no_tsa) const {
    for (std::size_t k = he; k-- > hb;) {
      if (!IsPunct(k, "[")) continue;
      std::size_t j = FindClose(k, he, '[', ']');
      if (j >= he) continue;
      ++j;  // past ']'
      if (j < he && IsPunct(j, "(")) {
        j = FindClose(j, he, '(', ')');
        if (j >= he) continue;
        ++j;
      }
      bool tail_ok = true;
      while (j < he) {
        const Token& t = Tok(j);
        if (t.kind == TokKind::kIdent &&
            (IsSpecifier(t.text) || IsAnnotationMacro(t.text))) {
          if (IsAnnotationMacro(t.text) && no_tsa != nullptr &&
              t.text == "WEBCC_NO_THREAD_SAFETY_ANALYSIS") {
            *no_tsa = true;
          }
          ++j;
          if (j < he && IsPunct(j, "(")) j = FindClose(j, he, '(', ')') + 1;
        } else if (t.kind == TokKind::kPunct && t.text == "->") {
          j = he;  // trailing return type: consume the rest
        } else {
          tail_ok = false;
          break;
        }
      }
      if (tail_ok && j >= he) return true;
    }
    return false;
  }

  // Function-definition heuristic: an id-expression directly before a '('
  // whose matching ')' is followed only by specifiers, annotation macros,
  // a ctor init list (':') or a trailing return ('->'). Returns the
  // unqualified name and the last qualifier (the class for `C::f`).
  bool ParseFunctionHead(std::size_t hb, std::size_t he, std::string* name,
                         std::string* qualifier) const {
    for (std::size_t k = hb; k < he; ++k) {
      if (!IsIdent(k) || IsPunct(k, "(")) continue;
      const std::string& word = Tok(k).text;
      if (Keywords().count(word) != 0 || IsAnnotationMacro(word)) continue;
      if (k + 1 >= he || !IsPunct(k + 1, "(")) continue;
      if (k > hb && (IsPunct(k - 1, ".") || IsPunct(k - 1, "->"))) continue;
      const std::size_t close = FindClose(k + 1, he, '(', ')');
      if (close >= he) continue;  // '(' spills past the brace: not a head
      // Validate the suffix after the parameter list.
      bool ok = true;
      for (std::size_t j = close + 1; j < he;) {
        const Token& t = Tok(j);
        if (t.kind == TokKind::kIdent &&
            (IsSpecifier(t.text) || IsAnnotationMacro(t.text))) {
          ++j;
          if (j < he && IsPunct(j, "(")) j = FindClose(j, he, '(', ')') + 1;
        } else if (t.kind == TokKind::kPunct &&
                   (t.text == ":" || t.text == "->")) {
          j = he;  // ctor init list / trailing return: consume the rest
        } else if (t.kind == TokKind::kPunct && t.text == "&") {
          ++j;  // ref-qualified member function
        } else {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // Walk the id-expression back: `~Name` and `Qual::...::Name`.
      std::size_t nb = k;
      *name = word;
      if (nb > hb && IsPunct(nb - 1, "~")) {
        *name = "~" + *name;
        --nb;
      }
      qualifier->clear();
      while (nb >= hb + 2 && IsPunct(nb - 1, "::") && IsIdent(nb - 2)) {
        *qualifier = Tok(nb - 2).text;  // keep the innermost qualifier
        nb -= 2;
      }
      return true;
    }
    return false;
  }

  Scope ClassifyHead(std::size_t hb, std::size_t he, int parent,
                     int open_line) {
    Scope s;
    s.parent = parent;
    s.line = open_line;
    s.head_begin = hb;
    s.head_end = he;
    const Scope* up =
        parent >= 0 ? &model.scopes[static_cast<std::size_t>(parent)] : nullptr;
    if (up != nullptr) {
      s.in_dump = up->in_dump;
      s.no_tsa = up->no_tsa;
    }

    if (hb >= he) return s;  // bare block

    if (HeadHasKeyword(hb, he, "namespace")) {
      s.kind = ScopeKind::kNamespace;
      return s;
    }
    if (HeadHasKeyword(hb, he, "enum")) {
      s.kind = ScopeKind::kEnum;
      return s;
    }
    if (HeadHasKeyword(hb, he, "switch")) {
      s.kind = ScopeKind::kSwitch;
      for (std::size_t k = hb; k < he; ++k) {
        if (!IsIdent(k, "switch")) continue;
        if (k + 1 >= he || !IsPunct(k + 1, "(")) break;
        const std::size_t close = FindClose(k + 1, he, '(', ')');
        // Enum-typed when the condition names a protocol enum type, or is
        // exactly one conventionally-enum identifier.
        std::size_t idents = 0;
        for (std::size_t j = k + 2; j < close; ++j) {
          if (!IsIdent(j)) continue;
          ++idents;
          if (IsProtocolEnumType(Tok(j).text)) s.switch_enum = true;
        }
        if (close == k + 3 && idents == 1 &&
            IsEnumishIdentifier(Tok(k + 2).text)) {
          s.switch_enum = true;
        }
        break;
      }
      return s;
    }
    bool no_tsa = false;
    if (IsLambdaHead(hb, he, &no_tsa)) {
      s.kind = ScopeKind::kLambda;
      s.no_tsa = s.no_tsa || no_tsa;
      if (up != nullptr) s.class_name = up->class_name;
      return s;
    }
    std::string name, qualifier;
    if (ParseFunctionHead(hb, he, &name, &qualifier)) {
      s.kind = ScopeKind::kFunction;
      s.name = name;
      s.class_name = qualifier;
      if (s.class_name.empty() && up != nullptr) {
        // Inline member definition: the enclosing class scope names it.
        for (int p = parent; p >= 0;
             p = model.scopes[static_cast<std::size_t>(p)].parent) {
          const Scope& ps = model.scopes[static_cast<std::size_t>(p)];
          if (ps.kind == ScopeKind::kFunction || ps.kind == ScopeKind::kLambda) {
            break;  // a nested local class/function: stop at the function
          }
          if (ps.kind == ScopeKind::kClass) {
            s.class_name = ps.name;
            break;
          }
        }
      }
      s.ctor_dtor = !s.class_name.empty() &&
                    (name == s.class_name || name == "~" + s.class_name);
      if (IsDumpFunctionName(name)) s.in_dump = true;
      if (HeadHasKeyword(hb, he, "WEBCC_NO_THREAD_SAFETY_ANALYSIS")) {
        s.no_tsa = true;
      }
      return s;
    }
    // `class`/`struct` after the function check, so `template <class T>
    // void F()` classifies as a function, and macro-decorated class heads
    // (`class WEBCC_CAPABILITY("mutex") Mutex`) still land here.
    for (std::size_t k = he; k-- > hb;) {
      if (!IsIdent(k)) continue;
      const std::string& word = Tok(k).text;
      if (word != "class" && word != "struct" && word != "union") continue;
      s.kind = ScopeKind::kClass;
      // Name: the first identifier after the keyword that is not an
      // annotation macro (skipping any macro argument list) and not a
      // specifier; stop at ':' (base clause) or '<' (specialization).
      for (std::size_t j = k + 1; j < he; ++j) {
        const Token& t = Tok(j);
        if (t.kind == TokKind::kPunct &&
            (t.text == ":" || t.text == "<" || t.text == "{")) {
          break;
        }
        if (t.kind != TokKind::kIdent) continue;
        if (IsAnnotationMacro(t.text)) {
          if (j + 1 < he && IsPunct(j + 1, "(")) {
            j = FindClose(j + 1, he, '(', ')');
          }
          continue;
        }
        if (t.text == "final" || t.text == "alignas") continue;
        s.name = t.text;
        break;
      }
      if (!s.name.empty()) return s;
      s.kind = ScopeKind::kBlock;
      break;
    }
    return s;
  }

  // --- pass 1: scopes ---------------------------------------------------------

  void BuildScopes() {
    std::vector<int> stack;
    std::size_t stmt_begin = 0;
    const std::size_t n = model.code.size();
    model.scope_of.assign(n, -1);
    for (std::size_t k = 0; k < n; ++k) {
      model.scope_of[k] = stack.empty() ? -1 : stack.back();
      const Token& t = Tok(k);
      if (t.kind != TokKind::kPunct || t.text.size() != 1) continue;
      switch (t.text[0]) {
        case '{': {
          Scope s = ClassifyHead(stmt_begin, k,
                                 stack.empty() ? -1 : stack.back(), t.line);
          s.body_begin = k + 1;
          s.body_end = n;  // patched at the matching '}'
          model.scopes.push_back(s);
          stack.push_back(static_cast<int>(model.scopes.size()) - 1);
          stmt_begin = k + 1;
          break;
        }
        case '}': {
          if (!stack.empty()) {
            model.scopes[static_cast<std::size_t>(stack.back())].body_end = k;
            stack.pop_back();
          }
          stmt_begin = k + 1;
          break;
        }
        case ';':
          stmt_begin = k + 1;
          break;
        default:
          break;
      }
    }
  }

  // --- pass 2: locks and annotations -----------------------------------------

  std::string ClassAt(std::size_t k) const {
    for (int s = model.scope_of[k]; s >= 0;
         s = model.scopes[static_cast<std::size_t>(s)].parent) {
      const Scope& sc = model.scopes[static_cast<std::size_t>(s)];
      if (sc.kind == ScopeKind::kClass) return sc.name;
      if (sc.kind == ScopeKind::kFunction || sc.kind == ScopeKind::kLambda) {
        if (!sc.class_name.empty()) return sc.class_name;
      }
    }
    return "";
  }

  std::string Canonical(std::string_view expr, const std::string& cls) const {
    // Bare members get class-qualified so the acquired-before graph keys
    // the same lock identically across translation units.
    const bool bare = std::all_of(expr.begin(), expr.end(), [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
    });
    std::string name(expr);
    if (name.substr(0, 6) == "this->") name = name.substr(6);
    if (!cls.empty() && (bare || name != expr)) return cls + "::" + name;
    return name;
  }

  void SplitTopLevelCommas(std::size_t open, std::size_t close,
                           std::vector<std::string>* out) const {
    std::size_t begin = open + 1;
    int depth = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (IsPunct(k, "(") || IsPunct(k, "<") || IsPunct(k, "[")) ++depth;
      if (IsPunct(k, ")") || IsPunct(k, ">") || IsPunct(k, "]")) --depth;
      if (depth == 0 && IsPunct(k, ",")) {
        out->push_back(JoinTokens(model, begin, k));
        begin = k + 1;
      }
    }
    if (begin < close) out->push_back(JoinTokens(model, begin, close));
  }

  void CollectFacts() {
    const std::size_t n = model.code.size();
    for (std::size_t k = 0; k < n; ++k) {
      if (!IsIdent(k)) continue;
      const std::string& word = Tok(k).text;

      // util::MutexLock lock(expr);
      if (word == "MutexLock" && k + 2 < n && IsIdent(k + 1) &&
          IsPunct(k + 2, "(")) {
        const std::size_t close = FindClose(k + 2, n, '(', ')');
        if (close < n) {
          LockAcquire acq;
          acq.scope = model.scope_of[k];
          acq.expr = JoinTokens(model, k + 3, close);
          acq.canonical = Canonical(acq.expr, ClassAt(k));
          acq.code_index = k;
          acq.line = Tok(k).line;
          model.locks.push_back(std::move(acq));
        }
        continue;
      }

      if (word == "WEBCC_GUARDED_BY" || word == "WEBCC_PT_GUARDED_BY") {
        if (k + 1 >= n || !IsPunct(k + 1, "(") || k == 0 || !IsIdent(k - 1)) {
          continue;
        }
        const std::size_t close = FindClose(k + 1, n, '(', ')');
        if (close >= n) continue;
        GuardedField f;
        f.class_name = ClassAt(k);
        f.field = Tok(k - 1).text;
        f.guard = JoinTokens(model, k + 2, close);
        f.line = Tok(k - 1).line;
        f.pointee_only = (word == "WEBCC_PT_GUARDED_BY");
        if (!f.class_name.empty()) model.guarded_fields.push_back(std::move(f));
        continue;
      }

      if (word == "WEBCC_REQUIRES" || word == "WEBCC_REQUIRES_SHARED") {
        if (k + 1 >= n || !IsPunct(k + 1, "(") || k == 0) continue;
        // The annotation trails the parameter list, possibly with cv/ref
        // qualifiers between: `T f(args) const WEBCC_REQUIRES(mu)`.
        std::size_t pk = k - 1;
        while (pk > 0 && Tok(pk).kind == TokKind::kIdent &&
               IsSpecifier(Tok(pk).text)) {
          --pk;
        }
        if (!IsPunct(pk, ")")) continue;
        const std::size_t close = FindClose(k + 1, n, '(', ')');
        if (close >= n) continue;
        // Owner: the identifier before the parameter list this annotation
        // trails — `T C::f(args) WEBCC_REQUIRES(mu)` or an in-class decl.
        const std::size_t popen = FindOpenBack(pk, 0);
        if (popen == pk || popen == 0 || !IsIdent(popen - 1)) continue;
        std::size_t nk = popen - 1;
        std::string name = Tok(nk).text;
        while (nk >= 2 && IsPunct(nk - 1, "::") && IsIdent(nk - 2)) {
          name = Tok(nk - 2).text + "::" + name;
          nk -= 2;
        }
        if (name.find("::") == std::string::npos) {
          const std::string cls = ClassAt(k);
          if (!cls.empty()) name = cls + "::" + name;
        }
        std::vector<std::string> exprs;
        SplitTopLevelCommas(k + 1, close, &exprs);
        for (std::string& e : exprs) {
          model.requires_locks[name].insert(std::move(e));
        }
        continue;
      }

      if (word == "WEBCC_ACQUIRED_BEFORE" || word == "WEBCC_ACQUIRED_AFTER") {
        if (k + 1 >= n || !IsPunct(k + 1, "(") || k == 0 || !IsIdent(k - 1)) {
          continue;
        }
        const std::size_t close = FindClose(k + 1, n, '(', ')');
        if (close >= n) continue;
        const std::string cls = ClassAt(k);
        const std::string owner = Canonical(Tok(k - 1).text, cls);
        std::vector<std::string> exprs;
        SplitTopLevelCommas(k + 1, close, &exprs);
        for (const std::string& e : exprs) {
          const std::string other = Canonical(e, cls);
          DeclaredOrder edge;
          edge.line = Tok(k).line;
          if (word == "WEBCC_ACQUIRED_BEFORE") {
            edge.before = owner;
            edge.after = other;
          } else {
            edge.before = other;
            edge.after = owner;
          }
          model.declared_order.push_back(std::move(edge));
        }
        continue;
      }
    }
  }
};

}  // namespace

bool IsDumpFunctionName(std::string_view name) {
  for (const std::string_view piece :
       {"Dump", "Snapshot", "Serialize", "Digest", "Export", "ToJson",
        "WriteJson"}) {
    if (name.find(piece) != std::string_view::npos) return true;
  }
  return false;
}

std::string JoinTokens(const ScopeModel& model, std::size_t begin,
                       std::size_t end) {
  std::string out;
  for (std::size_t k = begin; k < end && k < model.code.size(); ++k) {
    out += model.Tok(k).text;
  }
  return out;
}

ScopeModel BuildScopeModel(std::vector<Token> tokens) {
  Builder b;
  b.model.tokens = std::move(tokens);
  b.model.code.reserve(b.model.tokens.size());
  for (std::size_t i = 0; i < b.model.tokens.size(); ++i) {
    if (b.model.tokens[i].kind != TokKind::kComment) b.model.code.push_back(i);
  }
  b.BuildScopes();
  b.CollectFacts();
  return std::move(b.model);
}

}  // namespace webcc::lint
