// The trace synthesizer: ScenarioConfig -> SynthWorkload, a pure function.
//
// Generate() is deterministic in the config alone (the seed is part of the
// config), so any process — a farm worker, a bench, a different machine —
// regenerates the identical workload from the same JSON text. That is the
// property that lets the replay farm hand workers a scenario instead of a
// shared trace and still merge bit-identical results at any worker count.
//
// Memory is O(sites + documents + requests): one global recency stack (not
// per-site state), CDF tables over documents/sites, and the output arrays
// themselves — a million-site scenario fits comfortably.
#pragma once

#include <cstdint>
#include <vector>

#include "synth/scenario.h"
#include "trace/modifier.h"
#include "trace/record.h"

namespace webcc::synth {

struct SynthWorkload {
  trace::Trace trace;
  // Write schedule: churn creations plus the Zipf-drawn modification
  // stream, sorted by time. Feeds ReplayConfig::explicit_modifications.
  std::vector<trace::ModEvent> writes;
};

// Synthesizes the workload. The config must satisfy Validate() == "" —
// anything FromJson accepts qualifies; hand-built configs are checked.
SynthWorkload Generate(const ScenarioConfig& config);

// FNV-1a over a canonical byte serialization of the whole workload
// (documents, clients, request records, write schedule). Equal digests are
// the determinism contract the tests and the CI synth gate assert.
std::uint64_t WorkloadDigest(const SynthWorkload& workload);

}  // namespace webcc::synth
