// Common Log Format reader/writer.
//
// The paper replays five server logs from the Internet Traffic Archive; all
// are in Common Log Format. The reader lets real ITA logs drive the replay
// engine when they are available; the writer round-trips synthetic traces
// into the same format for interoperability with external tools.
//
//   host ident authuser [dd/Mon/yyyy:HH:MM:SS zone] "GET /path HTTP/1.0" status bytes
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/record.h"

namespace webcc::trace {

struct ClfParseStats {
  std::uint64_t lines = 0;
  std::uint64_t accepted = 0;
  std::uint64_t malformed = 0;   // unparseable lines
  std::uint64_t skipped = 0;     // parseable but not a successful GET
};

// Reads CLF from `in`. Only successful GETs (status 200/304) are kept, like
// the paper's preprocessing. Document sizes are the largest byte count
// observed for each path (304s carry no size). Timestamps are shifted so the
// first accepted record is at 0; `duration` is set to the last record's
// offset rounded up to a whole second.
Trace ReadClf(std::istream& in, std::string trace_name,
              ClfParseStats* stats = nullptr);

// Writes `trace` to `out` as CLF, with timestamps offset from
// `epoch_seconds` (Unix time of the trace start) and all statuses 200.
void WriteClf(const Trace& trace, std::ostream& out,
              std::int64_t epoch_seconds = 804556800 /* 1995-07-01 */);

// Parses one CLF line into its parts; exposed for tests. Returns false if
// the line is malformed. The string fields are views into `line` — they are
// valid only while the caller's line buffer is, which lets the reader's
// per-line loop run without allocating temporaries.
struct ClfLine {
  std::string_view host;
  std::int64_t unix_seconds = 0;
  std::string_view method;
  std::string_view path;
  int status = 0;
  std::int64_t bytes = 0;  // -1 when the field is "-"
};
bool ParseClfLine(std::string_view line, ClfLine& out);

}  // namespace webcc::trace
