// Replay farm: a fixed pool of worker threads executing independent
// replays concurrently.
//
// Parallelism lives strictly *across* replays. Each replay is the same
// deterministic single-threaded simulation `RunReplay` always was — one
// Engine, one Simulator, no shared mutable state between workers — so a
// farmed run produces bit-identical ReplayMetrics regardless of worker
// count or completion order (see SameSimulation). The only sharing is the
// immutable inputs: configs reference their traces by pointer, so one
// parsed trace feeds every cell of a table sweep.
//
// Callers must keep every submitted config's trace (and any other
// referenced state) alive until Collect() returns.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "obs/trace_sink.h"
#include "replay/config.h"
#include "replay/engine.h"
#include "replay/metrics.h"
#include "util/thread_annotations.h"

namespace webcc::replay {

class Farm {
 public:
  // `workers` = 0 sizes the pool to the hardware concurrency (at least 1).
  explicit Farm(unsigned workers = 0);
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  // Enqueues one replay and returns its slot: Collect()'s result vector is
  // ordered by submission, never by completion, so table output built from
  // it is byte-identical to a serial run.
  std::size_t Submit(ReplayConfig config);

  // Blocks until every submitted replay has finished and returns their
  // metrics in submission order. Resets the farm for reuse.
  std::vector<ReplayMetrics> Collect();

  // Routes every subsequently submitted replay's trace through a private
  // per-job BufferTraceSink; Collect() then appends the buffers to `sink`
  // in submission order. Because each run's JSONL stream is self-contained
  // (intern ids restart at run_begin), the merged stream is byte-identical
  // for any worker count — the same guarantee SameSimulation gives for
  // metrics. Overrides any trace_sink already set on a submitted config.
  // nullptr turns merging off. `sink` must outlive the next Collect().
  void set_merged_trace_sink(obs::TraceSink* sink) {
    // Under the lock: workers and Submit() read merged_sink_ concurrently
    // (found by the thread-safety annotations — the pre-annotation setter
    // wrote the field bare, a data race when called beside a live batch).
    const util::MutexLock lock(mu_);
    merged_sink_ = sink;
  }

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // One-shot convenience: submit all configs, collect all results.
  static std::vector<ReplayMetrics> RunAll(
      const std::vector<ReplayConfig>& configs, unsigned workers = 0);

 private:
  struct Job {
    std::size_t index = 0;
    ReplayConfig config;
  };

  void WorkerLoop();

  std::vector<std::thread> threads_;  // written only by the constructor

  util::Mutex mu_;
  util::CondVar work_cv_;  // workers wait here for jobs
  util::CondVar done_cv_;  // Collect() waits here for completion
  std::deque<Job> queue_ WEBCC_GUARDED_BY(mu_);
  std::vector<ReplayMetrics> results_ WEBCC_GUARDED_BY(mu_);
  // Per-job trace buffers, indexed like results_; merged at Collect().
  std::vector<std::unique_ptr<obs::BufferTraceSink>> job_sinks_
      WEBCC_GUARDED_BY(mu_);
  obs::TraceSink* merged_sink_ WEBCC_GUARDED_BY(mu_) = nullptr;
  std::size_t submitted_ WEBCC_GUARDED_BY(mu_) = 0;
  std::size_t completed_ WEBCC_GUARDED_BY(mu_) = 0;
  bool stop_ WEBCC_GUARDED_BY(mu_) = false;
};

}  // namespace webcc::replay
