// The seven v1 webcc_lint rules, reimplemented on the token stream. Rule
// ids, messages and path scoping match the line-scanner version (the
// fixture suite pins them); what changed is fidelity — string literals,
// raw strings, comments and member-qualified calls can no longer trip a
// rule, because the rules see tokens, not characters.
#include <set>
#include <string>
#include <string_view>

#include "passes.h"

namespace webcc::lint {
namespace {

constexpr std::string_view kDeterminismClock = "determinism-clock";
constexpr std::string_view kUnorderedIter = "unordered-iter-in-dump";
constexpr std::string_view kRawMutex = "raw-mutex";
constexpr std::string_view kEnumSwitchDefault = "enum-switch-default";
constexpr std::string_view kNakedSend = "naked-send";
constexpr std::string_view kScanPrune = "scan-prune";
constexpr std::string_view kNakedEvict = "naked-evict";

bool PathContains(std::string_view path, std::string_view piece) {
  return path.find(piece) != std::string_view::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

struct RuleScan {
  const FileContext& file;
  Reporter& reporter;
  const ScopeModel& model;

  const Token& Tok(std::size_t k) const { return model.Tok(k); }
  bool IsPunct(std::size_t k, std::string_view p) const {
    const Token& t = Tok(k);
    return t.kind == TokKind::kPunct && t.text == p;
  }
  bool PrevIsMemberAccess(std::size_t k) const {
    return k > 0 && (IsPunct(k - 1, ".") || IsPunct(k - 1, "->"));
  }
  bool PrevIsStd(std::size_t k) const {
    return k >= 2 && IsPunct(k - 1, "::") && Tok(k - 2).kind == TokKind::kIdent &&
           Tok(k - 2).text == "std";
  }
  bool NextIsCall(std::size_t k) const {
    return k + 1 < model.code.size() && IsPunct(k + 1, "(");
  }
  bool InDump(std::size_t k) const {
    const int s = model.scope_of[k];
    return s >= 0 && model.scopes[static_cast<std::size_t>(s)].in_dump;
  }

  void Report(int line, std::string_view rule, std::string message) {
    Finding f;
    f.file = file.path;
    f.line = line;
    f.rule = std::string(rule);
    f.pass = "scanner";
    f.message = std::move(message);
    reporter.Report(std::move(f));
  }

  // --- determinism-clock ------------------------------------------------------

  void CheckClock(std::size_t k) {
    static const std::set<std::string, std::less<>> kClockTypes = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock"};
    static const std::set<std::string, std::less<>> kClockCalls = {
        "rand",          "srand", "gettimeofday",
        "clock_gettime", "time",  "timespec_get",
        "clock"};
    const std::string& word = Tok(k).text;
    if (PrevIsMemberAccess(k)) return;  // x.time(...) is a member, not libc
    if (kClockTypes.count(word) != 0) {
      // Any qualification fires: std::chrono::steady_clock reads the same
      // wall clock however it is spelled.
      const std::string shown = PrevIsStd(k) ? "std::" + word : word;
      Report(Tok(k).line, kDeterminismClock,
             "nondeterministic source '" + shown +
                 "' in replay code; use the simulated clock or a seeded "
                 "util::Rng");
      return;
    }
    if (kClockCalls.count(word) != 0 && NextIsCall(k)) {
      // `other_ns::time(` is a different function; bare, `::time(` and
      // `std::time(` are the libc clock.
      if (k >= 2 && IsPunct(k - 1, "::") &&
          Tok(k - 2).kind == TokKind::kIdent && Tok(k - 2).text != "std") {
        return;
      }
      Report(Tok(k).line, kDeterminismClock,
             "nondeterministic call '" + word +
                 "(' in replay code; use the simulated clock or a seeded "
                 "util::Rng");
    }
  }

  // --- raw-mutex ---------------------------------------------------------------

  void CheckRawMutexInclude(const Token& pp) {
    for (const std::string_view header :
         {"<mutex>", "<condition_variable>", "<shared_mutex>"}) {
      if (pp.text.find("include") != std::string::npos &&
          pp.text.find(header) != std::string::npos) {
        Report(pp.line, kRawMutex,
               "raw '#include " + std::string(header) +
                   "' is invisible to thread-safety analysis; use "
                   "util::Mutex/MutexLock/CondVar "
                   "(util/thread_annotations.h)");
        return;
      }
    }
  }

  void CheckRawMutex(std::size_t k) {
    static const std::set<std::string, std::less<>> kRawTypes = {
        "mutex",       "timed_mutex",        "recursive_mutex",
        "shared_mutex", "lock_guard",        "unique_lock",
        "scoped_lock", "condition_variable", "condition_variable_any"};
    const std::string& word = Tok(k).text;
    if (kRawTypes.count(word) == 0 || !PrevIsStd(k)) return;
    Report(Tok(k).line, kRawMutex,
           "raw 'std::" + word +
               "' is invisible to thread-safety analysis; use "
               "util::Mutex/MutexLock/CondVar (util/thread_annotations.h)");
  }

  // --- enum-switch-default -----------------------------------------------------

  void CheckDefault(std::size_t k) {
    if (!IsPunct(k + 1, ":")) return;
    for (int s = model.scope_of[k]; s >= 0;
         s = model.scopes[static_cast<std::size_t>(s)].parent) {
      const Scope& sc = model.scopes[static_cast<std::size_t>(s)];
      if (sc.kind != ScopeKind::kSwitch) continue;
      if (sc.switch_enum) {
        Report(Tok(k).line, kEnumSwitchDefault,
               "'default:' in a switch over a protocol enum hides missing "
               "cases from -Wswitch; enumerate every value");
      }
      return;  // innermost switch decides
    }
  }

  // --- unordered-iter-in-dump --------------------------------------------------

  void CheckUnorderedIter(std::size_t k) {
    const std::string& word = Tok(k).text;
    if (word == "for" && NextIsCall(k) && InDump(k)) {
      // Range-for: `for ( init : range )` — flag unordered names in range.
      const std::size_t n = model.code.size();
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = k + 1; j < n; ++j) {
        if (IsPunct(j, "(")) ++depth;
        if (IsPunct(j, ")") && --depth == 0) {
          close = j;
          break;
        }
        if (depth == 1 && IsPunct(j, ":") && colon == 0) colon = j;
      }
      if (colon == 0 || close == 0) return;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (Tok(j).kind != TokKind::kIdent) continue;
        if (file.unordered_names.count(Tok(j).text) == 0) continue;
        Report(Tok(k).line, kUnorderedIter,
               "iterating unordered container '" + Tok(j).text +
                   "' in an output path; sort first or use an ordered "
                   "container");
        return;
      }
      return;
    }
    // Iterator-style walks: x.begin() over a declared-unordered container.
    if (word == "begin" && NextIsCall(k) && k >= 2 && IsPunct(k - 1, ".") &&
        Tok(k - 2).kind == TokKind::kIdent && InDump(k) &&
        file.unordered_names.count(Tok(k - 2).text) != 0) {
      Report(Tok(k).line, kUnorderedIter,
             "iterating unordered container '" + Tok(k - 2).text +
                 "' in an output path; sort first or use an ordered "
                 "container");
    }
  }

  // --- naked-send --------------------------------------------------------------

  void CheckNakedSend(std::size_t k) {
    const std::string& word = Tok(k).text;
    if (!NextIsCall(k)) return;
    if (word == "send" || word == "recv") {
      if (PrevIsMemberAccess(k)) return;
      Report(Tok(k).line, kNakedSend,
             "direct socket I/O '" + word +
                 "(' bypasses the classified IoError path; go through "
                 "live/socket.h");
      return;
    }
    if ((word == "write" || word == "read") && k >= 1 && IsPunct(k - 1, "::")) {
      // The `::write(` / `::read(` syscall spellings (v1 flagged any
      // ::-qualified form; member calls fall through above).
      Report(Tok(k).line, kNakedSend,
             "direct socket I/O '::" + word +
                 "(' bypasses the classified IoError path; go through "
                 "live/socket.h");
      return;
    }
    if (word == "SendOneWay" && !PrevIsMemberAccess(k)) {
      Report(Tok(k).line, kNakedSend,
             "unclassified 'SendOneWay(' loses the timeout/refused "
             "distinction the push retry and partition-hold logic depends "
             "on; use SendOneWayClassified");
    }
  }

  // --- scan-prune / naked-evict (proximity rules) -------------------------------

  int last_lease_line = -1000;
  int last_budget_line = -1000;

  void TrackContext(std::size_t k) {
    const std::string& word = Tok(k).text;
    // Members spell it `lease_until_` / `bytes_used_`, hence prefix match.
    if (StartsWith(word, "lease_until") || word == "LeaseActive") {
      last_lease_line = Tok(k).line;
    }
    if (StartsWith(word, "bytes_used") || StartsWith(word, "capacity_bytes")) {
      last_budget_line = Tok(k).line;
    }
  }

  void CheckScanPrune(std::size_t k) {
    // `= chain.erase(it)` — iterator-erase in a full-scan prune loop.
    if (Tok(k).text != "erase" || !NextIsCall(k) || k < 1 ||
        !IsPunct(k - 1, ".")) {
      return;
    }
    const std::size_t n = model.code.size();
    if (k + 2 >= n || Tok(k + 2).kind != TokKind::kIdent ||
        k + 3 >= n || !IsPunct(k + 3, ")")) {
      return;  // argument is not a single identifier (not an iterator)
    }
    // Walk the object chain back to check it is assigned from.
    std::size_t j = k - 1;  // the '.'
    while (j >= 1 && (Tok(j - 1).kind == TokKind::kIdent ||
                      IsPunct(j - 1, ".") || IsPunct(j - 1, "->") ||
                      IsPunct(j - 1, "::"))) {
      --j;
    }
    if (j < 1 || !IsPunct(j - 1, "=")) return;
    if (Tok(k).line - last_lease_line <= 8) {
      Report(Tok(k).line, kScanPrune,
             "iteration-erase prune over lease state scans every entry; "
             "index expiries through core::TimerWheel "
             "(see core/invalidation_table.cc)");
    }
  }

  void CheckNakedEvict(std::size_t k) {
    const std::string& word = Tok(k).text;
    if (word != "erase" && word != "pop_back" && word != "pop_front") return;
    if (!NextIsCall(k) || !PrevIsMemberAccess(k)) return;
    if (Tok(k).line - last_budget_line <= 8) {
      Report(Tok(k).line, kNakedEvict,
             "hand-rolled byte-budget eviction bypasses the eviction "
             "kernel; route victim choice through http::ProxyCache and "
             "src/http/eviction/");
    }
  }
};

}  // namespace

// --- per-rule path scoping (unchanged from v1) ---------------------------------

bool RuleAppliesToPath(std::string_view rule, std::string_view path) {
  const auto ends_with = [path](std::string_view tail) {
    return path.size() >= tail.size() &&
           path.substr(path.size() - tail.size()) == tail;
  };
  if (rule == kDeterminismClock) {
    // The live stack and CLI run on real wall clocks; util owns the
    // sanctioned clock/RNG plumbing itself.
    return !PathContains(path, "/live/") && !PathContains(path, "/cli/") &&
           !PathContains(path, "/util/");
  }
  if (rule == kRawMutex) {
    return !ends_with("util/thread_annotations.h");
  }
  if (rule == kNakedSend) {
    return PathContains(path, "live") && !ends_with("live/socket.cc") &&
           !ends_with("live/socket.h");
  }
  if (rule == kScanPrune) {
    // The wheel and the compact list own the sanctioned expiry machinery.
    return !ends_with("core/timer_wheel.h") && !ends_with("core/site_list.h");
  }
  if (rule == kNakedEvict) {
    // The eviction kernel and its host cache own the sanctioned loop.
    return !PathContains(path, "http/eviction/") &&
           !ends_with("http/proxy_cache.cc") &&
           !ends_with("http/proxy_cache.h");
  }
  return true;  // unordered-iter-in-dump, enum-switch-default, new passes
}

std::set<std::string> CollectUnorderedNames(const ScopeModel& model) {
  std::set<std::string> names;
  const std::size_t n = model.code.size();
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const Token& t = model.Tok(k);
    if (t.kind != TokKind::kIdent ||
        (t.text != "unordered_map" && t.text != "unordered_set")) {
      continue;
    }
    const Token& open = model.Tok(k + 1);
    if (open.kind != TokKind::kPunct || open.text != "<") continue;
    // Skip the template argument list; `>>` closes two levels.
    int depth = 0;
    std::size_t j = k + 1;
    for (; j < n; ++j) {
      const Token& u = model.Tok(j);
      if (u.kind != TokKind::kPunct) continue;
      if (u.text == "<") ++depth;
      if (u.text == ">") --depth;
      if (u.text == ">>") depth -= 2;
      if (depth <= 0 && (u.text == ">" || u.text == ">>")) break;
    }
    // First plain identifier after the '>' is the declared name
    // (`std::unordered_map<K, V> interns_ WEBCC_GUARDED_BY(mu_);`).
    for (++j; j < n; ++j) {
      const Token& u = model.Tok(j);
      if (u.kind == TokKind::kIdent) {
        if (u.text == "const" || u.text == "mutable") continue;
        names.insert(u.text);
        break;
      }
      if (u.kind == TokKind::kPunct &&
          (u.text == "&" || u.text == "*" || u.text == "::")) {
        continue;
      }
      break;  // `;`, `(`, `{`, `,` — a type-only mention, no variable
    }
  }
  return names;
}

void RunLegacyRules(const FileContext& file, Reporter& reporter) {
  RuleScan scan{file, reporter, file.model};
  const std::string_view path = file.path;
  const bool clock_on = RuleAppliesToPath(kDeterminismClock, path);
  const bool mutex_on = RuleAppliesToPath(kRawMutex, path);
  const bool send_on = RuleAppliesToPath(kNakedSend, path);
  const bool prune_on = RuleAppliesToPath(kScanPrune, path);
  const bool evict_on = RuleAppliesToPath(kNakedEvict, path);

  if (mutex_on) {
    for (const Token& t : file.model.tokens) {
      if (t.kind == TokKind::kPreproc) scan.CheckRawMutexInclude(t);
    }
  }
  const std::size_t n = file.model.code.size();
  for (std::size_t k = 0; k < n; ++k) {
    const Token& t = file.model.Tok(k);
    if (t.kind != TokKind::kIdent) continue;
    scan.TrackContext(k);
    if (clock_on) scan.CheckClock(k);
    if (mutex_on) scan.CheckRawMutex(k);
    if (t.text == "default") scan.CheckDefault(k);
    scan.CheckUnorderedIter(k);
    if (send_on) scan.CheckNakedSend(k);
    if (prune_on) scan.CheckScanPrune(k);
    if (evict_on) scan.CheckNakedEvict(k);
  }
}

}  // namespace webcc::lint
