// Ablation A1: serialized vs decoupled invalidation sending, and the shard
// sweep of the decoupled sender tier.
//
// Part 1 (the original ablation): the paper's prototype does not accept new
// requests until all invalidations for a modification have been sent, which
// it identifies as the cause of invalidation's large worst-case client
// latency, and suggests a separate sending process as the fix. The table
// quantifies both configurations across the six replay runs.
//
// Part 2 (the shard sweep): with the sender decoupled, the remaining
// bottleneck is the single sender draining a write storm one frame at a
// time. The sweep runs a burst workload (two modification storms 50ms
// apart over 64 documents cached by up to 40 sites) at 1/2/4/8 accelerator
// shards, unbatched and with a 100ms batch window, and records per cell:
// per-shard throughput (wire URLs / busiest sender's busy time), frames/s,
// coalesced duplicates, and the worst-case write-blocked latency. Results
// go under the "shard_sweep" top-level key of BENCH_farm.json (bench_farm
// owns the "farm" key).
//
// The two claims the exit code enforces, and why they attach to different
// halves of the sweep: per-frame send CPU is constant, and in unbatched
// mode frames are (url, site) pairs that consistent hashing splits evenly,
// so the busiest sender's busy time — and with it throughput — must scale
// >= 2x from 1 to 4 shards. Batched mode cannot make that claim under this
// dense workload (a site caching documents in every shard produces a frame
// in every shard's outbox, so frames-per-shard stays near the site count);
// its win is frames collapsing by the per-site URL count and the write
// storm draining as one short burst of batched frames, which must not
// worsen — and in practice shrinks — the worst-case write-blocked latency.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/workload.h"

using namespace webcc;

namespace {

// Burst workload: 40 client sites warming 64 documents for 20 minutes,
// then a full-catalog modification storm, then a second storm 50ms later
// rewriting the first half of the catalog — inside the 100ms batch window,
// so batched cells must coalesce the duplicate (site, url) pairs.
const trace::Trace& BurstTrace() {
  static const trace::Trace trace = [] {
    trace::WorkloadConfig config;
    config.name = "shard-burst";
    config.duration = 30 * kMinute;
    config.total_requests = 4000;
    config.num_documents = 64;
    config.num_clients = 40;
    config.doc_zipf_exponent = 0.3;  // spread coverage across the catalog
    config.client_zipf_exponent = 0.3;
    config.seed = 17;
    return trace::GenerateTrace(config);
  }();
  return trace;
}

replay::ReplayConfig SweepConfig(std::uint32_t shards, bool batched) {
  replay::ReplayConfig config;
  config.protocol = core::Protocol::kInvalidation;
  config.trace = &BurstTrace();
  config.num_pseudo_clients = 40;  // one site per client
  config.serialized_invalidation = false;
  config.accelerator_shards = shards;
  config.invalidation_batch_window = batched ? 100 * kMillisecond : 0;
  // The second write lands 10us of trace time after the first. Note the
  // coalesced column stays ~0 here by design of the protocol, not of the
  // outbox: the first write's fan-out deregisters every site it targets, so
  // a duplicate (site, url) outbox entry needs the site to re-fetch inside
  // the 20ms notify gap between the writes — a race the outbox must absorb
  // (the unit tests drive it directly) but that a burst workload rarely
  // hits. The second storm instead measures the no-targets fast path riding
  // through a loaded outbox.
  for (trace::DocId doc = 0; doc < 64; ++doc) {
    config.explicit_modifications.push_back(
        {20 * kMinute + 50 * doc, doc});
    if (doc < 32) {
      config.explicit_modifications.push_back(
          {20 * kMinute + 50 * doc + 10, doc});
    }
  }
  return config;
}

struct SweepCell {
  std::uint32_t shards = 0;
  bool batched = false;
  replay::ReplayMetrics metrics;

  std::uint64_t frames() const {
    return metrics.invalidation_frames_sent > 0
               ? metrics.invalidation_frames_sent
               : metrics.invalidations_sent;
  }
  double busy_seconds() const {
    return static_cast<double>(metrics.inval_sender_busy_max_us) / 1e6;
  }
  // Fan-out throughput: wire URLs pushed per second of the busiest shard
  // sender's busy time. Coalesced URLs count — they reached their site
  // inside a delivered frame without costing a send.
  double urls_per_second() const {
    const double busy = busy_seconds();
    return busy > 0.0
               ? static_cast<double>(metrics.invalidations_delivered +
                                     metrics.invalidations_coalesced) /
                     busy
               : 0.0;
  }
  double frames_per_second() const {
    const double busy = busy_seconds();
    return busy > 0.0 ? static_cast<double>(frames()) / busy : 0.0;
  }
};

}  // namespace

int main() {
  std::printf("=== Ablation: serialized vs decoupled invalidation sends ===\n\n");

  // Twelve independent replays (six rows, two sender configs): generate
  // traces serially, then farm the runs across the available cores.
  const auto specs = replay::AllTableExperiments();
  for (const replay::ExperimentSpec& spec : specs) bench::TraceFor(spec.trace);
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size() * 2);
  for (const replay::ExperimentSpec& spec : specs) {
    replay::ReplayConfig serialized = replay::MakeReplayConfig(
        spec, core::Protocol::kInvalidation, bench::TraceFor(spec.trace));
    replay::ReplayConfig decoupled = serialized;
    decoupled.serialized_invalidation = false;
    configs.push_back(serialized);
    configs.push_back(decoupled);
  }
  const std::vector<replay::ReplayMetrics> runs =
      replay::Farm::RunAll(configs);

  stats::Table table({"Trace", "avg ser.", "avg dec.", "max ser.", "max dec.",
                      "p99 ser.", "p99 dec."});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const replay::ExperimentSpec& spec = specs[i];
    const replay::ReplayMetrics& with_blocking = runs[2 * i];
    const replay::ReplayMetrics& without_blocking = runs[2 * i + 1];

    table.AddRow({spec.id,
                  util::Fixed(with_blocking.latency_ms.mean(), 1) + "ms",
                  util::Fixed(without_blocking.latency_ms.mean(), 1) + "ms",
                  util::Fixed(with_blocking.latency_ms.max(), 0) + "ms",
                  util::Fixed(without_blocking.latency_ms.max(), 0) + "ms",
                  util::Fixed(with_blocking.latency_ms.Percentile(99), 1) + "ms",
                  util::Fixed(without_blocking.latency_ms.Percentile(99), 1) +
                      "ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Serialized sending (the paper's prototype) stalls whatever request\n"
      "queues behind a long fan-out — the max-latency column; decoupling\n"
      "the sender (the paper's proposed fix) removes the stall without\n"
      "changing average latency or any message count.\n\n");

  // --- shard sweep -----------------------------------------------------------
  std::printf("=== Shard sweep: burst fan-out, 1/2/4/8 shards ===\n\n");
  BurstTrace();  // generate outside the farm (the cache is not thread-safe)

  const std::uint32_t kShardCounts[] = {1, 2, 4, 8};
  std::vector<SweepCell> cells;
  std::vector<replay::ReplayConfig> sweep_configs;
  for (const bool batched : {false, true}) {
    for (const std::uint32_t shards : kShardCounts) {
      SweepCell cell;
      cell.shards = shards;
      cell.batched = batched;
      cells.push_back(cell);
      sweep_configs.push_back(SweepConfig(shards, batched));
    }
  }
  const std::vector<replay::ReplayMetrics> sweep_runs =
      replay::Farm::RunAll(sweep_configs);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].metrics = sweep_runs[i];
  }

  stats::Table sweep_table({"Shards", "Mode", "URLs", "Coal.", "Frames",
                            "Busy max", "URLs/s", "Frames/s", "Wr-wall max",
                            "Flush max", "Viol."});
  for (const SweepCell& cell : cells) {
    sweep_table.AddRow(
        {std::to_string(cell.shards), cell.batched ? "batched" : "unbatched",
         std::to_string(cell.metrics.invalidations_sent),
         std::to_string(cell.metrics.invalidations_coalesced),
         std::to_string(cell.frames()),
         util::Fixed(cell.busy_seconds() * 1000.0, 0) + "ms",
         util::Fixed(cell.urls_per_second(), 0),
         util::Fixed(cell.frames_per_second(), 0),
         util::Fixed(cell.metrics.write_completion_wall_ms.max(), 0) + "ms",
         util::Fixed(cell.metrics.batch_flush_ms.max(), 0) + "ms",
         std::to_string(cell.metrics.strong_violations)});
  }
  std::printf("%s\n", sweep_table.Render().c_str());

  const auto cell_at = [&cells](std::uint32_t shards,
                                bool batched) -> const SweepCell& {
    for (const SweepCell& cell : cells) {
      if (cell.shards == shards && cell.batched == batched) return cell;
    }
    std::abort();
  };
  const double scaling = cell_at(4, false).urls_per_second() /
                         cell_at(1, false).urls_per_second();
  const bool scales = scaling >= 2.0;
  // Batching's claim is latency, not throughput: fewer frames mean the
  // write storm drains sooner, so the slowest write's wall time from
  // fan-out start to completion must not regress at any shard count.
  bool batching_helps = true;
  for (const std::uint32_t shards : kShardCounts) {
    batching_helps =
        batching_helps &&
        cell_at(shards, true).metrics.write_completion_wall_ms.max() <=
            cell_at(shards, false).metrics.write_completion_wall_ms.max();
  }
  std::printf(
      "Unbatched 1->4 shard throughput scaling: %.2fx (gate: >= 2x)\n"
      "Worst-case write completion wall time, batched vs unbatched at\n"
      "every shard count (gate: batched <= unbatched): %s — at 1 shard,\n"
      "%.0fms vs %.0fms. Batching cannot claim the throughput gate itself:\n"
      "a site caching documents in every shard puts a frame in every\n"
      "shard's outbox, so per-shard frame counts stay near the site count\n"
      "regardless of shard count.\n",
      scaling, batching_helps ? "holds" : "VIOLATED",
      cell_at(1, true).metrics.write_completion_wall_ms.max(),
      cell_at(1, false).metrics.write_completion_wall_ms.max());

  std::string cells_json = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& cell = cells[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"shards\": %u, \"batched\": %s, \"urls_sent\": %llu, "
        "\"urls_delivered\": %llu, \"urls_coalesced\": %llu, "
        "\"frames\": %llu, \"sender_busy_max_ms\": %.1f, "
        "\"sender_busy_total_ms\": %.1f, \"urls_per_sec\": %.0f, "
        "\"frames_per_sec\": %.0f, \"write_wall_max_ms\": %.0f, "
        "\"write_blocked_max_ms\": %.0f, "
        "\"batch_flush_max_ms\": %.0f, \"strong_violations\": %llu}",
        i == 0 ? "" : ", ", cell.shards, cell.batched ? "true" : "false",
        static_cast<unsigned long long>(cell.metrics.invalidations_sent),
        static_cast<unsigned long long>(cell.metrics.invalidations_delivered),
        static_cast<unsigned long long>(cell.metrics.invalidations_coalesced),
        static_cast<unsigned long long>(cell.frames()),
        static_cast<double>(cell.metrics.inval_sender_busy_max_us) / 1000.0,
        static_cast<double>(cell.metrics.inval_sender_busy_total_us) / 1000.0,
        cell.urls_per_second(), cell.frames_per_second(),
        cell.metrics.write_completion_wall_ms.max(),
        cell.metrics.write_blocked_trace_ms.max(),
        cell.metrics.batch_flush_ms.max(),
        static_cast<unsigned long long>(cell.metrics.strong_violations));
    cells_json += buf;
  }
  cells_json += "]";

  const std::string payload =
      std::string("{\"bench\": \"shard_sweep\", \"batch_window_ms\": 100, "
                  "\"unbatched_urls_per_sec_scaling_1_to_4\": ") +
      util::Fixed(scaling, 2) +
      ", \"batched_write_wall_never_worse\": " +
      (batching_helps ? "true" : "false") +
      ", \"pass\": " + (scales && batching_helps ? "true" : "false") +
      ", \"cells\": " + cells_json + "}";
  bench::WriteBenchJsonKey("BENCH_farm.json", "shard_sweep", payload);
  return scales && batching_helps ? 0 : 1;
}
