// Fixture: a WEBCC_GUARDED_BY field read without its mutex. The writer
// takes the lock; the stats getter skips it, so guarded-by-unlocked fires
// with a witness naming the access and the declaration.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace util
#define WEBCC_GUARDED_BY(x)

class LeaseCounterBoard {
 public:
  void Record(int delta) {
    const util::MutexLock lock(mu_);
    granted_ += delta;
  }
  int granted() const {
    return granted_;  // BUG: reads the guarded counter lock-free
  }

 private:
  util::Mutex mu_;
  int granted_ WEBCC_GUARDED_BY(mu_) = 0;
};
