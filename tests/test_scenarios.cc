// Golden scenario corpus (ctest -L scenario): every scenario under
// tests/data/scenarios/ is regenerated from its JSON and replayed across all
// five protocols under one fixed replay configuration; the files pin the
// workload digest plus per-protocol metrics and trace digests, so synthetic
// scenarios regress exactly the way fault plans do. On mismatch the failure
// prints the full actual "expect" block to paste into the JSON.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/farm.h"
#include "synth/generate.h"
#include "synth/scenario.h"

namespace webcc::synth {
namespace {

using core::Protocol;

constexpr Protocol kAllProtocols[] = {
    Protocol::kAdaptiveTtl, Protocol::kPollEveryTime, Protocol::kInvalidation,
    Protocol::kPiggybackValidation, Protocol::kPiggybackInvalidation};

const char* Token(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAdaptiveTtl:
      return "ttl";
    case Protocol::kPollEveryTime:
      return "poll";
    case Protocol::kInvalidation:
      return "invalidation";
    case Protocol::kPiggybackValidation:
      return "pcv";
    case Protocol::kPiggybackInvalidation:
      return "psi";
  }
  return "unknown";
}

replay::ReplayConfig GoldenReplayConfig(const ScenarioConfig& scenario,
                                        Protocol protocol) {
  replay::ReplayConfig config;
  config.scenario = &scenario;
  config.protocol = protocol;
  return config;
}

// One fixed configuration for the whole corpus, mirroring the fault golden
// harness: regeneration is mechanical because nothing varies but the file.
std::map<std::string, std::string> RunGoldenScenario(
    const ScenarioConfig& scenario) {
  std::map<std::string, std::string> actual;
  const auto put = [&actual](const std::string& name, std::uint64_t value) {
    actual[name] = std::to_string(value);
  };
  put("workload_digest", WorkloadDigest(Generate(scenario)));
  for (const Protocol protocol : kAllProtocols) {
    obs::BufferTraceSink sink;
    replay::ReplayConfig config = GoldenReplayConfig(scenario, protocol);
    config.trace_sink = &sink;
    const replay::ReplayMetrics metrics = replay::RunReplay(config);
    const std::string prefix = Token(protocol);
    put(prefix + ".requests_issued", metrics.requests_issued);
    put(prefix + ".cache_hits", metrics.cache_hits());
    put(prefix + ".stale_serves", metrics.stale_serves);
    put(prefix + ".strong_violations", metrics.strong_violations);
    put(prefix + ".modifications_applied", metrics.modifications_applied);
    put(prefix + ".trace_digest", obs::DigestJsonl(sink.Text()));
  }
  return actual;
}

std::string FormatExpectBlock(const std::map<std::string, std::string>& m) {
  std::string out = "  \"expect\": {\n";
  for (auto it = m.begin(); it != m.end(); ++it) {
    out += "    \"" + it->first + "\": " + it->second;
    out += std::next(it) == m.end() ? "\n" : ",\n";
  }
  out += "  }";
  return out;
}

std::filesystem::path ScenarioDir() {
  return std::filesystem::path(WEBCC_TEST_DATA_DIR) / "scenarios";
}

ScenarioFile LoadScenario(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  ScenarioFile file;
  std::string error;
  EXPECT_TRUE(ParseScenarioFile(text.str(), file, error))
      << path << ": " << error;
  return file;
}

TEST(ScenarioGoldenCorpus, ScenariosReproduceExpectedMetricsAndDigests) {
  ASSERT_TRUE(std::filesystem::is_directory(ScenarioDir())) << ScenarioDir();

  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ScenarioDir())) {
    if (entry.path().extension() != ".json") continue;
    ++files;
    SCOPED_TRACE(entry.path().filename().string());

    const ScenarioFile file = LoadScenario(entry.path());
    ASSERT_FALSE(file.expect.empty())
        << "golden scenario has no expect block to check";

    const std::map<std::string, std::string> actual =
        RunGoldenScenario(file.config);
    for (const auto& [name, expected] : file.expect) {
      const auto found = actual.find(name);
      ASSERT_NE(found, actual.end()) << "unknown expect metric: " << name;
      EXPECT_EQ(found->second, expected)
          << name << " drifted; full actual block:\n"
          << FormatExpectBlock(actual);
    }
  }
  // The corpus itself is under test: losing the files is a failure.
  EXPECT_GE(files, 4);
}

// The headline consistency claim on the headline scenario: a flash crowd
// hammering a hot document *while it is being modified* must never produce
// a post-write-completion stale serve under the strong protocols.
TEST(ScenarioGoldenCorpus, FlashCrowdMidWriteKeepsStrongConsistency) {
  const ScenarioFile file =
      LoadScenario(ScenarioDir() / "flash_crowd_mid_write.json");
  ASSERT_GT(file.config.write_fraction, 0.0);
  for (const Protocol protocol :
       {Protocol::kPollEveryTime, Protocol::kInvalidation}) {
    const replay::ReplayMetrics metrics =
        replay::RunReplay(GoldenReplayConfig(file.config, protocol));
    EXPECT_EQ(metrics.strong_violations, 0u) << Token(protocol);
    EXPECT_GT(metrics.modifications_applied, 0u) << Token(protocol);
    // Strong protocols may serve stale only while the write is in flight.
    EXPECT_EQ(metrics.stale_serves, metrics.stale_while_invalidation_in_flight)
        << Token(protocol);
  }
}

// Whole-corpus worker invariance: every scenario x every protocol submitted
// through a 1-worker and an 8-worker farm merges to the identical byte
// stream — workers regenerate their workloads independently.
TEST(ScenarioGoldenCorpus, CorpusDigestsInvariantAcrossFarmWorkerCounts) {
  std::vector<ScenarioFile> files;
  for (const auto& entry : std::filesystem::directory_iterator(ScenarioDir())) {
    if (entry.path().extension() != ".json") continue;
    files.push_back(LoadScenario(entry.path()));
  }
  ASSERT_GE(files.size(), 4u);

  const auto run_with_workers = [&files](unsigned workers) {
    obs::BufferTraceSink merged;
    replay::Farm farm(workers);
    farm.set_merged_trace_sink(&merged);
    for (const ScenarioFile& file : files) {
      for (const Protocol protocol : kAllProtocols) {
        farm.Submit(GoldenReplayConfig(file.config, protocol));
      }
    }
    farm.Collect();
    return merged.TakeText();
  };

  const std::string serial = run_with_workers(1);
  const std::string farmed = run_with_workers(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(obs::DigestJsonl(serial), obs::DigestJsonl(farmed));
  EXPECT_EQ(serial, farmed);
}

}  // namespace
}  // namespace webcc::synth
