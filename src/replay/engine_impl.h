// Internal definition of the replay engine, shared by its translation
// units (engine.cc: setup/coordinator/client loop, engine_invalidation.cc:
// modifier + invalidation fan-out, engine_hierarchy.cc: parent proxy).
// Not part of the public replay interface — include replay/engine.h.
//
// All protocol policy decisions (serve-local vs validate, TTL/lease state
// for new and revalidated entries, write fan-out) are delegated to the
// core::consistency kernel; this class only executes the returned
// decisions against the simulated caches and network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/consistency/policy.h"
#include "core/delivery.h"
#include "core/outbox.h"
#include "core/sharded_accelerator.h"
#include "fault/clock.h"
#include "core/piggyback.h"
#include "http/document_store.h"
#include "http/origin.h"
#include "http/proxy_cache.h"
#include "net/message.h"
#include "obs/trace_sink.h"
#include "replay/config.h"
#include "replay/metrics.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "util/check.h"

namespace webcc::replay::detail {

class Engine {
 public:
  explicit Engine(const ReplayConfig& config)
      : config_(config),
        trace_(*config.trace),
        net_(sim_, config.network),
        server_cpu_(sim_, "server-cpu"),
        server_disk_(sim_, "server-disk"),
        accel_(docs_, config.lease,
               config.accelerator_shards > 0 ? config.accelerator_shards : 1),
        policy_(core::consistency::MakePolicy(config.protocol, config.ttl)) {
    WEBCC_CHECK_MSG(config.trace != nullptr, "replay needs a trace");
    WEBCC_CHECK_MSG(config.num_pseudo_clients > 0, "need pseudo-clients");
    Setup();
  }

  ReplayMetrics Run();

 private:
  struct PseudoClient {
    int index = 0;
    sim::NodeId node = 0;
    std::unique_ptr<http::ProxyCache> cache;
    std::vector<trace::TraceRecord> records;
    std::size_t cursor = 0;        // next record to issue
    std::size_t window_end = 0;    // bound for the current interval
    bool down = false;
    std::uint64_t outstanding = 0;  // seq of the in-flight request; 0 = none
    Time request_start = 0;         // wall time the in-flight request began
  };

  sim::NodeId ServerNode() const {
    return static_cast<sim::NodeId>(clients_.size());
  }
  sim::NodeId ParentNode() const {
    return static_cast<sim::NodeId>(clients_.size() + 1);
  }
  // Static protocol capabilities, from the consistency kernel.
  const core::consistency::Traits& Traits() const {
    return policy_->traits();
  }
  bool InvalidationMode() const { return Traits().invalidation_callbacks; }

  static core::consistency::EntryMeta MetaOf(const http::CacheEntry& entry) {
    return {.last_modified = entry.last_modified,
            .fetched_at = entry.fetched_at,
            .ttl_expires = entry.ttl_expires,
            .lease_expires = entry.lease_expires,
            .questionable = entry.questionable};
  }
  static core::consistency::ReplyMeta MetaOf(const net::Reply& reply) {
    return {.last_modified = reply.last_modified,
            .lease_until = reply.lease_until};
  }

  // --- setup (engine.cc) -----------------------------------------------------
  void Setup();

  // --- lock-step coordinator (engine.cc) -------------------------------------
  void StartInterval();
  void ParticipantDone();
  void ApplyFailure(const FailureEvent& event);

  // --- pseudo-client request loop (engine.cc) ---------------------------------
  void IssueNext(PseudoClient& pc);
  void FinishRequest(PseudoClient& pc, Time latency);
  void LocalServe(PseudoClient& pc, http::CacheEntry& entry, Time trace_time);
  void SendToServer(PseudoClient& pc, net::Request request, Time trace_time,
                    bool lease_renewal);
  void ServerHandle(const net::Request& request, int client_index,
                    std::uint64_t seq, Time trace_time);
  void DeliverReply(int client_index, std::uint64_t seq, net::Reply reply,
                    std::string owner, Time trace_time);
  void ApplyPiggyback(int client_index,
                      const std::vector<core::PcvVerdict>& verdicts,
                      const std::vector<std::string>& psi_urls,
                      Time trace_time);

  // --- hierarchy: parent proxy (engine_hierarchy.cc) ---------------------------
  void ParentHandle(const net::Request& request, int client_index,
                    std::uint64_t seq, Time trace_time);
  void ServerHandleForParent(net::Request request, int client_index,
                             std::uint64_t seq, std::string owner,
                             bool leaf_wanted_body, Time trace_time);
  void ParentReceiveReply(net::Reply reply, int client_index,
                          std::uint64_t seq, std::string owner,
                          bool leaf_wanted_body, Time trace_time);
  void ParentDeliverInvalidation(const std::string& url, std::uint64_t mod_id);
  void ParentDeliverServerNotice(const net::Invalidation& notice);

  // --- modifier / invalidation path (engine_invalidation.cc) -------------------
  void ModifierStep();
  // Fans out the invalidations for one modification. `on_complete` runs when
  // the modifier may proceed: in serialized mode after every message is
  // delivered (the paper's check-in blocks until the accelerator finishes
  // sending), in decoupled mode immediately.
  void FanOutInvalidations(std::vector<net::Invalidation> invalidations,
                           const std::string& url, Time trace_time,
                           std::function<void()> on_complete);
  void SendInvalidation(net::Invalidation invalidation, std::uint64_t mod_id);
  void DeliverInvalidation(const net::Invalidation& invalidation,
                           std::uint64_t mod_id);
  void ResolveFirstAttempt(std::uint64_t mod_id);
  void CompleteWrite(const std::string& url);
  void FinishRecoveryNotice();
  void ServerRecover(Time trace_time);

  // --- batched fan-out (engine_invalidation.cc) --------------------------------
  // Batching applies only to decoupled, unicast, flat-topology runs; every
  // other mode keeps its exact pre-batching send path.
  bool BatchingEnabled() const {
    return config_.invalidation_batch_window > 0 &&
           !config_.serialized_invalidation &&
           !config_.multicast_invalidation && !config_.hierarchical;
  }
  // Arms a drain of `shard`'s outbox after `delay` (no-op if one is armed).
  void ScheduleOutboxDrain(std::uint32_t shard, Time delay);
  // Packs the shard's pending entries into per-site batches and puts each
  // on the shard's sender. Sites that are partitioned but alive stay queued
  // (their entries keep coalescing until the link heals); down sites drain
  // normally so the refusal resolves their write targets as dead.
  void DrainOutbox(std::uint32_t shard);
  void SendInvalidationBatch(core::InvalidationOutbox::Batch batch);
  void DeliverInvalidationBatch(const core::InvalidationOutbox::Batch& batch);
  // Per-URL resolution of the modifier gate for a batch that finished (or
  // abandoned) its first transmission attempt.
  void ResolveBatchFirstAttempts(const core::InvalidationOutbox::Batch& batch);

  // --- helpers ----------------------------------------------------------------
  const std::string& DocPath(trace::DocId doc) const {
    return trace_.documents[doc].path;
  }
  // When serving `entry` at trace time `trace_now` returns outdated data
  // *in trace order*, yields the trace time the copy became stale (version
  // v became obsolete at the trace time of the modification that produced
  // v+1); nullopt when the serve is fresh. Lock-step compression can
  // process a modification in wall time before a request that precedes it
  // in trace time; such a read linearizes before the write and is fresh.
  std::optional<Time> StaleSince(const http::CacheEntry& entry,
                                 Time trace_now) const {
    const auto it = mod_times_.find(entry.url);
    if (it == mod_times_.end()) return std::nullopt;
    const std::vector<Time>& times = it->second;
    WEBCC_DCHECK(entry.version >= 1);
    const std::size_t obsolete_index = entry.version - 1;
    if (obsolete_index < times.size() && times[obsolete_index] <= trace_now) {
      return times[obsolete_index];
    }
    return std::nullopt;
  }
  // The trace time the current lock-step interval started; the engine's
  // best trace-order approximation of "now" for events (like a write
  // completion) triggered from wall-time callbacks.
  Time CurrentWindowStart() const {
    return static_cast<Time>(interval_index_) * config_.lockstep_interval;
  }
  void CheckStaleness(const PseudoClient& pc, const http::CacheEntry& entry,
                      Time trace_time);
  http::CacheEntry BuildEntry(const net::Reply& reply,
                              const std::string& owner, Time trace_time) const;

  const ReplayConfig& config_;
  const trace::Trace& trace_;

  sim::Simulator sim_;
  sim::Network net_;
  http::DocumentStore docs_;
  sim::FifoStation server_cpu_;
  sim::FifoStation server_disk_;
  // Decoupled mode: one dedicated sender per accelerator shard (built in
  // Setup; FifoStation is non-copyable, hence the indirection). Serialized
  // mode charges server_cpu_ and never touches these.
  std::vector<std::unique_ptr<sim::FifoStation>> inval_senders_;
  // Batched mode: per-shard outboxes and the armed-drain flags.
  std::vector<core::InvalidationOutbox> outboxes_;
  std::vector<char> drain_scheduled_;
  core::ShardedAccelerator accel_;
  std::unique_ptr<const core::consistency::ConsistencyPolicy> policy_;
  std::unique_ptr<http::OriginServer> origin_;

  std::vector<PseudoClient> clients_;
  std::unordered_map<std::string, int> pseudo_of_client_;
  std::vector<std::string> proxy_site_names_;  // shared-proxy site identities

  // Hierarchical mode: the parent proxy's shared cache, its per-document
  // leaf-interest lists, and its CPU station.
  std::unique_ptr<http::ProxyCache> parent_cache_;
  std::unique_ptr<core::InvalidationTable> parent_table_;
  std::unique_ptr<sim::FifoStation> parent_cpu_;

  std::vector<trace::ModEvent> modifications_;
  std::size_t mod_cursor_ = 0;
  std::size_t mod_window_end_ = 0;

  std::vector<FailureEvent> failures_;  // sorted by trace_time
  std::size_t failure_cursor_ = 0;

  // Seeded link-fault injector (nullptr when the config has no fault plan
  // with link-fault windows); advanced at every lock-step boundary.
  std::unique_ptr<fault::FaultClock> fault_clock_;

  std::size_t interval_index_ = 0;
  std::size_t num_intervals_ = 0;
  int participants_ = 0;
  bool server_down_ = false;
  // True from a server-site crash until the recovery broadcast finishes:
  // modifications in this window cannot complete (their invalidations reach
  // clients only as the recovery INVSRV notices), so stale serves are still
  // within the strong-consistency contract.
  bool write_gap_active_ = false;
  int recovery_notices_pending_ = 0;

  std::uint64_t next_seq_ = 1;
  std::uint64_t next_mod_id_ = 1;
  // Writes (modifications) whose invalidation fan-out has not finished;
  // stale serves are legitimate only while the document has one in
  // progress.
  std::unordered_map<std::string, int> writes_in_progress_;
  // Trace times at which each document version became obsolete:
  // mod_times_[url][v-1] is the modification that superseded version v.
  std::unordered_map<std::string, std::vector<Time>> mod_times_;
  // PSI server state: the modification log and each proxy's contact cursor.
  core::ModificationLog mod_log_;
  std::vector<Time> psi_last_contact_;
  // PCV piggyback batches in flight, keyed by request sequence number.
  std::unordered_map<std::uint64_t, std::vector<core::PcvItem>>
      pcv_in_flight_;
  struct PendingMod {
    // Write-delivery state machine (the paper's completion rule): the write
    // completes when every targeted site has acked, died, or had its lease
    // expire — never by merely giving up.
    core::WriteDelivery delivery;
    Time started_trace = 0;  // modification trace time (fan-out start)
    Time started_wall = 0;   // sim wall time the fan-out began
    // Unresolved first transmission attempts: the blocking check-in (the
    // modifier's gate) waits only for these — a send that hits a partition
    // moves to background retry and stops gating the modifier, exactly like
    // a failed TCP send being queued for periodic retry.
    int first_pending = 0;
    std::function<void()> on_complete;  // modifier continuation (serialized)
  };
  std::unordered_map<std::uint64_t, PendingMod> pending_mod_targets_;
  // Resolves one delivery target (ack or death); completes the write when
  // it was the last outstanding one.
  void ResolveWriteTarget(std::uint64_t mod_id, std::string_view site,
                          bool dead);
  // Records completion metrics/events for a resolved delivery (does not
  // touch the modifier gate, which is first_pending's job).
  void FinishWriteDelivery(PendingMod& pending);
  // Lock-step boundary sweep: completes writes whose straggler targets'
  // leases have all expired (Section 6's bound on write latency).
  void SweepExpiredWriteTargets(Time trace_now);

  Time wall_end_ = 0;
  ReplayMetrics metrics_;
  // Structured tracing (nullptr = off). Every emit site below sits exactly
  // at the increment of the ReplayMetrics counter it mirrors, so JSONL event
  // counts reconcile with the paper tables (see DESIGN.md).
  obs::TraceSink* sink_ = nullptr;
};

}  // namespace webcc::replay::detail
