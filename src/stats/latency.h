// Online aggregation of latency (or any scalar) samples.
//
// Replays record one sample per client request (tens of thousands), so the
// aggregate keeps the full sample set for exact percentiles; Min/Max/Mean are
// maintained online so they are valid even if the sample cap is hit.
#pragma once

#include <cstddef>
#include <vector>

#include "util/time.h"

namespace webcc::stats {

class LatencyStats {
 public:
  // `max_samples` bounds memory for percentile computation; the running
  // min/max/mean/count remain exact regardless. 0 keeps every sample.
  explicit LatencyStats(std::size_t max_samples = 0)
      : max_samples_(max_samples) {}

  void Record(double value);
  void Merge(const LatencyStats& other);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

  // Exact percentile over retained samples, p in [0, 100]. Returns 0 when
  // empty. Sorts lazily, amortized across queries.
  double Percentile(double p) const;

  // Bit-exact equality of the aggregates and the (sorted) sample sets.
  // Sample order is normalized first, so two runs that recorded the same
  // values compare equal regardless of when Percentile() was last called.
  bool SameSamples(const LatencyStats& other) const;

 private:
  std::size_t max_samples_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable bool sorted_ = true;
  mutable std::vector<double> samples_;
};

}  // namespace webcc::stats
