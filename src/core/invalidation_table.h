// The accelerator's invalidation table: per-URL lists of client sites that
// may hold a cached copy.
//
// Following the paper, the server never asks clients whether they cache a
// document — every requester is pessimistically added to the document's site
// list and removed when it is sent an invalidation (so a site that never
// requests the document again receives no further invalidations).
//
// Leases (Section 6) bound the lists: a site entry only earns a place while
// its lease is in force, so list size is bounded by the requests of the last
// lease window, and with two-tier leases a plain GET's near-zero lease keeps
// one-time viewers out of the table entirely.
//
// URLs and client identifiers are interned to dense ids (core::Interner):
// this table sits on the server's per-request hot path (Register on every
// GET/IMS), so the site lists key on integers and each request hashes its
// strings exactly once. The public interface stays string-based.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/intern.h"
#include "core/policy.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::core {

class InvalidationTable {
 public:
  explicit InvalidationTable(LeaseConfig lease) : lease_(lease) {}

  // Registers `client` for `url` following a request of `request_type`
  // (kGet or kIfModifiedSince) at protocol time `now`. Returns the lease
  // expiry granted (net::kNoLease when leases are off). A zero-length lease
  // does not create an entry.
  Time Register(std::string_view url, std::string_view client,
                net::MessageType request_type, Time now);

  // Collects the sites holding an unexpired lease on `url` and clears the
  // list (each collected site is about to receive an invalidation, after
  // which the server forgets it, as in the paper).
  std::vector<std::string> TakeSitesForInvalidation(std::string_view url,
                                                    Time now);

  // Like TakeSitesForInvalidation, but keeps each site's lease expiry — the
  // delivery-state machine needs it to decide when a straggler's lease
  // lapses and the write may complete without its ack (Section 6 bound).
  struct TakenSite {
    std::string site;
    Time lease_until = net::kNoLease;
  };
  std::vector<TakenSite> TakeSitesWithLeases(std::string_view url, Time now);

  // Re-inserts one entry verbatim (journal recovery: rebuilding the table
  // the crash destroyed). Expired entries are dropped by the next prune.
  void Restore(std::string_view url, std::string_view client,
               Time lease_until);

  // Full, deterministic (url, site)-sorted dump of the live table. Used to
  // snapshot-compact the journal after recovery and by the fault tests to
  // prove the rebuilt table is a superset of what the crash destroyed.
  struct Snapshot {
    std::string url;
    std::string site;
    Time lease_until = net::kNoLease;
  };
  std::vector<Snapshot> SnapshotEntries() const;

  // Number of live (unexpired) entries for one URL.
  std::size_t ListLength(std::string_view url, Time now) const;

  // Drops expired entries table-wide; returns how many were pruned. The
  // replay calls this at lock-step boundaries so storage numbers reflect
  // live leases only.
  std::size_t PruneExpired(Time now);

  // One entry dropped by a prune. The views point into the interners, which
  // never discard names, so they stay valid after the entry is erased.
  struct ExpiredEntry {
    std::string_view url;
    std::string_view site;
    Time lease_until = net::kNoLease;
  };

  // Like PruneExpired, but appends the dropped entries to `out` instead of
  // emitting kLeaseExpiry events (and regardless of the trace sink). The
  // sharded accelerator prunes every shard through this, then sorts and
  // emits the union so the event stream is identical at any shard count.
  std::size_t PruneExpiredInto(Time now, std::vector<ExpiredEntry>& out);

  // --- storage accounting (Table 5) ---------------------------------------
  // Total live entries across all URLs.
  std::size_t TotalEntries() const { return total_entries_; }
  // Longest current list.
  std::size_t MaxListLength() const;
  // Approximate bytes consumed: per entry, the client identifier plus the
  // lease timestamp and list linkage (the paper observes 20-30 bytes per
  // request).
  std::uint64_t StorageBytes() const;

  const LeaseConfig& lease_config() const { return lease_; }

  // Discards everything (server-site crash: the in-memory table dies).
  void Clear();

  // Optional tracing: when set, every entry dropped by PruneExpired emits a
  // kLeaseExpiry event (detail = the expiry that lapsed). nullptr disables.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots occupancy into `registry` under `prefix` (entries,
  // max_list_length, storage_bytes, urls_tracked).
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  struct SiteList {
    std::unordered_map<InternId, Time> lease_until;  // client id -> expiry
  };

  static constexpr std::uint64_t kPerEntryOverheadBytes = 16;

  LeaseConfig lease_;
  Interner urls_;
  Interner clients_;
  std::unordered_map<InternId, SiteList> lists_;  // by url id
  std::size_t total_entries_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::core
