// Microbenchmarks (google-benchmark) for the hot data structures and codecs
// underlying the replay engine and live prototype.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/accelerator.h"
#include "core/analysis.h"
#include "core/intern.h"
#include "core/invalidation_table.h"
#include "http/document_store.h"
#include "http/proxy_cache.h"
#include "net/wire.h"
#include "replay/engine.h"
#include "replay/experiments.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "trace/workload.h"
#include "util/distributions.h"
#include "util/rng.h"

using namespace webcc;

namespace {

// --- invalidation table -----------------------------------------------------------

void BM_InvalidationTableRegister(benchmark::State& state) {
  core::InvalidationTable table(core::LeaseConfig{});
  std::vector<std::string> clients;
  for (int i = 0; i < 1024; ++i) {
    clients.push_back("10.0." + std::to_string(i / 256) + "." +
                      std::to_string(i % 256));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    table.Register("/doc", clients[i++ & 1023], net::MessageType::kGet, 0);
  }
}
BENCHMARK(BM_InvalidationTableRegister);

void BM_InvalidationTableTakeSites(benchmark::State& state) {
  const auto list_length = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    core::InvalidationTable table(core::LeaseConfig{});
    for (int i = 0; i < list_length; ++i) {
      table.Register("/doc", "client-" + std::to_string(i),
                     net::MessageType::kGet, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(table.TakeSitesForInvalidation("/doc", 0));
  }
  state.SetItemsProcessed(state.iterations() * list_length);
}
BENCHMARK(BM_InvalidationTableTakeSites)->Arg(16)->Arg(256)->Arg(4096);

// --- proxy cache -------------------------------------------------------------------

http::CacheEntry MicroEntry(int i, Time ttl) {
  http::CacheEntry entry;
  entry.key = "/doc" + std::to_string(i) + "@c";
  entry.url = "/doc" + std::to_string(i);
  entry.owner = "c";
  entry.size_bytes = 4096;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

void BM_ProxyCacheLookupHit(benchmark::State& state) {
  http::ProxyCache cache(1 << 26, http::ReplacementPolicy::kLru);
  for (int i = 0; i < 4096; ++i) cache.Insert(MicroEntry(i, 1 << 20), 0);
  util::Rng rng(1);
  for (auto _ : state) {
    const std::string key =
        "/doc" + std::to_string(rng.NextBelow(4096)) + "@c";
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_ProxyCacheLookupHit);

void BM_ProxyCacheInsertWithEviction(benchmark::State& state) {
  // Cache holds 1024 entries; every insert evicts.
  http::ProxyCache cache(4096 * 1024, http::ReplacementPolicy::kLru);
  int i = 0;
  for (auto _ : state) {
    cache.Insert(MicroEntry(i++, 1 << 20), 0);
  }
}
BENCHMARK(BM_ProxyCacheInsertWithEviction);

void BM_ProxyCacheExpiredFirstEviction(benchmark::State& state) {
  http::ProxyCache cache(4096 * 1024,
                         http::ReplacementPolicy::kExpiredFirstLru);
  int i = 0;
  for (auto _ : state) {
    // Half the entries are already expired at insertion time of later ones.
    cache.Insert(MicroEntry(i, (i % 2 == 0) ? i : 1 << 30), i);
    ++i;
  }
}
BENCHMARK(BM_ProxyCacheExpiredFirstEviction);

// --- simulator ------------------------------------------------------------------------

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < events; ++i) {
      sim.At((i * 7919) % 100000, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1024)->Arg(65536);

// --- string interner --------------------------------------------------------------------

void BM_InternerInternHit(benchmark::State& state) {
  core::Interner interner;
  std::vector<std::string> urls;
  for (int i = 0; i < 4096; ++i) {
    urls.push_back("/docs/" + std::to_string(i) + ".html");
    interner.Intern(urls.back());
  }
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.Intern(urls[rng.NextBelow(4096)]));
  }
}
BENCHMARK(BM_InternerInternHit);

// --- replay engine ----------------------------------------------------------------------

void BM_ReplaySmallTrace(benchmark::State& state) {
  // End-to-end replay of a miniature EPA row; counters report the hot
  // loop's throughput (simulator events per host second) and its working
  // set (the event queue's high-water mark).
  const auto spec = replay::Table3Experiments()[0];
  trace::WorkloadConfig small = trace::GetPreset(spec.trace).workload;
  small.total_requests /= 50;
  small.num_documents /= 10;
  small.num_clients /= 10;
  const trace::Trace trace = trace::GenerateTrace(small);
  const replay::ReplayConfig config =
      replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);

  replay::ReplayMetrics last;
  for (auto _ : state) {
    last = replay::RunReplay(config);
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(last.sim_events_executed));
  state.counters["events/s"] = last.events_per_second();
  state.counters["requests/s"] = last.requests_per_second();
  state.counters["peak_queue"] =
      static_cast<double>(last.sim_peak_queue_depth);
}
BENCHMARK(BM_ReplaySmallTrace)->Unit(benchmark::kMillisecond);

// --- wire codec ------------------------------------------------------------------------

void BM_WireEncodeRequest(benchmark::State& state) {
  net::Request request;
  request.type = net::MessageType::kIfModifiedSince;
  request.url = "/docs/00042.html";
  request.client_id = "10.1.2.3";
  request.if_modified_since = 123456789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::EncodeLine(request));
  }
}
BENCHMARK(BM_WireEncodeRequest);

void BM_WireDecodeReply(benchmark::State& state) {
  net::Reply reply;
  reply.type = net::MessageType::kReply200;
  reply.url = "/docs/00042.html";
  reply.body_bytes = 21504;
  reply.last_modified = 99;
  reply.version = 3;
  reply.lease_until = 987654321;
  const std::string line = net::EncodeLine(reply);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::DecodeLine(line));
  }
}
BENCHMARK(BM_WireDecodeReply);

// --- distributions & trace generation ----------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfDistribution zipf(
      static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_GenerateTrace(benchmark::State& state) {
  trace::WorkloadConfig config;
  config.total_requests = static_cast<std::uint64_t>(state.range(0));
  config.num_documents = 1000;
  config.num_clients = 500;
  config.duration = kDay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::GenerateTrace(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTrace)->Arg(10000)->Arg(50000);

// --- analytic model -----------------------------------------------------------------------

void BM_SequenceSimulation(benchmark::State& state) {
  util::Rng rng(3);
  std::string sequence;
  for (int i = 0; i < 10000; ++i) sequence += rng.NextBool(0.8) ? 'r' : 'm';
  const auto events = core::ParseSequence(sequence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SimulateInvalidationSequence(events));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SequenceSimulation);

// --- consistency-kernel dispatch -----------------------------------------------------------

// The same hit-decision stream through the pre-refactor inlined switch
// (bench::InlinedOnHit) and through the kernel's virtual dispatch. The
// absolute delta is a few ns/op; BENCH_farm.json (bench_farm) records it as
// a fraction of the replay hot path's per-request cost, which is the ≤1%
// acceptance bar for the refactor.

void BM_ConsistencyOnHitInlinedSwitch(benchmark::State& state) {
  const bench::DispatchWorkload workload = bench::MakeDispatchWorkload(1 << 16);
  std::size_t i = 0;
  const std::size_t mask = workload.entries.size() - 1;
  for (auto _ : state) {
    const std::size_t j = i++ & mask;
    benchmark::DoNotOptimize(
        bench::InlinedOnHit(workload.protocols[j], workload.entries[j], 1));
  }
}
BENCHMARK(BM_ConsistencyOnHitInlinedSwitch);

void BM_ConsistencyOnHitKernelDispatch(benchmark::State& state) {
  const bench::DispatchWorkload workload = bench::MakeDispatchWorkload(1 << 16);
  std::size_t i = 0;
  const std::size_t mask = workload.entries.size() - 1;
  for (auto _ : state) {
    const std::size_t j = i++ & mask;
    benchmark::DoNotOptimize(
        workload.policies[j]->OnHit(workload.entries[j], 1));
  }
}
BENCHMARK(BM_ConsistencyOnHitKernelDispatch);

// --- accelerator end-to-end ----------------------------------------------------------------

void BM_AcceleratorRequestPath(benchmark::State& state) {
  http::DocumentStore docs;
  for (int i = 0; i < 1000; ++i) {
    docs.Add("/doc" + std::to_string(i), 4096, 0);
  }
  core::Accelerator accel(docs, core::LeaseConfig{});
  util::Rng rng(11);
  for (auto _ : state) {
    net::Request request;
    request.type = net::MessageType::kGet;
    request.url = "/doc" + std::to_string(rng.NextBelow(1000));
    request.client_id = "10.0.0." + std::to_string(rng.NextBelow(256));
    benchmark::DoNotOptimize(accel.HandleRequest(request, 0));
  }
}
BENCHMARK(BM_AcceleratorRequestPath);

}  // namespace
