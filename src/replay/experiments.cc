#include "replay/experiments.h"

#include <iterator>

namespace webcc::replay {
namespace {

constexpr std::uint64_t kMB = 1024ull * 1024;

ExperimentSpec MakeSpec(std::string id, trace::TraceName trace,
                        Time mean_lifetime, std::uint64_t cache_bytes,
                        PaperRunNumbers paper) {
  ExperimentSpec spec;
  spec.id = std::move(id);
  spec.trace = trace;
  spec.mean_lifetime = mean_lifetime;
  spec.proxy_cache_bytes = cache_bytes;
  spec.paper = paper;
  return spec;
}

}  // namespace

std::vector<ExperimentSpec> Table3Experiments() {
  return {
      MakeSpec("EPA", trace::TraceName::kEpa, 50 * kDay, 128 * kMB,
               PaperRunNumbers{{37.6, 41.6, 38.6}, "237MB", "1.0MB"}),
      MakeSpec("SASK", trace::TraceName::kSask, 14 * kDay, 24 * kMB,
               PaperRunNumbers{{26.0, 30.2, 27.6}, "183MB", "621KB"}),
      MakeSpec("ClarkNet", trace::TraceName::kClarkNet, 50 * kDay, 128 * kMB,
               PaperRunNumbers{{38.3, 40.4, 38.1}, "448MB", "1.6MB"}),
  };
}

std::vector<ExperimentSpec> Table4Experiments() {
  return {
      MakeSpec("NASA", trace::TraceName::kNasa, 7 * kDay, 256 * kMB,
               PaperRunNumbers{{32.6, 36.1, 34.4}, "1.26GB", "742KB"}),
      MakeSpec("SDSC(57)", trace::TraceName::kSdsc, 25 * kDay, 128 * kMB,
               PaperRunNumbers{{34.1, 35.6, 32.7}, "263MB", "489KB"}),
      MakeSpec("SDSC(576)", trace::TraceName::kSdsc, Time(2.5 * kDay),
               128 * kMB,
               PaperRunNumbers{{33.6, 36.7, 34.7}, "263MB", "474KB"}),
  };
}

std::vector<ExperimentSpec> AllTableExperiments() {
  std::vector<ExperimentSpec> all = Table3Experiments();
  std::vector<ExperimentSpec> table4 = Table4Experiments();
  all.reserve(all.size() + table4.size());
  all.insert(all.end(), std::make_move_iterator(table4.begin()),
             std::make_move_iterator(table4.end()));
  return all;
}

ReplayConfig MakeReplayConfig(const ExperimentSpec& spec,
                              core::Protocol protocol,
                              const trace::Trace& trace) {
  ReplayConfig config;
  config.protocol = protocol;
  config.trace = &trace;
  config.mean_lifetime = spec.mean_lifetime;
  config.proxy_cache_bytes = spec.proxy_cache_bytes;
  // Same modifier schedule across the three protocols of a row: the
  // modifier seed depends only on the experiment, so every protocol sees
  // the identical modification stream, as in the paper's lock-step replay.
  config.modifier_seed = 1000 + static_cast<std::uint64_t>(spec.trace);
  config.seed = 2000 + static_cast<std::uint64_t>(spec.trace);
  return config;
}

}  // namespace webcc::replay
