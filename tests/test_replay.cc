// Integration and property tests for the replay engine.
//
// These bind the full system together: the engine's message counts must
// obey the Table 1 identities and match the core/analysis exact simulators
// on single-client sequences; strong protocols must never violate their
// consistency contract, with or without injected failures; and runs must be
// deterministic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "replay/engine.h"
#include "trace/workload.h"
#include "util/rng.h"

namespace webcc::replay {
namespace {

using core::Protocol;

trace::Trace SmallTrace(std::uint64_t seed = 5, std::uint64_t requests = 1500) {
  trace::WorkloadConfig config;
  config.duration = 3 * kHour;
  config.total_requests = requests;
  config.num_documents = 120;
  config.num_clients = 60;
  config.seed = seed;
  return trace::GenerateTrace(config);
}

ReplayConfig BaseConfig(const trace::Trace& trace, Protocol protocol) {
  ReplayConfig config;
  config.protocol = protocol;
  config.trace = &trace;
  config.mean_lifetime = 12 * kHour;  // plenty of modifications
  return config;
}

// --- cross-protocol invariants ---------------------------------------------------

class ProtocolTest : public ::testing::TestWithParam<Protocol> {
 protected:
  static const trace::Trace& Trace() {
    static const trace::Trace trace = SmallTrace();
    return trace;
  }
};

TEST_P(ProtocolTest, EveryRequestResolvesExactlyOnce) {
  const ReplayMetrics metrics = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_EQ(metrics.requests_issued, Trace().records.size());
  EXPECT_EQ(metrics.requests_skipped, 0u);
  EXPECT_EQ(metrics.request_timeouts, 0u);
  // Each request ends as a local hit, a validated (304) hit, or a transfer.
  EXPECT_EQ(metrics.local_hits + metrics.validated_hits + metrics.replies_200,
            metrics.requests_issued);
}

TEST_P(ProtocolTest, RepliesMatchRequests) {
  const ReplayMetrics metrics = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_EQ(metrics.get_requests + metrics.ims_requests,
            metrics.replies_200 + metrics.replies_304);
  // GETs always produce transfers.
  EXPECT_GE(metrics.replies_200, metrics.get_requests);
  // 304s only answer IMS.
  EXPECT_LE(metrics.replies_304, metrics.ims_requests);
}

TEST_P(ProtocolTest, NoStrongViolationsEver) {
  const ReplayMetrics metrics = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_EQ(metrics.strong_violations, 0u);
}

TEST_P(ProtocolTest, Deterministic) {
  const ReplayMetrics a = RunReplay(BaseConfig(Trace(), GetParam()));
  const ReplayMetrics b = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_EQ(a.get_requests, b.get_requests);
  EXPECT_EQ(a.ims_requests, b.ims_requests);
  EXPECT_EQ(a.replies_200, b.replies_200);
  EXPECT_EQ(a.replies_304, b.replies_304);
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.stale_serves, b.stale_serves);
  EXPECT_EQ(a.wall_duration, b.wall_duration);
  EXPECT_DOUBLE_EQ(a.latency_ms.mean(), b.latency_ms.mean());
}

TEST_P(ProtocolTest, ServerLoadAccounted) {
  const ReplayMetrics metrics = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_GT(metrics.server_cpu_utilization, 0.0);
  EXPECT_LE(metrics.server_cpu_utilization, 1.0);
  EXPECT_GT(metrics.disk_writes_per_second, 0.0);
  EXPECT_GT(metrics.wall_duration, 0);
}

TEST_P(ProtocolTest, LatencyRecordedPerRequest) {
  const ReplayMetrics metrics = RunReplay(BaseConfig(Trace(), GetParam()));
  EXPECT_EQ(metrics.latency_ms.count(), metrics.requests_issued);
  EXPECT_GT(metrics.latency_ms.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolTest,
                         ::testing::Values(Protocol::kAdaptiveTtl,
                                           Protocol::kPollEveryTime,
                                           Protocol::kInvalidation),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           switch (info.param) {
                             case Protocol::kAdaptiveTtl:
                               return "AdaptiveTtl";
                             case Protocol::kPollEveryTime:
                               return "PollEveryTime";
                             case Protocol::kInvalidation:
                               return "Invalidation";
                           }
                           return "Unknown";
                         });

// --- protocol-specific behaviour -----------------------------------------------------

TEST(ReplayPolling, NeverServesLocally) {
  const trace::Trace trace = SmallTrace();
  const ReplayMetrics metrics =
      RunReplay(BaseConfig(trace, Protocol::kPollEveryTime));
  EXPECT_EQ(metrics.local_hits, 0u);
  EXPECT_EQ(metrics.stale_serves, 0u);
  // Every request goes to the server.
  EXPECT_EQ(metrics.get_requests + metrics.ims_requests,
            metrics.requests_issued);
}

TEST(ReplayInvalidation, NoImsWithoutLeasesOrFailures) {
  const trace::Trace trace = SmallTrace();
  const ReplayMetrics metrics =
      RunReplay(BaseConfig(trace, Protocol::kInvalidation));
  EXPECT_EQ(metrics.ims_requests, 0u);
  EXPECT_EQ(metrics.replies_304, 0u);
  EXPECT_EQ(metrics.stale_serves, metrics.stale_while_invalidation_in_flight);
}

TEST(ReplayInvalidation, InvalidationsDelivered) {
  const trace::Trace trace = SmallTrace();
  const ReplayMetrics metrics =
      RunReplay(BaseConfig(trace, Protocol::kInvalidation));
  EXPECT_GT(metrics.invalidations_sent, 0u);
  EXPECT_EQ(metrics.invalidations_delivered, metrics.invalidations_sent);
  EXPECT_EQ(metrics.invalidations_refused, 0u);
}

TEST(ReplayInvalidation, SerializedSendsInflateWorstCaseLatency) {
  const trace::Trace trace = SmallTrace(/*seed=*/6, /*requests=*/3000);
  ReplayConfig serialized = BaseConfig(trace, Protocol::kInvalidation);
  serialized.mean_lifetime = 6 * kHour;
  // Amplify the per-message send cost so the fan-out dominates the worst
  // case the way the big traces' thousand-site lists do.
  serialized.server_costs.invalidation_send_cpu = 200 * kMillisecond;
  ReplayConfig decoupled = serialized;
  decoupled.serialized_invalidation = false;
  const ReplayMetrics with_blocking = RunReplay(serialized);
  const ReplayMetrics without_blocking = RunReplay(decoupled);
  // The paper's prototype artifact: fan-out blocks request handling.
  EXPECT_GT(with_blocking.latency_ms.max(),
            without_blocking.latency_ms.max());
  // Decoupling leaves the traffic itself unchanged.
  EXPECT_EQ(with_blocking.invalidations_sent,
            without_blocking.invalidations_sent);
  EXPECT_EQ(with_blocking.replies_200, without_blocking.replies_200);
}

TEST(ReplayAdaptiveTtl, StaleHitsHappenUnderShortLifetimes) {
  const trace::Trace trace = SmallTrace(/*seed=*/7, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kAdaptiveTtl);
  config.mean_lifetime = 2 * kHour;  // aggressive modification rate
  config.fixed_initial_age = 30 * kDay;  // long TTLs -> stale windows
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.stale_serves, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);  // weak protocol: not checked
}

TEST(ReplayAdaptiveTtl, ValidationsProduce304s) {
  const trace::Trace trace = SmallTrace(/*seed=*/8, /*requests=*/2500);
  ReplayConfig config = BaseConfig(trace, Protocol::kAdaptiveTtl);
  config.fixed_initial_age = kHour;  // young docs: short TTLs, many misses
  config.ttl.min_ttl = kMinute;
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.ims_requests, 0u);
  EXPECT_EQ(metrics.validated_hits, metrics.replies_304);
}

TEST(ReplayPollingVsInvalidation, PollingSendsMoreMessages) {
  const trace::Trace trace = SmallTrace();
  const ReplayMetrics polling =
      RunReplay(BaseConfig(trace, Protocol::kPollEveryTime));
  const ReplayMetrics invalidation =
      RunReplay(BaseConfig(trace, Protocol::kInvalidation));
  EXPECT_GT(polling.total_messages(), invalidation.total_messages());
  // ...but similar bytes (transfers dominate), within 5%.
  EXPECT_NEAR(static_cast<double>(polling.message_bytes),
              static_cast<double>(invalidation.message_bytes),
              0.05 * static_cast<double>(invalidation.message_bytes));
}

TEST(ReplayInvalidation, HighModificationRateStillNoViolations) {
  // Minute-scale lifetimes put many modifications inside every lock-step
  // interval, exercising the touch -> notify -> fan-out -> delivery window
  // under maximal interleaving with client requests.
  const trace::Trace trace = SmallTrace(/*seed=*/21, /*requests=*/4000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.mean_lifetime = 10 * kMinute;
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.modifications_applied, 1000u);
  EXPECT_GT(metrics.invalidations_sent, 100u);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_EQ(metrics.stale_serves, metrics.stale_while_invalidation_in_flight);
}

TEST(ReplayInvalidation, DecoupledModeAlsoViolationFree) {
  const trace::Trace trace = SmallTrace(/*seed=*/22, /*requests=*/4000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.mean_lifetime = 20 * kMinute;
  config.serialized_invalidation = false;
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_EQ(metrics.invalidations_delivered, metrics.invalidations_sent);
}

TEST(ReplayNetwork, WanProfileRaisesLatencyNotCounts) {
  const trace::Trace trace = SmallTrace(/*seed=*/23);
  ReplayConfig lan = BaseConfig(trace, Protocol::kInvalidation);
  ReplayConfig wan = lan;
  wan.network = sim::NetworkConfig::Wan();
  const ReplayMetrics lan_run = RunReplay(lan);
  const ReplayMetrics wan_run = RunReplay(wan);
  EXPECT_GT(wan_run.latency_ms.mean(), lan_run.latency_ms.mean());
  // Same-interval wall-order races shift a handful of messages (the
  // paper's lock-step testbed behaves identically); counts agree to <1%.
  EXPECT_NEAR(static_cast<double>(wan_run.total_messages()),
              static_cast<double>(lan_run.total_messages()),
              0.01 * static_cast<double>(lan_run.total_messages()));
  EXPECT_EQ(wan_run.strong_violations, 0u);
}

TEST(ReplayClients, PseudoClientCountDoesNotChangeTraffic) {
  // The paper's 4-pseudo-client split is an artifact of the testbed; the
  // message counts must be invariant to it (caches are per real client).
  const trace::Trace trace = SmallTrace(/*seed=*/24);
  ReplayConfig four = BaseConfig(trace, Protocol::kInvalidation);
  ReplayConfig eight = four;
  eight.num_pseudo_clients = 8;
  const ReplayMetrics a = RunReplay(four);
  const ReplayMetrics b = RunReplay(eight);
  // Identical up to same-interval wall-order races (<1%).
  EXPECT_NEAR(static_cast<double>(a.replies_200),
              static_cast<double>(b.replies_200),
              0.01 * static_cast<double>(a.replies_200));
  EXPECT_NEAR(static_cast<double>(a.invalidations_sent),
              static_cast<double>(b.invalidations_sent),
              1.0 + 0.02 * static_cast<double>(a.invalidations_sent));
  EXPECT_EQ(a.strong_violations + b.strong_violations, 0u);
}

TEST(ReplaySharedProxy, SharingRaisesHitsAndShrinksState) {
  const trace::Trace trace = SmallTrace(/*seed=*/25, /*requests=*/4000);
  ReplayConfig per_client = BaseConfig(trace, Protocol::kInvalidation);
  ReplayConfig shared = per_client;
  shared.shared_proxy_cache = true;
  const ReplayMetrics separate = RunReplay(per_client);
  const ReplayMetrics merged = RunReplay(shared);
  EXPECT_GT(merged.cache_hits(), separate.cache_hits());
  EXPECT_LT(merged.replies_200, separate.replies_200);
  EXPECT_LT(merged.sitelist_entries, separate.sitelist_entries);
  EXPECT_EQ(merged.strong_violations, 0u);
  // One site per proxy: lists can never exceed the proxy count.
  EXPECT_LE(merged.sitelist_max_len_end, 4u);
}

TEST(ReplaySharedProxy, AllProtocolsStayConsistent) {
  const trace::Trace trace = SmallTrace(/*seed=*/26);
  for (const Protocol protocol :
       {Protocol::kAdaptiveTtl, Protocol::kPollEveryTime,
        Protocol::kInvalidation}) {
    ReplayConfig config = BaseConfig(trace, protocol);
    config.shared_proxy_cache = true;
    const ReplayMetrics metrics = RunReplay(config);
    EXPECT_EQ(metrics.strong_violations, 0u);
    EXPECT_EQ(metrics.local_hits + metrics.validated_hits +
                  metrics.replies_200,
              metrics.requests_issued);
  }
}

// --- hierarchy (Worrell configuration) -------------------------------------------------

TEST(ReplayHierarchy, RequestsResolveAndConsistencyHolds) {
  const trace::Trace trace = SmallTrace(/*seed=*/27, /*requests=*/4000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.hierarchical = true;
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_EQ(metrics.local_hits + metrics.validated_hits + metrics.replies_200,
            metrics.requests_issued);
  EXPECT_EQ(metrics.request_timeouts, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_GT(metrics.parent_hits, 0u);
  EXPECT_GT(metrics.parent_fetches, 0u);
}

TEST(ReplayHierarchy, ServerInvalidatesOnlyTheParent) {
  const trace::Trace trace = SmallTrace(/*seed=*/28, /*requests=*/4000);
  ReplayConfig flat = BaseConfig(trace, Protocol::kInvalidation);
  flat.mean_lifetime = 4 * kHour;
  ReplayConfig hier = flat;
  hier.hierarchical = true;
  const ReplayMetrics flat_run = RunReplay(flat);
  const ReplayMetrics hier_run = RunReplay(hier);
  // At most one server-sent invalidation per modification.
  EXPECT_LE(hier_run.invalidations_sent, hier_run.modifications_applied);
  EXPECT_LT(hier_run.invalidations_sent, flat_run.invalidations_sent);
  // The parent absorbs cross-client fetches: far fewer server transfers.
  EXPECT_LT(hier_run.parent_fetches, flat_run.replies_200);
  EXPECT_LT(hier_run.server_cpu_utilization, flat_run.server_cpu_utilization);
  // Forwards reach the interested leaves only.
  EXPECT_LE(hier_run.hierarchy_forwards,
            hier_run.invalidations_sent * 4);
  EXPECT_EQ(hier_run.strong_violations, 0u);
}

TEST(ReplayHierarchy, DeterministicAndStaleOnlyInFlight) {
  const trace::Trace trace = SmallTrace(/*seed=*/29, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.hierarchical = true;
  config.mean_lifetime = 2 * kHour;  // heavy modification traffic
  const ReplayMetrics a = RunReplay(config);
  const ReplayMetrics b = RunReplay(config);
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.parent_hits, b.parent_hits);
  EXPECT_EQ(a.strong_violations, 0u);
  EXPECT_EQ(a.stale_serves, a.stale_while_invalidation_in_flight);
}

// --- conformance with the analytic model ----------------------------------------------

// Builds a single-client single-document trace plus explicit modification
// schedule from an "rrmmr" sequence, spacing events two lock-step intervals
// apart so replay ordering matches sequence ordering exactly.
struct SequenceFixture {
  trace::Trace trace;
  std::vector<trace::ModEvent> modifications;
};

SequenceFixture MakeSequenceFixture(const std::string& sequence) {
  constexpr Time kSpacing = 15 * kMinute;
  SequenceFixture fixture;
  fixture.trace.name = "seq";
  fixture.trace.duration =
      kSpacing * static_cast<Time>(sequence.size() + 1);
  fixture.trace.documents = {{"/doc", 4096}};
  fixture.trace.clients = {"c0"};
  Time at = kSpacing;
  for (char c : sequence) {
    if (c == 'r') {
      fixture.trace.records.push_back(trace::TraceRecord{at, 0, 0});
    } else {
      fixture.modifications.push_back(trace::ModEvent{at, 0});
    }
    at += kSpacing;
  }
  return fixture;
}

class SequenceConformanceTest : public ::testing::TestWithParam<int> {};

TEST_P(SequenceConformanceTest, ReplayMatchesExactSimulators) {
  util::Rng rng(GetParam());
  std::string sequence;
  for (int i = 0; i < 40; ++i) sequence += rng.NextBool(0.7) ? 'r' : 'm';

  const SequenceFixture fixture = MakeSequenceFixture(sequence);
  const auto events = core::ParseSequence(sequence, 15 * kMinute);

  // Polling.
  {
    ReplayConfig config = BaseConfig(fixture.trace, Protocol::kPollEveryTime);
    config.explicit_modifications = fixture.modifications;
    const ReplayMetrics metrics = RunReplay(config);
    const core::MessageCounts expected =
        core::SimulatePollingSequence(events);
    EXPECT_EQ(metrics.get_requests, expected.gets) << sequence;
    EXPECT_EQ(metrics.ims_requests, expected.ims) << sequence;
    EXPECT_EQ(metrics.replies_200, expected.replies_200) << sequence;
    EXPECT_EQ(metrics.replies_304, expected.replies_304) << sequence;
  }

  // Invalidation.
  {
    ReplayConfig config = BaseConfig(fixture.trace, Protocol::kInvalidation);
    config.explicit_modifications = fixture.modifications;
    const ReplayMetrics metrics = RunReplay(config);
    const core::MessageCounts expected =
        core::SimulateInvalidationSequence(events);
    EXPECT_EQ(metrics.get_requests, expected.gets) << sequence;
    EXPECT_EQ(metrics.replies_200, expected.replies_200) << sequence;
    EXPECT_EQ(metrics.invalidations_sent, expected.invalidations) << sequence;
    EXPECT_EQ(metrics.strong_violations, 0u) << sequence;
  }

  // Adaptive TTL, with the initial age pinned so both sides agree.
  {
    ReplayConfig config = BaseConfig(fixture.trace, Protocol::kAdaptiveTtl);
    config.explicit_modifications = fixture.modifications;
    config.fixed_initial_age = 10 * kDay;
    const ReplayMetrics metrics = RunReplay(config);
    const core::MessageCounts expected = core::SimulateAdaptiveTtlSequence(
        events, config.ttl, -10 * kDay);
    EXPECT_EQ(metrics.get_requests, expected.gets) << sequence;
    EXPECT_EQ(metrics.ims_requests, expected.ims) << sequence;
    EXPECT_EQ(metrics.replies_200, expected.replies_200) << sequence;
    EXPECT_EQ(metrics.replies_304, expected.replies_304) << sequence;
    EXPECT_EQ(metrics.stale_serves, expected.stale_hits) << sequence;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequenceConformanceTest,
                         ::testing::Range(100, 115));

// --- leases ------------------------------------------------------------------------------

TEST(ReplayLease, FixedLeaseBoundsSiteLists) {
  const trace::Trace trace = SmallTrace(/*seed=*/9, /*requests=*/3000);
  ReplayConfig unbounded = BaseConfig(trace, Protocol::kInvalidation);
  ReplayConfig leased = unbounded;
  leased.lease.mode = core::LeaseMode::kFixed;
  leased.lease.duration = 30 * kMinute;
  const ReplayMetrics without = RunReplay(unbounded);
  const ReplayMetrics with = RunReplay(leased);
  EXPECT_LT(with.sitelist_entries, without.sitelist_entries);
  EXPECT_LT(with.sitelist_storage_bytes, without.sitelist_storage_bytes);
  // Expired leaseholders revalidate instead of trusting their copy.
  EXPECT_GT(with.lease_renewal_ims, 0u);
  EXPECT_EQ(with.strong_violations, 0u);
}

TEST(ReplayLease, TwoTierFiltersOneTimeViewers) {
  const trace::Trace trace = SmallTrace(/*seed=*/10, /*requests=*/3000);
  ReplayConfig simple = BaseConfig(trace, Protocol::kInvalidation);
  ReplayConfig two_tier = simple;
  two_tier.lease.mode = core::LeaseMode::kTwoTier;
  two_tier.lease.duration = trace.duration;  // generous regular lease
  two_tier.lease.short_duration = 0;
  const ReplayMetrics without = RunReplay(simple);
  const ReplayMetrics with = RunReplay(two_tier);
  // Only repeat viewers occupy the table; one-time GETs are filtered.
  EXPECT_LT(with.sitelist_entries, without.sitelist_entries);
  // The cost: one extra IMS per repeat viewer's second request.
  EXPECT_GT(with.ims_requests, 0u);
  EXPECT_EQ(with.strong_violations, 0u);
  // Invalidation traffic can only shrink.
  EXPECT_LE(with.invalidations_sent, without.invalidations_sent);
}

// --- failure injection ---------------------------------------------------------------------

TEST(ReplayFailure, ProxyCrashSkipsAndRecoversQuestionable) {
  const trace::Trace trace = SmallTrace(/*seed=*/11, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.failures = {
      {trace.duration / 4, FailureKind::kProxyCrash, 0},
      {trace.duration / 2, FailureKind::kProxyRecover, 0},
  };
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.requests_skipped, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);
  // The recovered proxy revalidates its questionable entries.
  EXPECT_GT(metrics.ims_requests, 0u);
}

TEST(ReplayFailure, InvalidationToDeadProxyRefusedNotRetried) {
  const trace::Trace trace = SmallTrace(/*seed=*/12, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.mean_lifetime = 3 * kHour;
  config.failures = {
      {trace.duration / 4, FailureKind::kProxyCrash, 1},
      {3 * trace.duration / 4, FailureKind::kProxyRecover, 1},
  };
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.invalidations_refused, 0u);
  EXPECT_EQ(metrics.invalidations_delivered + metrics.invalidations_refused,
            metrics.invalidations_sent);
  EXPECT_EQ(metrics.strong_violations, 0u);
}

TEST(ReplayFailure, ServerCrashCausesTimeoutsRecoverySendsInvsrv) {
  const trace::Trace trace = SmallTrace(/*seed=*/13, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.client_costs.request_timeout = 5 * kSecond;
  // The paper's blanket recovery broadcast (journal-less).
  config.journaled_recovery = false;
  config.failures = {
      {trace.duration / 4, FailureKind::kServerCrash, 0},
      {trace.duration / 2, FailureKind::kServerRecover, 0},
  };
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.request_timeouts, 0u);
  EXPECT_GT(metrics.invsrv_sent, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);
}

TEST(ReplayFailure, JournaledRecoverySendsTargetedInvalidations) {
  const trace::Trace trace = SmallTrace(/*seed=*/13, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.client_costs.request_timeout = 5 * kSecond;
  config.failures = {
      {trace.duration / 4, FailureKind::kServerCrash, 0},
      {trace.duration / 2, FailureKind::kServerRecover, 0},
  };
  const ReplayMetrics metrics = RunReplay(config);
  // The write-ahead journal replaces the blanket INVSRV broadcast with
  // targeted invalidations for documents modified during the downtime.
  EXPECT_EQ(metrics.invsrv_sent, 0u);
  EXPECT_EQ(metrics.journal_rebuilds, 1u);
  EXPECT_EQ(metrics.journal_damaged_recoveries, 0u);
  EXPECT_GT(metrics.recovery_invalidations_sent, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);
}

TEST(ReplayFailure, JournaledAndBroadcastRecoveryBothUpholdStrong) {
  // Identical scenario either way: neither recovery flavour may violate
  // strong consistency, and both must complete every write eventually.
  for (const bool journaled : {false, true}) {
    const trace::Trace trace = SmallTrace(/*seed=*/21, /*requests=*/2500);
    ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
    config.client_costs.request_timeout = 5 * kSecond;
    config.journaled_recovery = journaled;
    config.failures = {
        {trace.duration / 3, FailureKind::kServerCrash, 0},
        {trace.duration / 3 + 30 * kMinute, FailureKind::kServerRecover, 0},
    };
    const ReplayMetrics metrics = RunReplay(config);
    EXPECT_EQ(metrics.strong_violations, 0u) << "journaled=" << journaled;
  }
}

TEST(ReplayFailure, PartitionRetriesDeliverAfterHeal) {
  const trace::Trace trace = SmallTrace(/*seed=*/14, /*requests=*/3000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.mean_lifetime = 3 * kHour;
  config.client_costs.request_timeout = 5 * kSecond;
  config.failures = {
      {trace.duration / 4, FailureKind::kPartition, 0},
      {trace.duration / 4 + 20 * kMinute, FailureKind::kHeal, 0},
  };
  const ReplayMetrics metrics = RunReplay(config);
  // Everything eventually lands; stale serves during the partition are
  // in-contract (the write has not completed).
  EXPECT_EQ(metrics.invalidations_delivered + metrics.invalidations_refused,
            metrics.invalidations_sent);
  EXPECT_EQ(metrics.strong_violations, 0u);
}

// --- cache pressure ---------------------------------------------------------------------------

TEST(ReplayCache, PressureCausesEvictionsButNoViolations) {
  const trace::Trace trace = SmallTrace(/*seed=*/15, /*requests=*/4000);
  ReplayConfig config = BaseConfig(trace, Protocol::kInvalidation);
  config.proxy_cache_bytes = 64 * 1024;  // severe pressure
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.proxy_evictions, 0u);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_EQ(metrics.local_hits + metrics.validated_hits + metrics.replies_200,
            metrics.requests_issued);
}

TEST(ReplayCache, ExpiredFirstEvictsUnderTtl) {
  const trace::Trace trace = SmallTrace(/*seed=*/16, /*requests=*/4000);
  ReplayConfig config = BaseConfig(trace, Protocol::kAdaptiveTtl);
  config.proxy_cache_bytes = 256 * 1024;
  config.fixed_initial_age = 2 * kHour;  // short TTLs expire during the run
  config.ttl.min_ttl = kMinute;
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_GT(metrics.proxy_expired_evictions, 0u);
}

}  // namespace
}  // namespace webcc::replay
