#include "core/site_registry.h"

#include <fstream>

namespace webcc::core {

bool SiteRegistry::RecordSite(std::string_view client) {
  const auto [it, inserted] = sites_.insert(std::string(client));
  if (inserted) ++disk_writes_;
  return inserted;
}

bool SiteRegistry::Contains(std::string_view client) const {
  return sites_.count(std::string(client)) != 0;
}

bool SiteRegistry::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const std::string& site : sites_) out << site << '\n';
  return static_cast<bool>(out);
}

bool SiteRegistry::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) sites_.insert(line);
  }
  return true;
}

}  // namespace webcc::core
