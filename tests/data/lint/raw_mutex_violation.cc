// Fixture: raw-mutex — std::mutex outside util/thread_annotations.h.
#include <mutex>

struct Counter {
  std::mutex mu;
  int n = 0;
};
