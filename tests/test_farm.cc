// Tests for the replay farm (determinism across worker counts, reuse) and
// the string interner backing the proxy-cache and site-list hot paths.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/intern.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/experiments.h"
#include "replay/farm.h"
#include "trace/presets.h"
#include "trace/workload.h"

namespace webcc::replay {
namespace {

// Miniature traces for the six table rows (1% of the real request counts)
// keep the 36 replays of the determinism test inside test budgets; the
// code path is identical to the full-size runs.
std::map<trace::TraceName, trace::Trace> ScaledDownTraces(
    const std::vector<ExperimentSpec>& specs) {
  std::map<trace::TraceName, trace::Trace> traces;
  for (const ExperimentSpec& spec : specs) {
    if (traces.count(spec.trace) != 0) continue;
    trace::WorkloadConfig small = trace::GetPreset(spec.trace).workload;
    small.total_requests /= 100;
    small.num_documents /= 10;
    small.num_clients /= 10;
    traces.emplace(spec.trace, trace::GenerateTrace(small));
  }
  return traces;
}

std::vector<ReplayConfig> AllCells(
    const std::vector<ExperimentSpec>& specs,
    const std::map<trace::TraceName, trace::Trace>& traces) {
  std::vector<ReplayConfig> configs;
  for (const ExperimentSpec& spec : specs) {
    for (const core::Protocol protocol :
         {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
          core::Protocol::kInvalidation}) {
      configs.push_back(
          MakeReplayConfig(spec, protocol, traces.at(spec.trace)));
    }
  }
  return configs;
}

TEST(Farm, WorkerCountDoesNotChangeTheSimulation) {
  // Every Table 3 + Table 4 cell, replayed with one worker and with eight:
  // each replay is its own single-threaded deterministic simulation, so
  // every metric except host timing must match bit for bit.
  const auto specs = AllTableExperiments();
  const auto traces = ScaledDownTraces(specs);
  const auto configs = AllCells(specs, traces);

  const std::vector<ReplayMetrics> serial = Farm::RunAll(configs, 1);
  const std::vector<ReplayMetrics> farmed = Farm::RunAll(configs, 8);

  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(farmed.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(SameSimulation(serial[i], farmed[i])) << "cell " << i;
    EXPECT_GT(serial[i].sim_events_executed, 0u);
    EXPECT_GT(serial[i].sim_peak_queue_depth, 0u);
  }
}

TEST(Farm, MatchesDirectRunReplay) {
  const auto specs = Table3Experiments();
  const auto traces = ScaledDownTraces({specs[0]});
  const ReplayConfig config = MakeReplayConfig(
      specs[0], core::Protocol::kInvalidation, traces.at(specs[0].trace));

  const ReplayMetrics direct = RunReplay(config);
  const std::vector<ReplayMetrics> farmed = Farm::RunAll({config}, 4);
  ASSERT_EQ(farmed.size(), 1u);
  EXPECT_TRUE(SameSimulation(direct, farmed[0]));
}

TEST(Farm, ResultsArriveInSubmissionOrder) {
  const auto specs = Table3Experiments();
  const auto traces = ScaledDownTraces(specs);
  const auto configs = AllCells(specs, traces);

  Farm farm(8);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(farm.Submit(configs[i]), i);
  }
  const std::vector<ReplayMetrics> results = farm.Collect();
  ASSERT_EQ(results.size(), configs.size());
  // Slot i must hold config i's replay: requests_issued equals that
  // config's trace size, which differs across the three traces.
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(results[i].requests_issued, configs[i].trace->records.size())
        << "slot " << i;
  }
}

TEST(Farm, ReusableAfterCollect) {
  const auto specs = Table3Experiments();
  const auto traces = ScaledDownTraces({specs[0]});
  const ReplayConfig config = MakeReplayConfig(
      specs[0], core::Protocol::kAdaptiveTtl, traces.at(specs[0].trace));

  Farm farm(2);
  farm.Submit(config);
  const auto first = farm.Collect();
  ASSERT_EQ(first.size(), 1u);
  // Indices restart after Collect(); the second batch is independent.
  EXPECT_EQ(farm.Submit(config), 0u);
  farm.Submit(config);
  const auto second = farm.Collect();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_TRUE(SameSimulation(first[0], second[0]));
  EXPECT_TRUE(SameSimulation(second[0], second[1]));
}

TEST(Farm, MergedSinkSwapBetweenBatchesRoutesToTheNewSink) {
  // Regression: the pre-annotation set_merged_trace_sink wrote the field
  // without the farm lock — a data race against live workers that the
  // thread-safety annotations flagged. The swap must take effect for the
  // next batch and leave the previous sink untouched.
  const auto specs = Table3Experiments();
  const auto traces = ScaledDownTraces({specs[0]});
  const ReplayConfig config = MakeReplayConfig(
      specs[0], core::Protocol::kAdaptiveTtl, traces.at(specs[0].trace));

  Farm farm(2);
  obs::BufferTraceSink first_sink;
  farm.set_merged_trace_sink(&first_sink);
  farm.Submit(config);
  farm.Collect();
  const std::string first = first_sink.Text();
  EXPECT_FALSE(first.empty());

  obs::BufferTraceSink second_sink;
  farm.set_merged_trace_sink(&second_sink);  // pool threads are still alive
  farm.Submit(config);
  farm.Collect();
  EXPECT_EQ(first_sink.Text(), first);   // old sink sees nothing new
  EXPECT_EQ(second_sink.Text(), first);  // same deterministic stream
}

TEST(Farm, CollectOnEmptyFarmReturnsEmpty) {
  Farm farm(2);
  EXPECT_TRUE(farm.Collect().empty());
}

TEST(Interner, RoundTripsIdsAndNames) {
  core::Interner interner;
  const core::InternId a = interner.Intern("/docs/a.html");
  const core::InternId b = interner.Intern("/docs/b.html");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("/docs/a.html"), a);  // same string, same id
  EXPECT_EQ(interner.NameOf(a), "/docs/a.html");
  EXPECT_EQ(interner.NameOf(b), "/docs/b.html");
  EXPECT_EQ(interner.Find("/docs/a.html"), a);
  EXPECT_EQ(interner.Find("/docs/zzz.html"), core::kNoInternId);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Interner, SurvivesIndexRehashAndStorageGrowth) {
  // Enough strings to force many rehashes of the id index and growth of
  // the name storage; every id and lookup must stay valid throughout
  // (the index keys are views into the stored names).
  core::Interner interner;
  std::vector<core::InternId> ids;
  constexpr int kCount = 10000;
  ids.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    ids.push_back(interner.Intern("/path/to/document-" + std::to_string(i)));
  }
  ASSERT_EQ(interner.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    const std::string name = "/path/to/document-" + std::to_string(i);
    EXPECT_EQ(interner.NameOf(ids[i]), name);
    EXPECT_EQ(interner.Find(name), ids[i]);
    EXPECT_EQ(interner.Intern(name), ids[i]);
  }
}

}  // namespace
}  // namespace webcc::replay
