// Fuzz target: the Common Log Format reader (trace/clf.h).
//
// ReadClf feeds real Internet Traffic Archive logs into the replay engine,
// so it must survive arbitrary bytes: no crashes, no UB, and the stats it
// reports must account for every line it saw.
#include <cstdint>
#include <sstream>
#include <string>

#include "trace/clf.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // Whole-stream path.
  std::istringstream in(text);
  webcc::trace::ClfParseStats stats;
  const webcc::trace::Trace trace =
      webcc::trace::ReadClf(in, "fuzz", &stats);
  if (stats.accepted + stats.malformed + stats.skipped != stats.lines) {
    __builtin_trap();  // stats must partition the input lines
  }
  if (trace.records.size() != stats.accepted) __builtin_trap();

  // Per-line path (views into the line must stay in bounds — ASan/UBSan
  // check that for us).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    webcc::trace::ClfLine parsed;
    (void)webcc::trace::ParseClfLine(line, parsed);
  }
  return 0;
}
