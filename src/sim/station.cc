#include "sim/station.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace webcc::sim {

Time FifoStation::Enqueue(Time cost, Simulator::Action on_complete) {
  WEBCC_CHECK_MSG(cost >= 0, "negative service cost");
  const Time start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + cost;
  utilization_.AddBusy(cost);
  if (on_complete) sim_.At(busy_until_, std::move(on_complete));
  return busy_until_;
}

}  // namespace webcc::sim
