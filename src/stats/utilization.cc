#include "stats/utilization.h"

#include <algorithm>

#include "util/check.h"

namespace webcc::stats {

void Utilization::AddBusy(Time busy) {
  WEBCC_DCHECK(busy >= 0);
  busy_ += busy;
}

double Utilization::BusyFraction(Time elapsed) const {
  if (elapsed <= 0) return 0.0;
  return std::min(1.0, static_cast<double>(busy_) /
                           static_cast<double>(elapsed));
}

double Utilization::ReadsPerSecond(Time elapsed) const {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(reads_) / ToSeconds(elapsed);
}

double Utilization::WritesPerSecond(Time elapsed) const {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(writes_) / ToSeconds(elapsed);
}

}  // namespace webcc::stats
