// Fixture: naked-send — direct socket I/O outside live/socket.cc.
long PushRaw(int fd, const void* buf, unsigned long len) {
  return ::send(fd, buf, len, 0);
}
