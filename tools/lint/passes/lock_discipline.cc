// Lock-discipline dataflow (rule: guarded-by-unlocked).
//
// Whole-program phase one merges every WEBCC_GUARDED_BY declaration and
// WEBCC_REQUIRES contract into ProgramFacts, so a field annotated in a
// header is checked in the .cc that defines the methods. Phase two walks
// each function body: an access to a guarded field of the function's own
// class (bare or through `this->`) must be covered either by a
// `util::MutexLock` on the declared mutex earlier in an enclosing scope,
// or by a WEBCC_REQUIRES contract on the function itself.
//
// Deliberately intra-procedural and lexical: a MutexLock holds from its
// statement to the end of its enclosing scope (RAII), contracts transfer
// the obligation to callers, and constructors, destructors and
// WEBCC_NO_THREAD_SAFETY_ANALYSIS scopes are exempt — the same envelope
// Clang's -Wthread-safety checks, minus aliasing, which is why this pass
// can run under GCC.
#include <string>
#include <string_view>

#include "passes.h"

namespace webcc::lint {
namespace {

// Lock expressions compare with `this->` stripped: `MutexLock lock(mu_)`
// and `WEBCC_GUARDED_BY(this->mu_)` name the same mutex.
std::string NormalizeLockExpr(std::string_view expr) {
  std::string e(expr);
  if (e.substr(0, 6) == "this->") e = e.substr(6);
  if (!e.empty() && e.front() == '&') e = e.substr(1);
  return e;
}

struct Checker {
  const FileContext& file;
  const ProgramFacts& facts;
  Reporter& reporter;
  const ScopeModel& model;

  const Token& Tok(std::size_t k) const { return model.Tok(k); }
  bool IsPunct(std::size_t k, std::string_view p) const {
    const Token& t = Tok(k);
    return t.kind == TokKind::kPunct && t.text == p;
  }

  // Innermost function/lambda scope enclosing scope `s`, or -1.
  int EnclosingFunction(int s) const {
    for (; s >= 0; s = model.scopes[static_cast<std::size_t>(s)].parent) {
      const Scope& sc = model.scopes[static_cast<std::size_t>(s)];
      if (sc.kind == ScopeKind::kFunction || sc.kind == ScopeKind::kLambda) {
        return s;
      }
    }
    return -1;
  }

  // Nearest named function (skipping lambdas) — the owner of any
  // WEBCC_REQUIRES contract that covers code inside its lambdas too.
  const Scope* ContractOwner(int s) const {
    for (; s >= 0; s = model.scopes[static_cast<std::size_t>(s)].parent) {
      const Scope& sc = model.scopes[static_cast<std::size_t>(s)];
      if (sc.kind == ScopeKind::kFunction) return &sc;
    }
    return nullptr;
  }

  bool IsAncestorOrSelf(int candidate, int s) const {
    for (; s >= 0; s = model.scopes[static_cast<std::size_t>(s)].parent) {
      if (s == candidate) return true;
    }
    return false;
  }

  // True when `guard` is held at code index `k` (scope `s`).
  bool Held(const std::string& guard, int s, std::size_t k) const {
    // RAII acquisitions: a MutexLock earlier in any enclosing scope is
    // still live here.
    for (const LockAcquire& acq : model.locks) {
      if (acq.code_index >= k) break;  // locks are in document order
      if (!IsAncestorOrSelf(acq.scope, s)) continue;
      if (NormalizeLockExpr(acq.expr) == guard) return true;
    }
    // Caller-supplied contracts on the nearest named function.
    const Scope* owner = ContractOwner(s);
    if (owner == nullptr) return false;
    const std::string key = owner->class_name.empty()
                                ? owner->name
                                : owner->class_name + "::" + owner->name;
    const auto it = facts.requires_locks.find(key);
    if (it == facts.requires_locks.end()) return false;
    for (const std::string& e : it->second) {
      if (NormalizeLockExpr(e) == guard) return true;
    }
    return false;
  }

  void Check(std::size_t k) {
    const Token& t = Tok(k);
    if (t.kind != TokKind::kIdent) return;

    // Access form: bare `field` or `this->field`. Qualified names and
    // other objects' members are out of scope for an intra-procedural
    // check (we cannot resolve which instance they belong to).
    if (k > 0 && IsPunct(k - 1, "::")) return;
    if (k > 0 && (IsPunct(k - 1, ".") || IsPunct(k - 1, "->"))) {
      const bool via_this = IsPunct(k - 1, "->") && k >= 2 &&
                            Tok(k - 2).kind == TokKind::kIdent &&
                            Tok(k - 2).text == "this";
      if (!via_this) return;
    }
    // Declaration sites re-state the field name right before the macro.
    if (k + 1 < model.code.size()) {
      const Token& nx = Tok(k + 1);
      if (nx.kind == TokKind::kIdent &&
          (nx.text == "WEBCC_GUARDED_BY" || nx.text == "WEBCC_PT_GUARDED_BY")) {
        return;
      }
    }

    const int s = model.scope_of[k];
    const int fn = EnclosingFunction(s);
    if (fn < 0) return;  // class bodies, initializers: not executable reads
    const Scope& func = model.scopes[static_cast<std::size_t>(fn)];
    if (func.class_name.empty()) return;
    if (model.AnyEnclosing(s, [](const Scope& sc) {
          return sc.no_tsa || (sc.kind == ScopeKind::kFunction && sc.ctor_dtor);
        })) {
      return;  // opted out, or single-threaded construction/destruction
    }

    const auto git = facts.guarded.find(func.class_name);
    if (git == facts.guarded.end()) return;
    const auto fit = git->second.find(t.text);
    if (fit == git->second.end()) return;
    const ProgramFacts::FieldFact& fact = fit->second;

    if (fact.pointee_only) {
      // Reads of the pointer value are fine; only dereferences touch the
      // guarded pointee.
      const bool deref = (k > 0 && IsPunct(k - 1, "*")) ||
                         (k + 1 < model.code.size() &&
                          (IsPunct(k + 1, "->") || IsPunct(k + 1, "[")));
      if (!deref) return;
    }

    const std::string guard = NormalizeLockExpr(fact.guard);
    if (Held(guard, s, k)) return;

    Finding f;
    f.file = file.path;
    f.line = t.line;
    f.rule = "guarded-by-unlocked";
    f.pass = "lock-discipline";
    f.message = "field '" + t.text + "' of " + func.class_name +
                " is accessed without holding '" + guard +
                "'; take a util::MutexLock or add WEBCC_REQUIRES(" + guard +
                ") to " + func.name;
    f.witness.push_back({file.path, t.line,
                         "unguarded access in " + func.class_name +
                             "::" + func.name});
    f.witness.push_back({fact.file, fact.line,
                         "field '" + t.text + "' declared WEBCC_GUARDED_BY(" +
                             fact.guard + ") here"});
    reporter.Report(std::move(f));
  }
};

}  // namespace

void CollectProgramFacts(const FileContext& file, ProgramFacts* facts) {
  for (const GuardedField& gf : file.model.guarded_fields) {
    ProgramFacts::FieldFact fact;
    fact.guard = gf.guard;
    fact.file = file.path;
    fact.line = gf.line;
    fact.pointee_only = gf.pointee_only;
    // First declaration wins; redeclarations across TUs are identical in
    // practice (the annotation lives in the header).
    facts->guarded[gf.class_name].emplace(gf.field, std::move(fact));
  }
  for (const auto& [name, exprs] : file.model.requires_locks) {
    facts->requires_locks[name].insert(exprs.begin(), exprs.end());
  }
}

void RunLockDiscipline(const FileContext& file, const ProgramFacts& facts,
                       Reporter& reporter) {
  Checker checker{file, facts, reporter, file.model};
  const std::size_t n = file.model.code.size();
  for (std::size_t k = 0; k < n; ++k) {
    checker.Check(k);
  }
}

}  // namespace webcc::lint
