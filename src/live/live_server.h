// Real-TCP origin server + accelerator, the live counterpart of the
// replay's pseudo-server.
//
// Mirrors the paper's deployment: the accelerator fronts the origin,
// registers every requesting site, and pushes INVALIDATE messages over TCP
// when a document is touched and checked in. One request per connection;
// the wire format is net/wire.h.
//
// Invalidations must reach the requesting proxy's listener, so live client
// identifiers embed the proxy's callback port: "name@port" (see
// MakeClientId). This plays the role of the IP address the paper's
// accelerator records per site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/accelerator.h"
#include "core/policy.h"
#include "http/document_store.h"
#include "live/socket.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::live {

// "alice@45123": real-client name plus the proxy listener to call back.
std::string MakeClientId(std::string_view name, std::uint16_t proxy_port);
// Extracts the callback port; std::nullopt if the id has no port suffix.
std::optional<std::uint16_t> ParseClientPort(std::string_view client_id);

class LiveServer {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 = pick an ephemeral port
    core::LeaseConfig lease;
    std::string server_name = "origin";
    // Optional structured-event sink (not owned; must outlive the server).
    // Live timestamps are wall-clock microseconds from Now(), and the sink
    // must be internally synchronized (JsonlTraceSink is) because handler
    // and admin threads emit concurrently.
    obs::TraceSink* trace_sink = nullptr;
  };

  explicit LiveServer(Options options);
  ~LiveServer();

  LiveServer(const LiveServer&) = delete;
  LiveServer& operator=(const LiveServer&) = delete;

  // Binds and spawns the accept loop. False if the port could not be bound.
  bool Start();
  void Stop();

  std::uint16_t port() const { return port_; }

  // --- document administration (thread-safe) -------------------------------
  void AddDocument(std::string path, std::uint64_t size_bytes);
  // Simulates an edit plus check-in: bumps the version and runs the
  // accelerator's detection, pushing invalidations to registered proxies.
  // Returns the number of INVALIDATE messages pushed.
  std::size_t TouchDocument(const std::string& path);

  // --- failure drill --------------------------------------------------------
  // Drops the in-memory invalidation table (server-site crash)...
  void CrashTables();
  // ...and the recovery path: pushes a server-address INVALIDATE to every
  // site ever seen. Returns how many were pushed.
  std::size_t Recover();

  // Monotonic protocol time (microseconds since Start).
  Time Now() const;

  std::uint64_t requests_served() const { return requests_served_.load(); }
  std::uint64_t invalidations_pushed() const {
    return invalidations_pushed_.load();
  }

 private:
  void AcceptLoop();
  void HandleConnection(TcpStream stream);
  std::size_t PushInvalidations(
      const std::vector<net::Invalidation>& invalidations);

  Options options_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;  // guards docs_ and accel_
  http::DocumentStore docs_;
  core::Accelerator accel_;

  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> invalidations_pushed_{0};
};

}  // namespace webcc::live
