// webcc_lint's contract: every fixture under tests/data/lint trips exactly
// the rule it is named for, clean code passes, and pragmas suppress. The
// fixtures are the executable specification of the rules — a rule change
// that silently stops flagging its fixture fails here, not in review.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace webcc::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WEBCC_TEST_DATA_DIR) + "/lint/" + name;
}

struct RunResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

RunResult RunCli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunLintMain(args, out, err);
  return {code, out.str(), err.str()};
}

bool HasRule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [rule](const Finding& f) { return f.rule == rule; });
}

TEST(LintRules, RuleIdsAreStable) {
  const std::vector<std::string_view> expected = {
      "determinism-clock",   "unordered-iter-in-dump",
      "raw-mutex",           "enum-switch-default",
      "naked-send",          "scan-prune",
      "naked-evict",         "guarded-by-unlocked",
      "lock-order-cycle",    "determinism-taint",
      "stale-suppression"};
  EXPECT_EQ(RuleIds(), expected);
}

TEST(LintRules, LegacyRuleIdsSurviveTokenizerRewrite) {
  // The v1 scanner's seven ids lead the list unchanged — suppression
  // pragmas written against v1 keep working.
  const std::vector<std::string_view> legacy = {
      "determinism-clock", "unordered-iter-in-dump", "raw-mutex",
      "enum-switch-default", "naked-send", "scan-prune", "naked-evict"};
  const std::vector<std::string_view> ids = RuleIds();
  ASSERT_GE(ids.size(), legacy.size());
  EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), ids.begin()));
}

// --- one fixture per rule, asserting exit code and rule id -----------------

struct FixtureCase {
  const char* file;
  const char* rule;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, FlagsItsRule) {
  const FixtureCase& c = GetParam();
  const RunResult result = RunCli({FixturePath(c.file)});
  EXPECT_EQ(result.exit_code, 1) << result.out << result.err;
  EXPECT_NE(result.out.find(std::string("[") + c.rule + "]"),
            std::string::npos)
      << result.out;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"clock_violation.cc", "determinism-clock"},
        FixtureCase{"unordered_dump_violation.cc", "unordered-iter-in-dump"},
        FixtureCase{"raw_mutex_violation.cc", "raw-mutex"},
        FixtureCase{"enum_switch_violation.cc", "enum-switch-default"},
        FixtureCase{"live_naked_send_violation.cc", "naked-send"},
        FixtureCase{"live_unclassified_send_violation.cc", "naked-send"},
        FixtureCase{"scan_prune_violation.cc", "scan-prune"},
        FixtureCase{"naked_evict_violation.cc", "naked-evict"},
        FixtureCase{"lock_discipline_violation.cc", "guarded-by-unlocked"},
        FixtureCase{"lock_order_violation.cc", "lock-order-cycle"},
        FixtureCase{"taint_violation.cc", "determinism-taint"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      // Fixture file stem: unique even when two fixtures share a rule.
      std::string name = info.param.file;
      name.resize(name.size() - 3);  // strip ".cc"
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(LintCli, ClassifiedSendCounterpartIsClean) {
  // The pair fixture of live_unclassified_send_violation.cc: the same drain
  // through SendOneWayClassified must produce no naked-send finding.
  const RunResult result = RunCli({FixturePath("live_classified_send_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintRules, UnclassifiedSendFlaggedOnlyOutsideSocketCc) {
  const std::string text =
      "bool Push(unsigned short p, const char* l) { return SendOneWay(p, l); }\n";
  EXPECT_TRUE(HasRule(LintFile("src/live/live_server.cc", text), "naked-send"));
  EXPECT_FALSE(HasRule(LintFile("src/live/socket.cc", text), "naked-send"));
  const std::string classified =
      "int Push(unsigned short p, const char* l) {\n"
      "  return SendOneWayClassified(p, l, 1000) == 0 ? 0 : 1;\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/live/live_server.cc", classified), "naked-send"));
}

TEST(LintCli, WheelPruneCounterpartIsClean) {
  // The pair fixture of scan_prune_violation.cc: the same expiry work
  // through the wheel's authority callback produces no scan-prune finding.
  const RunResult result = RunCli({FixturePath("scan_prune_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, KernelBackedEvictCounterpartIsClean) {
  // The pair fixture of naked_evict_violation.cc: the same pressure routed
  // through the proxy cache's eviction kernel produces no naked-evict
  // finding.
  const RunResult result = RunCli({FixturePath("naked_evict_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, CleanFileExitsZero) {
  const RunResult result = RunCli({FixturePath("clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, PragmasSuppressEveryFinding) {
  const RunResult result = RunCli({FixturePath("suppressed.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
}

TEST(LintCli, DirectoryScanFindsAllFixtures) {
  const RunResult result = RunCli({FixturePath("")});
  EXPECT_EQ(result.exit_code, 1);
  for (const std::string_view rule : RuleIds()) {
    EXPECT_NE(result.out.find(std::string("[") + std::string(rule) + "]"),
              std::string::npos)
        << "directory scan missed " << rule << "\n"
        << result.out;
  }
}

TEST(LintCli, JsonOutputIsMachineReadable) {
  const RunResult result = RunCli({"--json", FixturePath("clock_violation.cc")});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.out.find("\"rule\":\"determinism-clock\""),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("\"line\":"), std::string::npos);
}

TEST(LintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCli({}).exit_code, 2);
  EXPECT_EQ(RunCli({"--bogus-flag"}).exit_code, 2);
  EXPECT_EQ(RunCli({FixturePath("no_such_file.cc")}).exit_code, 2);
}

// --- rule semantics on inline snippets -------------------------------------

TEST(LintRules, CommentsAndStringsDoNotTrip) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// the old code called rand() here\n"
      "/* std::mutex was considered */\n"
      "const char* kDoc = \"uses system_clock\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, UnorderedIterOutsideDumpIsFine) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table_;\n"
      "int Sum() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : table_) n += v;\n"
      "  return n;\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "unordered-iter-in-dump"));
}

TEST(LintRules, UnorderedBeginInSerializeIsFlagged) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "#include <unordered_set>\n"
      "std::unordered_set<int> seen_;\n"
      "void Serialize() {\n"
      "  auto it = seen_.begin();\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "unordered-iter-in-dump"));
}

TEST(LintRules, SwitchOverCharWithDefaultIsFine) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "int Classify(char c) {\n"
      "  switch (c) {\n"
      "    case 'a': return 1;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "enum-switch-default"));
}

TEST(LintRules, SwitchOverEnumTypeNameIsFlagged) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "int Cost(core::LeaseMode m) {\n"
      "  switch (static_cast<LeaseMode>(m)) {\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "enum-switch-default"));
}

TEST(LintRules, ClockRuleExemptsLiveCliUtil) {
  const std::string text = "int Jitter() { return rand() % 10; }\n";
  EXPECT_FALSE(HasRule(LintFile("src/live/x.cc", text), "determinism-clock"));
  EXPECT_FALSE(HasRule(LintFile("src/cli/x.cc", text), "determinism-clock"));
  EXPECT_FALSE(HasRule(LintFile("src/util/x.cc", text), "determinism-clock"));
  EXPECT_TRUE(HasRule(LintFile("src/replay/x.cc", text), "determinism-clock"));
}

TEST(LintRules, SocketCcIsExemptFromNakedSend) {
  const std::string text = "long F(int fd) { return ::send(fd, 0, 0, 0); }\n";
  EXPECT_FALSE(HasRule(LintFile("src/live/socket.cc", text), "naked-send"));
  EXPECT_TRUE(HasRule(LintFile("src/live/live_proxy.cc", text), "naked-send"));
}

TEST(LintRules, ThreadAnnotationsHeaderMayHoldRawMutex) {
  const std::string text = "#include <mutex>\nstd::mutex mu_;\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/util/thread_annotations.h", text), "raw-mutex"));
  EXPECT_TRUE(HasRule(LintFile("src/replay/farm.h", text), "raw-mutex"));
}

TEST(LintRules, ScanPruneFlagsIterationEraseNearLeaseState) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "void Prune(long long now) {\n"
      "  for (auto it = lease_until_.begin(); it != lease_until_.end();) {\n"
      "    if (it->second <= now) it = lease_until_.erase(it); else ++it;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "scan-prune"));
}

TEST(LintRules, ScanPruneIgnoresIterationEraseWithoutLeaseContext) {
  // The delivery sweeps erase from bounded pending-write sets; without the
  // lease-state spellings nearby they are not prune loops.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "void Sweep() {\n"
      "  for (auto it = pending_.begin(); it != pending_.end();) {\n"
      "    if (it->second.done()) it = pending_.erase(it); else ++it;\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "scan-prune"));
}

TEST(LintRules, WheelInternalsExemptFromScanPrune) {
  const std::string text =
      "void Compact(long long now) {\n"
      "  for (auto it = by_expiry_.begin(); it != by_expiry_.end();) {\n"
      "    if (!LeaseActive(it->second, now)) it = by_expiry_.erase(it);\n"
      "    else ++it;\n"
      "  }\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/core/timer_wheel.h", text), "scan-prune"));
  EXPECT_FALSE(HasRule(LintFile("src/core/site_list.h", text), "scan-prune"));
  EXPECT_TRUE(HasRule(LintFile("src/core/table.cc", text), "scan-prune"));
}

TEST(LintRules, NakedEvictFlagsBudgetEraseOutsideKernel) {
  const std::string text =
      "void MakeRoom(unsigned long long incoming) {\n"
      "  while (bytes_used_ + incoming > capacity_bytes_) {\n"
      "    bytes_used_ -= sizes_[lru_.back()];\n"
      "    sizes_.erase(lru_.back());\n"
      "    lru_.pop_back();\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/replay/x.cc", text), "naked-evict"));
  // The kernel and its host cache own the sanctioned loop.
  EXPECT_FALSE(HasRule(LintFile("src/http/proxy_cache.cc", text), "naked-evict"));
  EXPECT_FALSE(
      HasRule(LintFile("src/http/eviction/gds_policy.h", text), "naked-evict"));
}

TEST(LintRules, NakedEvictIgnoresEraseWithoutBudgetContext) {
  // Plain container maintenance near no byte budget is not an eviction loop.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "void Forget(const std::string& key) {\n"
      "  sizes_.erase(key);\n"
      "  order_.pop_back();\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "naked-evict"));
}

TEST(LintRules, AllowOnPreviousLineSuppresses) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// webcc-lint: allow(determinism-clock) — justified\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, AllowForOneRuleDoesNotSilenceAnother) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// webcc-lint: allow(raw-mutex)\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_TRUE(HasRule(findings, "determinism-clock"));
}

// --- tokenizer fidelity ------------------------------------------------------

TEST(LintTokenizer, RawStringsAndPreprocessorDoNotTrip) {
  // The v1 line scanner could not see raw-string bounds; the tokenizer
  // must keep rand()/clock names inside literals inert.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "const char* kHelp = R\"(call rand() or check system_clock)\";\n"
      "const char* kDelim = R\"x(time(0) \")\" still inside)x\";\n"
      "#define CALLS_RAND 0 /* not rand() */\n");
  EXPECT_TRUE(findings.empty()) << findings.size();
}

TEST(LintTokenizer, PragmaInsideStringLiteralIsInert) {
  // A pragma spelled in a string is data, not a suppression — the finding
  // on the same line still fires.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "const char* kDoc = \"webcc-lint: allow(determinism-clock)\";\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_TRUE(HasRule(findings, "determinism-clock"));
}

// --- lock-discipline pass ----------------------------------------------------

TEST(LintCli, GuardedFieldWithoutLockFailsWithWitnessChain) {
  const RunResult result =
      RunCli({FixturePath("lock_discipline_violation.cc")});
  EXPECT_EQ(result.exit_code, 1) << result.out << result.err;
  EXPECT_NE(result.out.find("[guarded-by-unlocked]"), std::string::npos)
      << result.out;
  // The witness names both the access and the declaration, file:line each.
  EXPECT_NE(result.out.find(FixturePath("lock_discipline_violation.cc") +
                            ":20: unguarded access"),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find(FixturePath("lock_discipline_violation.cc") +
                            ":25: field 'granted_' declared"),
            std::string::npos)
      << result.out;
}

TEST(LintCli, LockDisciplineCounterpartIsClean) {
  // Same board, but the getter locks and the helper carries a
  // WEBCC_REQUIRES contract — no finding.
  const RunResult result = RunCli({FixturePath("lock_discipline_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintRules, RequiresContractCoversGuardedAccess) {
  const std::string text =
      "class Board {\n"
      " public:\n"
      "  void Bump() WEBCC_REQUIRES(mu_) { n_ += 1; }\n"
      " private:\n"
      "  util::Mutex mu_;\n"
      "  int n_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/x.h", text), "guarded-by-unlocked"));
}

TEST(LintRules, ConstructorsAreExemptFromLockDiscipline) {
  const std::string text =
      "class Board {\n"
      " public:\n"
      "  Board() { n_ = 0; }\n"
      "  ~Board() { n_ = -1; }\n"
      " private:\n"
      "  util::Mutex mu_;\n"
      "  int n_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/x.h", text), "guarded-by-unlocked"));
}

TEST(LintRules, NoTsaLambdaIsExemptFromLockDiscipline) {
  // The CondVar::Wait predicate idiom: the lambda runs with the lock held
  // by the wait machinery, which the analyzer cannot see — the annotation
  // opts it out, exactly like clang's analysis.
  const std::string text =
      "class Farm {\n"
      "  void Wait() {\n"
      "    cv_.Wait([this]() WEBCC_NO_THREAD_SAFETY_ANALYSIS {\n"
      "      return done_ > 0;\n"
      "    });\n"
      "  }\n"
      "  util::Mutex mu_;\n"
      "  util::CondVar cv_;\n"
      "  int done_ WEBCC_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/x.h", text), "guarded-by-unlocked"));
}

// --- lock-order pass ---------------------------------------------------------

TEST(LintCli, LockOrderCycleWitnessNamesEveryEdge) {
  const RunResult result = RunCli({FixturePath("lock_order_violation.cc")});
  EXPECT_EQ(result.exit_code, 1) << result.out << result.err;
  EXPECT_NE(result.out.find("[lock-order-cycle]"), std::string::npos)
      << result.out;
  // One witness line per edge of the cycle, each with file:line.
  EXPECT_NE(
      result.out.find(FixturePath("lock_order_violation.cc") +
                      ":16: InvertedFanout::PushInvalidation acquires"),
      std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find(FixturePath("lock_order_violation.cc") +
                            ":20: InvertedFanout::DrainOutbox acquires"),
            std::string::npos)
      << result.out;
}

TEST(LintCli, ConsistentLockOrderIsClean) {
  const RunResult result = RunCli({FixturePath("lock_order_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintRules, DeclaredAcquiredBeforeConflictIsACycle) {
  // The declared edge pins mu_a before mu_b; code that nests them the
  // other way contradicts the declaration.
  const std::string text =
      "class Pinned {\n"
      "  void Backwards() {\n"
      "    const util::MutexLock b(mu_b_);\n"
      "    const util::MutexLock a(mu_a_);\n"
      "  }\n"
      "  util::Mutex mu_a_ WEBCC_ACQUIRED_BEFORE(mu_b_);\n"
      "  util::Mutex mu_b_;\n"
      "};\n";
  EXPECT_TRUE(HasRule(LintFile("src/core/x.h", text), "lock-order-cycle"));
}

// --- determinism-taint pass --------------------------------------------------

TEST(LintCli, TaintedEmitFailsAndSortedCounterpartIsClean) {
  const RunResult bad = RunCli({FixturePath("taint_violation.cc")});
  EXPECT_EQ(bad.exit_code, 1) << bad.out << bad.err;
  EXPECT_NE(bad.out.find("[determinism-taint]"), std::string::npos) << bad.out;
  EXPECT_NE(bad.out.find("unordered container 'hits_' iterated here"),
            std::string::npos)
      << bad.out;

  const RunResult good = RunCli({FixturePath("taint_clean.cc")});
  EXPECT_EQ(good.exit_code, 0) << good.out << good.err;
  EXPECT_TRUE(good.out.empty()) << good.out;
}

TEST(LintRules, AccumulatedVectorCarriesTaintAcrossLoops) {
  // Pushing hash-ordered values into a vector and emitting the vector
  // without a sort is still nondeterministic.
  const std::string text =
      "void Publish() {\n"
      "  std::unordered_map<int, int> hits_;\n"
      "  std::vector<int> lines;\n"
      "  for (const auto& [k, v] : hits_) {\n"
      "    lines.push_back(v);\n"
      "  }\n"
      "  for (int line : lines) {\n"
      "    sink_.Emit(line);\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/core/x.cc", text), "determinism-taint"));
}

// --- stale suppressions ------------------------------------------------------

TEST(LintCli, StaleSuppressionWarnsButExitsZeroByDefault) {
  const RunResult result =
      RunCli({FixturePath("stale_suppression_violation.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_NE(result.out.find("[stale-suppression]"), std::string::npos)
      << result.out;
}

TEST(LintCli, StrictSuppressionsMakesStalePragmasFatal) {
  const RunResult result = RunCli(
      {"--strict-suppressions", FixturePath("stale_suppression_violation.cc")});
  EXPECT_EQ(result.exit_code, 1) << result.out << result.err;
}

TEST(LintRules, UsedPragmaIsNotStale) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// webcc-lint: allow(determinism-clock) — justified\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_FALSE(HasRule(findings, "stale-suppression"));
}

TEST(LintRules, PathExemptPragmaIsNotStale) {
  // thread_annotations.h keeps allow(raw-mutex) markers even though the
  // rule skips the file entirely; they document intent, not staleness.
  const std::vector<Finding> findings = LintFile(
      "src/util/thread_annotations.h",
      "// webcc-lint: allow(raw-mutex) — this header wraps the primitives\n"
      "#include <mutex>\n");
  EXPECT_FALSE(HasRule(findings, "stale-suppression"));
}

// --- output formats ----------------------------------------------------------

TEST(LintCli, JsonGoldenOutputForTaintFixture) {
  // Pins the machine-readable schema end to end: keys, order, severity,
  // pass and nested witness array.
  const std::string path = FixturePath("taint_violation.cc");
  const RunResult result = RunCli({"--json", path});
  EXPECT_EQ(result.exit_code, 1);
  const std::string expected =
      "{\"file\":\"" + path +
      "\",\"line\":15,\"rule\":\"determinism-taint\","
      "\"severity\":\"error\",\"pass\":\"determinism-taint\","
      "\"message\":\"'Emit(' emits values in hash-iteration order of "
      "'hits_'; collect into a vector and sort before emitting\","
      "\"witness\":[{\"file\":\"" +
      path +
      "\",\"line\":15,\"note\":\"sink called inside the iteration body\"},"
      "{\"file\":\"" +
      path +
      "\",\"line\":14,\"note\":\"unordered container 'hits_' iterated "
      "here\"}]}\n";
  EXPECT_EQ(result.out, expected);
}

TEST(LintOutput, JsonEscapesQuotesAndBackslashes) {
  // v1 wrote messages into JSON unescaped; a path (or message) with a
  // quote or backslash produced invalid JSON.
  const std::vector<Finding> findings =
      LintFile("src/replay/we\"ird\\dir/x.cc",
               "int Jitter() { return rand() % 10; }\n");
  ASSERT_FALSE(findings.empty());
  std::ostringstream out;
  WriteFindings(out, findings, /*json=*/true);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"file\":\"src/replay/we\\\"ird\\\\dir/x.cc\""),
            std::string::npos)
      << json;
  // Raw (unescaped) quote-in-string must not survive anywhere.
  EXPECT_EQ(json.find("we\"ird"), std::string::npos) << json;
}

}  // namespace
}  // namespace webcc::lint
