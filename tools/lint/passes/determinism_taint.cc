// Determinism taint (rule: determinism-taint).
//
// Hash-container iteration order is the classic source of run-to-run
// nondeterminism in this codebase's byte-stable outputs (trace files,
// metrics dumps, wire messages). This pass tracks it as a taint: the body
// of a range-for over an `unordered_map`/`unordered_set` is a tainted
// region, a container that accumulates values inside a tainted region
// (push_back/emplace_back/insert) becomes a tainted name, and
// `std::sort`/`std::stable_sort` over a tainted name cleanses it. Calling
// a sink — TraceSink::Emit or a live send — inside a tainted region, or
// passing a tainted name to one, is a finding whose witness points back
// at the loop that introduced the nondeterminism.
//
// The canonical clean idiom (core/invalidation_table.cc) — collect into a
// vector inside the hash-map walk, sort, then emit — passes: the sort
// cleanses the vector before the emit sees it.
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "passes.h"

namespace webcc::lint {
namespace {

bool IsSinkName(std::string_view word) {
  return word == "Emit" || word == "SendOneWay" ||
         word == "SendOneWayClassified";
}

bool IsAccumulatorName(std::string_view word) {
  return word == "push_back" || word == "emplace_back" || word == "insert" ||
         word == "emplace";
}

struct TaintRange {
  std::size_t begin = 0, end = 0;  // code-token indices, half-open
  int src_line = 0;                // the range-for that introduced it
  std::string source;              // container being iterated
};

struct Pass {
  const FileContext& file;
  Reporter& reporter;
  const ScopeModel& model;

  const Token& Tok(std::size_t k) const { return model.Tok(k); }
  bool IsPunct(std::size_t k, std::string_view p) const {
    const Token& t = Tok(k);
    return t.kind == TokKind::kPunct && t.text == p;
  }
  bool IsIdent(std::size_t k) const {
    return Tok(k).kind == TokKind::kIdent;
  }

  std::vector<TaintRange> ranges;
  struct TaintSource {
    int line = 0;
    std::string container;
  };
  std::map<std::string, TaintSource> tainted_names;

  // End of the statement or brace body starting right after `open_close`
  // (the for-head's ')'): the matching '}' for a braced body, or the next
  // top-level ';' for a single-statement body.
  std::size_t BodyEnd(std::size_t after_close) const {
    const std::size_t n = model.code.size();
    if (after_close < n && IsPunct(after_close, "{")) {
      int depth = 0;
      for (std::size_t k = after_close; k < n; ++k) {
        if (IsPunct(k, "{")) ++depth;
        if (IsPunct(k, "}") && --depth == 0) return k;
      }
      return n;
    }
    int depth = 0;
    for (std::size_t k = after_close; k < n; ++k) {
      if (IsPunct(k, "(") || IsPunct(k, "{")) ++depth;
      if (IsPunct(k, ")") || IsPunct(k, "}")) --depth;
      if (depth == 0 && IsPunct(k, ";")) return k;
    }
    return n;
  }

  const TaintRange* RangeAt(std::size_t k) const {
    for (const TaintRange& r : ranges) {
      if (k >= r.begin && k < r.end) return &r;
    }
    return nullptr;
  }

  // `for ( decl : range )` — if the range expression names an unordered
  // container (or a still-tainted accumulator), its body is tainted.
  void MaybeOpenRange(std::size_t k) {
    if (!IsIdent(k) || Tok(k).text != "for") return;
    if (k + 1 >= model.code.size() || !IsPunct(k + 1, "(")) return;
    const std::size_t n = model.code.size();
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = k + 1; j < n; ++j) {
      if (IsPunct(j, "(")) ++depth;
      if (IsPunct(j, ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && IsPunct(j, ":") && colon == 0 && !IsPunct(j - 1, ":") &&
          (j + 1 >= n || !IsPunct(j + 1, ":"))) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) return;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (!IsIdent(j)) continue;
      const std::string& name = Tok(j).text;
      const bool unordered = file.unordered_names.count(name) != 0;
      const bool accumulated = tainted_names.count(name) != 0;
      if (!unordered && !accumulated) continue;
      TaintRange r;
      r.begin = close + 1;
      r.end = BodyEnd(close + 1);
      r.src_line = Tok(k).line;
      r.source = unordered ? name : tainted_names[name].container;
      ranges.push_back(std::move(r));
      return;
    }
  }

  // Inside a tainted region: `X.push_back(...)` marks X as carrying
  // hash-ordered values.
  void MaybeAccumulate(std::size_t k, const TaintRange& r) {
    if (!IsIdent(k) || !IsAccumulatorName(Tok(k).text)) return;
    if (k < 2 || !IsPunct(k - 1, ".") || !IsIdent(k - 2)) return;
    if (k + 1 >= model.code.size() || !IsPunct(k + 1, "(")) return;
    tainted_names[Tok(k - 2).text] = {r.src_line, r.source};
  }

  // `std::sort(v.begin(), v.end())` — any tainted name in the argument
  // list is now deterministically ordered.
  void MaybeCleanse(std::size_t k) {
    if (!IsIdent(k)) return;
    const std::string& word = Tok(k).text;
    if (word != "sort" && word != "stable_sort") return;
    if (k + 1 >= model.code.size() || !IsPunct(k + 1, "(")) return;
    const std::size_t n = model.code.size();
    int depth = 0;
    for (std::size_t j = k + 1; j < n; ++j) {
      if (IsPunct(j, "(")) ++depth;
      if (IsPunct(j, ")") && --depth == 0) break;
      if (IsIdent(j)) tainted_names.erase(Tok(j).text);
    }
  }

  void ReportSink(std::size_t k, int src_line, const std::string& source,
                  const std::string& how) {
    Finding f;
    f.file = file.path;
    f.line = Tok(k).line;
    f.rule = "determinism-taint";
    f.pass = "determinism-taint";
    f.message = "'" + Tok(k).text +
                "(' emits values in hash-iteration order of '" + source +
                "'; collect into a vector and sort before emitting";
    f.witness.push_back({file.path, Tok(k).line, how});
    f.witness.push_back(
        {file.path, src_line,
         "unordered container '" + source + "' iterated here"});
    reporter.Report(std::move(f));
  }

  void MaybeSink(std::size_t k) {
    if (!IsIdent(k) || !IsSinkName(Tok(k).text)) return;
    if (k + 1 >= model.code.size() || !IsPunct(k + 1, "(")) return;
    if (const TaintRange* r = RangeAt(k)) {
      ReportSink(k, r->src_line, r->source,
                 "sink called inside the iteration body");
      return;
    }
    // Outside any loop: tainted only if an argument carries taint.
    const std::size_t n = model.code.size();
    int depth = 0;
    for (std::size_t j = k + 1; j < n; ++j) {
      if (IsPunct(j, "(")) ++depth;
      if (IsPunct(j, ")") && --depth == 0) break;
      if (!IsIdent(j)) continue;
      const auto it = tainted_names.find(Tok(j).text);
      if (it == tainted_names.end()) continue;
      ReportSink(k, it->second.line, it->second.container,
                 "'" + Tok(j).text +
                     "' accumulated in hash order and never sorted");
      return;
    }
  }

  void Run() {
    // Taint state is per named function; lambdas share their host's state
    // (a lambda emitting its host's tainted vector is still a finding).
    const std::size_t n = model.code.size();
    int current_fn = -2;
    for (std::size_t k = 0; k < n; ++k) {
      int fn = -1;
      for (int s = model.scope_of[k]; s >= 0;
           s = model.scopes[static_cast<std::size_t>(s)].parent) {
        if (model.scopes[static_cast<std::size_t>(s)].kind ==
            ScopeKind::kFunction) {
          fn = s;
          break;
        }
      }
      if (fn != current_fn) {
        current_fn = fn;
        ranges.clear();
        tainted_names.clear();
      }
      MaybeOpenRange(k);
      if (const TaintRange* r = RangeAt(k)) MaybeAccumulate(k, *r);
      MaybeCleanse(k);
      MaybeSink(k);
    }
  }
};

}  // namespace

void RunDeterminismTaint(const FileContext& file, Reporter& reporter) {
  Pass pass{file, reporter, file.model, {}, {}};
  pass.Run();
}

}  // namespace webcc::lint
