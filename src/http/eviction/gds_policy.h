// GreedyDual-Size (Cao & Irani) with uniform retrieval cost: every entry
// carries a credit H = L + cost/size with cost = 1, and the entry with the
// smallest H is evicted. Instead of aging every resident entry on each
// eviction, the standard inflation-offset trick raises the global floor L
// to the victim's H — a hit or insert then re-credits the entry above the
// floor, so recently-useful small objects outlive large cold ones.
//
// This is the one policy that keeps per-entry state: a key -> (H, order)
// map plus a lazy-deletion min-heap of (H, order, key). `order` is a
// policy-private monotone counter, so credit ties break toward the older
// record — the same older-first convention as the TTL heap's stamp order —
// and the whole decision sequence is deterministic (doubles included: the
// arithmetic is a fixed-order sum of exact inputs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "http/eviction/policy.h"

namespace webcc::http::eviction {

class GdsPolicy : public EvictionPolicy {
 public:
  EvictionPolicyKind kind() const override {
    return EvictionPolicyKind::kGds;
  }

  void OnInsert(const EntryView& entry) override { Credit(entry); }
  void OnHit(const EntryView& entry) override { Credit(entry); }
  void OnErase(const EntryView& entry) override { live_.erase(entry.key); }

  Victim PickVictim(Time /*now*/, EvictionHost& /*host*/) override {
    for (;;) {
      // PickVictim is only called with a resident tier-1 entry, and every
      // resident entry has a live heap record, so the heap cannot run dry.
      std::pop_heap(heap_.begin(), heap_.end(), Costlier);
      const HeapRecord top = heap_.back();
      heap_.pop_back();
      const auto it = live_.find(top.key);
      if (it == live_.end() || it->second.order != top.order) {
        continue;  // stale: entry erased or re-credited since this push
      }
      inflation_ = top.h;
      ++stats_.picks;
      return Victim{top.key, /*expired_rule=*/false};
    }
  }

  void ExportStats(obs::MetricsRegistry& registry,
                   std::string_view prefix) const override {
    EvictionPolicy::ExportStats(registry, prefix);
    std::string name(prefix);
    name += "gds_inflation";
    registry.SetGauge(name, inflation_);
  }

  double inflation() const { return inflation_; }

 private:
  struct Credit_ {
    double h = 0.0;
    std::uint64_t order = 0;
  };
  struct HeapRecord {
    double h = 0.0;
    std::uint64_t order = 0;
    core::InternId key = core::kNoInternId;
  };

  // Min-heap by (h, order): ties in credit evict the older record first.
  static bool Costlier(const HeapRecord& a, const HeapRecord& b) {
    if (a.h != b.h) return a.h > b.h;
    return a.order > b.order;
  }

  void Credit(const EntryView& entry) {
    const double h =
        inflation_ + 1.0 / static_cast<double>(std::max<std::uint64_t>(
                               entry.size_bytes, 1));
    const std::uint64_t order = next_order_++;
    live_[entry.key] = Credit_{h, order};
    heap_.push_back(HeapRecord{h, order, entry.key});
    std::push_heap(heap_.begin(), heap_.end(), Costlier);
    // Every re-credit leaks one stale record; rebuild once they outnumber
    // the live ones (same policy as ExpiryHeap::CompactIfStale).
    if (heap_.size() >= kCompactFloor && heap_.size() > 2 * live_.size()) {
      auto keep = heap_.begin();
      for (const HeapRecord& r : heap_) {
        const auto it = live_.find(r.key);
        if (it != live_.end() && it->second.order == r.order) *keep++ = r;
      }
      heap_.erase(keep, heap_.end());
      std::make_heap(heap_.begin(), heap_.end(), Costlier);
    }
  }

  static constexpr std::size_t kCompactFloor = 64;

  double inflation_ = 0.0;
  std::uint64_t next_order_ = 0;
  std::unordered_map<core::InternId, Credit_> live_;
  std::vector<HeapRecord> heap_;
};

}  // namespace webcc::http::eviction
