// Ablation A1: serialized vs decoupled invalidation sending.
//
// The paper's prototype does not accept new requests until all
// invalidations for a modification have been sent, which it identifies as
// the cause of invalidation's large worst-case client latency, and suggests
// a separate sending process as the fix. This ablation quantifies both
// configurations across the six replay runs.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Ablation: serialized vs decoupled invalidation sends ===\n\n");

  // Twelve independent replays (six rows, two sender configs): generate
  // traces serially, then farm the runs across the available cores.
  const auto specs = replay::AllTableExperiments();
  for (const replay::ExperimentSpec& spec : specs) bench::TraceFor(spec.trace);
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size() * 2);
  for (const replay::ExperimentSpec& spec : specs) {
    replay::ReplayConfig serialized = replay::MakeReplayConfig(
        spec, core::Protocol::kInvalidation, bench::TraceFor(spec.trace));
    replay::ReplayConfig decoupled = serialized;
    decoupled.serialized_invalidation = false;
    configs.push_back(serialized);
    configs.push_back(decoupled);
  }
  const std::vector<replay::ReplayMetrics> runs =
      replay::Farm::RunAll(configs);

  stats::Table table({"Trace", "avg ser.", "avg dec.", "max ser.", "max dec.",
                      "p99 ser.", "p99 dec."});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const replay::ExperimentSpec& spec = specs[i];
    const replay::ReplayMetrics& with_blocking = runs[2 * i];
    const replay::ReplayMetrics& without_blocking = runs[2 * i + 1];

    table.AddRow({spec.id,
                  util::Fixed(with_blocking.latency_ms.mean(), 1) + "ms",
                  util::Fixed(without_blocking.latency_ms.mean(), 1) + "ms",
                  util::Fixed(with_blocking.latency_ms.max(), 0) + "ms",
                  util::Fixed(without_blocking.latency_ms.max(), 0) + "ms",
                  util::Fixed(with_blocking.latency_ms.Percentile(99), 1) + "ms",
                  util::Fixed(without_blocking.latency_ms.Percentile(99), 1) +
                      "ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Serialized sending (the paper's prototype) stalls whatever request\n"
      "queues behind a long fan-out — the max-latency column; decoupling\n"
      "the sender (the paper's proposed fix) removes the stall without\n"
      "changing average latency or any message count.\n");
  return 0;
}
