#include "trace/filter.h"

#include <unordered_map>

#include "util/check.h"

namespace webcc::trace {

Trace FilterThroughBrowserCaches(const Trace& raw, Time browser_ttl,
                                 BrowserFilterStats* stats) {
  WEBCC_CHECK_MSG(browser_ttl >= 0, "negative browser TTL");
  Trace filtered;
  filtered.name = raw.name + "+browser-filtered";
  filtered.duration = raw.duration;
  filtered.documents = raw.documents;
  filtered.clients = raw.clients;

  BrowserFilterStats local;
  std::unordered_map<std::uint64_t, Time> last_fetch;
  last_fetch.reserve(raw.records.size());
  for (const TraceRecord& record : raw.records) {
    ++local.input_requests;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(record.client) << 32) | record.doc;
    const auto it = last_fetch.find(key);
    if (it != last_fetch.end() &&
        record.timestamp - it->second < browser_ttl) {
      ++local.absorbed;
      continue;
    }
    last_fetch[key] = record.timestamp;
    ++local.forwarded;
    filtered.records.push_back(record);
  }
  if (stats != nullptr) *stats = local;
  return filtered;
}

}  // namespace webcc::trace
