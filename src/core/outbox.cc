#include "core/outbox.h"

#include <algorithm>
#include <utility>

namespace webcc::core {

bool InvalidationOutbox::Add(std::string_view site, std::string_view url,
                             std::uint64_t write_id, Time queued_at) {
  std::vector<Entry>& entries = pending_[std::string(site)];
  for (Entry& entry : entries) {
    if (entry.url == url) {
      // A retried queue of the same (site, url, write_id) — the sender
      // re-queued after a lost frame — must not record the id twice: each
      // recorded id acks one delivery machine on drain, and a write's
      // machine may only be acked once per site.
      if (std::find(entry.write_ids.begin(), entry.write_ids.end(),
                    write_id) == entry.write_ids.end()) {
        entry.write_ids.push_back(write_id);
      }
      return true;
    }
  }
  entries.push_back({std::string(url), {write_id}, queued_at});
  ++pending_url_count_;
  return false;
}

std::vector<InvalidationOutbox::Batch> InvalidationOutbox::Drain(
    const std::function<bool(const std::string&)>& ready) {
  std::vector<Batch> batches;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (ready && !ready(it->first)) {
      ++it;
      continue;
    }
    Batch batch;
    batch.site = it->first;
    batch.urls.reserve(it->second.size());
    batch.write_ids.reserve(it->second.size());
    batch.oldest_queued = it->second.front().queued_at;
    for (Entry& entry : it->second) {
      batch.urls.push_back(std::move(entry.url));
      batch.write_ids.push_back(std::move(entry.write_ids));
      batch.oldest_queued = std::min(batch.oldest_queued, entry.queued_at);
    }
    pending_url_count_ -= batch.urls.size();
    batches.push_back(std::move(batch));
    it = pending_.erase(it);
  }
  return batches;
}

}  // namespace webcc::core
