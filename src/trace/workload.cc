#include "trace/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/check.h"
#include "util/distributions.h"

namespace webcc::trace {
namespace {

// Allocates `total` requests across fixed-width time buckets proportionally
// to a diurnal rate curve, then scatters them uniformly within buckets.
std::vector<Time> GenerateArrivals(const WorkloadConfig& config,
                                   util::Rng& rng) {
  const Time bucket_width = std::min<Time>(5 * kMinute, config.duration);
  const auto num_buckets = static_cast<std::size_t>(
      (config.duration + bucket_width - 1) / bucket_width);

  std::vector<double> weights(num_buckets);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const double t = ToSeconds(static_cast<Time>(b) * bucket_width);
    const double phase = 2.0 * M_PI * t / ToSeconds(kDay);
    weights[b] = std::max(0.05, 1.0 + config.diurnal_amplitude *
                                          std::sin(phase - M_PI / 2));
  }
  util::DiscreteDistribution bucket_dist(weights);

  std::vector<Time> arrivals;
  arrivals.reserve(config.total_requests);
  for (std::uint64_t i = 0; i < config.total_requests; ++i) {
    const auto bucket = bucket_dist.Sample(rng);
    const Time start = static_cast<Time>(bucket) * bucket_width;
    const Time end = std::min(start + bucket_width, config.duration);
    arrivals.push_back(start + rng.NextInRange(0, end - start - 1));
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

}  // namespace

Trace GenerateTrace(const WorkloadConfig& config) {
  WEBCC_CHECK_MSG(config.duration > 0, "duration must be positive");
  WEBCC_CHECK_MSG(config.num_documents > 0, "need documents");
  WEBCC_CHECK_MSG(config.num_clients > 0, "need clients");

  util::Rng rng(config.seed);
  util::Rng size_rng = rng.Fork();
  util::Rng arrival_rng = rng.Fork();
  util::Rng pick_rng = rng.Fork();

  Trace trace;
  trace.name = config.name;
  trace.duration = config.duration;

  trace.documents.reserve(config.num_documents);
  for (std::uint32_t d = 0; d < config.num_documents; ++d) {
    char path[64];
    std::snprintf(path, sizeof(path), "/docs/%05u.html", d);
    const double raw = util::SampleLognormal(
        size_rng, config.mean_file_size_bytes, config.file_size_sigma);
    const auto size = static_cast<std::uint64_t>(
        std::clamp(raw, static_cast<double>(config.min_file_size_bytes),
                   static_cast<double>(config.max_file_size_bytes)));
    trace.documents.push_back(DocumentInfo{path, size});
  }

  trace.clients.reserve(config.num_clients);
  for (std::uint32_t c = 0; c < config.num_clients; ++c) {
    // Dotted-quad style identifiers, mirroring the paper's preprocessing
    // step of assigning IP addresses to trace clients.
    char id[32];
    std::snprintf(id, sizeof(id), "10.%u.%u.%u", (c >> 16) & 0xff,
                  (c >> 8) & 0xff, c & 0xff);
    trace.clients.push_back(id);
  }

  const util::ZipfDistribution doc_dist(config.num_documents,
                                        config.doc_zipf_exponent);
  const util::ZipfDistribution client_dist(config.num_clients,
                                           config.client_zipf_exponent);

  const std::vector<Time> arrivals = GenerateArrivals(config, arrival_rng);

  // Zipf rank != document id: shuffle ranks onto ids so popularity is not
  // correlated with the size distribution draw order.
  std::vector<DocId> doc_by_rank(config.num_documents);
  for (std::uint32_t d = 0; d < config.num_documents; ++d) doc_by_rank[d] = d;
  for (std::uint32_t d = config.num_documents; d > 1; --d) {
    std::swap(doc_by_rank[d - 1],
              doc_by_rank[pick_rng.NextBelow(d)]);
  }

  // Hot-documents-are-smaller correlation (see WorkloadConfig).
  if (config.size_rank_gamma > 0.0) {
    const double n = static_cast<double>(config.num_documents);
    for (std::uint32_t rank = 0; rank < config.num_documents; ++rank) {
      DocumentInfo& doc = trace.documents[doc_by_rank[rank]];
      const double multiplier =
          std::pow((rank + 1.0) / n, config.size_rank_gamma) *
          (1.0 + config.size_rank_gamma);
      const auto scaled = static_cast<std::uint64_t>(
          std::clamp(static_cast<double>(doc.size_bytes) * multiplier,
                     static_cast<double>(config.min_file_size_bytes),
                     static_cast<double>(config.max_file_size_bytes)));
      doc.size_bytes = scaled;
    }
  }

  std::vector<DocId> last_doc(config.num_clients, 0);
  std::vector<bool> has_last(config.num_clients, false);
  std::vector<double> revisit(config.num_clients, config.revisit_probability);
  for (std::uint32_t c = 0; c < config.num_clients; ++c) {
    if (pick_rng.NextBool(config.heavy_revisit_fraction)) {
      revisit[c] = config.heavy_revisit_probability;
    }
  }

  trace.records.reserve(arrivals.size());
  for (const Time at : arrivals) {
    const auto client = static_cast<ClientId>(client_dist.Sample(pick_rng));
    DocId doc;
    if (has_last[client] && pick_rng.NextBool(revisit[client])) {
      doc = last_doc[client];
    } else {
      doc = doc_by_rank[doc_dist.Sample(pick_rng)];
    }
    last_doc[client] = doc;
    has_last[client] = true;
    trace.records.push_back(TraceRecord{at, client, doc});
  }
  return trace;
}

}  // namespace webcc::trace
