#include "core/invalidation_table.h"

#include <algorithm>
#include <utility>

#include "core/lease.h"
#include "util/check.h"

namespace webcc::core {

InvalidationTable::InvalidationTable(LeaseConfig lease) : lease_(lease) {
  // Size the wheel so one revolution covers twice the longest lease the
  // config can grant: every freshly granted expiry then lands inside the
  // current revolution and Schedule's horizon clamp only ever fires for
  // untrusted journal input. With leases off nothing the table grants is
  // expirable; a minute-granularity wheel still backs Restore, whose input
  // may carry timed leases regardless of config.
  Time span = 0;
  switch (lease_.mode) {
    case LeaseMode::kNone:
      break;
    case LeaseMode::kFixed:
      span = lease_.duration;
      break;
    case LeaseMode::kTwoTier:
      span = std::max(lease_.duration, lease_.short_duration);
      break;
  }
  Time granularity = kMinute;
  if (span > 0) {
    granularity =
        std::max<Time>(1, (2 * span + static_cast<Time>(kWheelSlots) - 1) /
                              static_cast<Time>(kWheelSlots));
  }
  wheel_.Configure(granularity, kWheelSlots);
}

Time InvalidationTable::Register(std::string_view url, std::string_view client,
                                 net::MessageType request_type, Time now) {
  const Time lease_until = GrantLease(lease_, request_type, now);
  if (!LeaseActive(lease_until, now)) {
    // Zero-length (two-tier GET) lease: the client promises to validate on
    // its next access, so the server need not remember it. An existing
    // longer lease from an earlier request is left untouched.
    return lease_until;
  }
  const InternId url_id = urls_.Intern(url);
  if (url_id >= lists_.size()) lists_.resize(url_id + 1);
  CompactSiteList& list = lists_[url_id];
  if (list.empty()) ++urls_tracked_;
  const InternId site_id = clients_.Intern(client);
  auto [slot, inserted] = list.Upsert(site_id, lease_until);
  if (inserted) {
    ++total_entries_;
    // Only a timed lease is expirable; kNoLease entries stay out of the
    // wheel (plain invalidation remembers sites forever).
    if (lease_until != net::kNoLease) {
      wheel_.Schedule(url_id, site_id, lease_until);
    }
  } else {
    // Renewal. Refresh, never shorten: a still-active lease keeps its later
    // expiry. The wheel is NOT touched — the entry's old slot is visited no
    // later than the old expiry, finds the lease alive, and reschedules at
    // the refreshed one (lazy renewal, no duplicate wheel entries).
    if (*slot != net::kNoLease &&
        (lease_until == net::kNoLease || lease_until > *slot)) {
      *slot = lease_until;
      ++lease_renewals_;
    }
  }
  return lease_until;
}

std::vector<std::string> InvalidationTable::TakeSitesForInvalidation(
    std::string_view url, Time now) {
  std::vector<std::string> sites;
  for (TakenSite& taken : TakeSitesWithLeases(url, now)) {
    sites.push_back(std::move(taken.site));
  }
  return sites;
}

std::vector<InvalidationTable::TakenSite>
InvalidationTable::TakeSitesWithLeases(std::string_view url, Time now) {
  std::vector<TakenSite> sites;
  const InternId url_id = urls_.Find(url);
  if (url_id == kNoInternId) return sites;
  CompactSiteList* list = FindList(url_id);
  if (list == nullptr) return sites;
  // Lapsed entries are not "taken" — their lease already freed the server
  // from invalidating them — but they don't vanish silently either: they go
  // through the same expiry accounting as PruneExpired, so kLeaseExpiry
  // emission and leases_expired() stay reconciled with entry retirement.
  std::vector<ExpiredEntry> expired;
  ExpireListEntries(url_id, now, expired);
  if (!list->empty()) {
    sites.reserve(list->size());
    list->ForEach([&](InternId site, Time lease_until) {
      sites.push_back({std::string(clients_.NameOf(site)), lease_until});
    });
    total_entries_ -= list->size();
    ReleaseList(*list);
  }
  std::sort(sites.begin(), sites.end(),  // deterministic fan-out order
            [](const TakenSite& a, const TakenSite& b) {
              return a.site < b.site;
            });
  EmitLeaseExpiries(expired, now);
  return sites;
}

void InvalidationTable::DropList(std::string_view url) {
  const InternId url_id = urls_.Find(url);
  if (url_id == kNoInternId) return;
  CompactSiteList* list = FindList(url_id);
  if (list == nullptr) return;
  total_entries_ -= list->size();
  ReleaseList(*list);
}

bool InvalidationTable::Restore(std::string_view url, std::string_view client,
                                Time lease_until, Time now) {
  if (!LeaseActive(lease_until, now)) {
    // The lease lapsed while the server was down: the site already promised
    // to validate before reusing its copy, so the rebuilt table owes it
    // nothing. Resurrecting it would inflate entries/storage_bytes until
    // the next prune and seed the wheel with dead slots.
    return false;
  }
  const InternId url_id = urls_.Intern(url);
  if (url_id >= lists_.size()) lists_.resize(url_id + 1);
  CompactSiteList& list = lists_[url_id];
  if (list.empty()) ++urls_tracked_;
  const InternId site_id = clients_.Intern(client);
  auto [slot, inserted] = list.Upsert(site_id, lease_until);
  if (inserted) {
    ++total_entries_;
    if (lease_until != net::kNoLease) {
      wheel_.Schedule(url_id, site_id, lease_until);
    }
  } else if (*slot != net::kNoLease &&
             (lease_until == net::kNoLease || lease_until > *slot)) {
    *slot = lease_until;
  }
  return true;
}

std::size_t InvalidationTable::ListLength(std::string_view url,
                                          Time now) const {
  const InternId url_id = urls_.Find(url);
  if (url_id == kNoInternId) return 0;
  const CompactSiteList* list = FindList(url_id);
  if (list == nullptr) return 0;
  std::size_t live = 0;
  list->ForEach([&](InternId /*site*/, Time lease_until) {
    if (LeaseActive(lease_until, now)) ++live;
  });
  return live;
}

std::size_t InvalidationTable::PruneExpired(Time now) {
  // Collect first, then emit in (url, site) order: the early version traced
  // kLeaseExpiry events straight out of the container walk, so the trace
  // stream depended on table layout — exactly the nondeterminism
  // webcc_lint's unordered-iter-in-dump rule rejects. Erasure order never
  // mattered (the tables end up identical); emission order is output.
  std::vector<ExpiredEntry> expired;
  const std::size_t pruned = PruneExpiredInto(now, expired);
  EmitLeaseExpiries(expired, now);
  return pruned;
}

std::size_t InvalidationTable::PruneExpiredInto(
    Time now, std::vector<ExpiredEntry>& out) {
  std::size_t pruned = 0;
  wheel_.Advance(now, [&](InternId url_id, InternId site_id) -> Time {
    CompactSiteList* list = FindList(url_id);
    if (list == nullptr) return net::kNoLease;  // list taken; stale entry
    Time* slot = list->Find(site_id);
    if (slot == nullptr) return net::kNoLease;  // entry gone; stale
    const Time lease_until = *slot;
    if (LeaseActive(lease_until, now)) {
      // Alive — either renewed past `now` (reschedule at the refreshed
      // expiry) or upgraded to kNoLease (returns <= now, wheel forgets it:
      // unexpirable entries don't belong in the ring).
      return lease_until;
    }
    // Interner names are stable views; they outlive the erase below.
    out.push_back(
        {urls_.NameOf(url_id), clients_.NameOf(site_id), lease_until});
    list->Erase(site_id);
    if (list->empty()) ReleaseList(*list);
    --total_entries_;
    ++leases_expired_;
    ++pruned;
    return lease_until;  // <= now: the wheel drops it
  });
  return pruned;
}

void InvalidationTable::ExpireListEntries(InternId url_id, Time now,
                                          std::vector<ExpiredEntry>& out) {
  CompactSiteList* list = FindList(url_id);
  if (list == nullptr) return;
  std::vector<std::pair<InternId, Time>> dead;
  list->ForEach([&](InternId site, Time lease_until) {
    if (!LeaseActive(lease_until, now)) dead.push_back({site, lease_until});
  });
  for (const auto& [site, lease_until] : dead) {
    list->Erase(site);
    out.push_back({urls_.NameOf(url_id), clients_.NameOf(site), lease_until});
  }
  total_entries_ -= dead.size();
  leases_expired_ += dead.size();
  if (list->empty()) ReleaseList(*list);
}

void InvalidationTable::EmitLeaseExpiries(std::vector<ExpiredEntry>& expired,
                                          Time now) {
  if (trace_sink_ == nullptr || expired.empty()) return;
  std::sort(expired.begin(), expired.end(),
            [](const ExpiredEntry& a, const ExpiredEntry& b) {
              if (a.url != b.url) return a.url < b.url;
              return a.site < b.site;
            });
  for (const ExpiredEntry& e : expired) {
    obs::Emit(trace_sink_, {.type = obs::EventType::kLeaseExpiry,
                            .at = now,
                            .url = e.url,
                            .site = e.site,
                            .detail = e.lease_until});
  }
}

std::vector<InvalidationTable::Snapshot> InvalidationTable::SnapshotEntries()
    const {
  std::vector<Snapshot> out;
  out.reserve(total_entries_);
  for (InternId url_id = 0; url_id < lists_.size(); ++url_id) {
    lists_[url_id].ForEach([&](InternId site, Time lease_until) {
      out.push_back({std::string(urls_.NameOf(url_id)),
                     std::string(clients_.NameOf(site)), lease_until});
    });
  }
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    if (a.url != b.url) return a.url < b.url;
    return a.site < b.site;
  });
  return out;
}

std::size_t InvalidationTable::MaxListLength() const {
  std::size_t longest = 0;
  for (const CompactSiteList& list : lists_) {
    longest = std::max(longest, list.size());
  }
  return longest;
}

std::uint64_t InvalidationTable::StorageBytes() const {
  std::uint64_t bytes = 0;
  for (InternId url_id = 0; url_id < lists_.size(); ++url_id) {
    const CompactSiteList& list = lists_[url_id];
    if (list.empty()) continue;
    bytes += urls_.NameOf(url_id).size();
    list.ForEach([&](InternId site, Time /*lease_until*/) {
      bytes += clients_.NameOf(site).size() + kPerEntryOverheadBytes;
    });
  }
  return bytes;
}

std::uint64_t InvalidationTable::MemoryFootprintBytes() const {
  std::uint64_t bytes = lists_.capacity() * sizeof(CompactSiteList) +
                        wheel_.MemoryFootprintBytes();
  for (const CompactSiteList& list : lists_) {
    bytes += list.MemoryFootprintBytes();
  }
  return bytes;
}

void InvalidationTable::ExportMetrics(obs::MetricsRegistry& registry,
                                      std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("entries"), total_entries_);
  registry.SetCounter(name("max_list_length"), MaxListLength());
  registry.SetCounter(name("storage_bytes"), StorageBytes());
  registry.SetCounter(name("urls_tracked"), urls_tracked_);
  registry.SetCounter(name("leases_expired"), leases_expired_);
  registry.SetCounter(name("lease_renewals"), lease_renewals_);
}

void InvalidationTable::Clear() {
  // The interners survive a crash on purpose: ids stay valid for the
  // recovery path, and the tables are bounded by the trace's vocabulary.
  // The expiry/renewal counters survive too — they are measurement record,
  // not server state (a crash does not un-expire a lease).
  lists_.clear();
  lists_.shrink_to_fit();
  wheel_.Clear();
  total_entries_ = 0;
  urls_tracked_ = 0;
}

}  // namespace webcc::core
