// Minimal command-line flag parsing for the webcc tool.
//
// Syntax: `--name value` or `--name=value`; bare `--name` is a boolean
// switch. Anything before the first flag is a positional argument (the
// subcommand). No external dependencies, fully testable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace webcc::cli {

class Flags {
 public:
  // Parses argv[1..); returns std::nullopt and fills `error` on malformed
  // input (e.g. a value-less flag at the end followed by another flag is
  // fine — it parses as a switch — but `---x` is not).
  static std::optional<Flags> Parse(int argc, const char* const* argv,
                                    std::string* error);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const;

  // Typed getters: return the default when absent; std::nullopt when
  // present but unparseable (callers treat that as a usage error).
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::optional<std::int64_t> GetInt(const std::string& name,
                                     std::int64_t default_value) const;
  std::optional<double> GetDouble(const std::string& name,
                                  double default_value) const;
  bool GetBool(const std::string& name) const;  // switch present?

  // Flags that were provided but never read; used to reject typos.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> values_;  // "" for bare switches
  mutable std::map<std::string, bool> used_;
};

}  // namespace webcc::cli
