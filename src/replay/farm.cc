#include "replay/farm.h"

#include <utility>

namespace webcc::replay {

Farm::Farm(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Farm::~Farm() {
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

std::size_t Farm::Submit(ReplayConfig config) {
  std::size_t index;
  {
    const util::MutexLock lock(mu_);
    index = submitted_++;
    results_.emplace_back();
    if (merged_sink_ != nullptr) {
      // A private buffer per replay: workers write concurrently without
      // contending, and Collect() concatenates by submission index.
      job_sinks_.push_back(std::make_unique<obs::BufferTraceSink>());
      config.trace_sink = job_sinks_.back().get();
    } else {
      job_sinks_.push_back(nullptr);
    }
    queue_.push_back(Job{index, std::move(config)});
  }
  work_cv_.NotifyOne();
  return index;
}

std::vector<ReplayMetrics> Farm::Collect() {
  const util::MutexLock lock(mu_);
  done_cv_.Wait(mu_, [this]() WEBCC_NO_THREAD_SAFETY_ANALYSIS {
    return completed_ == submitted_;
  });
  if (merged_sink_ != nullptr) {
    for (std::unique_ptr<obs::BufferTraceSink>& sink : job_sinks_) {
      if (sink != nullptr) merged_sink_->WriteRaw(sink->TakeText());
    }
  }
  job_sinks_.clear();
  std::vector<ReplayMetrics> out = std::move(results_);
  results_.clear();
  submitted_ = 0;
  completed_ = 0;
  return out;
}

void Farm::WorkerLoop() {
  for (;;) {
    Job job;
    {
      const util::MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this]() WEBCC_NO_THREAD_SAFETY_ANALYSIS {
        return stop_ || !queue_.empty();
      });
      // Drain the queue even when stopping, so a destructor racing
      // submitted work still leaves results_ complete.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    ReplayMetrics metrics = RunReplay(job.config);
    {
      const util::MutexLock lock(mu_);
      results_[job.index] = std::move(metrics);
      ++completed_;
      if (completed_ == submitted_) done_cv_.NotifyAll();
    }
  }
}

std::vector<ReplayMetrics> Farm::RunAll(
    const std::vector<ReplayConfig>& configs, unsigned workers) {
  Farm farm(workers);
  for (const ReplayConfig& config : configs) farm.Submit(config);
  return farm.Collect();
}

}  // namespace webcc::replay
