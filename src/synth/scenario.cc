#include "synth/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/mini_json.h"

namespace webcc::synth {
namespace {

struct KindName {
  PhaseKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {PhaseKind::kSteady, "steady"},
    {PhaseKind::kFlashCrowd, "flash_crowd"},
    {PhaseKind::kDiurnal, "diurnal"},
    {PhaseKind::kWriteBurst, "write_burst"},
};

// Every numeric field is emitted with %.6f (or as a decimal integer) and
// validated into ranges where a %.6f round-trip is exact (<= 15 significant
// digits), so parse -> serialize -> parse is a fixpoint — the property the
// fuzz harness (fuzz/fuzz_scenario.cc) asserts.
std::string TimeToSecondsText(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", ToSeconds(t));
  return buf;
}

std::string DoubleToJson(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

// Longest trace time the dialect accepts: ~31 years, far past any scenario
// and comfortably inside both llround() and %.6f-exactness territory.
constexpr double kMaxSeconds = 1.0e9;

bool SecondsToTime(double seconds, Time& out) {
  if (!(seconds >= 0.0 && seconds <= kMaxSeconds)) return false;
  out = static_cast<Time>(std::llround(seconds * 1e6));
  return true;
}

bool ToCount(double v, double max, std::uint64_t& out) {
  if (!(v >= 0.0 && v <= max)) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

using Parser = util::MiniJsonParser;

bool ParseTimeField(Parser& p, std::string_view key, Time& out) {
  double v = 0;
  if (!p.ParseNumber(v)) return false;
  if (!SecondsToTime(v, out)) {
    return p.Fail(std::string(key) + " out of range");
  }
  return true;
}

bool ParseCountField(Parser& p, std::string_view key, double max,
                     std::uint64_t& out) {
  double v = 0;
  if (!p.ParseNumber(v)) return false;
  if (!ToCount(v, max, out)) {
    return p.Fail(std::string(key) + " out of range");
  }
  return true;
}

bool ParsePhaseObject(Parser& p, Phase& phase) {
  if (!p.Consume('{')) return false;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return false;
    first = false;
    std::string key;
    if (!p.ParseString(key)) return false;
    if (!p.Consume(':')) return false;
    if (key == "kind") {
      std::string name;
      if (!p.ParseString(name)) return false;
      if (!ParsePhaseKindName(name, phase.kind)) {
        return p.Fail("unknown phase kind '" + name + "'");
      }
    } else if (key == "start_s") {
      if (!ParseTimeField(p, key, phase.start)) return false;
    } else if (key == "duration_s") {
      if (!ParseTimeField(p, key, phase.duration)) return false;
    } else if (key == "rate_multiplier") {
      if (!p.ParseNumber(phase.rate_multiplier)) return false;
    } else if (key == "write_multiplier") {
      if (!p.ParseNumber(phase.write_multiplier)) return false;
    } else if (key == "focus") {
      if (!p.ParseNumber(phase.focus)) return false;
    } else if (key == "hot_docs") {
      std::uint64_t v = 0;
      if (!ParseCountField(p, key, 1e8, v)) return false;
      phase.hot_docs = static_cast<std::uint32_t>(v);
    } else if (key == "amplitude") {
      if (!p.ParseNumber(phase.amplitude)) return false;
    } else if (key == "period_s") {
      if (!ParseTimeField(p, key, phase.period)) return false;
    } else {
      return p.Fail("unknown phase key '" + key + "'");
    }
  }
  return p.Consume('}');
}

bool ParseScenarioBody(Parser& p, ScenarioConfig& config,
                       std::map<std::string, std::string>* expect) {
  if (!p.Consume('{')) return false;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return false;
    first = false;
    std::string key;
    if (!p.ParseString(key)) return false;
    if (!p.Consume(':')) return false;
    std::uint64_t count = 0;
    if (key == "name") {
      if (!p.ParseString(config.name)) return false;
    } else if (key == "duration_s") {
      if (!ParseTimeField(p, key, config.duration)) return false;
    } else if (key == "requests") {
      if (!ParseCountField(p, key, 1e9, config.requests)) return false;
    } else if (key == "sites") {
      if (!ParseCountField(p, key, 1e8, count)) return false;
      config.sites = static_cast<std::uint32_t>(count);
    } else if (key == "documents") {
      if (!ParseCountField(p, key, 1e8, count)) return false;
      config.documents = static_cast<std::uint32_t>(count);
    } else if (key == "origins") {
      if (!ParseCountField(p, key, 1e6, count)) return false;
      config.origins = static_cast<std::uint32_t>(count);
    } else if (key == "doc_zipf") {
      if (!p.ParseNumber(config.doc_zipf)) return false;
    } else if (key == "site_zipf") {
      if (!p.ParseNumber(config.site_zipf)) return false;
    } else if (key == "write_fraction") {
      if (!p.ParseNumber(config.write_fraction)) return false;
    } else if (key == "write_zipf") {
      if (!p.ParseNumber(config.write_zipf)) return false;
    } else if (key == "locality") {
      if (!p.ParseNumber(config.locality)) return false;
    } else if (key == "stack_theta") {
      if (!p.ParseNumber(config.stack_theta)) return false;
    } else if (key == "stack_depth") {
      if (!ParseCountField(p, key, 1e6, count)) return false;
      config.stack_depth = static_cast<std::uint32_t>(count);
    } else if (key == "mean_size_bytes") {
      if (!p.ParseNumber(config.mean_size_bytes)) return false;
    } else if (key == "size_sigma") {
      if (!p.ParseNumber(config.size_sigma)) return false;
    } else if (key == "min_size_bytes") {
      if (!ParseCountField(p, key, 1e15, config.min_size_bytes)) return false;
    } else if (key == "max_size_bytes") {
      if (!ParseCountField(p, key, 1e15, config.max_size_bytes)) return false;
    } else if (key == "churn_fraction") {
      if (!p.ParseNumber(config.churn_fraction)) return false;
    } else if (key == "seed") {
      if (!ParseCountField(p, key, 9e15, config.seed)) return false;
    } else if (key == "phases") {
      if (!p.Consume('[')) return false;
      bool first_phase = true;
      while (!p.Peek(']')) {
        if (!first_phase && !p.Consume(',')) return false;
        first_phase = false;
        Phase phase;
        if (!ParsePhaseObject(p, phase)) return false;
        config.phases.push_back(phase);
      }
      if (!p.Consume(']')) return false;
    } else if (key == "expect" && expect != nullptr) {
      if (!p.Consume('{')) return false;
      bool first_pair = true;
      while (!p.Peek('}')) {
        if (!first_pair && !p.Consume(',')) return false;
        first_pair = false;
        std::string metric;
        if (!p.ParseString(metric)) return false;
        if (!p.Consume(':')) return false;
        std::string raw;
        if (!p.ParseRawValue(raw)) return false;
        (*expect)[metric] = raw;
      }
      if (!p.Consume('}')) return false;
    } else {
      return p.Fail("unknown scenario key '" + key + "'");
    }
  }
  if (!p.Consume('}')) return false;
  if (!p.AtEnd()) return p.Fail("trailing text after scenario");
  return true;
}

// Shared by FromJson and ParseScenarioFile: parse, canonicalize, validate.
bool ParseAndValidate(std::string_view text, ScenarioConfig& config,
                      std::map<std::string, std::string>* expect,
                      std::string& error) {
  Parser parser(text);
  ScenarioConfig parsed;
  if (!ParseScenarioBody(parser, parsed, expect)) {
    error = parser.error();
    return false;
  }
  Canonicalize(parsed);
  error = Validate(parsed);
  if (!error.empty()) return false;
  config = std::move(parsed);
  return true;
}

bool InUnit(double v) { return v >= 0.0 && v <= 1.0; }
bool ExponentOk(double v) { return v >= 0.0 && v <= 8.0; }

}  // namespace

std::string_view PhaseKindName(PhaseKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool ParsePhaseKindName(std::string_view name, PhaseKind& out) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

std::string Validate(const ScenarioConfig& config) {
  if (config.duration <= 0) return "duration_s must be positive";
  if (config.requests < 1) return "requests must be >= 1";
  if (config.sites < 1) return "sites must be >= 1";
  if (config.sites > 16777215u) {
    return "sites must fit the dotted-quad identifier space (<= 16777215)";
  }
  if (config.documents < 1) return "documents must be >= 1";
  if (config.origins < 1 || config.origins > config.documents) {
    return "origins must be in [1, documents]";
  }
  if (!ExponentOk(config.doc_zipf)) return "doc_zipf must be in [0, 8]";
  if (!ExponentOk(config.site_zipf)) return "site_zipf must be in [0, 8]";
  if (!(config.write_fraction >= 0.0 && config.write_fraction <= 0.9)) {
    return "write_fraction must be in [0, 0.9]";
  }
  if (!ExponentOk(config.write_zipf)) return "write_zipf must be in [0, 8]";
  if (!InUnit(config.locality)) return "locality must be in [0, 1]";
  if (!ExponentOk(config.stack_theta)) return "stack_theta must be in [0, 8]";
  if (config.stack_depth < 1 || config.stack_depth > 4096) {
    return "stack_depth must be in [1, 4096]";
  }
  if (!(config.mean_size_bytes >= 1.0 && config.mean_size_bytes <= 1.0e8)) {
    return "mean_size_bytes must be in [1, 1e8]";
  }
  if (!ExponentOk(config.size_sigma)) return "size_sigma must be in [0, 8]";
  if (config.min_size_bytes < 1 ||
      config.min_size_bytes > config.max_size_bytes) {
    return "need 1 <= min_size_bytes <= max_size_bytes";
  }
  if (!InUnit(config.churn_fraction)) {
    return "churn_fraction must be in [0, 1]";
  }
  for (const Phase& phase : config.phases) {
    if (phase.start < 0 || phase.start > config.duration) {
      return "phase start_s must be within [0, duration_s]";
    }
    if (!(phase.rate_multiplier >= 0.0 && phase.rate_multiplier <= 1.0e6)) {
      return "phase rate_multiplier must be in [0, 1e6]";
    }
    if (!(phase.write_multiplier >= 0.0 && phase.write_multiplier <= 1.0e6)) {
      return "phase write_multiplier must be in [0, 1e6]";
    }
    if (!InUnit(phase.focus)) return "phase focus must be in [0, 1]";
    if (phase.hot_docs < 1) return "phase hot_docs must be >= 1";
    if (!(phase.amplitude >= 0.0 && phase.amplitude <= 10.0)) {
      return "phase amplitude must be in [0, 10]";
    }
    if (phase.kind == PhaseKind::kDiurnal && phase.period <= 0) {
      return "diurnal phase period_s must be positive";
    }
  }
  return "";
}

void Canonicalize(ScenarioConfig& config) {
  std::stable_sort(config.phases.begin(), config.phases.end(),
                   [](const Phase& a, const Phase& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.kind < b.kind;
                   });
}

std::string ToJson(const ScenarioConfig& config) {
  ScenarioConfig canonical = config;
  Canonicalize(canonical);
  std::string out = "{\n  \"name\": \"" + canonical.name + "\",\n";
  out += "  \"duration_s\": " + TimeToSecondsText(canonical.duration) + ",\n";
  out += "  \"requests\": " + std::to_string(canonical.requests) + ",\n";
  out += "  \"sites\": " + std::to_string(canonical.sites) + ",\n";
  out += "  \"documents\": " + std::to_string(canonical.documents) + ",\n";
  out += "  \"origins\": " + std::to_string(canonical.origins) + ",\n";
  out += "  \"doc_zipf\": " + DoubleToJson(canonical.doc_zipf) + ",\n";
  out += "  \"site_zipf\": " + DoubleToJson(canonical.site_zipf) + ",\n";
  out += "  \"write_fraction\": " + DoubleToJson(canonical.write_fraction) +
         ",\n";
  out += "  \"write_zipf\": " + DoubleToJson(canonical.write_zipf) + ",\n";
  out += "  \"locality\": " + DoubleToJson(canonical.locality) + ",\n";
  out += "  \"stack_theta\": " + DoubleToJson(canonical.stack_theta) + ",\n";
  out += "  \"stack_depth\": " + std::to_string(canonical.stack_depth) + ",\n";
  out += "  \"mean_size_bytes\": " + DoubleToJson(canonical.mean_size_bytes) +
         ",\n";
  out += "  \"size_sigma\": " + DoubleToJson(canonical.size_sigma) + ",\n";
  out += "  \"min_size_bytes\": " + std::to_string(canonical.min_size_bytes) +
         ",\n";
  out += "  \"max_size_bytes\": " + std::to_string(canonical.max_size_bytes) +
         ",\n";
  out += "  \"churn_fraction\": " + DoubleToJson(canonical.churn_fraction) +
         ",\n";
  out += "  \"seed\": " + std::to_string(canonical.seed) + ",\n";
  out += "  \"phases\": [";
  for (std::size_t i = 0; i < canonical.phases.size(); ++i) {
    const Phase& phase = canonical.phases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"";
    out += PhaseKindName(phase.kind);
    out += "\", \"start_s\": " + TimeToSecondsText(phase.start);
    out += ", \"duration_s\": " + TimeToSecondsText(phase.duration);
    out += ", \"rate_multiplier\": " + DoubleToJson(phase.rate_multiplier);
    out += ", \"write_multiplier\": " + DoubleToJson(phase.write_multiplier);
    out += ", \"focus\": " + DoubleToJson(phase.focus);
    out += ", \"hot_docs\": " + std::to_string(phase.hot_docs);
    if (phase.kind == PhaseKind::kDiurnal) {
      out += ", \"amplitude\": " + DoubleToJson(phase.amplitude);
      out += ", \"period_s\": " + TimeToSecondsText(phase.period);
    }
    out += "}";
  }
  out += canonical.phases.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool FromJson(std::string_view text, ScenarioConfig& out, std::string& error) {
  return ParseAndValidate(text, out, nullptr, error);
}

bool ParseScenarioFile(std::string_view text, ScenarioFile& out,
                       std::string& error) {
  ScenarioFile file;
  if (!ParseAndValidate(text, file.config, &file.expect, error)) return false;
  out = std::move(file);
  return true;
}

}  // namespace webcc::synth
