// Fixture pair of lock_discipline_violation.cc: every access to the
// guarded counter is covered — the getter takes the lock itself, and the
// locked helper declares a WEBCC_REQUIRES contract instead.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace util
#define WEBCC_GUARDED_BY(x)
#define WEBCC_REQUIRES(...)

class LockedLeaseBoard {
 public:
  void Record(int delta) {
    const util::MutexLock lock(mu_);
    BumpLocked(delta);
  }
  int granted() const {
    const util::MutexLock lock(mu_);
    return granted_;
  }

 private:
  void BumpLocked(int delta) WEBCC_REQUIRES(mu_) { granted_ += delta; }

  mutable util::Mutex mu_;
  int granted_ WEBCC_GUARDED_BY(mu_) = 0;
};
