// Piggyback consistency mechanisms: PCV and PSI.
//
// The successor designs to this paper's comparison (Krishnamurthy & Wills):
// instead of dedicated validation or invalidation traffic, freshness
// information rides on messages the proxy and server exchange anyway.
//
//  * PCV (piggyback cache validation): when the proxy contacts the server
//    for a miss, it piggybacks a batch of its TTL-expired cached entries;
//    the server validates them in bulk and the reply marks which are
//    invalid. Saves the If-Modified-Since requests those entries would
//    otherwise cost.
//
//  * PSI (piggyback server invalidation): the server remembers each
//    proxy's last contact time and attaches to every reply the list of
//    documents modified since; the proxy purges those copies. Gives
//    invalidation-like freshness at zero extra messages, with staleness
//    bounded by the proxy's contact frequency rather than by TTL guesses.
//
// Both remain weak-consistency schemes (a fully idle proxy learns nothing),
// which is exactly the regime the replay experiments quantify against the
// paper's three approaches.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "http/document_store.h"
#include "util/time.h"

namespace webcc::core {

struct PiggybackConfig {
  // PCV: most stale-candidate entries piggybacked on one request.
  std::size_t max_validations_per_request = 50;
  // PSI: most modified-document notices attached to one reply; when the
  // backlog is larger, the contact cursor only advances past what was sent.
  std::size_t max_invalidations_per_reply = 100;
};

// --- PCV ---------------------------------------------------------------------

// One piggybacked validation candidate: a cached copy identified by its
// (url, owner) pair, with the metadata the server needs to validate it.
// Proxy-local cache keys never cross the wire; the proxy recomposes them
// from the verdict (http::ComposeCacheKey).
struct PcvItem {
  std::string url;
  std::string owner;  // the real client whose namespaced copy this is
  Time last_modified = 0;
};

struct PcvVerdict {
  std::string url;
  std::string owner;
  bool invalid = false;  // document changed since the entry's last_modified
};

// Bulk validation against the document store (the server side of PCV).
std::vector<PcvVerdict> ValidatePiggyback(const http::DocumentStore& store,
                                          const std::vector<PcvItem>& items);

// Wire-size overhead the piggyback adds to a request / to a reply.
std::uint64_t PcvRequestExtraBytes(const std::vector<PcvItem>& items);
std::uint64_t PcvReplyExtraBytes(const std::vector<PcvVerdict>& verdicts);

// --- PSI ---------------------------------------------------------------------

// Append-only log of document modifications in trace-time order; the server
// side of PSI queries it per proxy contact.
class ModificationLog {
 public:
  // `at` must be >= every previously recorded time.
  void Record(Time at, std::string url);

  struct Window {
    std::vector<std::string> urls;  // deduplicated, in first-touch order
    Time advanced_to = 0;           // new contact cursor for the proxy
  };

  // Modifications in (since, now], capped at `max_urls` distinct documents.
  // When the cap truncates, advanced_to stops at the last included
  // modification so nothing is skipped on the next contact.
  Window CollectSince(Time since, Time now, std::size_t max_urls) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<Time, std::string>> entries_;
};

std::uint64_t PsiReplyExtraBytes(const std::vector<std::string>& urls);

}  // namespace webcc::core
