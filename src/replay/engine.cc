#include "replay/engine.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "core/adaptive_ttl.h"
#include "core/lease.h"
#include "core/piggyback.h"
#include "http/document_store.h"
#include "http/origin.h"
#include "http/proxy_cache.h"
#include "net/message.h"
#include "obs/event.h"
#include "obs/trace_sink.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/station.h"
#include "util/check.h"
#include "util/distributions.h"
#include "util/log.h"
#include "util/rng.h"

namespace webcc::replay {
namespace {

using core::Protocol;

class Engine {
 public:
  explicit Engine(const ReplayConfig& config)
      : config_(config),
        trace_(*config.trace),
        net_(sim_, config.network),
        server_cpu_(sim_, "server-cpu"),
        server_disk_(sim_, "server-disk"),
        inval_sender_(sim_, "invalidation-sender"),
        accel_(docs_, config.lease) {
    WEBCC_CHECK_MSG(config.trace != nullptr, "replay needs a trace");
    WEBCC_CHECK_MSG(config.num_pseudo_clients > 0, "need pseudo-clients");
    Setup();
  }

  ReplayMetrics Run();

 private:
  struct PseudoClient {
    int index = 0;
    sim::NodeId node = 0;
    std::unique_ptr<http::ProxyCache> cache;
    std::vector<trace::TraceRecord> records;
    std::size_t cursor = 0;        // next record to issue
    std::size_t window_end = 0;    // bound for the current interval
    bool down = false;
    std::uint64_t outstanding = 0;  // seq of the in-flight request; 0 = none
    Time request_start = 0;         // wall time the in-flight request began
  };

  sim::NodeId ServerNode() const {
    return static_cast<sim::NodeId>(clients_.size());
  }
  sim::NodeId ParentNode() const {
    return static_cast<sim::NodeId>(clients_.size() + 1);
  }
  bool InvalidationMode() const {
    return config_.protocol == Protocol::kInvalidation;
  }
  // Protocols whose local-serve decision is the adaptive TTL.
  bool TtlBased() const {
    return config_.protocol == Protocol::kAdaptiveTtl ||
           config_.protocol == Protocol::kPiggybackValidation ||
           config_.protocol == Protocol::kPiggybackInvalidation;
  }

  // --- setup ---------------------------------------------------------------
  void Setup();

  // --- lock-step coordinator -----------------------------------------------
  void StartInterval();
  void ParticipantDone();
  void ApplyFailure(const FailureEvent& event);

  // --- pseudo-client request loop -------------------------------------------
  void IssueNext(PseudoClient& pc);
  void FinishRequest(PseudoClient& pc, Time latency);
  void LocalServe(PseudoClient& pc, http::CacheEntry& entry, Time trace_time);
  void SendToServer(PseudoClient& pc, net::Request request, Time trace_time,
                    bool lease_renewal);
  void ServerHandle(const net::Request& request, int client_index,
                    std::uint64_t seq, Time trace_time);
  void DeliverReply(int client_index, std::uint64_t seq, net::Reply reply,
                    std::string owner, Time trace_time);

  // --- hierarchy (parent proxy) ----------------------------------------------
  void ParentHandle(const net::Request& request, int client_index,
                    std::uint64_t seq, Time trace_time);
  void ServerHandleForParent(net::Request request, int client_index,
                             std::uint64_t seq, std::string owner,
                             bool leaf_wanted_body, Time trace_time);
  void ParentReceiveReply(net::Reply reply, int client_index,
                          std::uint64_t seq, std::string owner,
                          bool leaf_wanted_body, Time trace_time);
  void ParentDeliverInvalidation(const std::string& url, std::uint64_t mod_id);
  void ParentDeliverServerNotice(const net::Invalidation& notice);
  void ApplyPiggyback(int client_index,
                      const std::vector<core::PcvVerdict>& verdicts,
                      const std::vector<std::string>& psi_urls,
                      Time trace_time);

  // --- modifier / invalidation path -----------------------------------------
  void ModifierStep();
  // Fans out the invalidations for one modification. `on_complete` runs when
  // the modifier may proceed: in serialized mode after every message is
  // delivered (the paper's check-in blocks until the accelerator finishes
  // sending), in decoupled mode immediately.
  void FanOutInvalidations(std::vector<net::Invalidation> invalidations,
                           const std::string& url,
                           std::function<void()> on_complete);
  void SendInvalidation(net::Invalidation invalidation, std::uint64_t mod_id);
  void DeliverInvalidation(const net::Invalidation& invalidation,
                           std::uint64_t mod_id);
  void FinishInvalidationTarget(const net::Invalidation& invalidation,
                                std::uint64_t mod_id);
  void ResolveFirstAttempt(std::uint64_t mod_id);
  void CompleteWrite(const std::string& url);
  void FinishRecoveryNotice();
  void ServerRecover();

  // --- helpers ---------------------------------------------------------------
  const std::string& DocPath(trace::DocId doc) const {
    return trace_.documents[doc].path;
  }
  // True when serving `entry` at trace time `trace_now` returns outdated
  // data *in trace order*: version v became obsolete at the trace time of
  // the modification that produced v+1. Lock-step compression can process a
  // modification in wall time before a request that precedes it in trace
  // time; such a read linearizes before the write and is fresh.
  bool StaleInTraceOrder(const http::CacheEntry& entry, Time trace_now) const {
    const auto it = mod_times_.find(entry.url);
    if (it == mod_times_.end()) return false;
    const std::vector<Time>& times = it->second;
    WEBCC_DCHECK(entry.version >= 1);
    const std::size_t obsolete_index = entry.version - 1;
    return obsolete_index < times.size() && times[obsolete_index] <= trace_now;
  }
  static std::string CacheKey(const std::string& url,
                              const std::string& owner) {
    return url + "@" + owner;
  }
  void CheckStaleness(const PseudoClient& pc, const http::CacheEntry& entry,
                      Time trace_time);
  http::CacheEntry BuildEntry(const net::Reply& reply,
                              const std::string& owner, Time trace_time) const;

  const ReplayConfig& config_;
  const trace::Trace& trace_;

  sim::Simulator sim_;
  sim::Network net_;
  http::DocumentStore docs_;
  sim::FifoStation server_cpu_;
  sim::FifoStation server_disk_;
  sim::FifoStation inval_sender_;  // used when sends are decoupled
  core::Accelerator accel_;
  std::unique_ptr<http::OriginServer> origin_;

  std::vector<PseudoClient> clients_;
  std::unordered_map<std::string, int> pseudo_of_client_;
  std::vector<std::string> proxy_site_names_;  // shared-proxy site identities

  // Hierarchical mode: the parent proxy's shared cache, its per-document
  // leaf-interest lists, and its CPU station.
  std::unique_ptr<http::ProxyCache> parent_cache_;
  std::unique_ptr<core::InvalidationTable> parent_table_;
  std::unique_ptr<sim::FifoStation> parent_cpu_;

  std::vector<trace::ModEvent> modifications_;
  std::size_t mod_cursor_ = 0;
  std::size_t mod_window_end_ = 0;

  std::vector<FailureEvent> failures_;  // sorted by trace_time
  std::size_t failure_cursor_ = 0;

  std::size_t interval_index_ = 0;
  std::size_t num_intervals_ = 0;
  int participants_ = 0;
  bool server_down_ = false;
  // True from a server-site crash until the recovery broadcast finishes:
  // modifications in this window cannot complete (their invalidations reach
  // clients only as the recovery INVSRV notices), so stale serves are still
  // within the strong-consistency contract.
  bool write_gap_active_ = false;
  int recovery_notices_pending_ = 0;

  std::uint64_t next_seq_ = 1;
  std::uint64_t next_mod_id_ = 1;
  // Writes (modifications) whose invalidation fan-out has not finished;
  // stale serves are legitimate only while the document has one in
  // progress.
  std::unordered_map<std::string, int> writes_in_progress_;
  // Trace times at which each document version became obsolete:
  // mod_times_[url][v-1] is the modification that superseded version v.
  std::unordered_map<std::string, std::vector<Time>> mod_times_;
  // PSI server state: the modification log and each proxy's contact cursor.
  core::ModificationLog mod_log_;
  std::vector<Time> psi_last_contact_;
  // PCV piggyback batches in flight, keyed by request sequence number.
  std::unordered_map<std::uint64_t, std::vector<core::PcvItem>>
      pcv_in_flight_;
  struct PendingMod {
    std::string url;
    // Undelivered invalidations: the write completes when this drains.
    int remaining = 0;
    // Unresolved first transmission attempts: the blocking check-in (the
    // modifier's gate) waits only for these — a send that hits a partition
    // moves to background retry and stops gating the modifier, exactly like
    // a failed TCP send being queued for periodic retry.
    int first_pending = 0;
    std::function<void()> on_complete;  // modifier continuation (serialized)
  };
  std::unordered_map<std::uint64_t, PendingMod> pending_mod_targets_;

  Time wall_end_ = 0;
  ReplayMetrics metrics_;
  // Structured tracing (nullptr = off). Every emit site below sits exactly
  // at the increment of the ReplayMetrics counter it mirrors, so JSONL event
  // counts reconcile with the paper tables (see DESIGN.md).
  obs::TraceSink* sink_ = nullptr;
};

void Engine::Setup() {
  sink_ = config_.trace_sink;
  net_.set_trace_sink(sink_);
  accel_.set_trace_sink(sink_);  // propagates to the invalidation table

  // Document store with pre-trace ages so adaptive TTL sees a realistic age
  // distribution at t = 0 (files on a real server predate the log).
  util::Rng rng(config_.seed);
  for (const trace::DocumentInfo& doc : trace_.documents) {
    const Time initial_age =
        config_.fixed_initial_age >= 0
            ? config_.fixed_initial_age
            : static_cast<Time>(util::SampleExponential(
                  rng, static_cast<double>(config_.mean_lifetime)));
    docs_.Add(doc.path, doc.size_bytes, -initial_age);
  }
  origin_ = std::make_unique<http::OriginServer>(docs_);

  clients_.resize(config_.num_pseudo_clients);
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    PseudoClient& pc = clients_[i];
    pc.index = static_cast<int>(i);
    pc.node = static_cast<sim::NodeId>(i);
    pc.cache = std::make_unique<http::ProxyCache>(config_.proxy_cache_bytes,
                                                  config_.replacement);
    pc.cache->set_trace_sink(sink_);
  }
  psi_last_contact_.assign(config_.num_pseudo_clients, 0);
  for (std::size_t c = 0; c < trace_.clients.size(); ++c) {
    pseudo_of_client_[trace_.clients[c]] =
        static_cast<int>(c % config_.num_pseudo_clients);
  }
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    proxy_site_names_.push_back("proxy-" + std::to_string(i));
    pseudo_of_client_[proxy_site_names_.back()] = static_cast<int>(i);
  }
  // Size each pseudo-client's slice exactly (a counting pass is cheaper
  // than the doubling reallocations of tens of thousands of push_backs).
  std::vector<std::size_t> slice_sizes(config_.num_pseudo_clients, 0);
  for (const trace::TraceRecord& record : trace_.records) {
    ++slice_sizes[record.client % config_.num_pseudo_clients];
  }
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    clients_[i].records.reserve(slice_sizes[i]);
  }
  for (const trace::TraceRecord& record : trace_.records) {
    clients_[record.client % config_.num_pseudo_clients].records.push_back(
        record);
  }
  // Pending events peak around a few per in-flight request (timeout guard,
  // network hop, completion) plus invalidation fan-out bursts.
  sim_.Reserve(static_cast<std::size_t>(config_.num_pseudo_clients) * 8 + 256);

  if (!config_.explicit_modifications.empty()) {
    modifications_ = config_.explicit_modifications;
    // Callers may build these by hand; the modifier and the PSI log both
    // require time order.
    std::stable_sort(modifications_.begin(), modifications_.end(),
                     [](const trace::ModEvent& a, const trace::ModEvent& b) {
                       return a.at < b.at;
                     });
  } else {
    trace::ModifierConfig mod_config;
    mod_config.duration = trace_.duration;
    mod_config.num_documents =
        static_cast<std::uint32_t>(trace_.documents.size());
    mod_config.mean_lifetime = config_.mean_lifetime;
    mod_config.seed = config_.modifier_seed;
    modifications_ = trace::GenerateModifierSchedule(mod_config);
  }

  failures_ = config_.failures;
  std::stable_sort(failures_.begin(), failures_.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.trace_time < b.trace_time;
                   });

  num_intervals_ = static_cast<std::size_t>(
      (trace_.duration + config_.lockstep_interval - 1) /
      config_.lockstep_interval);
  if (num_intervals_ == 0) num_intervals_ = 1;

  if (config_.hierarchical) {
    WEBCC_CHECK_MSG(InvalidationMode(),
                    "hierarchical mode is defined for the invalidation "
                    "protocol only");
    parent_cache_ = std::make_unique<http::ProxyCache>(
        config_.proxy_cache_bytes * 4, config_.replacement);
    parent_cache_->set_trace_sink(sink_);
    parent_table_ = std::make_unique<core::InvalidationTable>(
        core::LeaseConfig{});
    parent_table_->set_trace_sink(sink_);
    parent_cpu_ = std::make_unique<sim::FifoStation>(sim_, "parent-cpu");
  }
}

ReplayMetrics Engine::Run() {
  const auto host_start = std::chrono::steady_clock::now();
  if (sink_ != nullptr) {
    std::string label(core::ToString(config_.protocol));
    label += " clients=";
    label += std::to_string(config_.num_pseudo_clients);
    label += " records=";
    label += std::to_string(trace_.records.size());
    sink_->Emit({.type = obs::EventType::kRunBegin, .label = label});
  }
  StartInterval();
  // Drain in-flight work after the last interval, but don't chase retry
  // loops forever if a partition is never healed.
  constexpr Time kDrainGrace = 10 * kMinute;
  while (sim_.Step()) {
    if (wall_end_ != 0 && sim_.now() > wall_end_ + kDrainGrace) break;
  }
  metrics_.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  metrics_.sim_events_executed = sim_.executed();
  metrics_.sim_peak_queue_depth = sim_.peak_pending();

  metrics_.server_cpu_utilization =
      server_cpu_.utilization().BusyFraction(wall_end_);
  metrics_.disk_reads_per_second =
      server_disk_.utilization().ReadsPerSecond(wall_end_);
  metrics_.disk_writes_per_second =
      server_disk_.utilization().WritesPerSecond(wall_end_);
  metrics_.wall_duration = wall_end_;

  metrics_.sitelist_storage_bytes = accel_.table().StorageBytes();
  metrics_.sitelist_entries = accel_.table().TotalEntries();
  metrics_.sitelist_max_len_end = accel_.table().MaxListLength();
  const auto& lengths = accel_.stats().list_lengths_at_modification;
  if (!lengths.empty()) {
    std::uint64_t sum = 0;
    std::uint64_t longest = 0;
    for (std::size_t length : lengths) {
      sum += length;
      longest = std::max<std::uint64_t>(longest, length);
    }
    metrics_.sitelist_avg_len_at_mod =
        static_cast<double>(sum) / static_cast<double>(lengths.size());
    metrics_.sitelist_max_len_at_mod = longest;
  }
  for (const PseudoClient& pc : clients_) {
    metrics_.proxy_evictions += pc.cache->stats().evictions;
    metrics_.proxy_expired_evictions += pc.cache->stats().expired_evictions;
  }

  if (sink_ != nullptr) {
    sink_->Emit({.type = obs::EventType::kRunEnd,
                 .at = wall_end_,
                 .label = metrics_.Summary()});
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *config_.metrics;
    metrics_.ExportTo(registry);
    accel_.ExportMetrics(registry, "accelerator.");
    net_.ExportMetrics(registry, "network.");
    for (const PseudoClient& pc : clients_) {
      pc.cache->ExportMetrics(
          registry, "proxy." + std::to_string(pc.index) + ".cache.");
    }
    if (parent_cache_ != nullptr) {
      parent_cache_->ExportMetrics(registry, "parent.cache.");
    }
    if (parent_table_ != nullptr) {
      parent_table_->ExportMetrics(registry, "parent.table.");
    }
  }
  return metrics_;
}

// --- lock-step coordinator ---------------------------------------------------

void Engine::StartInterval() {
  const Time window_start =
      static_cast<Time>(interval_index_) * config_.lockstep_interval;
  const Time window_end = (interval_index_ + 1 == num_intervals_)
                              ? trace_.duration + 1
                              : window_start + config_.lockstep_interval;

  while (failure_cursor_ < failures_.size() &&
         failures_[failure_cursor_].trace_time < window_end) {
    ApplyFailure(failures_[failure_cursor_++]);
  }

  if (InvalidationMode()) accel_.table().PruneExpired(window_start);

  participants_ = static_cast<int>(clients_.size()) + 1;  // clients + modifier

  for (PseudoClient& pc : clients_) {
    while (pc.window_end < pc.records.size() &&
           pc.records[pc.window_end].timestamp < window_end) {
      ++pc.window_end;
    }
    sim_.After(0, [this, &pc] { IssueNext(pc); });
  }

  while (mod_window_end_ < modifications_.size() &&
         modifications_[mod_window_end_].at < window_end) {
    ++mod_window_end_;
  }
  sim_.After(0, [this] { ModifierStep(); });
}

void Engine::ParticipantDone() {
  WEBCC_CHECK(participants_ > 0);
  if (--participants_ > 0) return;
  ++interval_index_;
  if (interval_index_ < num_intervals_) {
    StartInterval();
  } else {
    wall_end_ = sim_.now();
  }
}

void Engine::ApplyFailure(const FailureEvent& event) {
  switch (event.kind) {
    case FailureKind::kProxyCrash: {
      PseudoClient& pc = clients_.at(event.target);
      pc.down = true;
      net_.SetNodeUp(pc.node, false);
      break;
    }
    case FailureKind::kProxyRecover: {
      PseudoClient& pc = clients_.at(event.target);
      pc.down = false;
      net_.SetNodeUp(pc.node, true);
      // The recovering proxy may have missed invalidations: everything it
      // holds must be revalidated before it can be served again.
      pc.cache->MarkAllQuestionable();
      break;
    }
    case FailureKind::kServerCrash:
      server_down_ = true;
      net_.SetNodeUp(ServerNode(), false);
      if (InvalidationMode()) {
        accel_.Crash();
        write_gap_active_ = true;
      }
      break;
    case FailureKind::kServerRecover:
      server_down_ = false;
      net_.SetNodeUp(ServerNode(), true);
      if (InvalidationMode()) ServerRecover();
      break;
    case FailureKind::kPartition:
      net_.Partition(clients_.at(event.target).node, ServerNode());
      break;
    case FailureKind::kHeal:
      net_.Heal(clients_.at(event.target).node, ServerNode());
      break;
  }
}

// --- pseudo-client request loop ------------------------------------------------

void Engine::IssueNext(PseudoClient& pc) {
  if (pc.down) {
    // Requests from users behind a dead proxy are lost for the interval.
    metrics_.requests_skipped += pc.window_end - pc.cursor;
    pc.cursor = pc.window_end;
  }
  if (pc.cursor >= pc.window_end) {
    ParticipantDone();
    return;
  }
  const trace::TraceRecord& record = pc.records[pc.cursor++];
  ++metrics_.requests_issued;

  const std::string& url = DocPath(record.doc);
  // Shared mode: the whole proxy is one site (the firewall deployment of
  // Section 7) — one cache namespace and one invalidation target per proxy.
  const std::string& owner = config_.shared_proxy_cache
                                 ? proxy_site_names_[pc.index]
                                 : trace_.clients[record.client];
  const Time trace_time = record.timestamp;
  http::CacheEntry* entry = pc.cache->Lookup(CacheKey(url, owner));

  bool validate = false;        // IMS instead of a full GET
  bool lease_renewal = false;   // the IMS exists only because a lease lapsed
  if (entry != nullptr) {
    switch (config_.protocol) {
      case Protocol::kAdaptiveTtl:
      case Protocol::kPiggybackValidation:
      case Protocol::kPiggybackInvalidation:
        // The piggyback schemes serve by TTL exactly as adaptive TTL does;
        // their freshness exchange rides on the server round-trips below.
        if (!entry->questionable && trace_time < entry->ttl_expires) {
          LocalServe(pc, *entry, trace_time);
          return;
        }
        validate = true;
        break;
      case Protocol::kPollEveryTime:
        validate = true;
        break;
      case Protocol::kInvalidation: {
        // Half-open [grant, expiry): at the exact expiry instant the copy
        // must be revalidated (see core::LeaseActive).
        const bool lease_ok =
            core::LeaseActive(entry->lease_expires, trace_time);
        if (!entry->questionable && lease_ok) {
          LocalServe(pc, *entry, trace_time);
          return;
        }
        validate = true;
        lease_renewal = !entry->questionable && !lease_ok;
        break;
      }
    }
  }

  net::Request request;
  request.url = url;
  request.client_id = owner;
  if (validate) {
    request.type = net::MessageType::kIfModifiedSince;
    request.if_modified_since = entry->last_modified;
  } else {
    request.type = net::MessageType::kGet;
  }
  SendToServer(pc, std::move(request), trace_time, lease_renewal);
}

void Engine::FinishRequest(PseudoClient& pc, Time latency) {
  metrics_.latency_ms.Record(ToMillis(latency));
  sim_.After(config_.client_costs.think_time, [this, &pc] { IssueNext(pc); });
}

void Engine::CheckStaleness(const PseudoClient& pc,
                            const http::CacheEntry& entry, Time trace_time) {
  if (!StaleInTraceOrder(entry, trace_time)) return;
  ++metrics_.stale_serves;
  obs::StaleKind kind = obs::StaleKind::kWeakProtocol;
  if (config_.protocol == Protocol::kInvalidation) {
    const auto it = writes_in_progress_.find(entry.url);
    if (write_gap_active_ ||
        (it != writes_in_progress_.end() && it->second > 0)) {
      // The write has not completed (invalidations still in flight): a stale
      // read here is within the strong-consistency contract.
      ++metrics_.stale_while_invalidation_in_flight;
      kind = obs::StaleKind::kInvalidationInFlight;
    } else {
      ++metrics_.strong_violations;
      kind = obs::StaleKind::kStrongViolation;
      WEBCC_LOG_WARN(
          "strong-consistency violation: %s served stale at client %s (proxy %d)",
          entry.url.c_str(), entry.owner.c_str(), pc.index);
    }
  }
  obs::Emit(sink_, {.type = obs::EventType::kStaleHit,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = entry.url,
                    .site = entry.owner,
                    .detail = static_cast<std::int64_t>(kind)});
}

void Engine::LocalServe(PseudoClient& pc, http::CacheEntry& entry,
                        Time trace_time) {
  ++metrics_.local_hits;
  obs::Emit(sink_,
            {.type = obs::EventType::kRequestServed,
             .at = sim_.now(),
             .trace_time = trace_time,
             .url = entry.url,
             .site = entry.owner,
             .detail = static_cast<std::int64_t>(obs::ServeKind::kLocalHit)});
  CheckStaleness(pc, entry, trace_time);
  FinishRequest(pc, config_.client_costs.proxy_hit_time);
}

void Engine::SendToServer(PseudoClient& pc, net::Request request,
                          Time trace_time, bool lease_renewal) {
  const std::uint64_t seq = next_seq_++;
  pc.outstanding = seq;
  pc.request_start = sim_.now();

  if (request.type == net::MessageType::kGet) {
    ++metrics_.get_requests;
    obs::Emit(sink_, {.type = obs::EventType::kGetSent,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = request.url,
                      .site = request.client_id});
  } else {
    ++metrics_.ims_requests;
    if (lease_renewal) ++metrics_.lease_renewal_ims;
    obs::Emit(sink_, {.type = obs::EventType::kImsSent,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = request.url,
                      .site = request.client_id,
                      .detail = lease_renewal ? 1 : 0});
  }

  // PCV: since we are contacting the server anyway, piggyback a batch of
  // this proxy's TTL-expired entries for bulk validation.
  std::uint64_t piggyback_bytes = 0;
  if (config_.protocol == Protocol::kPiggybackValidation) {
    std::vector<core::PcvItem> items;
    const std::string requested_key = CacheKey(request.url, request.client_id);
    for (http::CacheEntry* expired : pc.cache->TakeExpired(
             trace_time, config_.piggyback.max_validations_per_request)) {
      if (expired->key == requested_key) {
        // The request itself validates this entry; leave it indexed.
        pc.cache->SetTtlExpiry(*expired, expired->ttl_expires);
        continue;
      }
      items.push_back(core::PcvItem{expired->key, expired->url,
                                    expired->last_modified});
    }
    metrics_.pcv_items_piggybacked += items.size();
    piggyback_bytes = core::PcvRequestExtraBytes(items);
    if (!items.empty()) pcv_in_flight_[seq] = std::move(items);
  }
  metrics_.message_bytes += net::WireSize(request) + piggyback_bytes;

  // Reply timeout: the closed loop must advance even if the server is dead.
  sim_.After(config_.client_costs.request_timeout, [this, &pc, seq] {
    if (pc.outstanding != seq) return;
    pc.outstanding = 0;
    pcv_in_flight_.erase(seq);
    ++metrics_.request_timeouts;
    obs::Emit(sink_, {.type = obs::EventType::kRequestTimeout,
                      .at = sim_.now(),
                      .detail = static_cast<std::int64_t>(seq)});
    FinishRequest(pc, config_.client_costs.request_timeout);
  });

  // In hierarchical mode leaf misses go to the parent proxy, not the server.
  const sim::NodeId upstream =
      config_.hierarchical ? ParentNode() : ServerNode();
  const std::uint64_t wire = net::WireSize(request) + piggyback_bytes;
  sim_.After(config_.client_costs.proxy_forward_overhead,
             [this, &pc, request = std::move(request), seq, trace_time, wire,
              upstream]() mutable {
               net_.Send(pc.node, upstream, wire,
                         [this, request = std::move(request),
                          index = pc.index, seq, trace_time] {
                           if (config_.hierarchical) {
                             ParentHandle(request, index, seq, trace_time);
                           } else {
                             ServerHandle(request, index, seq, trace_time);
                           }
                         });
             });
}

void Engine::ParentHandle(const net::Request& request, int client_index,
                          std::uint64_t seq, Time trace_time) {
  // Remember this leaf's interest so an invalidation can be forwarded.
  parent_table_->Register(request.url, "leaf-" + std::to_string(client_index),
                          net::MessageType::kGet, trace_time);

  http::CacheEntry* entry =
      parent_cache_->Lookup(CacheKey(request.url, "parent"));
  if (entry != nullptr && !entry->questionable &&
      request.type == net::MessageType::kGet) {
    // Served from the parent's shared cache: no server involvement.
    ++metrics_.parent_hits;
    net::Reply reply;
    reply.type = net::MessageType::kReply200;
    reply.url = request.url;
    reply.body_bytes = entry->size_bytes;
    reply.last_modified = entry->last_modified;
    reply.version = entry->version;
    ++metrics_.replies_200;
    obs::Emit(sink_, {.type = obs::EventType::kReply200,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = reply.url,
                      .site = request.client_id});
    metrics_.message_bytes += net::WireSize(reply);
    const auto scaled_body = static_cast<std::uint64_t>(
        static_cast<double>(reply.body_bytes) / config_.size_scale);
    const std::uint64_t wire_bytes =
        net::kControlHeaderBytes + reply.url.size() + scaled_body;
    const Time ready =
        parent_cpu_->Enqueue(config_.client_costs.proxy_hit_time);
    sim_.At(ready, [this, client_index, seq, reply = std::move(reply),
                    owner = request.client_id, trace_time,
                    wire_bytes]() mutable {
      net_.Send(ParentNode(), clients_[client_index].node, wire_bytes,
                [this, client_index, seq, reply = std::move(reply),
                 owner = std::move(owner), trace_time]() mutable {
                  DeliverReply(client_index, seq, std::move(reply),
                               std::move(owner), trace_time);
                });
    });
    return;
  }

  // Miss (or a validation): fetch through to the server as "parent".
  ++metrics_.parent_fetches;
  const bool leaf_wanted_body = request.type == net::MessageType::kGet;
  net::Request upstream = request;
  std::string owner = request.client_id;
  upstream.client_id = "parent";
  if (entry != nullptr && request.type == net::MessageType::kGet) {
    // Questionable parent copy revalidates rather than refetching.
    upstream.type = net::MessageType::kIfModifiedSince;
    upstream.if_modified_since = entry->last_modified;
  }
  const std::uint64_t wire = net::WireSize(upstream);
  metrics_.message_bytes += wire;
  net_.Send(ParentNode(), ServerNode(), wire,
            [this, upstream = std::move(upstream), client_index, seq,
             owner = std::move(owner), leaf_wanted_body,
             trace_time]() mutable {
              ServerHandleForParent(std::move(upstream), client_index, seq,
                                    std::move(owner), leaf_wanted_body,
                                    trace_time);
            });
}

void Engine::ServerHandleForParent(net::Request request, int client_index,
                                   std::uint64_t seq, std::string owner,
                                   bool leaf_wanted_body, Time trace_time) {
  std::optional<net::Reply> reply = accel_.HandleRequest(request, trace_time);
  WEBCC_CHECK_MSG(reply.has_value(), "trace referenced an unknown document");

  const bool transfer = reply->type == net::MessageType::kReply200;
  const http::ServerCosts& costs = config_.server_costs;
  server_disk_.utilization().AddWrite();
  server_disk_.Enqueue(costs.disk_op);
  Time ready = server_cpu_.Enqueue(transfer ? costs.request_cpu_200
                                            : costs.request_cpu_304);
  if (transfer) {
    server_disk_.utilization().AddRead();
    ready = std::max(ready, server_disk_.Enqueue(costs.disk_op));
  }
  // Hop-2 replies are counted via parent_fetches; bytes are real traffic.
  metrics_.message_bytes += net::WireSize(*reply);
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply->body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes =
      net::kControlHeaderBytes + reply->url.size() + scaled_body;

  sim_.At(ready, [this, client_index, seq, reply = std::move(*reply),
                  owner = std::move(owner), leaf_wanted_body, trace_time,
                  wire_bytes]() mutable {
    net_.Send(ServerNode(), ParentNode(), wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), leaf_wanted_body,
               trace_time]() mutable {
                ParentReceiveReply(std::move(reply), client_index, seq,
                                   std::move(owner), leaf_wanted_body,
                                   trace_time);
              });
  });
}

void Engine::ParentReceiveReply(net::Reply reply, int client_index,
                                std::uint64_t seq, std::string owner,
                                bool leaf_wanted_body, Time trace_time) {
  const std::string parent_key = CacheKey(reply.url, "parent");
  if (reply.type == net::MessageType::kReply200) {
    http::CacheEntry entry;
    entry.key = parent_key;
    entry.url = reply.url;
    entry.owner = "parent";
    entry.size_bytes = reply.body_bytes;
    entry.last_modified = reply.last_modified;
    entry.version = reply.version;
    entry.fetched_at = trace_time;
    parent_cache_->Insert(std::move(entry), trace_time);
  } else {
    http::CacheEntry* entry = parent_cache_->Peek(parent_key);
    if (entry == nullptr && leaf_wanted_body) {
      // The parent's copy was evicted while this validation was in flight:
      // the 304 certifies a copy that no longer exists. Refetch it so the
      // leaf's GET is answered with a body.
      ++metrics_.parent_fetches;
      net::Request refetch;
      refetch.type = net::MessageType::kGet;
      refetch.url = reply.url;
      refetch.client_id = "parent";
      const std::uint64_t wire = net::WireSize(refetch);
      metrics_.message_bytes += wire;
      net_.Send(ParentNode(), ServerNode(), wire,
                [this, refetch = std::move(refetch), client_index, seq,
                 owner = std::move(owner), trace_time]() mutable {
                  ServerHandleForParent(std::move(refetch), client_index, seq,
                                        std::move(owner),
                                        /*leaf_wanted_body=*/true, trace_time);
                });
      return;
    }
    if (entry != nullptr) {
      entry->questionable = false;
      if (leaf_wanted_body) {
        // The leaf asked for a body but the server certified the parent's
        // copy fresh: serve the revalidated copy as a 200.
        reply.type = net::MessageType::kReply200;
        reply.body_bytes = entry->size_bytes;
        reply.version = entry->version;
      }
    }
  }

  // Forward to the leaf (this is the leaf-facing reply).
  if (reply.type == net::MessageType::kReply200) {
    ++metrics_.replies_200;
  } else {
    ++metrics_.replies_304;
  }
  obs::Emit(sink_, {.type = reply.type == net::MessageType::kReply200
                                ? obs::EventType::kReply200
                                : obs::EventType::kReply304,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = reply.url,
                    .site = owner});
  metrics_.message_bytes += net::WireSize(reply);
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply.body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes =
      net::kControlHeaderBytes + reply.url.size() + scaled_body;
  const Time ready = parent_cpu_->Enqueue(config_.client_costs.proxy_hit_time);
  sim_.At(ready, [this, client_index, seq, reply = std::move(reply),
                  owner = std::move(owner), trace_time,
                  wire_bytes]() mutable {
    net_.Send(ParentNode(), clients_[client_index].node, wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), trace_time]() mutable {
                DeliverReply(client_index, seq, std::move(reply),
                             std::move(owner), trace_time);
              });
  });
}

void Engine::ServerHandle(const net::Request& request, int client_index,
                          std::uint64_t seq, Time trace_time) {
  std::optional<net::Reply> reply =
      InvalidationMode() ? accel_.HandleRequest(request, trace_time)
                         : origin_->Handle(request, trace_time);
  WEBCC_CHECK_MSG(reply.has_value(), "trace referenced an unknown document");

  const bool transfer = reply->type == net::MessageType::kReply200;
  const http::ServerCosts& costs = config_.server_costs;

  // PCV: bulk-validate the piggybacked batch against the file system.
  std::vector<core::PcvVerdict> verdicts;
  if (const auto it = pcv_in_flight_.find(seq); it != pcv_in_flight_.end()) {
    verdicts = core::ValidatePiggyback(docs_, it->second);
    pcv_in_flight_.erase(it);
  }

  // PSI: attach the documents modified since this proxy's last contact and
  // advance its cursor.
  std::vector<std::string> psi_urls;
  if (config_.protocol == Protocol::kPiggybackInvalidation) {
    Time& cursor = psi_last_contact_[client_index];
    core::ModificationLog::Window window = mod_log_.CollectSince(
        cursor, trace_time, config_.piggyback.max_invalidations_per_reply);
    cursor = std::max(cursor, window.advanced_to);
    psi_urls = std::move(window.urls);
  }

  const Time piggyback_cpu =
      static_cast<Time>(verdicts.size() + psi_urls.size()) *
      costs.piggyback_item_cpu;

  // Access log write (all approaches log incoming requests).
  server_disk_.utilization().AddWrite();
  const Time log_done = server_disk_.Enqueue(costs.disk_op);
  Time ready = server_cpu_.Enqueue(
      (transfer ? costs.request_cpu_200 : costs.request_cpu_304) +
      piggyback_cpu);
  if (transfer) {
    // The file read must complete before the body can be sent.
    server_disk_.utilization().AddRead();
    ready = std::max(ready, server_disk_.Enqueue(costs.disk_op));
  }
  (void)log_done;  // logging is asynchronous w.r.t. the reply

  if (transfer) {
    ++metrics_.replies_200;
  } else {
    ++metrics_.replies_304;
  }
  obs::Emit(sink_, {.type = transfer ? obs::EventType::kReply200
                                     : obs::EventType::kReply304,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = reply->url,
                    .site = request.client_id});
  const std::uint64_t piggyback_bytes =
      core::PcvReplyExtraBytes(verdicts) + core::PsiReplyExtraBytes(psi_urls);
  metrics_.message_bytes += net::WireSize(*reply) + piggyback_bytes;

  // Transfer delay uses the scaled-down body, as in the paper's testbed.
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply->body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes = net::kControlHeaderBytes +
                                   reply->url.size() + scaled_body +
                                   piggyback_bytes;

  sim_.At(ready, [this, client_index, seq, reply = std::move(*reply),
                  owner = request.client_id, trace_time, wire_bytes,
                  verdicts = std::move(verdicts),
                  psi_urls = std::move(psi_urls)]() mutable {
    net_.Send(ServerNode(), clients_[client_index].node, wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), trace_time,
               verdicts = std::move(verdicts),
               psi_urls = std::move(psi_urls)]() mutable {
                ApplyPiggyback(client_index, verdicts, psi_urls, trace_time);
                DeliverReply(client_index, seq, std::move(reply),
                             std::move(owner), trace_time);
              });
  });
}

// Applies PCV verdicts and PSI change notices at the proxy, before the
// reply itself is processed (so a just-fetched body is inserted after any
// purge of its URL).
void Engine::ApplyPiggyback(int client_index,
                            const std::vector<core::PcvVerdict>& verdicts,
                            const std::vector<std::string>& psi_urls,
                            Time trace_time) {
  PseudoClient& pc = clients_[client_index];
  for (const core::PcvVerdict& verdict : verdicts) {
    http::CacheEntry* entry = pc.cache->Peek(verdict.key);
    if (entry == nullptr) continue;
    if (verdict.invalid) {
      pc.cache->Erase(verdict.key);
      ++metrics_.pcv_invalidated;
    } else {
      pc.cache->SetTtlExpiry(
          *entry, core::AdaptiveTtlExpiry(config_.ttl, trace_time,
                                          entry->last_modified));
    }
  }
  for (const std::string& url : psi_urls) {
    ++metrics_.psi_notices;
    metrics_.psi_entries_erased += pc.cache->EraseByUrl(url);
  }
}

http::CacheEntry Engine::BuildEntry(const net::Reply& reply,
                                    const std::string& owner,
                                    Time trace_time) const {
  http::CacheEntry entry;
  entry.key = CacheKey(reply.url, owner);
  entry.url = reply.url;
  entry.owner = owner;
  entry.size_bytes = reply.body_bytes;
  entry.last_modified = reply.last_modified;
  entry.version = reply.version;
  entry.fetched_at = trace_time;
  if (TtlBased()) {
    entry.ttl_expires =
        core::AdaptiveTtlExpiry(config_.ttl, trace_time, reply.last_modified);
  }
  entry.lease_expires = reply.lease_until == net::kNoLease
                            ? http::kNeverExpires
                            : reply.lease_until;
  return entry;
}

void Engine::DeliverReply(int client_index, std::uint64_t seq,
                          net::Reply reply, std::string owner,
                          Time trace_time) {
  PseudoClient& pc = clients_[client_index];
  if (pc.outstanding != seq) return;  // timed out; late reply dropped
  pc.outstanding = 0;

  if (reply.type == net::MessageType::kReply200) {
    obs::Emit(
        sink_,
        {.type = obs::EventType::kRequestServed,
         .at = sim_.now(),
         .trace_time = trace_time,
         .url = reply.url,
         .site = owner,
         .detail = static_cast<std::int64_t>(obs::ServeKind::kTransfer)});
    pc.cache->Insert(BuildEntry(reply, owner, trace_time), trace_time);
  } else {
    // 304: the cached copy is certified fresh as of this validation.
    ++metrics_.validated_hits;
    obs::Emit(
        sink_,
        {.type = obs::EventType::kRequestServed,
         .at = sim_.now(),
         .trace_time = trace_time,
         .url = reply.url,
         .site = owner,
         .detail = static_cast<std::int64_t>(obs::ServeKind::kValidated)});
    http::CacheEntry* entry = pc.cache->Peek(CacheKey(reply.url, owner));
    if (entry != nullptr) {
      entry->questionable = false;
      if (TtlBased()) {
        pc.cache->SetTtlExpiry(*entry,
                               core::AdaptiveTtlExpiry(config_.ttl, trace_time,
                                                       reply.last_modified));
      }
      if (reply.lease_until != net::kNoLease) {
        entry->lease_expires = reply.lease_until;
      } else if (config_.protocol == Protocol::kInvalidation &&
                 accel_.table().lease_config().mode == core::LeaseMode::kNone) {
        entry->lease_expires = http::kNeverExpires;
      }
    }
  }
  FinishRequest(pc, sim_.now() - pc.request_start);
}

// --- modifier / invalidation path ---------------------------------------------

void Engine::ModifierStep() {
  if (mod_cursor_ >= mod_window_end_) {
    ParticipantDone();
    return;
  }
  const trace::ModEvent& event = modifications_[mod_cursor_++];
  const std::string& url = DocPath(event.doc);

  // The touch registers in the file system immediately; for polling, this is
  // the point at which the write is complete. For invalidation the write is
  // in progress from this instant until the fan-out is delivered.
  docs_.Touch(url, event.at);
  mod_times_[url].push_back(event.at);
  mod_log_.Record(event.at, url);
  ++metrics_.modifications_applied;
  obs::Emit(sink_, {.type = obs::EventType::kModification,
                    .at = sim_.now(),
                    .trace_time = event.at,
                    .url = url});
  if (InvalidationMode() && !server_down_) ++writes_in_progress_[url];

  if (server_down_) {
    // The accelerator is dead: the modification goes unnoticed until the
    // recovery broadcast. The touch itself persists (the file system
    // survives the crash).
    sim_.After(0, [this] { ModifierStep(); });
    return;
  }

  // The check-in utility notifies the accelerator; detection happens when
  // the notify is processed.
  server_cpu_.Enqueue(config_.server_costs.notify_cpu,
                      [this, url, at = event.at] {
                        if (InvalidationMode()) {
                          net::Notify notify{url};
                          FanOutInvalidations(accel_.HandleNotify(notify, at),
                                              url,
                                              [this] { ModifierStep(); });
                        } else {
                          ModifierStep();
                        }
                      });
}

void Engine::FanOutInvalidations(std::vector<net::Invalidation> invalidations,
                                 const std::string& url,
                                 std::function<void()> on_complete) {
  WEBCC_CHECK(static_cast<bool>(on_complete));
  if (invalidations.empty()) {
    // No site holds a live-leased copy: the write is trivially complete.
    CompleteWrite(url);
    sim_.After(0, std::move(on_complete));
    return;
  }

  const std::uint64_t mod_id = next_mod_id_++;
  PendingMod& pending = pending_mod_targets_[mod_id];
  pending.url = url;
  pending.remaining = static_cast<int>(invalidations.size());
  pending.first_pending = pending.remaining;
  if (config_.serialized_invalidation) {
    // The check-in blocks until the fan-out lands (the paper's prototype);
    // the modifier resumes only once this write has completed.
    pending.on_complete = std::move(on_complete);
  }

  sim::FifoStation& sender =
      config_.serialized_invalidation ? server_cpu_ : inval_sender_;
  const Time fanout_start = sim_.now();
  Time last_send_done = fanout_start;
  if (config_.multicast_invalidation) {
    // One group send regardless of list length: one CPU charge, one
    // message's bytes; the network fans the copies out.
    ++metrics_.multicast_sends;
    metrics_.invalidations_sent += invalidations.size();
    metrics_.message_bytes += net::WireSize(invalidations.front());
    last_send_done = sender.Enqueue(
        config_.server_costs.invalidation_send_cpu,
        [this, invalidations = std::move(invalidations), mod_id]() mutable {
          for (net::Invalidation& invalidation : invalidations) {
            SendInvalidation(std::move(invalidation), mod_id);
          }
        });
  } else {
    for (net::Invalidation& invalidation : invalidations) {
      ++metrics_.invalidations_sent;
      metrics_.message_bytes += net::WireSize(invalidation);
      last_send_done = sender.Enqueue(
          config_.server_costs.invalidation_send_cpu,
          [this, invalidation = std::move(invalidation), mod_id]() mutable {
            SendInvalidation(std::move(invalidation), mod_id);
          });
    }
  }
  metrics_.invalidation_time_ms.Record(ToMillis(last_send_done - fanout_start));
  if (!config_.serialized_invalidation) sim_.After(0, std::move(on_complete));
}

void Engine::SendInvalidation(net::Invalidation invalidation,
                              std::uint64_t mod_id) {
  sim::NodeId target;
  const bool to_parent =
      config_.hierarchical && invalidation.client_id == "parent";
  if (to_parent) {
    target = ParentNode();
  } else {
    const auto it = pseudo_of_client_.find(invalidation.client_id);
    WEBCC_CHECK_MSG(it != pseudo_of_client_.end(),
                    "invalidation for an unknown client");
    target = clients_[it->second].node;
  }
  const std::uint64_t wire = net::WireSize(invalidation);

  // A send that hits a partition is queued for periodic background retry;
  // the blocking check-in does not wait for it. A reachable target gates
  // the check-in until the message actually arrives (a successful TCP send
  // means the peer acknowledged the bytes).
  bool gate_released = false;
  if (!net_.Reachable(ServerNode(), target) && net_.IsNodeUp(target) &&
      net_.IsNodeUp(ServerNode())) {
    gate_released = true;
    ResolveFirstAttempt(mod_id);
  }

  // TCP with periodic retry across partitions (Section 4's failure
  // handling); a down proxy refuses the connection and is dropped — its
  // recovery path revalidates everything.
  net_.SendReliable(
      ServerNode(), target, wire,
      [this, invalidation, mod_id, gate_released, to_parent] {
        if (!gate_released) ResolveFirstAttempt(mod_id);
        if (to_parent) {
          if (invalidation.type == net::MessageType::kInvalidateUrl) {
            ParentDeliverInvalidation(invalidation.url, mod_id);
          } else {
            ParentDeliverServerNotice(invalidation);
          }
        } else {
          DeliverInvalidation(invalidation, mod_id);
        }
      },
      [this, invalidation, mod_id,
       gate_released](sim::Network::SendResult result, Time done_at) {
        if (result == sim::Network::SendResult::kDelivered) return;
        if (!gate_released) ResolveFirstAttempt(mod_id);
        ++metrics_.invalidations_refused;
        obs::Emit(sink_,
                  {.type = result == sim::Network::SendResult::kGaveUp
                               ? obs::EventType::kInvalidateGaveUp
                               : obs::EventType::kInvalidateRefused,
                   .at = done_at,
                   .url = invalidation.url,
                   .site = invalidation.client_id});
        if (invalidation.type == net::MessageType::kInvalidateServer) {
          FinishRecoveryNotice();
        } else {
          FinishInvalidationTarget(invalidation, mod_id);
        }
      },
      /*max_retries=*/-1);
}

void Engine::ParentDeliverInvalidation(const std::string& url,
                                       std::uint64_t mod_id) {
  parent_cache_->EraseByUrl(url);
  ++metrics_.invalidations_delivered;
  obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                    .at = sim_.now(),
                    .url = url,
                    .site = "parent"});

  // Forward to the leaf proxies that fetched this document since the last
  // invalidation; the write completes when they have all been reached.
  std::vector<std::string> leaves =
      parent_table_->TakeSitesForInvalidation(url, sim_.now());
  const auto pending = pending_mod_targets_.find(mod_id);
  if (pending != pending_mod_targets_.end()) {
    pending->second.remaining += static_cast<int>(leaves.size());
  }
  for (const std::string& leaf : leaves) {
    // The interest table only ever holds names this engine registered, so a
    // parse failure means the table (not the trace) is corrupt.
    int index = -1;
    WEBCC_CHECK_MSG(ParseLeafIndex(leaf, index),
                    "malformed hierarchy site name: " + leaf);
    WEBCC_CHECK_MSG(index >= 0 && index < static_cast<int>(clients_.size()),
                    "hierarchy site name out of range: " + leaf);
    ++metrics_.hierarchy_forwards;
    net::Invalidation forward;
    forward.type = net::MessageType::kInvalidateUrl;
    forward.url = url;
    forward.client_id = leaf;
    metrics_.message_bytes += net::WireSize(forward);
    net_.SendReliable(
        ParentNode(), clients_[index].node, net::WireSize(forward),
        [this, url, index, mod_id, forward] {
          clients_[index].cache->EraseByUrl(url);
          ++metrics_.invalidations_delivered;
          obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                            .at = sim_.now(),
                            .url = url,
                            .site = forward.client_id});
          FinishInvalidationTarget(forward, mod_id);
        },
        [this, forward, mod_id](sim::Network::SendResult result,
                                Time done_at) {
          if (result == sim::Network::SendResult::kDelivered) return;
          ++metrics_.invalidations_refused;
          obs::Emit(sink_,
                    {.type = result == sim::Network::SendResult::kGaveUp
                                 ? obs::EventType::kInvalidateGaveUp
                                 : obs::EventType::kInvalidateRefused,
                     .at = done_at,
                     .url = forward.url,
                     .site = forward.client_id});
          FinishInvalidationTarget(forward, mod_id);
        },
        /*max_retries=*/-1);
  }

  net::Invalidation parent_slot;
  parent_slot.url = url;
  FinishInvalidationTarget(parent_slot, mod_id);
}

void Engine::ParentDeliverServerNotice(const net::Invalidation& notice) {
  // Server-site recovery reaches the parent, which must assume everything
  // below it may be stale: its own cache and every leaf's become
  // questionable.
  parent_cache_->MarkAllQuestionable();
  for (PseudoClient& pc : clients_) {
    ++metrics_.hierarchy_forwards;
    metrics_.message_bytes += net::WireSize(notice);
    net_.Send(ParentNode(), pc.node, net::WireSize(notice),
              [&pc] { pc.cache->MarkAllQuestionable(); });
  }
  FinishRecoveryNotice();
}

void Engine::DeliverInvalidation(const net::Invalidation& invalidation,
                                 std::uint64_t mod_id) {
  const int index = pseudo_of_client_.at(invalidation.client_id);
  PseudoClient& pc = clients_[index];
  if (invalidation.type == net::MessageType::kInvalidateUrl) {
    // Deleting (rather than marking) frees cache space for fresh documents —
    // the cache-utilization benefit the paper credits invalidation with.
    pc.cache->Erase(CacheKey(invalidation.url, invalidation.client_id));
    ++metrics_.invalidations_delivered;
    obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                      .at = sim_.now(),
                      .url = invalidation.url,
                      .site = invalidation.client_id});
    FinishInvalidationTarget(invalidation, mod_id);
  } else {
    // Server-address invalidation: every entry this real client holds from
    // that server becomes questionable.
    pc.cache->MarkQuestionableWhere(
        [&invalidation](const http::CacheEntry& entry) {
          return entry.owner == invalidation.client_id;
        });
    FinishRecoveryNotice();
  }
}

void Engine::FinishRecoveryNotice() {
  if (recovery_notices_pending_ > 0 && --recovery_notices_pending_ == 0) {
    // Every ever-seen site has been told (or is dead and will revalidate on
    // its own recovery): the downtime writes are as complete as they get.
    write_gap_active_ = false;
  }
}

void Engine::ResolveFirstAttempt(std::uint64_t mod_id) {
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  if (--it->second.first_pending > 0) return;
  std::function<void()> on_complete = std::move(it->second.on_complete);
  it->second.on_complete = nullptr;
  if (it->second.remaining <= 0) pending_mod_targets_.erase(it);
  if (on_complete) on_complete();
}

void Engine::FinishInvalidationTarget(const net::Invalidation& invalidation,
                                      std::uint64_t mod_id) {
  (void)invalidation;
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  if (--it->second.remaining > 0) return;
  // Write complete: all invalidations delivered (or their targets dead).
  CompleteWrite(it->second.url);
  if (it->second.first_pending <= 0) pending_mod_targets_.erase(it);
}

void Engine::CompleteWrite(const std::string& url) {
  const auto it = writes_in_progress_.find(url);
  if (it != writes_in_progress_.end() && --it->second <= 0) {
    writes_in_progress_.erase(it);
  }
}

void Engine::ServerRecover() {
  std::vector<net::Invalidation> notices = accel_.Recover();
  recovery_notices_pending_ = static_cast<int>(notices.size());
  if (notices.empty()) write_gap_active_ = false;
  sim::FifoStation& sender =
      config_.serialized_invalidation ? server_cpu_ : inval_sender_;
  for (net::Invalidation& notice : notices) {
    ++metrics_.invsrv_sent;
    metrics_.message_bytes += net::WireSize(notice);
    sender.Enqueue(config_.server_costs.invalidation_send_cpu,
                   [this, notice = std::move(notice)]() mutable {
                     SendInvalidation(std::move(notice), 0);
                   });
  }
}

}  // namespace

bool ParseLeafIndex(std::string_view site, int& index) {
  constexpr std::string_view kPrefix = "leaf-";
  if (site.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view digits = site.substr(kPrefix.size());
  if (digits.empty()) return false;
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), parsed);
  // from_chars accepts a leading '-'; site indices are non-negative, and the
  // whole suffix must be consumed (no "leaf-3x").
  if (ec != std::errc() || ptr != digits.data() + digits.size() || parsed < 0) {
    return false;
  }
  index = parsed;
  return true;
}

ReplayMetrics RunReplay(const ReplayConfig& config) {
  Engine engine(config);
  return engine.Run();
}

}  // namespace webcc::replay
