// Tests for the webcc::obs observability layer: JSONL sink format and
// interning, the metrics registry, the trace reader, the farm's
// deterministic trace merge, and the event/counter reconciliation
// identities against ReplayMetrics.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/experiments.h"
#include "replay/farm.h"
#include "trace/presets.h"
#include "trace/workload.h"

namespace webcc::obs {
namespace {

// --- event taxonomy ---------------------------------------------------------------

TEST(EventNames, RoundTripEveryType) {
  for (int t = 0; t <= static_cast<int>(EventType::kJournalRebuild); ++t) {
    const auto type = static_cast<EventType>(t);
    const std::string_view name = EventTypeName(type);
    ASSERT_FALSE(name.empty());
    EventType back;
    ASSERT_TRUE(ParseEventTypeName(name, back)) << name;
    EXPECT_EQ(back, type);
  }
  EventType unused;
  EXPECT_FALSE(ParseEventTypeName("no_such_event", unused));
  EXPECT_FALSE(ParseEventTypeName("", unused));
}

// --- JSONL sink -------------------------------------------------------------------

TEST(JsonlSink, GoldenFormat) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Emit({.type = EventType::kRunBegin, .at = 0, .label = "demo run"});
  sink.Emit({.type = EventType::kGetSent,
             .at = 5,
             .trace_time = 3,
             .url = "/a",
             .site = "c1"});
  sink.Emit({.type = EventType::kImsSent,
             .at = 9,
             .url = "/a",
             .site = "c1",
             .detail = 1});
  EXPECT_EQ(out.str(),
            "{\"t\":0,\"e\":\"run_begin\",\"l\":\"demo run\"}\n"
            "{\"e\":\"intern\",\"id\":0,\"n\":\"/a\"}\n"
            "{\"e\":\"intern\",\"id\":1,\"n\":\"c1\"}\n"
            "{\"t\":5,\"e\":\"get_sent\",\"tt\":3,\"u\":0,\"s\":1}\n"
            "{\"t\":9,\"e\":\"ims_sent\",\"u\":0,\"s\":1,\"d\":1}\n");
  EXPECT_EQ(sink.events_written(), 3u);
}

TEST(JsonlSink, InternScopeResetsAtRunBegin) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Emit({.type = EventType::kRunBegin, .at = 0});
  sink.Emit({.type = EventType::kGetSent, .at = 1, .url = "/a"});
  sink.Emit({.type = EventType::kGetSent, .at = 2, .url = "/a"});
  sink.Emit({.type = EventType::kRunBegin, .at = 0});
  sink.Emit({.type = EventType::kGetSent, .at = 1, .url = "/b"});
  // "/a" interned once (second use reuses the id); the new run restarts the
  // id space so "/b" also gets id 0.
  const std::string text = out.str();
  EXPECT_EQ(text,
            "{\"t\":0,\"e\":\"run_begin\"}\n"
            "{\"e\":\"intern\",\"id\":0,\"n\":\"/a\"}\n"
            "{\"t\":1,\"e\":\"get_sent\",\"u\":0}\n"
            "{\"t\":2,\"e\":\"get_sent\",\"u\":0}\n"
            "{\"t\":0,\"e\":\"run_begin\"}\n"
            "{\"e\":\"intern\",\"id\":0,\"n\":\"/b\"}\n"
            "{\"t\":1,\"e\":\"get_sent\",\"u\":0}\n");
  // The concatenation-shaped stream must read back clean.
  std::istringstream in(text);
  const TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.runs, 2u);
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_EQ(summary.undefined_ids, 0u);
}

TEST(JsonlSink, EscapesLabelStrings) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Emit({.type = EventType::kRunBegin,
             .at = 0,
             .label = "quote\" slash\\ tab\t nl\n bell\x07"});
  EXPECT_EQ(out.str(),
            "{\"t\":0,\"e\":\"run_begin\","
            "\"l\":\"quote\\\" slash\\\\ tab\\t nl\\n bell\\u0007\"}\n");
}

TEST(EmitHelper, NullSinkIsANoOp) {
  // The disabled-tracing hot path: a null sink pointer must be safe and
  // side-effect free at every call site.
  Emit(nullptr, {.type = EventType::kGetSent, .at = 1, .url = "/a"});
  NullTraceSink null_sink;
  Emit(&null_sink, {.type = EventType::kGetSent, .at = 1, .url = "/a"});
}

TEST(BufferSink, TakeTextDrainsBuffer) {
  BufferTraceSink sink;
  sink.Emit({.type = EventType::kRunBegin, .at = 7});
  const std::string text = sink.Text();
  EXPECT_EQ(text, "{\"t\":7,\"e\":\"run_begin\"}\n");
  EXPECT_EQ(sink.TakeText(), text);
}

// --- metrics registry -------------------------------------------------------------

TEST(Metrics, CounterPointersAreStable) {
  MetricsRegistry registry;
  Counter* counter = registry.FindOrCreateCounter("a.count");
  counter->Add();
  // Insert enough other names that a non-node-based container would move.
  for (int i = 0; i < 100; ++i) {
    registry.FindOrCreateCounter("filler." + std::to_string(i));
  }
  counter->Add(4);
  EXPECT_EQ(registry.CounterValue("a.count"), 5u);
  EXPECT_EQ(registry.FindOrCreateCounter("a.count"), counter);
}

TEST(Metrics, WriteJsonSortsAcrossKinds) {
  MetricsRegistry registry;
  registry.SetCounter("b.counter", 2);
  registry.SetGauge("a.gauge", 1.5);
  registry.FindOrCreateHistogram("c.hist")->Record(10.0);
  std::ostringstream out;
  registry.WriteJson(out);
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"a.gauge\": 1.5,\n"
            "  \"b.counter\": 2,\n"
            "  \"c.hist\": {\"count\":1,\"mean\":10,\"min\":10,\"max\":10,"
            "\"p50\":10,\"p95\":10,\"p99\":10}\n"
            "}\n");
}

TEST(Metrics, MergeFromPrefixesAndAccumulates) {
  MetricsRegistry a;
  a.SetCounter("hits", 3);
  a.SetGauge("util", 0.25);
  a.FindOrCreateHistogram("lat")->Record(1.0);

  MetricsRegistry merged;
  merged.MergeFrom(a, "run1.");
  merged.MergeFrom(a, "run1.");  // counters add, gauges overwrite
  EXPECT_EQ(merged.CounterValue("run1.hits"), 6u);
  EXPECT_EQ(merged.GaugeValue("run1.util"), 0.25);
  EXPECT_EQ(merged.FindOrCreateHistogram("run1.lat")->samples.count(), 2u);
  EXPECT_EQ(merged.CounterValue("hits"), 0u);  // unprefixed name untouched
}

// --- trace reader -----------------------------------------------------------------

TEST(TraceReader, FlagsMalformedUnknownAndUndefined) {
  std::istringstream in(
      "{\"t\":0,\"e\":\"run_begin\"}\n"
      "{\"e\":\"intern\",\"id\":0,\"n\":\"/a\"}\n"
      "{\"t\":1,\"e\":\"get_sent\",\"u\":0}\n"
      "{\"t\":2,\"e\":\"get_sent\",\"u\":7}\n"      // id 7 never interned
      "{\"t\":3,\"e\":\"mystery_event\"}\n"          // unknown type
      "this is not json\n"                            // malformed
      "{\"t\":4,\"e\":\"run_end\"}\n");
  const TraceSummary summary = SummarizeTrace(in);
  EXPECT_EQ(summary.runs, 1u);
  EXPECT_EQ(summary.intern_lines, 1u);
  EXPECT_EQ(summary.total_events, 4u);  // unknown lines are tallied apart
  EXPECT_EQ(summary.unknown_events, 1u);
  EXPECT_EQ(summary.malformed_lines, 1u);
  EXPECT_EQ(summary.undefined_ids, 1u);
  EXPECT_EQ(summary.first_at, 0);
  EXPECT_EQ(summary.last_at, 4);
  EXPECT_EQ(summary.CountOf(EventType::kGetSent), 2u);
}

TEST(TraceReader, SummaryReportMentionsProblems) {
  TraceSummary summary;
  summary.total_events = 3;
  summary.malformed_lines = 2;
  summary.undefined_ids = 1;
  summary.by_type[static_cast<std::size_t>(EventType::kGetSent)] = 3;
  std::ostringstream out;
  WriteTraceSummary(out, summary);
  const std::string report = out.str();
  EXPECT_NE(report.find("get_sent"), std::string::npos);
  EXPECT_NE(report.find("malformed"), std::string::npos);
}

}  // namespace
}  // namespace webcc::obs

namespace webcc::replay {
namespace {

// --- ParseLeafIndex regression (the old std::stoi would throw or accept
// --- garbage like "leaf-12abc") -----------------------------------------------

TEST(ParseLeafIndex, AcceptsExactForm) {
  int index = -1;
  EXPECT_TRUE(ParseLeafIndex("leaf-0", index));
  EXPECT_EQ(index, 0);
  EXPECT_TRUE(ParseLeafIndex("leaf-37", index));
  EXPECT_EQ(index, 37);
}

TEST(ParseLeafIndex, RejectsMalformedNames) {
  int index = 123;
  EXPECT_FALSE(ParseLeafIndex("", index));
  EXPECT_FALSE(ParseLeafIndex("leaf-", index));
  EXPECT_FALSE(ParseLeafIndex("leaf", index));
  EXPECT_FALSE(ParseLeafIndex("leaf-abc", index));
  EXPECT_FALSE(ParseLeafIndex("leaf-12abc", index));   // trailing garbage
  EXPECT_FALSE(ParseLeafIndex("leaf--1", index));      // negative
  EXPECT_FALSE(ParseLeafIndex("LEAF-1", index));       // wrong case
  EXPECT_FALSE(ParseLeafIndex("leaf-99999999999999999999", index));  // overflow
  EXPECT_EQ(index, 123);  // untouched on every failure
}

// --- replay integration: farm trace merge + reconciliation --------------------

trace::Trace SmallTrace() {
  trace::WorkloadConfig config = trace::GetPreset(trace::TraceName::kEpa).workload;
  config.total_requests /= 100;
  config.num_documents /= 10;
  config.num_clients /= 10;
  return trace::GenerateTrace(config);
}

std::vector<ReplayConfig> SmallConfigs(const trace::Trace& trace) {
  std::vector<ReplayConfig> configs;
  for (const core::Protocol protocol :
       {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
        core::Protocol::kInvalidation}) {
    configs.push_back(
        MakeReplayConfig(Table3Experiments()[0], protocol, trace));
  }
  return configs;
}

std::string MergedTrace(const std::vector<ReplayConfig>& configs,
                        unsigned workers) {
  obs::BufferTraceSink merged;
  Farm farm(workers);
  farm.set_merged_trace_sink(&merged);
  for (const ReplayConfig& config : configs) farm.Submit(config);
  farm.Collect();
  return merged.TakeText();
}

TEST(FarmTrace, MergeIsBitIdenticalAcrossWorkerCounts) {
  const trace::Trace trace = SmallTrace();
  const auto configs = SmallConfigs(trace);
  const std::string serial = MergedTrace(configs, 1);
  const std::string farmed = MergedTrace(configs, 4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, farmed);
  // And the merged stream is structurally sound: one run per config, ids
  // always defined (scopes restart at each run_begin).
  std::istringstream in(serial);
  const obs::TraceSummary summary = obs::SummarizeTrace(in);
  EXPECT_EQ(summary.runs, configs.size());
  EXPECT_EQ(summary.malformed_lines, 0u);
  EXPECT_EQ(summary.undefined_ids, 0u);
  EXPECT_EQ(summary.unknown_events, 0u);
}

TEST(Reconciliation, EventCountsMatchReplayCounters) {
  // The taxonomy's contract: each mirrored event type is emitted at exactly
  // the site that increments its ReplayMetrics counter.
  const trace::Trace trace = SmallTrace();
  for (const core::Protocol protocol :
       {core::Protocol::kAdaptiveTtl, core::Protocol::kInvalidation}) {
    ReplayConfig config =
        MakeReplayConfig(Table3Experiments()[0], protocol, trace);
    obs::BufferTraceSink sink;
    config.trace_sink = &sink;
    const ReplayMetrics m = RunReplay(config);

    std::istringstream in(sink.TakeText());
    const obs::TraceSummary s = obs::SummarizeTrace(in);
    EXPECT_EQ(s.runs, 1u);
    EXPECT_EQ(s.malformed_lines, 0u);
    EXPECT_EQ(s.undefined_ids, 0u);
    EXPECT_EQ(s.CountOf(obs::EventType::kGetSent), m.get_requests);
    EXPECT_EQ(s.CountOf(obs::EventType::kImsSent), m.ims_requests);
    EXPECT_EQ(s.CountOf(obs::EventType::kReply200), m.replies_200);
    EXPECT_EQ(s.CountOf(obs::EventType::kReply304), m.replies_304);
    EXPECT_EQ(s.CountOf(obs::EventType::kStaleHit), m.stale_serves);
    EXPECT_EQ(s.CountOf(obs::EventType::kModification),
              m.modifications_applied);
    EXPECT_EQ(s.CountOf(obs::EventType::kInvalidateGenerated),
              m.invalidations_sent);
    EXPECT_EQ(s.CountOf(obs::EventType::kInvalidateDelivered),
              m.invalidations_delivered);
    EXPECT_EQ(s.CountOf(obs::EventType::kInvalidateRefused) +
                  s.CountOf(obs::EventType::kInvalidateGaveUp),
              m.invalidations_refused);
    EXPECT_EQ(s.CountOf(obs::EventType::kEviction), m.proxy_evictions);
    EXPECT_EQ(s.CountOf(obs::EventType::kRequestTimeout), m.request_timeouts);
    EXPECT_EQ(s.CountOf(obs::EventType::kInvalidateServer), m.invsrv_sent);
    // Every issued request resolves as served or timed out.
    EXPECT_EQ(s.CountOf(obs::EventType::kRequestServed) +
                  s.CountOf(obs::EventType::kRequestTimeout),
              m.requests_issued);
  }
}

TEST(Reconciliation, RegistryExportIsASuperset) {
  const trace::Trace trace = SmallTrace();
  ReplayConfig config = MakeReplayConfig(
      Table3Experiments()[0], core::Protocol::kInvalidation, trace);
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  const ReplayMetrics m = RunReplay(config);

  EXPECT_EQ(registry.CounterValue("replay.get_requests"), m.get_requests);
  EXPECT_EQ(registry.CounterValue("replay.ims_requests"), m.ims_requests);
  EXPECT_EQ(registry.CounterValue("replay.replies_200"), m.replies_200);
  EXPECT_EQ(registry.CounterValue("replay.replies_304"), m.replies_304);
  EXPECT_EQ(registry.CounterValue("replay.local_hits"), m.local_hits);
  EXPECT_EQ(registry.CounterValue("replay.cache_hits"), m.cache_hits());
  EXPECT_EQ(registry.CounterValue("replay.requests_issued"),
            m.requests_issued);
  // Component registries ride along under their prefixes.
  EXPECT_EQ(registry.CounterValue("accelerator.requests"),
            m.get_requests + m.ims_requests);
  EXPECT_GT(registry.CounterValue("network.messages_delivered"), 0u);
  // And the dump itself is stable: two identical runs, byte-identical JSON
  // once the one host-timing gauge is masked (the registry's analogue of
  // SameSimulation() excluding host_seconds).
  obs::MetricsRegistry again;
  ReplayConfig config2 = MakeReplayConfig(
      Table3Experiments()[0], core::Protocol::kInvalidation, trace);
  config2.metrics = &again;
  RunReplay(config2);
  registry.SetGauge("replay.host_seconds", 0.0);
  again.SetGauge("replay.host_seconds", 0.0);
  std::ostringstream dump1, dump2;
  registry.WriteJson(dump1);
  again.WriteJson(dump2);
  EXPECT_EQ(dump1.str(), dump2.str());
}

}  // namespace
}  // namespace webcc::replay
