#include "core/consistency/policy.h"

#include "core/adaptive_ttl.h"
#include "core/lease.h"
#include "http/proxy_cache.h"
#include "util/check.h"

namespace webcc::core::consistency {

// EntryMeta fields are copied straight from http::CacheEntry; the sentinels
// must agree so no translation layer is needed.
static_assert(kNeverExpires == http::kNeverExpires,
              "consistency kernel and proxy cache disagree on the "
              "never-expires sentinel");

Time ConsistencyPolicy::OnPcvValid(const EntryMeta&, Time) const {
  // Policies without piggyback validation never see PCV verdicts.
  WEBCC_CHECK_MSG(false, "OnPcvValid on a non-PCV policy");
  return kNeverExpires;
}

namespace {

// Replies carry net::kNoLease when the server granted no lease (TTL-family
// origins, or the invalidation protocol with leases off, whose promise to
// invalidate is unbounded). Cached entries store that as "never expires".
Time LeaseExpiryFromReply(Time lease_until) {
  return lease_until == net::kNoLease ? kNeverExpires : lease_until;
}

// --- the adaptive-TTL family (Alex protocol §3.1; PCV/PSI ride on it) --------

class TtlFamilyPolicy : public ConsistencyPolicy {
 public:
  explicit TtlFamilyPolicy(const AdaptiveTtlConfig& ttl) : ttl_(ttl) {}

  HitDecision OnHit(const EntryMeta& entry, Time now) const override {
    if (!entry.questionable && now < entry.ttl_expires) {
      return {HitAction::kServeLocal, false};
    }
    return {HitAction::kValidate, false};
  }

  InsertDecision OnMissReply(const ReplyMeta& reply, Time now) const override {
    return {AdaptiveTtlExpiry(ttl_, now, reply.last_modified),
            LeaseExpiryFromReply(reply.lease_until)};
  }

  ValidateDecision OnValidateReply(const ReplyMeta& reply,
                                   Time now) const override {
    ValidateDecision decision;
    decision.set_ttl = true;
    decision.ttl_expires = AdaptiveTtlExpiry(ttl_, now, reply.last_modified);
    // A TTL-family origin grants no leases; the branch exists so a lease a
    // server does stamp (e.g. a shared deployment) is not silently dropped.
    if (reply.lease_until != net::kNoLease) {
      decision.set_lease = true;
      decision.lease_expires = reply.lease_until;
    }
    return decision;
  }

  WriteDecision OnWrite() const override { return {}; }

 protected:
  const AdaptiveTtlConfig ttl_;
};

class AdaptiveTtlPolicy final : public TtlFamilyPolicy {
 public:
  using TtlFamilyPolicy::TtlFamilyPolicy;
  Protocol protocol() const override { return Protocol::kAdaptiveTtl; }
  const Traits& traits() const override {
    static constexpr Traits kTraits{.ttl_based = true};
    return kTraits;
  }
};

class PiggybackValidationPolicy final : public TtlFamilyPolicy {
 public:
  using TtlFamilyPolicy::TtlFamilyPolicy;
  Protocol protocol() const override {
    return Protocol::kPiggybackValidation;
  }
  const Traits& traits() const override {
    static constexpr Traits kTraits{.piggyback_validation = true,
                                    .ttl_based = true};
    return kTraits;
  }
  Time OnPcvValid(const EntryMeta& entry, Time now) const override {
    // A bulk validation is as good as a 304: the TTL clock restarts from
    // the entry's (unchanged) last-modified age.
    return AdaptiveTtlExpiry(ttl_, now, entry.last_modified);
  }
};

class PiggybackInvalidationPolicy final : public TtlFamilyPolicy {
 public:
  using TtlFamilyPolicy::TtlFamilyPolicy;
  Protocol protocol() const override {
    return Protocol::kPiggybackInvalidation;
  }
  const Traits& traits() const override {
    static constexpr Traits kTraits{.piggyback_invalidation = true,
                                    .ttl_based = true};
    return kTraits;
  }
};

// --- poll-every-time (§3.2) --------------------------------------------------

class PollEveryTimePolicy final : public ConsistencyPolicy {
 public:
  Protocol protocol() const override { return Protocol::kPollEveryTime; }
  const Traits& traits() const override {
    static constexpr Traits kTraits{};
    return kTraits;
  }

  HitDecision OnHit(const EntryMeta&, Time) const override {
    // Strong consistency by brute force: every hit validates.
    return {HitAction::kValidate, false};
  }

  InsertDecision OnMissReply(const ReplyMeta& reply, Time) const override {
    return {kNeverExpires, LeaseExpiryFromReply(reply.lease_until)};
  }

  ValidateDecision OnValidateReply(const ReplyMeta& reply,
                                   Time) const override {
    ValidateDecision decision;
    if (reply.lease_until != net::kNoLease) {
      decision.set_lease = true;
      decision.lease_expires = reply.lease_until;
    }
    return decision;
  }

  WriteDecision OnWrite() const override { return {}; }
};

// --- invalidation (§3.3, leases §6) ------------------------------------------

class InvalidationPolicy final : public ConsistencyPolicy {
 public:
  Protocol protocol() const override { return Protocol::kInvalidation; }
  const Traits& traits() const override {
    static constexpr Traits kTraits{.invalidation_callbacks = true};
    return kTraits;
  }

  HitDecision OnHit(const EntryMeta& entry, Time now) const override {
    // Half-open [grant, expiry): at the exact expiry instant the copy must
    // be revalidated (see core::LeaseActive).
    const bool lease_ok = LeaseActive(entry.lease_expires, now);
    if (!entry.questionable && lease_ok) {
      return {HitAction::kServeLocal, false};
    }
    return {HitAction::kValidate, !entry.questionable && !lease_ok};
  }

  InsertDecision OnMissReply(const ReplyMeta& reply, Time) const override {
    return {kNeverExpires, LeaseExpiryFromReply(reply.lease_until)};
  }

  ValidateDecision OnValidateReply(const ReplyMeta& reply,
                                   Time) const override {
    ValidateDecision decision;
    decision.set_lease = true;
    // kNoLease means leases are off: the server promises an INVALIDATE
    // forever, so the renewed copy never lapses on its own.
    decision.lease_expires = LeaseExpiryFromReply(reply.lease_until);
    return decision;
  }

  WriteDecision OnWrite() const override {
    return {.fan_out_invalidations = true};
  }
};

}  // namespace

std::unique_ptr<const ConsistencyPolicy> MakePolicy(
    Protocol protocol, const AdaptiveTtlConfig& ttl) {
  switch (protocol) {
    case Protocol::kAdaptiveTtl:
      return std::make_unique<AdaptiveTtlPolicy>(ttl);
    case Protocol::kPollEveryTime:
      return std::make_unique<PollEveryTimePolicy>();
    case Protocol::kInvalidation:
      return std::make_unique<InvalidationPolicy>();
    case Protocol::kPiggybackValidation:
      return std::make_unique<PiggybackValidationPolicy>(ttl);
    case Protocol::kPiggybackInvalidation:
      return std::make_unique<PiggybackInvalidationPolicy>(ttl);
  }
  WEBCC_CHECK_MSG(false, "unknown protocol");
  return nullptr;
}

}  // namespace webcc::core::consistency
