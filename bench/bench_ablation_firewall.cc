// Ablation A5: per-client caches vs a shared firewall proxy (Section 7).
//
// The paper replays with separate per-client caches ("in reality client
// sites do not share caches") but closes by arguing that invalidation
// should run between the server and the firewall proxy, which then serves
// everyone behind it. This ablation compares the two deployments: sharing
// multiplies the hit ratio and collapses the server's invalidation targets
// to one per proxy.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Ablation: per-client caches vs shared firewall proxies "
              "(SASK, 14-day lifetime) ===\n\n");

  const replay::ExperimentSpec spec = replay::Table3Experiments()[1];
  const trace::Trace& trace = bench::TraceFor(spec.trace);

  stats::Table table({"", "per-client (paper)", "shared proxy (firewall)"});
  std::vector<replay::ReplayMetrics> runs;
  for (const bool shared : {false, true}) {
    replay::ReplayConfig config =
        replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
    config.shared_proxy_cache = shared;
    runs.push_back(replay::RunReplay(config));
  }

  const auto row = [&table, &runs](const std::string& label, auto get) {
    table.AddRow({label, get(runs[0]), get(runs[1])});
  };
  row("Cache hits", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.cache_hits()));
  });
  row("File transfers", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.replies_200));
  });
  row("Total messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("Message bytes", [](const auto& m) {
    return util::HumanBytes(m.message_bytes);
  });
  row("Invalidations sent", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.invalidations_sent));
  });
  row("Site-list entries (end)", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.sitelist_entries));
  });
  row("Site-list storage", [](const auto& m) {
    return util::HumanBytes(m.sitelist_storage_bytes);
  });
  row("Max fan-out time", [](const auto& m) {
    return util::Fixed(m.invalidation_time_ms.max() / 1000.0, 2) + " s";
  });
  row("Server CPU", [](const auto& m) {
    return util::Fixed(m.server_cpu_utilization * 100, 1) + "%";
  });
  row("Strong violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Sharing turns every cross-client re-request into a proxy hit, so\n"
      "transfers and server load fall, and the accelerator only ever tracks\n"
      "a handful of proxy sites — site lists and fan-out delays become\n"
      "trivial. This is why the paper prescribes the firewall-proxy\n"
      "deployment for invalidation at scale.\n");
  return 0;
}
