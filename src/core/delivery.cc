#include "core/delivery.h"

#include "core/lease.h"

namespace webcc::core {

void WriteDelivery::AddTarget(std::string_view site, Time lease_until) {
  auto [it, inserted] = targets_.try_emplace(std::string(site));
  if (inserted) {
    it->second.lease_until = lease_until;
    ++outstanding_;
    return;
  }
  if (it->second.resolved) return;  // already settled; nothing to extend
  // Keep the later expiry: the site re-registered with a fresher lease.
  if (it->second.lease_until != net::kNoLease &&
      (lease_until == net::kNoLease || lease_until > it->second.lease_until)) {
    it->second.lease_until = lease_until;
  }
}

bool WriteDelivery::Resolve(std::string_view site, bool by_expiry) {
  const auto it = targets_.find(site);
  if (it == targets_.end() || it->second.resolved) return false;
  it->second.resolved = true;
  if (by_expiry) any_expired_ = true;
  --outstanding_;
  return outstanding_ == 0;
}

bool WriteDelivery::Ack(std::string_view site) {
  return Resolve(site, /*by_expiry=*/false);
}

bool WriteDelivery::MarkDead(std::string_view site) {
  return Resolve(site, /*by_expiry=*/true);
}

bool WriteDelivery::ExpireLeases(Time now) {
  bool resolved_all = false;
  for (auto& [site, target] : targets_) {
    if (target.resolved) continue;
    if (!LeaseActive(target.lease_until, now)) {
      target.resolved = true;
      any_expired_ = true;
      --outstanding_;
      if (outstanding_ == 0) resolved_all = true;
    }
  }
  return resolved_all;
}

WriteDelivery::Completion WriteDelivery::completion() const {
  if (outstanding_ != 0) return Completion::kPending;
  if (targets_.empty()) return Completion::kNoTargets;
  return any_expired_ ? Completion::kLeasesExpired : Completion::kAllAcked;
}

Time WriteDelivery::NextExpiry() const {
  Time next = net::kNoLease;
  for (const auto& [site, target] : targets_) {
    if (target.resolved || target.lease_until == net::kNoLease) continue;
    if (next == net::kNoLease || target.lease_until < next) {
      next = target.lease_until;
    }
  }
  return next;
}

}  // namespace webcc::core
