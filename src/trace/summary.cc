#include "trace/summary.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace webcc::trace {

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  summary.duration = trace.duration;
  summary.total_requests = trace.records.size();

  // Distinct clients per requested document.
  std::vector<std::unordered_set<ClientId>> sites(trace.documents.size());
  std::unordered_set<std::uint64_t> pairs;
  pairs.reserve(trace.records.size());
  std::uint64_t repeats = 0;
  for (const TraceRecord& record : trace.records) {
    sites[record.doc].insert(record.client);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(record.client) << 32) | record.doc;
    if (!pairs.insert(key).second) ++repeats;
  }

  std::uint64_t requested_files = 0;
  std::uint64_t popularity_sum = 0;
  double size_sum = 0.0;
  for (DocId d = 0; d < trace.documents.size(); ++d) {
    if (sites[d].empty()) continue;
    ++requested_files;
    popularity_sum += sites[d].size();
    summary.max_popularity =
        std::max<std::uint64_t>(summary.max_popularity, sites[d].size());
    size_sum += static_cast<double>(trace.documents[d].size_bytes);
  }
  summary.num_files = requested_files;
  if (requested_files > 0) {
    summary.avg_file_size_bytes = size_sum / static_cast<double>(requested_files);
    summary.avg_popularity =
        static_cast<double>(popularity_sum) / static_cast<double>(requested_files);
  }
  if (summary.total_requests > 0) {
    summary.repeat_request_fraction =
        static_cast<double>(repeats) / static_cast<double>(summary.total_requests);
  }
  return summary;
}

std::string ValidateTrace(const Trace& trace) {
  if (trace.duration <= 0) return "non-positive duration";
  Time previous = 0;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    const TraceRecord& record = trace.records[i];
    if (record.doc >= trace.documents.size()) {
      return "record " + std::to_string(i) + ": document index out of range";
    }
    if (record.client >= trace.clients.size()) {
      return "record " + std::to_string(i) + ": client index out of range";
    }
    if (record.timestamp < previous) {
      return "record " + std::to_string(i) + ": timestamps not sorted";
    }
    if (record.timestamp < 0 || record.timestamp > trace.duration) {
      return "record " + std::to_string(i) + ": timestamp outside duration";
    }
    previous = record.timestamp;
  }
  for (std::size_t d = 0; d < trace.documents.size(); ++d) {
    if (trace.documents[d].path.empty()) {
      return "document " + std::to_string(d) + ": empty path";
    }
  }
  return "";
}

std::string Trace::Validate() const { return ValidateTrace(*this); }

}  // namespace webcc::trace
