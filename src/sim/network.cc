#include "sim/network.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace webcc::sim {

void Network::Partition(NodeId a, NodeId b) {
  WEBCC_CHECK(a != b);
  const auto [lo, hi] = Ordered(a, b);
  partitions_.insert({lo, hi});
  obs::Emit(trace_sink_, {.type = obs::EventType::kPartition,
                          .at = sim_.now(),
                          .detail = static_cast<std::int64_t>(lo) * 1000 + hi});
}

void Network::Heal(NodeId a, NodeId b) {
  const auto [lo, hi] = Ordered(a, b);
  if (partitions_.erase({lo, hi}) > 0) {
    obs::Emit(trace_sink_,
              {.type = obs::EventType::kPartitionHeal,
               .at = sim_.now(),
               .detail = static_cast<std::int64_t>(lo) * 1000 + hi});
  }
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(Ordered(a, b)) != 0;
}

void Network::SetNodeUp(NodeId node, bool up) {
  if (up) {
    down_nodes_.erase(node);
  } else {
    down_nodes_.insert(node);
  }
}

bool Network::IsNodeUp(NodeId node) const {
  return down_nodes_.count(node) == 0;
}

bool Network::Reachable(NodeId from, NodeId to) const {
  return IsNodeUp(from) && IsNodeUp(to) && !IsPartitioned(from, to);
}

Time Network::TransferDelay(std::uint64_t bytes) const {
  const double wire_bytes =
      static_cast<double>(bytes + config_.per_message_overhead_bytes);
  const double serialization_s = wire_bytes * 8.0 / config_.bandwidth_bps;
  return config_.one_way_latency + FromSeconds(serialization_s);
}

void Network::SendReliable(NodeId from, NodeId to, std::uint64_t bytes,
                           DeliverFn on_deliver, ReliableDoneFn done,
                           int max_retries) {
  TryReliable(from, to, bytes, std::move(on_deliver), std::move(done),
              max_retries, config_.retry_interval);
}

Time Network::NextRetryInterval(Time current) const {
  if (config_.retry_backoff <= 1.0) return current;
  const double scaled =
      static_cast<double>(current) * config_.retry_backoff;
  const double cap = static_cast<double>(config_.retry_max_interval);
  return static_cast<Time>(scaled < cap ? scaled : cap);
}

void Network::TryReliable(NodeId from, NodeId to, std::uint64_t bytes,
                          DeliverFn on_deliver, ReliableDoneFn done,
                          int retries_left, Time current_interval) {
  if (!IsNodeUp(from)) {
    // The sender itself died; its pending sends evaporate with it.
    return;
  }
  if (!IsNodeUp(to)) {
    // Connection refused: surface immediately, no retry. The paper's
    // recovery path (mark-all-questionable at the proxy) covers safety.
    ++messages_dropped_;
    if (done) done(SendResult::kRefused, sim_.now());
    return;
  }
  // Injected loss on a reliable link models a lost TCP segment: the
  // connection is not torn down, the sender just retransmits after the
  // current retry interval. No duplication on this path — TCP sequence
  // numbers discard duplicate segments before they reach the application.
  bool segment_lost = false;
  Time extra_delay = 0;
  if (!IsPartitioned(from, to) && injector_ != nullptr) {
    const Perturbation fault = injector_->Perturb(from, to);
    if (fault.drop) {
      RecordInjectedDrop(from, to);
      segment_lost = true;
    } else if (fault.extra_delay > 0) {
      RecordInjectedDelay(from, to, fault.extra_delay);
      extra_delay = fault.extra_delay;
    }
  }
  if (IsPartitioned(from, to) || segment_lost) {
    if (retries_left == 0) {
      ++messages_dropped_;
      if (done) done(SendResult::kGaveUp, sim_.now());
      return;
    }
    ++retries_;
    const int next = retries_left > 0 ? retries_left - 1 : -1;
    const Time next_interval = NextRetryInterval(current_interval);
    sim_.After(current_interval,
               [this, from, to, bytes, on_deliver = std::move(on_deliver),
                done = std::move(done), next, next_interval]() mutable {
                 TryReliable(from, to, bytes, std::move(on_deliver),
                             std::move(done), next, next_interval);
               });
    return;
  }
  ++messages_delivered_;
  bytes_delivered_ += bytes;
  const Time delivery = sim_.now() + TransferDelay(bytes) + extra_delay;
  sim_.At(delivery, std::move(on_deliver));
  if (done) done(SendResult::kDelivered, delivery);
}

void Network::RecordInjectedDrop(NodeId from, NodeId to) {
  ++injected_drops_;
  obs::Emit(trace_sink_,
            {.type = obs::EventType::kLinkDrop,
             .at = sim_.now(),
             .detail = static_cast<std::int64_t>(from) * 1000 + to});
}

void Network::RecordInjectedDup(NodeId from, NodeId to) {
  ++injected_dups_;
  obs::Emit(trace_sink_,
            {.type = obs::EventType::kLinkDup,
             .at = sim_.now(),
             .detail = static_cast<std::int64_t>(from) * 1000 + to});
}

void Network::RecordInjectedDelay(NodeId from, NodeId to, Time extra) {
  ++injected_delays_;
  (void)from;
  (void)to;
  obs::Emit(trace_sink_, {.type = obs::EventType::kLinkDelay,
                          .at = sim_.now(),
                          .detail = static_cast<std::int64_t>(extra)});
}

void Network::ExportMetrics(obs::MetricsRegistry& registry,
                            std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("messages_delivered"), messages_delivered_);
  registry.SetCounter(name("bytes_delivered"), bytes_delivered_);
  registry.SetCounter(name("messages_dropped"), messages_dropped_);
  registry.SetCounter(name("retries"), retries_);
  registry.SetCounter(name("partitions_active"), partitions_.size());
  registry.SetCounter(name("injected_drops"), injected_drops_);
  registry.SetCounter(name("injected_dups"), injected_dups_);
  registry.SetCounter(name("injected_delays"), injected_delays_);
}

}  // namespace webcc::sim
