// Single-server FIFO service station.
//
// Models a serially shared resource — the pseudo-server's CPU or its disk.
// Jobs queue in arrival order; each occupies the station for its service
// cost. Completion latency therefore responds to load, which is what turns
// the paper's protocol differences (polling's extra validations, serialized
// invalidation fan-out) into the latency and utilization differences its
// tables report.
#pragma once

#include <string>

#include "sim/simulator.h"
#include "stats/utilization.h"

namespace webcc::sim {

class FifoStation {
 public:
  FifoStation(Simulator& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  FifoStation(const FifoStation&) = delete;
  FifoStation& operator=(const FifoStation&) = delete;

  // Enqueues a job with the given service cost; `on_complete` (optional)
  // runs when the job finishes. Returns the completion time.
  Time Enqueue(Time cost, Simulator::Action on_complete = nullptr);

  // Earliest time a new job could start service.
  Time busy_until() const { return busy_until_; }

  const std::string& name() const { return name_; }
  stats::Utilization& utilization() { return utilization_; }
  const stats::Utilization& utilization() const { return utilization_; }

 private:
  Simulator& sim_;
  std::string name_;
  Time busy_until_ = 0;
  stats::Utilization utilization_;
};

}  // namespace webcc::sim
