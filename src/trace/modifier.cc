#include "trace/modifier.h"

#include "util/check.h"

namespace webcc::trace {

Time TouchInterval(const ModifierConfig& config) {
  WEBCC_CHECK(config.num_documents > 0);
  WEBCC_CHECK(config.mean_lifetime > 0);
  return config.mean_lifetime / config.num_documents;
}

std::uint64_t ExpectedTouchCount(const ModifierConfig& config) {
  const Time interval = TouchInterval(config);
  if (interval <= 0) return 0;
  return static_cast<std::uint64_t>(config.duration / interval);
}

std::vector<ModEvent> GenerateModifierSchedule(const ModifierConfig& config) {
  const Time interval = TouchInterval(config);
  WEBCC_CHECK_MSG(interval > 0,
                  "mean lifetime too short for the document count");
  util::Rng rng(config.seed);
  std::vector<ModEvent> events;
  for (Time at = interval; at <= config.duration; at += interval) {
    events.push_back(ModEvent{
        at, static_cast<DocId>(rng.NextBelow(config.num_documents))});
  }
  return events;
}

}  // namespace webcc::trace
