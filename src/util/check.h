// Lightweight runtime-check macros.
//
// WEBCC_CHECK fires in every build type (these guard protocol invariants,
// not mere debugging aids); WEBCC_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <string_view>

namespace webcc::util {

// Prints `expr` and `msg` with source location to stderr and aborts.
[[noreturn]] void CheckFailed(std::string_view expr, std::string_view file,
                              int line, std::string_view msg);

}  // namespace webcc::util

#define WEBCC_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) [[unlikely]]                                        \
      ::webcc::util::CheckFailed(#cond, __FILE__, __LINE__, "");     \
  } while (false)

#define WEBCC_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) [[unlikely]]                                        \
      ::webcc::util::CheckFailed(#cond, __FILE__, __LINE__, (msg));  \
  } while (false)

#ifdef NDEBUG
#define WEBCC_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define WEBCC_DCHECK(cond) WEBCC_CHECK(cond)
#endif
