// Samplers for the distributions the workload model needs.
//
// Web-trace modeling standardly uses Zipf-like document popularity,
// heavy-tailed (lognormal body) file sizes and exponential inter-event gaps;
// these samplers are deterministic functions of the supplied Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace webcc::util {

// Zipf(s) over ranks {0, .., n-1}: P(rank k) proportional to 1/(k+1)^s.
// Sampling is by binary search over the precomputed CDF: O(n) setup,
// O(log n) per draw, exact for any s >= 0 (s == 0 degenerates to uniform).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  std::size_t Sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  // Probability mass of a given rank; exposed for calibration and tests.
  double Pmf(std::size_t rank) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

// Exponential with the given mean. Used for inter-arrival and lifetime gaps.
double SampleExponential(Rng& rng, double mean);

// Lognormal parameterized directly by its mean and the sigma of the
// underlying normal (mu is derived). Used for document sizes.
double SampleLognormal(Rng& rng, double mean, double sigma);

// Standard normal via Box-Muller (single value; the pair's twin is dropped
// to keep the sampler stateless).
double SampleStandardNormal(Rng& rng);

// Weighted choice over arbitrary non-negative weights (O(log n) per draw).
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(const std::vector<double>& weights);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace webcc::util
