// Event taxonomy for webcc's structured tracing layer.
//
// Every observable protocol action — a request served, an IMS sent, a lease
// granted, an INVALIDATE moving through its lifecycle — is one TraceEvent,
// stamped with the simulator (or live wall) clock and, where meaningful,
// the trace clock. Emitters pass the strings they already hold; the sink
// interns them so the on-disk form carries dense ids (see trace_sink.h).
//
// The taxonomy is designed to reconcile with the paper's tables: each event
// type that mirrors a ReplayMetrics counter is emitted at exactly the site
// that increments the counter, so `count(events of type T) == counter` holds
// for every replay (DESIGN.md lists the identities).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.h"

namespace webcc::obs {

enum class EventType : std::uint8_t {
  // --- run framing ---------------------------------------------------------
  kRunBegin,    // label = free-form run description (protocol, trace)
  kRunEnd,      // label = one-line outcome summary

  // --- client request path -------------------------------------------------
  kGetSent,         // full GET to the server      == get_requests
  kImsSent,         // If-Modified-Since sent      == ims_requests
                    //   detail: 1 when the IMS exists only because a lease
                    //   lapsed (lease_renewal_ims)
  kRequestServed,   // a client request completed
                    //   detail: ServeKind below
  kRequestTimeout,  // closed loop gave up waiting == request_timeouts
  kReply200,        // a 200 reply was produced    == replies_200
  kReply304,        // a 304 reply was produced    == replies_304
  kStaleHit,        // an outdated version was served == stale_serves
                    //   detail: StaleKind below

  // --- lease lifecycle -----------------------------------------------------
  kLeaseGrant,   // accelerator granted a lease; detail = absolute expiry
  kLeaseExpiry,  // a site-list entry's lease found expired at prune time;
                 //   detail = the expiry that lapsed

  // --- invalidation lifecycle ----------------------------------------------
  kInvalidateGenerated,  // accelerator produced one INVALIDATE
                         //   == invalidations_generated
  kInvalidateDelivered,  // the INVALIDATE reached its proxy
  kInvalidateRefused,    // target proxy down: connection refused
  kInvalidateGaveUp,     // partition outlived the retry budget
  kInvalidateServer,     // server-address INVALIDATE (recovery broadcast)

  // --- cache / infrastructure ----------------------------------------------
  kEviction,       // proxy cache eviction; detail: 1 = expired-first rule,
                   // 2 = oversize rejection, 3 = tier-2 eviction,
                   // 4 = tier-2 expired cleanup
  kModification,   // modifier touched a document == modifications_applied
  kNotify,         // check-in NOTIFY processed   == notifies
  kPartition,      // a link was cut
  kPartitionHeal,  // a link healed

  // --- fault injection / recovery (appended; see src/fault/) ---------------
  kLinkDrop,       // injected message loss on a site pair
  kLinkDelay,      // injected extra latency; detail = added microseconds
  kLinkDup,        // injected duplicate delivery of a datagram
  kNodeCrash,      // a proxy/accelerator/server crashed; site = node name
  kNodeRestart,    // the node came back; site = node name
  kWriteComplete,  // a write's delivery state machine resolved
                   //   detail: WriteCompleteKind below
  kJournalRebuild, // accelerator rebuilt site lists from its journal
                   //   detail: 1 = journal damaged, fell back to broadcast
};

// detail values for kRequestServed.
enum class ServeKind : std::int64_t {
  kLocalHit = 0,   // served from cache, no server contact  == local_hits
  kTransfer = 1,   // 200 body delivered to the client
  kValidated = 2,  // 304 certified the cached copy         == validated_hits
};

// detail values for kStaleHit.
enum class StaleKind : std::int64_t {
  kWeakProtocol = 0,        // TTL-based protocol served stale (expected)
  kInvalidationInFlight = 1,  // write not yet complete: within the contract
  kStrongViolation = 2,       // stale after write completion (must not occur)
};

// detail values for kWriteComplete.
enum class WriteCompleteKind : std::int64_t {
  kAllAcked = 0,       // every targeted site acknowledged the INVALIDATE
  kLeasesExpired = 1,  // stragglers' leases lapsed; write unblocked by bound
  kNoTargets = 2,      // nobody cached the document; trivially complete
};

// Returns the stable wire name ("ims_sent", "lease_grant", ...) used in the
// JSONL `e` field; names never change once released, they are the format.
std::string_view EventTypeName(EventType type);

// Inverse of EventTypeName; returns false for unknown names.
bool ParseEventTypeName(std::string_view name, EventType& out);

// One structured trace event. Emitters fill only the fields the type uses;
// string fields are views valid for the duration of the Emit() call.
struct TraceEvent {
  EventType type = EventType::kRunBegin;
  // Simulator wall clock (replay) or monotonic microseconds (live).
  Time at = 0;
  // Trace-time clock when the event has one; -1 = not applicable.
  Time trace_time = -1;
  // Document URL, when the event concerns one.
  std::string_view url;
  // Site / client identifier, when the event addresses one.
  std::string_view site;
  // Type-specific scalar (ServeKind, StaleKind, lease expiry, mod id...).
  std::int64_t detail = 0;
  // Free-form label (run framing events only).
  std::string_view label;
};

}  // namespace webcc::obs
