#include "obs/metrics.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace webcc::obs {
namespace {

// Doubles print with %.17g: round-trippable and locale-independent, so the
// dump is byte-stable across runs and platforms.
void AppendDouble(std::string& out, double v) {
  std::array<char, 40> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
  if (n > 0) out.append(buf.data(), static_cast<std::size_t>(n));
}

void AppendQuoted(std::string& out, std::string_view name) {
  out += '"';
  // Metric names are code-chosen identifiers (dotted ASCII); no escaping
  // beyond the quote is needed, but guard against it anyway.
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  return &counters_.emplace(std::string(name), Counter{}).first->second;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  return &histograms_.emplace(std::string(name), Histogram{}).first->second;
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return &it->second;
  return &gauges_.emplace(std::string(name), Gauge{}).first->second;
}

void MetricsRegistry::SetCounter(std::string_view name, std::uint64_t value) {
  FindOrCreateCounter(name)->value = value;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  FindOrCreateGauge(name)->value = value;
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.value : 0;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.value : 0.0;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other,
                                std::string_view prefix) {
  std::string name;
  const auto prefixed = [&name, &prefix](const std::string& leaf) -> const std::string& {
    name.assign(prefix);
    name += leaf;
    return name;
  };
  for (const auto& [leaf, counter] : other.counters_) {
    FindOrCreateCounter(prefixed(leaf))->value += counter.value;
  }
  for (const auto& [leaf, histogram] : other.histograms_) {
    FindOrCreateHistogram(prefixed(leaf))->samples.Merge(histogram.samples);
  }
  for (const auto& [leaf, gauge] : other.gauges_) {
    FindOrCreateGauge(prefixed(leaf))->value = gauge.value;
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  // Merge the three sorted maps by key so the object's keys are globally
  // sorted regardless of metric kind.
  std::string body = "{\n";
  auto ci = counters_.begin();
  auto hi = histograms_.begin();
  auto gi = gauges_.begin();
  bool first = true;
  while (ci != counters_.end() || hi != histograms_.end() ||
         gi != gauges_.end()) {
    // Pick the lexicographically smallest pending key.
    enum { kCounter, kHistogram, kGauge } which = kCounter;
    const std::string* key = nullptr;
    if (ci != counters_.end()) {
      key = &ci->first;
      which = kCounter;
    }
    if (hi != histograms_.end() && (key == nullptr || hi->first < *key)) {
      key = &hi->first;
      which = kHistogram;
    }
    if (gi != gauges_.end() && (key == nullptr || gi->first < *key)) {
      key = &gi->first;
      which = kGauge;
    }
    if (!first) body += ",\n";
    first = false;
    body += "  ";
    AppendQuoted(body, *key);
    body += ": ";
    switch (which) {
      case kCounter:
        body += std::to_string(ci->second.value);
        ++ci;
        break;
      case kGauge:
        AppendDouble(body, gi->second.value);
        ++gi;
        break;
      case kHistogram: {
        const stats::LatencyStats& s = hi->second.samples;
        body += "{\"count\":";
        body += std::to_string(s.count());
        body += ",\"mean\":";
        AppendDouble(body, s.mean());
        body += ",\"min\":";
        AppendDouble(body, s.min());
        body += ",\"max\":";
        AppendDouble(body, s.max());
        body += ",\"p50\":";
        AppendDouble(body, s.Percentile(50));
        body += ",\"p95\":";
        AppendDouble(body, s.Percentile(95));
        body += ",\"p99\":";
        AppendDouble(body, s.Percentile(99));
        body += '}';
        ++hi;
        break;
      }
    }
  }
  body += "\n}\n";
  out << body;
}

}  // namespace webcc::obs
