// The `webcc` command-line tool: workload generation, trace summaries,
// browser-cache filtering, and consistency-experiment replays. All logic
// lives in src/cli (tested); this is only the dispatcher.
#include <iostream>

#include "cli/commands.h"
#include "cli/flags.h"

int main(int argc, char** argv) {
  std::string error;
  const auto flags = webcc::cli::Flags::Parse(argc, argv, &error);
  if (!flags.has_value()) {
    std::cerr << "error: " << error << "\n";
    webcc::cli::PrintUsage(std::cerr);
    return 2;
  }
  return webcc::cli::RunCli(*flags, std::cout, std::cerr);
}
