#include "replay/metrics.h"

#include <cstdio>

#include "util/format.h"

namespace webcc::replay {

std::string ReplayMetrics::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu hits=%llu (local=%llu validated=%llu) msgs=%llu "
      "bytes=%s lat(avg/min/max ms)=%.1f/%.1f/%.1f cpu=%.1f%% stale=%llu "
      "violations=%llu",
      static_cast<unsigned long long>(requests_issued),
      static_cast<unsigned long long>(cache_hits()),
      static_cast<unsigned long long>(local_hits),
      static_cast<unsigned long long>(validated_hits),
      static_cast<unsigned long long>(total_messages()),
      util::HumanBytes(message_bytes).c_str(), latency_ms.mean(),
      latency_ms.min(), latency_ms.max(), server_cpu_utilization * 100.0,
      static_cast<unsigned long long>(stale_serves),
      static_cast<unsigned long long>(strong_violations));
  return buf;
}

}  // namespace webcc::replay
