// Death tests for the runtime-check macros: the engine relies on them to
// guard protocol invariants, so their firing behaviour is part of the
// contract.
#include <gtest/gtest.h>

#include "util/check.h"

namespace webcc::util {
namespace {

TEST(CheckDeathTest, FiresOnFalseCondition) {
  EXPECT_DEATH(WEBCC_CHECK(1 == 2), "check failed: 1 == 2");
}

TEST(CheckDeathTest, MessageIncludedInOutput) {
  EXPECT_DEATH(WEBCC_CHECK_MSG(false, "the lease must be positive"),
               "the lease must be positive");
}

TEST(CheckDeathTest, PassingConditionIsSilent) {
  WEBCC_CHECK(2 + 2 == 4);
  WEBCC_CHECK_MSG(true, "never printed");
  SUCCEED();
}

TEST(CheckDeathTest, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  WEBCC_CHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(WEBCC_DCHECK(false), "check failed");
}
#endif

}  // namespace
}  // namespace webcc::util
