// Regenerates Table 5: invalidation costs for the six replay runs —
// site-list storage, site-list lengths at modification time, and the time
// the accelerator spends pushing all invalidations for one modification.
//
// Also runs the million-site lease-scale sweep (ROADMAP item 4): registers
// 10^4/10^5/10^6 leased sites into the timer-wheel-indexed table and into a
// baseline replicating the pre-wheel layout (per-URL unordered_map site
// lists, full-scan prune), then drains both through identical prune
// schedules. Records `prune_ns` and `bytes_per_entry` as top-level
// BENCH_farm.json keys and fails (exit 1) unless at 10^6 sites the wheel
// prunes >= 10x faster than the scan and holds fewer bytes per entry.
// `--scale-only` skips the Table 5 replays (the CI gate runs just the sweep).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/invalidation_table.h"
#include "core/lease.h"
#include "util/check.h"

using namespace webcc;

namespace {

// ---------------------------------------------------------------------------
// Scan baseline: the table layout this PR replaced. Per-URL unordered_map
// site lists keyed on dense ids, pruned by a full scan that visits every
// entry and erases the lapsed ones in place. Kept here as the bench's
// control arm; production code routes expiry through core::TimerWheel
// (the webcc_lint scan-prune rule flags this idiom inside src/).
struct ScanBaseline {
  std::unordered_map<core::InternId, std::unordered_map<core::InternId, Time>>
      lists;
  std::size_t entries = 0;

  void Restore(core::InternId url, core::InternId site, Time lease_until) {
    auto [it, inserted] = lists[url].emplace(site, lease_until);
    if (inserted) {
      ++entries;
    } else if (it->second != net::kNoLease && lease_until > it->second) {
      it->second = lease_until;  // refresh, never shorten
    }
  }

  std::size_t Prune(Time now) {
    std::size_t pruned = 0;
    for (auto url_it = lists.begin(); url_it != lists.end();) {
      auto& list = url_it->second;
      for (auto it = list.begin(); it != list.end();) {
        if (core::LeaseActive(it->second, now)) {
          ++it;
        } else {
          it = list.erase(it);
          ++pruned;
          --entries;
        }
      }
      url_it = list.empty() ? lists.erase(url_it) : std::next(url_it);
    }
    return pruned;
  }

  // Analytic heap model for the node-based layout: each inner entry is a
  // 24-byte hash node (next pointer + padded (id, lease) pair) that malloc
  // rounds up to a 32-byte chunk, plus the live bucket arrays and a 64-byte
  // outer node (link + key + inner-map header) per URL.
  std::uint64_t MemoryFootprintBytes() const {
    std::uint64_t bytes = lists.bucket_count() * 8;
    for (const auto& [url, list] : lists) {
      bytes += 64 + list.bucket_count() * 8 +
               static_cast<std::uint64_t>(list.size()) * 32;
    }
    return bytes;
  }
};

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct ScaleResult {
  std::size_t sites = 0;
  std::uint64_t wheel_prune_ns = 0;
  std::uint64_t scan_prune_ns = 0;
  double wheel_bytes_per_entry = 0.0;
  double scan_bytes_per_entry = 0.0;

  double speedup() const {
    return wheel_prune_ns == 0
               ? 0.0
               : static_cast<double>(scan_prune_ns) /
                     static_cast<double>(wheel_prune_ns);
  }
};

constexpr int kPruneSteps = 64;

ScaleResult RunScale(std::size_t n_sites) {
  using Clock = std::chrono::steady_clock;
  const std::size_t n_urls = n_sites < 1000 ? 1 : n_sites / 1000;

  core::LeaseConfig lease;
  lease.mode = core::LeaseMode::kFixed;
  lease.duration = kHour;
  core::InvalidationTable table(lease);
  ScanBaseline baseline;

  // One unique site per entry, ~1000 sites per URL, expiries spread
  // uniformly over one lease span so every prune step retires a slice.
  std::uint64_t rng = 0x5eed;
  std::string url;
  std::string site;
  for (std::size_t i = 0; i < n_sites; ++i) {
    const std::size_t url_index = i % n_urls;
    url = "/doc/";
    url += std::to_string(url_index);
    site = "site";
    site += std::to_string(i);
    const Time expiry =
        kMinute + static_cast<Time>(SplitMix64(rng) % static_cast<std::uint64_t>(kHour));
    table.Restore(url, site, expiry, /*now=*/0);
    baseline.Restore(static_cast<core::InternId>(url_index),
                     static_cast<core::InternId>(i), expiry);
  }
  WEBCC_CHECK(table.TotalEntries() == n_sites);
  WEBCC_CHECK(baseline.entries == n_sites);

  ScaleResult result;
  result.sites = n_sites;
  result.wheel_bytes_per_entry =
      static_cast<double>(table.MemoryFootprintBytes()) /
      static_cast<double>(n_sites);
  result.scan_bytes_per_entry =
      static_cast<double>(baseline.MemoryFootprintBytes()) /
      static_cast<double>(n_sites);

  // Identical prune schedules: kPruneSteps checkpoints spread over the
  // lease span, the last one past every expiry so both drains end empty.
  std::size_t wheel_pruned = 0;
  std::size_t scan_pruned = 0;
  {
    const auto start = Clock::now();
    for (int k = 1; k <= kPruneSteps; ++k) {
      wheel_pruned += table.PruneExpired(kMinute + (k * kHour) / kPruneSteps);
    }
    result.wheel_prune_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }
  {
    const auto start = Clock::now();
    for (int k = 1; k <= kPruneSteps; ++k) {
      scan_pruned += baseline.Prune(kMinute + (k * kHour) / kPruneSteps);
    }
    result.scan_prune_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
  }
  WEBCC_CHECK(wheel_pruned == n_sites && table.TotalEntries() == 0);
  WEBCC_CHECK(scan_pruned == n_sites && baseline.entries == 0);
  WEBCC_CHECK(table.leases_expired() == n_sites);
  return result;
}

// Runs the sweep, prints the comparison table, writes the `prune_ns` and
// `bytes_per_entry` keys, and returns whether both 10^6 gates hold.
bool RunLeaseScaleSweep() {
  std::printf("=== Lease-scale sweep: timer-wheel prune vs full scan ===\n\n");

  const std::size_t kScales[] = {10'000, 100'000, 1'000'000};
  std::vector<ScaleResult> results;
  for (const std::size_t n : kScales) results.push_back(RunScale(n));

  stats::Table table({"Sites", "Wheel prune", "Scan prune", "Speedup",
                      "Wheel B/entry", "Scan B/entry"});
  for (const ScaleResult& r : results) {
    table.AddRow({util::WithCommas(static_cast<std::int64_t>(r.sites)),
                  util::Fixed(static_cast<double>(r.wheel_prune_ns) / 1e6, 2) +
                      " ms",
                  util::Fixed(static_cast<double>(r.scan_prune_ns) / 1e6, 2) +
                      " ms",
                  util::Fixed(r.speedup(), 1) + "x",
                  util::Fixed(r.wheel_bytes_per_entry, 1),
                  util::Fixed(r.scan_bytes_per_entry, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  const ScaleResult& top = results.back();
  const bool speed_pass = top.speedup() >= 10.0;
  const bool bytes_pass = top.wheel_bytes_per_entry < top.scan_bytes_per_entry;
  std::printf(
      "gate @ 10^6 sites: speedup %.1fx (need >= 10x) %s, bytes/entry "
      "%.1f wheel vs %.1f scan %s\n\n",
      top.speedup(), speed_pass ? "PASS" : "FAIL", top.wheel_bytes_per_entry,
      top.scan_bytes_per_entry, bytes_pass ? "PASS" : "FAIL");

  const auto scale_json = [&](auto per_scale) {
    std::string json = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i) json += ", ";
      json += per_scale(results[i]);
    }
    json += "]";
    return json;
  };

  std::string prune_json = "{\"prune_steps\": ";
  prune_json += std::to_string(kPruneSteps);
  prune_json += ", \"scales\": ";
  prune_json += scale_json([](const ScaleResult& r) {
    std::string s = "{\"sites\": ";
    s += std::to_string(r.sites);
    s += ", \"wheel_ns\": ";
    s += std::to_string(r.wheel_prune_ns);
    s += ", \"scan_ns\": ";
    s += std::to_string(r.scan_prune_ns);
    s += ", \"speedup\": ";
    s += util::Fixed(r.speedup(), 2);
    s += "}";
    return s;
  });
  prune_json += ", \"speedup_at_1e6\": ";
  prune_json += util::Fixed(top.speedup(), 2);
  prune_json += ", \"min_speedup_required\": 10.0, \"pass\": ";
  prune_json += speed_pass ? "true" : "false";
  prune_json += "}";
  bench::WriteBenchJsonKey("BENCH_farm.json", "prune_ns", prune_json);

  std::string bytes_json = "{\"scales\": ";
  bytes_json += scale_json([](const ScaleResult& r) {
    std::string s = "{\"sites\": ";
    s += std::to_string(r.sites);
    s += ", \"wheel\": ";
    s += util::Fixed(r.wheel_bytes_per_entry, 2);
    s += ", \"scan\": ";
    s += util::Fixed(r.scan_bytes_per_entry, 2);
    s += "}";
    return s;
  });
  bytes_json += ", \"wheel_at_1e6\": ";
  bytes_json += util::Fixed(top.wheel_bytes_per_entry, 2);
  bytes_json += ", \"scan_at_1e6\": ";
  bytes_json += util::Fixed(top.scan_bytes_per_entry, 2);
  bytes_json += ", \"pass\": ";
  bytes_json += bytes_pass ? "true" : "false";
  bytes_json += "}";
  bench::WriteBenchJsonKey("BENCH_farm.json", "bytes_per_entry", bytes_json);

  return speed_pass && bytes_pass;
}

void PrintTable5() {
  std::printf("=== Table 5: invalidation costs ===\n\n");

  const auto specs = replay::AllTableExperiments();
  // Generate traces serially (TraceFor caches), then farm the six
  // independent invalidation replays across the available cores.
  for (const replay::ExperimentSpec& spec : specs) bench::TraceFor(spec.trace);
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size());
  for (const replay::ExperimentSpec& spec : specs) {
    configs.push_back(replay::MakeReplayConfig(
        spec, core::Protocol::kInvalidation, bench::TraceFor(spec.trace)));
  }
  const std::vector<replay::ReplayMetrics> runs =
      replay::Farm::RunAll(configs);

  std::vector<std::string> headers{"Trace"};
  for (const replay::ExperimentSpec& spec : specs) headers.push_back(spec.id);
  stats::Table table(std::move(headers));

  const auto row = [&](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (std::size_t i = 0; i < runs.size(); ++i) cells.push_back(get(i));
    table.AddRow(std::move(cells));
  };

  row("Storage", [&](std::size_t i) {
    return util::HumanBytes(runs[i].sitelist_storage_bytes);
  });
  row("  (paper)", [&](std::size_t i) {
    return std::string(specs[i].paper.sitelist_storage);
  });
  row("Site-list entries", [&](std::size_t i) {
    return util::WithCommas(
        static_cast<std::int64_t>(runs[i].sitelist_entries));
  });
  row("Avg. SiteList @mod", [&](std::size_t i) {
    return util::Fixed(runs[i].sitelist_avg_len_at_mod, 1);
  });
  row("Max. SiteList @mod", [&](std::size_t i) {
    return util::WithCommas(
        static_cast<std::int64_t>(runs[i].sitelist_max_len_at_mod));
  });
  row("Avg. Inval. Time", [&](std::size_t i) {
    return util::Fixed(runs[i].invalidation_time_ms.mean() / 1000.0, 2) + " s";
  });
  row("Max. Inval. Time", [&](std::size_t i) {
    return util::Fixed(runs[i].invalidation_time_ms.max() / 1000.0, 2) + " s";
  });
  row("Bytes/request", [&](std::size_t i) {
    const auto& trace = bench::TraceFor(specs[i].trace);
    return util::Fixed(static_cast<double>(runs[i].sitelist_storage_bytes) /
                           static_cast<double>(trace.records.size()),
                       1);
  });

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "SDSC(57) is the 25-day-lifetime run, SDSC(576) the 2.5-day run.\n"
      "Site-list statistics are taken over modified documents, as in the\n"
      "paper. The paper observes ~20-30 bytes of site-list storage per\n"
      "request and notes that when more files are modified (SDSC(576)),\n"
      "the chance of hitting a long-listed document — and with it the\n"
      "maximum invalidation time — increases.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool scale_only =
      argc > 1 && std::strcmp(argv[1], "--scale-only") == 0;
  if (!scale_only) PrintTable5();
  const bool pass = RunLeaseScaleSweep();
  return pass ? 0 : 1;
}
