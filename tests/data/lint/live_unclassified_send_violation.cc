// Fixture: naked-send — an outbox drain pushing batched invalidation
// frames through the unclassified one-way helper instead of
// SendOneWayClassified.
bool SendOneWay(unsigned short port, const char* line);

int DrainOutbox(unsigned short port, const char* frame) {
  return SendOneWay(port, frame) ? 0 : 1;
}
