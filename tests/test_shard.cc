// Sharded accelerator tier (ctest label: differential companion): the
// consistent-hash ring's determinism/balance/stability contract, the
// per-shard outbox's coalescing and deterministic drain order, and the
// tier's central promise — the observable decision stream is shard-count
// invariant. Event streams from the core facade, replay decision traces
// for all five protocols, and journal recovery all must be identical at
// 1/2/4/8 shards (the one documented exception: sitelist_storage_bytes,
// which per-shard site interning duplicates).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/hash_ring.h"
#include "core/outbox.h"
#include "core/sharded_accelerator.h"
#include "fault/plan.h"
#include "http/document_store.h"
#include "net/message.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "trace/workload.h"
#include "util/time.h"

namespace webcc {
namespace {

using core::HashRing;
using core::InvalidationOutbox;
using core::ShardedAccelerator;

std::vector<std::string> SampleUrls(std::size_t count) {
  std::vector<std::string> urls;
  urls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    urls.push_back("/docs/page-" + std::to_string(i) + ".html");
  }
  return urls;
}

// --- hash ring --------------------------------------------------------------

TEST(HashRing, DeterministicAcrossInstances) {
  const HashRing a(8);
  const HashRing b(8);
  for (const std::string& url : SampleUrls(500)) {
    EXPECT_EQ(a.ShardOf(url), b.ShardOf(url)) << url;
  }
}

TEST(HashRing, SingleShardMapsEverythingToZero) {
  const HashRing ring(1);
  for (const std::string& url : SampleUrls(100)) {
    EXPECT_EQ(ring.ShardOf(url), 0u);
  }
}

TEST(HashRing, BalancedWithinLooseBoundsAtEightShards) {
  const HashRing ring(8);
  const std::vector<std::string> urls = SampleUrls(4000);
  std::array<std::size_t, 8> counts{};
  for (const std::string& url : urls) counts[ring.ShardOf(url)]++;
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    const double share = static_cast<double>(counts[shard]) / urls.size();
    // Uniform would be 0.125; 64 virtual points keep every shard well away
    // from starvation and from absorbing the ring.
    EXPECT_GT(share, 0.03) << "shard " << shard << " starved";
    EXPECT_LT(share, 0.30) << "shard " << shard << " overloaded";
  }
}

TEST(HashRing, GrowthMovesOnlyCapturedKeysOntoTheNewShard) {
  const HashRing before(4);
  const HashRing after(5);
  const std::vector<std::string> urls = SampleUrls(4000);
  std::size_t moved = 0;
  for (const std::string& url : urls) {
    const std::uint32_t old_shard = before.ShardOf(url);
    const std::uint32_t new_shard = after.ShardOf(url);
    if (old_shard == new_shard) continue;
    ++moved;
    // Consistent hashing: the existing shards' points are unchanged, so a
    // key can only move because a NEW point captured its arc.
    EXPECT_EQ(new_shard, 4u) << url << " moved between old shards";
  }
  // ~1/5 of keys in theory; anything under 40% keeps the bound meaningful.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / urls.size(), 0.4);
}

// --- per-shard outbox -------------------------------------------------------

TEST(Outbox, CoalescesDupWritesIntoOneEntry) {
  InvalidationOutbox outbox;
  EXPECT_FALSE(outbox.Add("site-a", "/x", 11, 100));
  EXPECT_TRUE(outbox.Add("site-a", "/x", 12, 250));  // dup-write: coalesced
  EXPECT_EQ(outbox.pending_urls(), 1u);

  const std::vector<InvalidationOutbox::Batch> batches = outbox.Drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].site, "site-a");
  ASSERT_EQ(batches[0].urls.size(), 1u);
  EXPECT_EQ(batches[0].urls[0], "/x");
  ASSERT_EQ(batches[0].write_ids.size(), 1u);
  EXPECT_EQ(batches[0].write_ids[0], (std::vector<std::uint64_t>{11, 12}));
  EXPECT_EQ(batches[0].oldest_queued, 100);
  EXPECT_TRUE(outbox.empty());
}

TEST(Outbox, RetriedQueueAcksEachWriteOnce) {
  // Regression (ISSUE 7): Add() appended the write id without a dup check,
  // so a sender retry of the same (site, url, write_id) — e.g. after a
  // dropped frame — made the drained batch ack the same delivery machine
  // twice. The retry must coalesce to a no-op.
  InvalidationOutbox outbox;
  EXPECT_FALSE(outbox.Add("site-a", "/x", 11, 100));
  EXPECT_TRUE(outbox.Add("site-a", "/x", 11, 250));  // retry: same write
  EXPECT_TRUE(outbox.Add("site-a", "/x", 12, 300));  // distinct write: kept
  EXPECT_TRUE(outbox.Add("site-a", "/x", 12, 350));  // retry of the second

  const std::vector<InvalidationOutbox::Batch> batches = outbox.Drain();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].write_ids.size(), 1u);
  EXPECT_EQ(batches[0].write_ids[0], (std::vector<std::uint64_t>{11, 12}));
}

TEST(Outbox, DrainsSitesSortedAndUrlsFirstQueued) {
  InvalidationOutbox outbox;
  outbox.Add("zeta", "/b", 1, 10);
  outbox.Add("alpha", "/z", 2, 20);
  outbox.Add("zeta", "/a", 3, 30);
  outbox.Add("alpha", "/a", 4, 40);

  const std::vector<InvalidationOutbox::Batch> batches = outbox.Drain();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].site, "alpha");
  EXPECT_EQ(batches[0].urls, (std::vector<std::string>{"/z", "/a"}));
  EXPECT_EQ(batches[0].oldest_queued, 20);
  EXPECT_EQ(batches[1].site, "zeta");
  EXPECT_EQ(batches[1].urls, (std::vector<std::string>{"/b", "/a"}));
  EXPECT_EQ(batches[1].oldest_queued, 10);
}

TEST(Outbox, ReadyPredicateHoldsUnreachableSites) {
  InvalidationOutbox outbox;
  outbox.Add("reachable", "/a", 1, 10);
  outbox.Add("partitioned", "/b", 2, 20);

  const auto only_reachable = [](const std::string& site) {
    return site == "reachable";
  };
  std::vector<InvalidationOutbox::Batch> batches =
      outbox.Drain(only_reachable);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].site, "reachable");
  EXPECT_FALSE(outbox.empty());
  EXPECT_EQ(outbox.pending_sites(), 1u);

  // The held site keeps coalescing while partitioned: two writes of /b
  // become ONE entry carrying both write ids, delivered after the heal.
  EXPECT_TRUE(outbox.Add("partitioned", "/b", 3, 30));
  batches = outbox.Drain();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].site, "partitioned");
  ASSERT_EQ(batches[0].write_ids.size(), 1u);
  EXPECT_EQ(batches[0].write_ids[0], (std::vector<std::uint64_t>{2, 3}));
  EXPECT_TRUE(outbox.empty());
}

// --- sharded facade: event streams invariant across shard counts ------------

// Drives one fixed request/notify/prune/recover sequence and returns the
// full JSONL event text plus every invalidation the facade handed back.
struct FacadeRun {
  std::string events;
  std::vector<std::string> invalidations;  // "type url site" lines
  std::vector<core::InvalidationTable::Snapshot> entries;
};

void AppendInvalidations(const std::vector<net::Invalidation>& invs,
                         std::vector<std::string>& out) {
  for (const net::Invalidation& inv : invs) {
    out.push_back(std::to_string(static_cast<int>(inv.type)) + " " + inv.url +
                  " " + inv.client_id);
  }
}

FacadeRun DriveFacade(std::uint32_t shards) {
  const std::vector<std::string> urls = SampleUrls(40);
  http::DocumentStore docs;
  for (const std::string& url : urls) docs.Add(url, 1024, 0);

  core::LeaseConfig lease;
  lease.mode = core::LeaseMode::kFixed;
  lease.duration = 10 * kMinute;

  obs::BufferTraceSink sink;
  ShardedAccelerator accel(docs, lease, shards);
  accel.set_trace_sink(&sink);
  accel.EnableJournal(true);

  FacadeRun run;
  Time now = kMinute;
  // Register three sites over every URL, staggered so lease expiries differ.
  for (const char* site : {"site-a", "site-b", "site-c"}) {
    for (const std::string& url : urls) {
      net::Request request;
      request.url = url;
      request.client_id = site;
      request.type = net::MessageType::kGet;
      EXPECT_TRUE(accel.HandleRequest(request, now).has_value()) << url;
    }
    now += kMinute;
  }
  // Touch a quarter of the documents: fan-out.
  for (std::size_t i = 0; i < urls.size(); i += 4) {
    docs.Touch(urls[i], now);
    AppendInvalidations(accel.HandleNotify(net::Notify{urls[i]}, now),
                        run.invalidations);
  }
  // Let the first registration wave's leases lapse and prune.
  now = kMinute + lease.duration + kMinute;
  accel.PruneExpired(now);
  // Crash and journal-rebuild: the targeted recovery pass.
  for (std::size_t i = 1; i < urls.size(); i += 8) docs.Touch(urls[i], now);
  accel.Crash();
  ShardedAccelerator::RecoveryOutcome outcome = accel.RecoverFromJournal(now);
  EXPECT_FALSE(outcome.journal_damaged);
  AppendInvalidations(outcome.invalidations, run.invalidations);

  run.entries = accel.SnapshotEntries();
  run.events = sink.TakeText();
  return run;
}

TEST(ShardedAccelerator, ObservableBehaviorInvariantAcrossShardCounts) {
  const FacadeRun baseline = DriveFacade(1);
  ASSERT_FALSE(baseline.events.empty());
  ASSERT_FALSE(baseline.invalidations.empty());
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const FacadeRun sharded = DriveFacade(shards);
    EXPECT_EQ(sharded.events, baseline.events) << shards << " shards";
    EXPECT_EQ(sharded.invalidations, baseline.invalidations)
        << shards << " shards";
    ASSERT_EQ(sharded.entries.size(), baseline.entries.size())
        << shards << " shards";
    for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
      EXPECT_EQ(sharded.entries[i].url, baseline.entries[i].url);
      EXPECT_EQ(sharded.entries[i].site, baseline.entries[i].site);
      EXPECT_EQ(sharded.entries[i].lease_until, baseline.entries[i].lease_until);
    }
  }
}

TEST(ShardedAccelerator, RecoverBroadcastsUnionOfShardRegistries) {
  const std::vector<std::string> urls = SampleUrls(24);
  http::DocumentStore docs;
  for (const std::string& url : urls) docs.Add(url, 512, 0);

  const auto drive = [&urls, &docs](std::uint32_t shards) {
    ShardedAccelerator accel(docs, core::LeaseConfig{}, shards);
    for (std::size_t i = 0; i < urls.size(); ++i) {
      net::Request request;
      request.url = urls[i];
      request.client_id = "site-" + std::to_string(i % 5);
      request.type = net::MessageType::kGet;
      accel.HandleRequest(request, kMinute);
    }
    accel.Crash();
    std::vector<std::string> sites;
    for (const net::Invalidation& inv : accel.Recover()) {
      EXPECT_EQ(inv.type, net::MessageType::kInvalidateServer);
      sites.push_back(inv.client_id);
    }
    return sites;
  };

  const std::vector<std::string> baseline = drive(1);
  ASSERT_EQ(baseline.size(), 5u);  // deduplicated union
  EXPECT_TRUE(std::is_sorted(baseline.begin(), baseline.end()));
  EXPECT_EQ(drive(4), baseline);
  EXPECT_EQ(drive(8), baseline);
}

// --- replay: serialized decision traces invariant across shard counts -------

const trace::Trace& ShardTrace() {
  static const trace::Trace trace = [] {
    trace::WorkloadConfig config;
    config.duration = kHour;
    config.total_requests = 500;
    config.num_documents = 40;
    config.num_clients = 12;
    config.seed = 11;
    return trace::GenerateTrace(config);
  }();
  return trace;
}

replay::ReplayConfig ShardBaseConfig(core::Protocol protocol) {
  replay::ReplayConfig config;
  config.protocol = protocol;
  config.trace = &ShardTrace();
  config.mean_lifetime = 2 * kHour;  // plenty of writes
  return config;
}

struct ReplayRun {
  replay::ReplayMetrics metrics;
  std::string digest;
};

ReplayRun RunSharded(replay::ReplayConfig config, std::uint32_t shards) {
  obs::BufferTraceSink sink;
  config.accelerator_shards = shards;
  config.trace_sink = &sink;
  ReplayRun run;
  run.metrics = replay::RunReplay(config);
  run.digest = obs::DigestJsonl(sink.TakeText());
  return run;
}

// SameSimulation modulo the one documented exception: per-shard site
// interning makes sitelist_storage_bytes grow with the shard count.
bool SameModuloStorage(const replay::ReplayMetrics& a,
                       replay::ReplayMetrics b) {
  b.sitelist_storage_bytes = a.sitelist_storage_bytes;
  return replay::SameSimulation(a, b);
}

TEST(ShardInvariance, SerializedReplayIdenticalForAllProtocols) {
  const core::Protocol protocols[] = {
      core::Protocol::kAdaptiveTtl,          core::Protocol::kPollEveryTime,
      core::Protocol::kInvalidation,         core::Protocol::kPiggybackValidation,
      core::Protocol::kPiggybackInvalidation};
  for (const core::Protocol protocol : protocols) {
    replay::ReplayConfig config = ShardBaseConfig(protocol);
    if (protocol == core::Protocol::kInvalidation) {
      config.lease.mode = core::LeaseMode::kTwoTier;
      config.lease.duration = 20 * kMinute;
      config.lease.short_duration = 5 * kMinute;
    }
    const ReplayRun baseline = RunSharded(config, 1);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      const ReplayRun sharded = RunSharded(config, shards);
      EXPECT_EQ(sharded.digest, baseline.digest)
          << core::ToString(protocol) << " diverged at " << shards
          << " shards";
      EXPECT_TRUE(SameModuloStorage(baseline.metrics, sharded.metrics))
          << core::ToString(protocol) << " metrics diverged at " << shards
          << " shards";
    }
  }
}

}  // namespace
}  // namespace webcc
