// Unit tests for trace/: synthetic workloads, CLF parsing, modifier
// schedules, presets, summaries.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "trace/clf.h"
#include "trace/filter.h"
#include "trace/modifier.h"
#include "trace/presets.h"
#include "trace/summary.h"
#include "trace/workload.h"

namespace webcc::trace {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.duration = 2 * kHour;
  config.total_requests = 2000;
  config.num_documents = 150;
  config.num_clients = 80;
  config.seed = 17;
  return config;
}

// --- workload generator ---------------------------------------------------------

TEST(Workload, GeneratesExactRequestCount) {
  const Trace trace = GenerateTrace(SmallConfig());
  EXPECT_EQ(trace.records.size(), 2000u);
}

TEST(Workload, GeneratedTraceValidates) {
  const Trace trace = GenerateTrace(SmallConfig());
  EXPECT_EQ(trace.Validate(), "");
}

TEST(Workload, DeterministicForSeed) {
  const Trace a = GenerateTrace(SmallConfig());
  const Trace b = GenerateTrace(SmallConfig());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp);
    EXPECT_EQ(a.records[i].client, b.records[i].client);
    EXPECT_EQ(a.records[i].doc, b.records[i].doc);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig config = SmallConfig();
  const Trace a = GenerateTrace(config);
  config.seed = 18;
  const Trace b = GenerateTrace(config);
  bool different = false;
  for (std::size_t i = 0; i < a.records.size() && !different; ++i) {
    different = a.records[i].doc != b.records[i].doc;
  }
  EXPECT_TRUE(different);
}

TEST(Workload, SizesWithinConfiguredBounds) {
  WorkloadConfig config = SmallConfig();
  config.min_file_size_bytes = 1000;
  config.max_file_size_bytes = 50000;
  const Trace trace = GenerateTrace(config);
  for (const DocumentInfo& doc : trace.documents) {
    EXPECT_GE(doc.size_bytes, 1000u);
    EXPECT_LE(doc.size_bytes, 50000u);
  }
}

TEST(Workload, MeanFileSizeApproximatelyMatches) {
  WorkloadConfig config = SmallConfig();
  config.num_documents = 5000;
  config.mean_file_size_bytes = 20000;
  const Trace trace = GenerateTrace(config);
  double sum = 0;
  for (const DocumentInfo& doc : trace.documents) {
    sum += static_cast<double>(doc.size_bytes);
  }
  // The rank-size correlation and clamping preserve the mean to ~15%.
  EXPECT_NEAR(sum / 5000, 20000, 3500);
}

TEST(Workload, HigherZipfSkewsPopularity) {
  WorkloadConfig flat = SmallConfig();
  flat.doc_zipf_exponent = 0.2;
  flat.revisit_probability = 0.0;
  WorkloadConfig steep = flat;
  steep.doc_zipf_exponent = 1.3;
  const TraceSummary flat_summary = Summarize(GenerateTrace(flat));
  const TraceSummary steep_summary = Summarize(GenerateTrace(steep));
  EXPECT_GT(steep_summary.max_popularity, flat_summary.max_popularity);
}

TEST(Workload, RevisitRaisesRepeatFraction) {
  WorkloadConfig none = SmallConfig();
  none.revisit_probability = 0.0;
  WorkloadConfig heavy = none;
  heavy.revisit_probability = 0.6;
  const TraceSummary a = Summarize(GenerateTrace(none));
  const TraceSummary b = Summarize(GenerateTrace(heavy));
  EXPECT_GT(b.repeat_request_fraction, a.repeat_request_fraction + 0.1);
}

TEST(Workload, HotDocumentsSmallerWithGamma) {
  WorkloadConfig config = SmallConfig();
  config.num_documents = 2000;
  config.total_requests = 20000;
  config.size_rank_gamma = 1.0;
  const Trace trace = GenerateTrace(config);
  // Transfer-weighted mean should undercut the per-file mean.
  std::vector<std::uint64_t> requests(trace.documents.size(), 0);
  for (const TraceRecord& record : trace.records) ++requests[record.doc];
  double weighted = 0;
  double file_mean = 0;
  for (std::size_t d = 0; d < trace.documents.size(); ++d) {
    weighted += static_cast<double>(requests[d]) *
                static_cast<double>(trace.documents[d].size_bytes);
    file_mean += static_cast<double>(trace.documents[d].size_bytes);
  }
  weighted /= static_cast<double>(trace.records.size());
  file_mean /= static_cast<double>(trace.documents.size());
  EXPECT_LT(weighted, 0.7 * file_mean);
}

TEST(Workload, ClientIdsAreDistinct) {
  const Trace trace = GenerateTrace(SmallConfig());
  std::unordered_set<std::string> ids(trace.clients.begin(),
                                      trace.clients.end());
  EXPECT_EQ(ids.size(), trace.clients.size());
}

// --- summary ------------------------------------------------------------------------

TEST(Summary, HandBuiltTrace) {
  Trace trace;
  trace.name = "hand";
  trace.duration = kMinute;
  trace.documents = {{"/a", 100}, {"/b", 300}, {"/never", 999}};
  trace.clients = {"c0", "c1"};
  trace.records = {
      {0, 0, 0}, {kSecond, 1, 0}, {2 * kSecond, 0, 0}, {3 * kSecond, 1, 1}};
  const TraceSummary summary = Summarize(trace);
  EXPECT_EQ(summary.total_requests, 4u);
  EXPECT_EQ(summary.num_files, 2u);  // "/never" unrequested
  EXPECT_DOUBLE_EQ(summary.avg_file_size_bytes, 200.0);
  EXPECT_EQ(summary.max_popularity, 2u);  // "/a" seen by both clients
  EXPECT_DOUBLE_EQ(summary.avg_popularity, 1.5);
  // One repeated (client, doc) pair: (c0, /a).
  EXPECT_DOUBLE_EQ(summary.repeat_request_fraction, 0.25);
}

TEST(Summary, ValidateCatchesBadDocIndex) {
  Trace trace;
  trace.duration = kSecond;
  trace.documents = {{"/a", 1}};
  trace.clients = {"c"};
  trace.records = {{0, 0, 5}};
  EXPECT_NE(trace.Validate(), "");
}

TEST(Summary, ValidateCatchesUnsortedTimestamps) {
  Trace trace;
  trace.duration = kMinute;
  trace.documents = {{"/a", 1}};
  trace.clients = {"c"};
  trace.records = {{kSecond, 0, 0}, {0, 0, 0}};
  EXPECT_NE(trace.Validate(), "");
}

TEST(Summary, ValidateCatchesTimestampBeyondDuration) {
  Trace trace;
  trace.duration = kSecond;
  trace.documents = {{"/a", 1}};
  trace.clients = {"c"};
  trace.records = {{2 * kSecond, 0, 0}};
  EXPECT_NE(trace.Validate(), "");
}

// --- CLF ------------------------------------------------------------------------------

TEST(Clf, ParsesCanonicalLine) {
  ClfLine parsed;
  ASSERT_TRUE(ParseClfLine(
      "ppp-mia-30.shadow.net - - [01/Jul/1995:00:00:01 -0400] "
      "\"GET /history/apollo/ HTTP/1.0\" 200 6245",
      parsed));
  EXPECT_EQ(parsed.host, "ppp-mia-30.shadow.net");
  EXPECT_EQ(parsed.method, "GET");
  EXPECT_EQ(parsed.path, "/history/apollo/");
  EXPECT_EQ(parsed.status, 200);
  EXPECT_EQ(parsed.bytes, 6245);
  // 1995-07-01 00:00:01 = 804556801 (zone ignored by design).
  EXPECT_EQ(parsed.unix_seconds, 804556801);
}

TEST(Clf, ParsesDashBytes) {
  ClfLine parsed;
  ASSERT_TRUE(ParseClfLine(
      "host - - [01/Jan/1996:12:00:00 +0000] \"GET /a HTTP/1.0\" 304 -",
      parsed));
  EXPECT_EQ(parsed.status, 304);
  EXPECT_EQ(parsed.bytes, -1);
}

TEST(Clf, RejectsGarbage) {
  ClfLine parsed;
  EXPECT_FALSE(ParseClfLine("", parsed));
  EXPECT_FALSE(ParseClfLine("no brackets here", parsed));
  EXPECT_FALSE(ParseClfLine("h - - [baddate] \"GET /a HTTP/1.0\" 200 1",
                            parsed));
  EXPECT_FALSE(ParseClfLine("h - - [01/Jul/1995:00:00:01 -0400] noquotes 200 1",
                            parsed));
}

TEST(Clf, RejectsOverflowingNumbers) {
  // Fields that do not fit in int64 are malformed lines, not UB (TakeInt
  // used to wrap on signed overflow).
  ClfLine parsed;
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" 200 "
      "99999999999999999999999999999999999999",
      parsed));
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" "
      "92233720368547758079223372036854775807 1",
      parsed));
}

TEST(Clf, RejectsOutOfRangeDateFields) {
  ClfLine parsed;
  // Day 32, hour 24, minute 60: shaped like a date, but not one.
  EXPECT_FALSE(ParseClfLine(
      "h - - [32/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" 200 1", parsed));
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:24:00:01 -0400] \"GET /a HTTP/1.0\" 200 1", parsed));
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:00:60:01 -0400] \"GET /a HTTP/1.0\" 200 1", parsed));
  // A negative day lines up with the '/' separators but must not produce a
  // negative timestamp (ReadClf's first-record sentinel relies on >= 0).
  EXPECT_FALSE(ParseClfLine(
      "h - - [-1/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" 200 1", parsed));
  // Pre-epoch and five-digit years are corrupt, not slow to compute.
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1969:00:00:01 -0400] \"GET /a HTTP/1.0\" 200 1", parsed));
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/19999:00:00:01 -0400] \"GET /a HTTP/1.0\" 200 1",
      parsed));
  // Status fields outside 100..999 are not HTTP statuses.
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" 0 1", parsed));
  EXPECT_FALSE(ParseClfLine(
      "h - - [01/Jul/1995:00:00:01 -0400] \"GET /a HTTP/1.0\" 2000 1",
      parsed));
}

TEST(Clf, TruncationFuzz) {
  // Every prefix of a canonical line must either be cleanly rejected or
  // parse to sane field values — never crash or read out of bounds.
  const std::string canonical =
      "ppp-mia-30.shadow.net - - [01/Jul/1995:00:00:01 -0400] "
      "\"GET /history/apollo/ HTTP/1.0\" 200 6245";
  for (std::size_t len = 0; len <= canonical.size(); ++len) {
    ClfLine parsed;
    if (ParseClfLine(std::string_view(canonical).substr(0, len), parsed)) {
      EXPECT_GE(parsed.status, 100);
      EXPECT_LE(parsed.status, 999);
      EXPECT_GE(parsed.bytes, -1);
      EXPECT_FALSE(parsed.path.empty());
      EXPECT_GE(parsed.unix_seconds, 0);
    }
  }
}

TEST(Clf, ReadSkipsAndCountsMalformedLines) {
  // A stream sprinkled with the fuzz corpus: truncated lines, missing
  // fields, huge sizes. Parsing must skip-and-count every bad line and
  // still accept the good ones.
  std::istringstream in(
      "good1 - - [01/Jul/1995:00:00:00 +0000] \"GET /a HTTP/1.0\" 200 100\n"
      "trunc - - [01/Jul/1995:00:00:01\n"
      "nofields\n"
      "missing-req - - [01/Jul/1995:00:00:02 +0000] 200 100\n"
      "huge - - [01/Jul/1995:00:00:03 +0000] \"GET /b HTTP/1.0\" 200 "
      "999999999999999999999999999999\n"
      "baddate - - [99/Jul/1995:00:00:04 +0000] \"GET /c HTTP/1.0\" 200 1\n"
      "nopath - - [01/Jul/1995:00:00:05 +0000] \"GET  HTTP/1.0\" 200 1\n"
      "good2 - - [01/Jul/1995:00:00:06 +0000] \"GET /a HTTP/1.0\" 304 -\n");
  ClfParseStats stats;
  const Trace trace = ReadClf(in, "fuzz", &stats);
  EXPECT_EQ(stats.lines, 8u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.malformed, 6u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(trace.records.size(), 2u);
  EXPECT_EQ(trace.records[1].timestamp, 6 * kSecond);
  EXPECT_EQ(trace.Validate(), "");
}

TEST(Clf, LeapYearDateMath) {
  ClfLine parsed;
  ASSERT_TRUE(ParseClfLine(
      "h - - [29/Feb/1996:00:00:00 +0000] \"GET /a HTTP/1.0\" 200 1",
      parsed));
  // 1996-02-29 00:00:00 UTC.
  EXPECT_EQ(parsed.unix_seconds, 825552000);
}

TEST(Clf, ReadBuildsTrace) {
  std::istringstream in(
      "c1 - - [01/Jul/1995:00:00:00 +0000] \"GET /a HTTP/1.0\" 200 100\n"
      "c2 - - [01/Jul/1995:00:00:05 +0000] \"GET /b HTTP/1.0\" 200 250\n"
      "c1 - - [01/Jul/1995:00:00:09 +0000] \"GET /a HTTP/1.0\" 304 -\n"
      "c1 - - [01/Jul/1995:00:00:10 +0000] \"POST /a HTTP/1.0\" 200 10\n"
      "bogus line\n");
  ClfParseStats stats;
  const Trace trace = ReadClf(in, "mini", &stats);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.skipped, 1u);   // the POST
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.documents.size(), 2u);
  EXPECT_EQ(trace.clients.size(), 2u);
  EXPECT_EQ(trace.records[0].timestamp, 0);
  EXPECT_EQ(trace.records[2].timestamp, 9 * kSecond);
  EXPECT_EQ(trace.Validate(), "");
  EXPECT_EQ(trace.documents[0].size_bytes, 100u);
}

TEST(Clf, RoundTripThroughWriter) {
  const Trace original = GenerateTrace(SmallConfig());
  std::stringstream buffer;
  WriteClf(original, buffer);
  const Trace back = ReadClf(buffer, "back");
  ASSERT_EQ(back.records.size(), original.records.size());
  // The writer only emits requested documents/clients; compare against the
  // sets that actually appear in the record stream.
  std::unordered_set<DocId> requested_docs;
  std::unordered_set<ClientId> active_clients;
  for (const TraceRecord& record : original.records) {
    requested_docs.insert(record.doc);
    active_clients.insert(record.client);
  }
  EXPECT_EQ(back.documents.size(), requested_docs.size());
  EXPECT_EQ(back.clients.size(), active_clients.size());
  // CLF truncates to whole seconds and the reader rebases at the first
  // record's second; compare whole-second offsets on that basis.
  const Time original_base_seconds = original.records[0].timestamp / kSecond;
  for (std::size_t i = 0; i < back.records.size(); ++i) {
    EXPECT_EQ(back.records[i].timestamp / kSecond,
              original.records[i].timestamp / kSecond - original_base_seconds);
  }
}

// --- browser-cache filter -------------------------------------------------------------

TEST(BrowserFilter, AbsorbsRepeatsWithinTtl) {
  Trace raw;
  raw.duration = kHour;
  raw.documents = {{"/a", 10}};
  raw.clients = {"c0", "c1"};
  raw.records = {
      {0, 0, 0},                // c0 fetch: forwarded
      {kMinute, 0, 0},          // c0 repeat within TTL: absorbed
      {2 * kMinute, 1, 0},      // c1 first fetch: forwarded
      {20 * kMinute, 0, 0},     // c0 after TTL: forwarded
  };
  BrowserFilterStats stats;
  const Trace filtered =
      FilterThroughBrowserCaches(raw, 10 * kMinute, &stats);
  EXPECT_EQ(stats.input_requests, 4u);
  EXPECT_EQ(stats.absorbed, 1u);
  EXPECT_EQ(stats.forwarded, 3u);
  ASSERT_EQ(filtered.records.size(), 3u);
  EXPECT_EQ(filtered.records[1].client, 1u);
  EXPECT_EQ(filtered.Validate(), "");
}

TEST(BrowserFilter, ZeroTtlForwardsEverything) {
  const Trace raw = GenerateTrace(SmallConfig());
  const Trace filtered = FilterThroughBrowserCaches(raw, 0);
  EXPECT_EQ(filtered.records.size(), raw.records.size());
}

TEST(BrowserFilter, InfiniteTtlKeepsOnlyFirstAccessPerPair) {
  const Trace raw = GenerateTrace(SmallConfig());
  BrowserFilterStats stats;
  const Trace filtered = FilterThroughBrowserCaches(
      raw, raw.duration + kSecond, &stats);
  const TraceSummary raw_summary = Summarize(raw);
  // Forwarded = distinct (client, doc) pairs.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(stats.forwarded),
      static_cast<double>(raw.records.size()) *
          (1.0 - raw_summary.repeat_request_fraction));
  // The filtered trace has no repeats at all.
  EXPECT_DOUBLE_EQ(Summarize(filtered).repeat_request_fraction, 0.0);
}

TEST(BrowserFilter, PreservesDocumentsAndClients) {
  const Trace raw = GenerateTrace(SmallConfig());
  const Trace filtered = FilterThroughBrowserCaches(raw, kHour);
  EXPECT_EQ(filtered.documents.size(), raw.documents.size());
  EXPECT_EQ(filtered.clients.size(), raw.clients.size());
  EXPECT_EQ(filtered.duration, raw.duration);
}

// --- modifier -----------------------------------------------------------------------

TEST(Modifier, TouchIntervalFromLifetime) {
  ModifierConfig config;
  config.num_documents = 100;
  config.mean_lifetime = 100 * kDay;
  EXPECT_EQ(TouchInterval(config), kDay);
}

TEST(Modifier, ScheduleCountMatchesExpectation) {
  ModifierConfig config;
  config.duration = kDay;
  config.num_documents = 3600;
  config.mean_lifetime = 50 * kDay;
  // The paper's EPA run: 72 modifications in one day.
  EXPECT_EQ(ExpectedTouchCount(config), 72u);
  EXPECT_EQ(GenerateModifierSchedule(config).size(), 72u);
}

TEST(Modifier, EventsSortedWithinDuration) {
  ModifierConfig config;
  config.duration = 8 * kDay;
  config.num_documents = 2009;
  config.mean_lifetime = 14 * kDay;
  const auto events = GenerateModifierSchedule(config);
  EXPECT_EQ(events.size(), 1148u);  // the paper's SASK count
  Time previous = 0;
  for (const ModEvent& event : events) {
    EXPECT_GT(event.at, previous);
    EXPECT_LE(event.at, config.duration);
    EXPECT_LT(event.doc, config.num_documents);
    previous = event.at;
  }
}

TEST(Modifier, DeterministicForSeed) {
  ModifierConfig config;
  config.duration = kDay;
  config.num_documents = 500;
  config.mean_lifetime = 5 * kDay;
  const auto a = GenerateModifierSchedule(config);
  const auto b = GenerateModifierSchedule(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc, b[i].doc);
}

// --- presets ---------------------------------------------------------------------------

class PresetTest : public ::testing::TestWithParam<TraceName> {};

TEST_P(PresetTest, MatchesPaperTable2) {
  const TracePreset preset = GetPreset(GetParam());
  const Trace trace = GenerateTrace(preset.workload);
  ASSERT_EQ(trace.Validate(), "");
  const TraceSummary summary = Summarize(trace);

  // Request count and duration are exact.
  EXPECT_EQ(summary.total_requests, preset.paper.total_requests);
  EXPECT_EQ(trace.duration, preset.workload.duration);

  // File count within 10% (not every document is requested).
  EXPECT_NEAR(static_cast<double>(summary.num_files),
              static_cast<double>(preset.paper.derived_num_files),
              0.10 * preset.paper.derived_num_files);

  // Mean file size within 15%.
  EXPECT_NEAR(summary.avg_file_size_bytes, preset.paper.avg_file_size_bytes,
              0.15 * preset.paper.avg_file_size_bytes);

  // Popularity statistics within 20% of the reported values.
  EXPECT_NEAR(static_cast<double>(summary.max_popularity),
              static_cast<double>(preset.paper.max_popularity),
              0.20 * preset.paper.max_popularity);
  EXPECT_NEAR(summary.avg_popularity, preset.paper.avg_popularity,
              0.30 * preset.paper.avg_popularity);
}

INSTANTIATE_TEST_SUITE_P(AllTraces, PresetTest,
                         ::testing::ValuesIn(AllTraces()),
                         [](const ::testing::TestParamInfo<TraceName>& info) {
                           return ToString(info.param);
                         });

TEST(Presets, FileCountsConsistentWithModifierDerivation) {
  // files ~ mods x lifetime / duration, the derivation DESIGN.md documents.
  const TracePreset nasa = GetPreset(TraceName::kNasa);
  ModifierConfig config;
  config.duration = nasa.workload.duration;
  config.num_documents = nasa.workload.num_documents;
  config.mean_lifetime = nasa.paper_mean_lifetime;
  EXPECT_EQ(ExpectedTouchCount(config), 144u);
}

TEST(Presets, NamesAreUnique) {
  std::unordered_set<std::string> names;
  for (const TraceName name : AllTraces()) {
    EXPECT_TRUE(names.insert(ToString(name)).second);
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace webcc::trace
