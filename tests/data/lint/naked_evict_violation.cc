// Fixture: a hand-rolled byte-budget eviction loop — freeing space by
// erasing the coldest entry directly instead of asking the eviction
// kernel. The victim choice bypasses the policy's stats, the kEviction
// trace event, and any tier-2 demotion.
#include <list>
#include <string>
#include <unordered_map>

struct NakedEvictCache {
  std::list<std::string> lru_;
  std::unordered_map<std::string, unsigned long long> sizes_;
  unsigned long long bytes_used_ = 0;
  unsigned long long capacity_bytes_ = 0;

  void MakeRoom(unsigned long long incoming) {
    while (bytes_used_ + incoming > capacity_bytes_) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      bytes_used_ -= sizes_[victim];
      sizes_.erase(victim);
    }
  }
};
