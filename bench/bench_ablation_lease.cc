// Ablation A2: lease-duration sweep.
//
// Section 6 argues that a lease of length L bounds site-list state by the
// requests of the last L window and trades it against extra
// If-Modified-Since renewals. This sweep maps that trade-off on the 8-day
// SASK replay (the longest trace, where state growth matters most).
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Ablation: lease duration vs state and renewal traffic "
              "(SASK) ===\n\n");

  const replay::ExperimentSpec spec = replay::Table3Experiments()[1];
  const trace::Trace& trace = bench::TraceFor(spec.trace);

  stats::Table table({"Lease", "Site-list entries", "Storage",
                      "Renewal IMS", "Invalidations", "Total msgs",
                      "Violations"});

  const Time durations[] = {0,         6 * kHour, kDay,    2 * kDay,
                            3 * kDay,  5 * kDay,  8 * kDay};
  for (const Time duration : durations) {
    replay::ReplayConfig config =
        replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
    if (duration == 0) {
      config.lease.mode = core::LeaseMode::kNone;
    } else {
      config.lease.mode = core::LeaseMode::kFixed;
      config.lease.duration = duration;
    }
    const replay::ReplayMetrics metrics = replay::RunReplay(config);
    table.AddRow(
        {duration == 0 ? "infinite" : util::HumanDuration(duration),
         util::WithCommas(static_cast<std::int64_t>(metrics.sitelist_entries)),
         util::HumanBytes(metrics.sitelist_storage_bytes),
         util::WithCommas(static_cast<std::int64_t>(metrics.lease_renewal_ims)),
         util::WithCommas(
             static_cast<std::int64_t>(metrics.invalidations_sent)),
         util::WithCommas(static_cast<std::int64_t>(metrics.total_messages())),
         util::WithCommas(
             static_cast<std::int64_t>(metrics.strong_violations))});
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shorter leases bound server state harder but cost more renewal\n"
      "validations; consistency holds at every point (violations = 0),\n"
      "because an expired lease forces revalidation before use.\n");
  return 0;
}
