// The consistency kernel: one strategy class per protocol, shared by the
// replay engine and the live (real-TCP) stack.
//
// Decision table (see DESIGN.md "Consistency kernel" for the paper mapping):
//
//   protocol        OnHit serves locally when          OnWrite
//   --------------  --------------------------------  -------------------
//   adaptive TTL    !questionable && now < ttl        nothing (weak)
//   poll-every-time never (IMS on every hit)          nothing (write done
//                                                     at file-system touch)
//   invalidation    !questionable && LeaseActive      fan out INVALIDATEs
//   PCV             as adaptive TTL                   nothing (validation
//                                                     rides on requests)
//   PSI             as adaptive TTL                   nothing (notices ride
//                                                     on replies)
//
// Policies are immutable after construction and hold no per-entry state;
// all state lives in the caches (EntryMeta snapshots in, Decisions out).
#pragma once

#include <memory>

#include "core/consistency/types.h"
#include "core/policy.h"

namespace webcc::core::consistency {

class ConsistencyPolicy {
 public:
  virtual ~ConsistencyPolicy() = default;

  virtual Protocol protocol() const = 0;
  virtual const Traits& traits() const = 0;

  // A request found a cached copy `entry` at protocol time `now`: serve it
  // locally or validate first?
  virtual HitDecision OnHit(const EntryMeta& entry, Time now) const = 0;

  // A 200 arrived for a miss (or an expired copy): the consistency state
  // the new entry starts with.
  virtual InsertDecision OnMissReply(const ReplyMeta& reply,
                                     Time now) const = 0;

  // A 304 certified the cached copy fresh: how to refresh its state.
  virtual ValidateDecision OnValidateReply(const ReplyMeta& reply,
                                           Time now) const = 0;

  // The server detected a document modification.
  virtual WriteDecision OnWrite() const = 0;

  // PCV: a piggybacked validation came back "still valid" — the absolute
  // TTL expiry the re-armed entry gets. Only meaningful for policies with
  // traits().piggyback_validation.
  virtual Time OnPcvValid(const EntryMeta& entry, Time now) const;
};

// Builds the strategy for `protocol`. `ttl` parameterizes the TTL-based
// family (adaptive TTL, PCV, PSI); the returned policy is self-contained
// and safe to share across threads.
std::unique_ptr<const ConsistencyPolicy> MakePolicy(
    Protocol protocol, const AdaptiveTtlConfig& ttl);

}  // namespace webcc::core::consistency
