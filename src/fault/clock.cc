#include "fault/clock.h"

namespace webcc::fault {

FaultClock::FaultClock(const FaultPlan& plan, std::uint64_t seed)
    : rng_(seed) {
  FaultPlan canonical = plan;
  Canonicalize(canonical);
  for (const FaultEvent& event : canonical.events) {
    if (event.kind != FaultKind::kLinkFault) continue;
    Window window;
    window.begin = event.at;
    window.end = event.at + event.duration;
    window.target = event.target;
    window.drop = event.drop;
    window.duplicate = event.duplicate;
    window.extra_delay = event.extra_delay;
    windows_.push_back(window);
  }
}

void FaultClock::BindNodes(sim::NodeId server,
                           std::vector<sim::NodeId> client_nodes) {
  server_node_ = server;
  client_nodes_ = std::move(client_nodes);
}

void FaultClock::Advance(Time window_begin, Time window_end) {
  active_.clear();
  for (const Window& window : windows_) {
    if (window.begin < window_end && window_begin < window.end) {
      active_.push_back(&window);
    }
  }
}

bool FaultClock::Matches(const Window& window, sim::NodeId from,
                         sim::NodeId to) const {
  if (window.target < 0) return true;
  const std::size_t index = static_cast<std::size_t>(window.target);
  if (index >= client_nodes_.size()) return false;
  const sim::NodeId node = client_nodes_[index];
  return from == node || to == node;
}

sim::Perturbation FaultClock::Perturb(sim::NodeId from, sim::NodeId to) {
  sim::Perturbation result;
  if (active_.empty()) return result;  // zero RNG draws outside windows
  double pass = 1.0;       // P(message survives every matching window)
  double no_dup = 1.0;     // P(no matching window duplicates it)
  Time extra_delay = 0;
  bool matched = false;
  for (const Window* window : active_) {
    if (!Matches(*window, from, to)) continue;
    matched = true;
    pass *= 1.0 - window->drop;
    no_dup *= 1.0 - window->duplicate;
    extra_delay += window->extra_delay;
  }
  if (!matched) return result;  // still zero draws: message untouched
  // Fixed draw order — drop first (early out), then duplication — so the
  // decision sequence is a pure function of (plan, seed, call order).
  const double drop_p = 1.0 - pass;
  if (drop_p > 0.0 && rng_.NextDouble() < drop_p) {
    result.drop = true;
    return result;
  }
  const double dup_p = 1.0 - no_dup;
  if (dup_p > 0.0 && rng_.NextDouble() < dup_p) {
    result.duplicate = true;
  }
  result.extra_delay = extra_delay;
  return result;
}

}  // namespace webcc::fault
