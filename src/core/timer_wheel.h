// Hashed timer wheel for lease expiry (ROADMAP item 4).
//
// The invalidation table's prune used to scan every site-list entry at
// every lockstep boundary — O(total entries) even when nothing expired,
// which at 10^6-10^7 registered sites dominates the accelerator. The wheel
// makes prune O(expired) amortized: each expirable entry is dropped into
// the ring slot its expiry maps to, and a prune only visits the slots the
// clock has passed since the last prune.
//
// Design:
//  * A ring of `slots` buckets of `granularity` microseconds each. An
//    entry with absolute expiry E lives in ring[(E / granularity) % slots].
//    The wheel is sized so one revolution covers at least the longest
//    lease the table grants (the caller picks granularity = 2 * max lease
//    span / slots), so in the common case a slot holds entries of exactly
//    one revolution and no per-entry round counter is needed.
//  * Entries are 8 bytes — (url id, site id) — and carry NO expiry. The
//    wheel is an index, never the authority: on every visit the caller's
//    callback re-reads the lease from the table and answers with the
//    authoritative expiry. That one rule absorbs every hard case lazily:
//      - renewal: a refreshed lease is found alive when its OLD slot is
//        visited and is simply rescheduled at the new expiry — repeat
//        viewers refresh in place, no duplicate wheel entries;
//      - stale entries: a list taken for invalidation (or wiped by journal
//        replay) leaves wheel entries behind; the visit finds them gone
//        and drops them;
//      - out-of-range expiries (journal text is untrusted input): Schedule
//        clamps the target slot into the current revolution, the early
//        visit finds the lease alive and reschedules — correct for any
//        input, merely slower for hostile ones.
//  * Advance(now) visits [cursor, now / granularity] inclusive. Revisiting
//    the cursor slot is what makes the boundary exact: an entry whose
//    expiry lands later inside the current slot stays scheduled there and
//    is re-examined at the next prune, so a lease dies at exactly the
//    half-open [grant, lease_until) boundary core/lease.h documents, never
//    one granularity-rounding early or late.
//
// Determinism: the wheel changes WHEN expiry work happens, never WHAT is
// expired — the authoritative-callback check makes Advance(now) drop
// exactly the entries a full scan at `now` would have dropped, so replay
// digests are bit-identical to the scan implementation at any shard count
// (test_timer_wheel's property test drives 10^5 seeded pairs through both).
//
// Not thread-safe; owned by InvalidationTable (one wheel per table, one
// table per accelerator shard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/intern.h"
#include "util/check.h"
#include "util/time.h"

namespace webcc::core {

class TimerWheel {
 public:
  // An unconfigured wheel rejects Schedule; Configure before first use.
  TimerWheel() = default;

  void Configure(Time granularity, std::size_t slots) {
    WEBCC_CHECK(granularity > 0);
    WEBCC_CHECK(slots > 1);
    ring_.assign(slots, {});
    granularity_ = granularity;
    cursor_ = 0;
    scheduled_ = 0;
  }

  bool configured() const { return granularity_ > 0; }
  std::size_t scheduled() const { return scheduled_; }
  Time granularity() const { return granularity_; }
  std::size_t slots() const { return ring_.size(); }

  // Schedules (url, site) for the slot covering `expiry`. Expiries at or
  // before the cursor land in the cursor slot (visited by the very next
  // Advance); expiries beyond one revolution are clamped to the furthest
  // slot and lazily rescheduled on visit.
  void Schedule(InternId url, InternId site, Time expiry) {
    WEBCC_DCHECK(configured());
    std::int64_t slot = expiry / granularity_;
    if (slot < cursor_) slot = cursor_;
    const std::int64_t horizon =
        cursor_ + static_cast<std::int64_t>(ring_.size()) - 1;
    if (slot > horizon) slot = horizon;
    ring_[static_cast<std::size_t>(slot) % ring_.size()].push_back(
        {url, site});
    ++scheduled_;
  }

  // Advances the wheel to `now`, visiting every slot the clock has passed
  // (the cursor slot is always revisited). For each entry, calls
  // `authority(url, site)`, which must return the entry's authoritative
  // expiry after performing any expiry-side effects itself:
  //   * a Time <= now  — the entry is done (expired and handled by the
  //     callback, vanished from the table, or net::kNoLease, i.e. now
  //     unexpirable); the wheel forgets it;
  //   * a Time > now   — still alive; rescheduled at that expiry.
  // A `now` earlier than the cursor (out-of-order prune) only revisits the
  // cursor slot — Schedule's clamp guarantees that is where any entry due
  // before the cursor lives — and never moves the cursor backwards.
  template <typename Authority>
  void Advance(Time now, Authority authority) {
    if (!configured() || scheduled_ == 0) {
      if (configured() && now / granularity_ > cursor_) {
        cursor_ = now / granularity_;
      }
      return;
    }
    const std::int64_t target = std::max(cursor_, now / granularity_);
    std::int64_t first = cursor_;
    if (target - first >= static_cast<std::int64_t>(ring_.size())) {
      first = target - static_cast<std::int64_t>(ring_.size()) + 1;
    }
    for (std::int64_t s = first; s <= target; ++s) {
      std::vector<Entry>& slot = ring_[static_cast<std::size_t>(s) %
                                       ring_.size()];
      if (slot.empty()) continue;
      // Swap the slot out before visiting: the callback's reschedules
      // (including back into this very slot) append to fresh vectors.
      std::vector<Entry> due;
      due.swap(slot);
      cursor_ = s;  // reschedules clamp against the slot being visited
      for (const Entry& entry : due) {
        const Time expiry = authority(entry.url, entry.site);
        --scheduled_;
        if (expiry > now) Schedule(entry.url, entry.site, expiry);
      }
    }
    cursor_ = target;
  }

  void Clear() {
    for (std::vector<Entry>& slot : ring_) {
      slot.clear();
      slot.shrink_to_fit();
    }
    scheduled_ = 0;
  }

  // Measured bytes held by the ring's entry vectors (the lease-scale
  // bench's bytes_per_entry includes this: the wheel is part of the cost
  // of making prune O(expired)).
  std::uint64_t MemoryFootprintBytes() const {
    std::uint64_t bytes = ring_.capacity() * sizeof(std::vector<Entry>);
    for (const std::vector<Entry>& slot : ring_) {
      bytes += slot.capacity() * sizeof(Entry);
    }
    return bytes;
  }

 private:
  struct Entry {
    InternId url;
    InternId site;
  };

  std::vector<std::vector<Entry>> ring_;
  Time granularity_ = 0;
  std::int64_t cursor_ = 0;  // absolute slot index of the last visit
  std::size_t scheduled_ = 0;
};

}  // namespace webcc::core
