// A minimal recursive-descent parser for the fixed JSON dialect the repo's
// declarative config files use (fault plans, synth scenarios): objects,
// arrays, double-quoted strings without escapes beyond \" and \\, numbers,
// true/false. It is not a general JSON parser and does not try to be;
// golden files are written in the same dialect their ToJson emits.
//
// Extracted from fault/plan.cc so the ScenarioConfig dialect (synth/) parses
// through the identical machinery — same error shape ("... at offset N"),
// same fuzz-hardened string/number handling.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>

namespace webcc::util {

class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string_view text) : text_(text) {}

  std::string error() const { return error_; }

  bool Fail(std::string_view message) {
    if (error_.empty()) {
      error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseNumber(double& out) {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  // Captures one JSON value as raw text: strings come back unquoted,
  // numbers/bools as their literal spelling. Used for "expect" values.
  bool ParseRawValue(std::string& out) {
    SkipWs();
    if (Peek('"')) return ParseString(out);
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']' && text_[pos_] != '\n') {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    std::string_view raw = text_.substr(start, pos_ - start);
    while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\t')) {
      raw = raw.substr(0, raw.size() - 1);
    }
    out = std::string(raw);
    return true;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace webcc::util
