#include "core/accelerator.h"

#include <utility>

#include "util/check.h"

namespace webcc::core {

std::optional<net::Reply> Accelerator::HandleRequest(
    const net::Request& request, Time now) {
  std::optional<net::Reply> reply = origin_.Handle(request, now);
  if (!reply.has_value()) return reply;
  ++stats_.requests;

  // First sighting of a document pins the version baseline so a later
  // notify can tell "changed since last invalidation" from "never seen".
  const http::Document* doc = store_->Find(request.url);
  WEBCC_DCHECK(doc != nullptr);
  last_seen_version_.try_emplace(request.url, doc->version);

  // Pessimistic registration: any requester might cache the document.
  reply->lease_until =
      table_.Register(request.url, request.client_id, request.type, now);
  if (reply->lease_until != net::kNoLease) {
    obs::Emit(trace_sink_, {.type = obs::EventType::kLeaseGrant,
                            .at = now,
                            .url = request.url,
                            .site = request.client_id,
                            .detail = reply->lease_until});
  }
  registry_.RecordSite(request.client_id);
  return reply;
}

std::vector<net::Invalidation> Accelerator::HandleNotify(
    const net::Notify& notify, Time now) {
  ++stats_.notifies;
  obs::Emit(trace_sink_,
            {.type = obs::EventType::kNotify, .at = now, .url = notify.url});
  return DetectAndInvalidate(notify.url, now);
}

std::vector<net::Invalidation> Accelerator::CheckDocument(std::string_view url,
                                                          Time now) {
  return DetectAndInvalidate(url, now);
}

std::vector<net::Invalidation> Accelerator::DetectAndInvalidate(
    std::string_view url, Time now) {
  std::vector<net::Invalidation> out;
  const http::Document* doc = store_->Find(url);
  if (doc == nullptr) return out;

  auto [it, first_sighting] =
      last_seen_version_.try_emplace(std::string(url), doc->version);
  if (first_sighting || doc->version == it->second) {
    return out;  // unchanged (or nothing could have cached it yet)
  }
  it->second = doc->version;
  ++stats_.modifications_detected;

  std::vector<std::string> sites = table_.TakeSitesForInvalidation(url, now);
  stats_.list_lengths_at_modification.push_back(sites.size());
  out.reserve(sites.size());
  for (std::string& site : sites) {
    net::Invalidation inv;
    inv.type = net::MessageType::kInvalidateUrl;
    inv.url = std::string(url);
    inv.client_id = std::move(site);
    obs::Emit(trace_sink_, {.type = obs::EventType::kInvalidateGenerated,
                            .at = now,
                            .url = inv.url,
                            .site = inv.client_id});
    out.push_back(std::move(inv));
  }
  stats_.invalidations_generated += out.size();
  return out;
}

void Accelerator::Crash() {
  table_.Clear();
  last_seen_version_.clear();
  // stats_ intentionally survives: it is the experiment's measurement
  // record, not server state.
}

std::vector<net::Invalidation> Accelerator::Recover() {
  std::vector<net::Invalidation> out;
  out.reserve(registry_.sites().size());
  for (const std::string& site : registry_.sites()) {
    net::Invalidation inv;
    inv.type = net::MessageType::kInvalidateServer;
    inv.server = server_name_;
    inv.client_id = site;
    obs::Emit(trace_sink_, {.type = obs::EventType::kInvalidateServer,
                            .site = inv.client_id,
                            .label = server_name_});
    out.push_back(std::move(inv));
  }
  return out;
}

void Accelerator::ExportMetrics(obs::MetricsRegistry& registry,
                                std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("requests"), stats_.requests);
  registry.SetCounter(name("notifies"), stats_.notifies);
  registry.SetCounter(name("modifications_detected"),
                      stats_.modifications_detected);
  registry.SetCounter(name("invalidations_generated"),
                      stats_.invalidations_generated);
  obs::Histogram* lists = registry.FindOrCreateHistogram(
      name("site_list_length_at_modification"));
  for (const std::size_t length : stats_.list_lengths_at_modification) {
    lists->Record(static_cast<double>(length));
  }
  table_.ExportMetrics(registry, name("table."));
}

}  // namespace webcc::core
