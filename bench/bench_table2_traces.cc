// Regenerates Table 2: summary statistics of the five server traces,
// comparing the synthetic generator's output with the paper's reported
// values.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Table 2: trace summaries (measured vs paper) ===\n\n");

  stats::Table table({"Item", "EPA", "SDSC", "ClarkNet", "NASA", "SASK"});
  std::vector<trace::TracePreset> presets;
  std::vector<trace::TraceSummary> summaries;
  for (const trace::TraceName name : trace::AllTraces()) {
    presets.push_back(trace::GetPreset(name));
    summaries.push_back(trace::Summarize(bench::TraceFor(name)));
  }

  const auto row = [&table](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (int i = 0; i < 5; ++i) cells.push_back(get(i));
    table.AddRow(std::move(cells));
  };

  row("Trace Duration", [&](int i) { return presets[i].paper.duration; });
  row("Total Requests", [&](int i) {
    return util::WithCommas(
        static_cast<std::int64_t>(summaries[i].total_requests));
  });
  row("  (paper)", [&](int i) {
    return util::WithCommas(
        static_cast<std::int64_t>(presets[i].paper.total_requests));
  });
  row("Number of Files", [&](int i) {
    return util::WithCommas(static_cast<std::int64_t>(summaries[i].num_files));
  });
  row("  (paper, derived)", [&](int i) {
    return util::WithCommas(
        static_cast<std::int64_t>(presets[i].paper.derived_num_files));
  });
  row("Avg. File Size", [&](int i) {
    return util::Fixed(summaries[i].avg_file_size_bytes / 1024.0, 0) + " KB";
  });
  row("  (paper)", [&](int i) {
    return util::Fixed(presets[i].paper.avg_file_size_bytes / 1024.0, 0) +
           " KB";
  });
  row("File Popularity", [&](int i) {
    return util::WithCommas(
               static_cast<std::int64_t>(summaries[i].max_popularity)) +
           " (" + util::Fixed(summaries[i].avg_popularity, 1) + ")";
  });
  row("  (paper)", [&](int i) {
    return util::WithCommas(
               static_cast<std::int64_t>(presets[i].paper.max_popularity)) +
           " (" + util::Fixed(presets[i].paper.avg_popularity, 1) + ")";
  });
  row("Repeat-request frac.", [&](int i) {
    return util::Fixed(summaries[i].repeat_request_fraction, 2);
  });

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "File popularity = distinct client sites requesting the same document:\n"
      "maximum over documents, average in parentheses. The repeat-request\n"
      "fraction (not in the paper's table) is the infinite-cache per-client\n"
      "hit ratio the replay inherits.\n");
  return 0;
}
