// Regenerates Table 1: message counts of the three consistency approaches
// for a single client viewing a single document, in terms of R (requests)
// and RI (request intervals with no intervening modification).
//
// Prints the closed forms, evaluates them on the paper's example sequence,
// and then validates the closed forms against exact per-event protocol
// simulations across a sweep of random request/modification mixes.
#include <cstdio>
#include <string>

#include "core/analysis.h"
#include "stats/table.h"
#include "util/rng.h"

using namespace webcc;

namespace {

void PrintSymbolicTable() {
  stats::Table table(
      {"Messages", "Polling-Every-Time", "Invalidation", "Adaptive TTL"});
  table.AddRow({"GET requests", "1 (cold)", "RI", "1 (cold)"});
  table.AddRow({"If-Modified-Since", "R-1", "0", "TTL-missed"});
  table.AddRow({"304 replies", "R-RI", "0",
                "TTL-missed - TTL-missed-and-new-doc"});
  table.AddRow({"Invalidations", "0", "RI", "0"});
  table.AddRow({"Total control msgs", "2R-RI", "2*RI",
                "2*TTL-missed - TTL-missed-and-new-doc"});
  table.AddRow({"File transfers", "RI", "RI", "RI - stale hits"});
  std::printf("%s\n", table.Render().c_str());
}

void EvaluateSequence(const std::string& sequence) {
  const auto events = core::ParseSequence(sequence);
  const core::SequenceShape shape = core::AnalyzeSequence(events);
  std::printf("sequence \"%s\": R=%llu RI=%llu (paper's example has RI=4)\n",
              sequence.c_str(),
              static_cast<unsigned long long>(shape.requests),
              static_cast<unsigned long long>(shape.request_intervals));

  const core::MessageCounts polling = core::SimulatePollingSequence(events);
  const core::MessageCounts invalidation =
      core::SimulateInvalidationSequence(events);
  core::AdaptiveTtlConfig ttl;
  const core::MessageCounts adaptive =
      core::SimulateAdaptiveTtlSequence(events, ttl, -50 * kDay);

  stats::Table table({"Messages", "Polling", "Invalidation", "Adaptive TTL"});
  const auto row = [&table](const char* label, auto get) {
    table.AddRow({label, std::to_string(get(0)), std::to_string(get(1)),
                  std::to_string(get(2))});
  };
  const core::MessageCounts all[] = {polling, invalidation, adaptive};
  row("GET requests", [&all](int i) { return all[i].gets; });
  row("If-Modified-Since", [&all](int i) { return all[i].ims; });
  row("304 replies", [&all](int i) { return all[i].replies_304; });
  row("Invalidations", [&all](int i) { return all[i].invalidations; });
  row("Control messages", [&all](int i) { return all[i].control_messages(); });
  row("File transfers", [&all](int i) { return all[i].file_transfers(); });
  row("Stale hits", [&all](int i) { return all[i].stale_hits; });
  std::printf("%s\n", table.Render().c_str());
}

void ValidateClosedForms() {
  util::Rng rng(2024);
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  for (double request_probability : {0.3, 0.5, 0.7, 0.9}) {
    for (int trial = 0; trial < 250; ++trial) {
      std::string sequence;
      for (int i = 0; i < 120; ++i) {
        sequence += rng.NextBool(request_probability) ? 'r' : 'm';
      }
      const auto events = core::ParseSequence(sequence);
      const core::SequenceShape shape = core::AnalyzeSequence(events);
      const core::MessageCounts closed_polling = core::Table1Polling(shape);
      const core::MessageCounts sim_polling =
          core::SimulatePollingSequence(events);
      const core::MessageCounts closed_inv = core::Table1Invalidation(shape);
      const core::MessageCounts sim_inv =
          core::SimulateInvalidationSequence(events);
      ++checked;
      if (closed_polling.control_messages() != sim_polling.control_messages() ||
          closed_polling.file_transfers() != sim_polling.file_transfers() ||
          closed_inv.control_messages() != sim_inv.control_messages() ||
          closed_inv.file_transfers() != sim_inv.file_transfers()) {
        ++mismatches;
      }
    }
  }
  std::printf("closed-form vs exact simulation: %zu random sequences, "
              "%zu mismatches\n\n",
              checked, mismatches);
}

}  // namespace

int main() {
  std::printf("=== Table 1: analytic message counts ===\n\n");
  PrintSymbolicTable();
  EvaluateSequence("rrrmmmrrmrrrmmr");
  ValidateClosedForms();
  std::printf(
      "observations (paper, Section 3):\n"
      " - adaptive TTL saves file transfers over strong schemes only via\n"
      "   stale hits (transfers column: RI - stale hits)\n"
      " - invalidation incurs at most twice the minimum control messages\n"
      " - polling vs invalidation depends on the request/modification mix\n");
  return 0;
}
