#include "core/lease.h"

#include "util/check.h"

namespace webcc::core {

Time GrantLease(const LeaseConfig& config, net::MessageType request_type,
                Time now) {
  WEBCC_DCHECK(request_type == net::MessageType::kGet ||
               request_type == net::MessageType::kIfModifiedSince);
  switch (config.mode) {
    case LeaseMode::kNone:
      return net::kNoLease;
    case LeaseMode::kFixed:
      return now + config.duration;
    case LeaseMode::kTwoTier:
      return request_type == net::MessageType::kIfModifiedSince
                 ? now + config.duration
                 : now + config.short_duration;
  }
  return net::kNoLease;
}

bool LeaseActive(Time lease_until, Time now) {
  return lease_until == net::kNoLease || lease_until > now;
}

const char* ToString(LeaseMode mode) {
  switch (mode) {
    case LeaseMode::kNone:
      return "none";
    case LeaseMode::kFixed:
      return "fixed";
    case LeaseMode::kTwoTier:
      return "two-tier";
  }
  return "?";
}

const char* ToString(Protocol protocol) {
  switch (protocol) {
    case Protocol::kAdaptiveTtl:
      return "Adaptive TTL";
    case Protocol::kPollEveryTime:
      return "Poll-Every-Time";
    case Protocol::kInvalidation:
      return "Invalidation";
    case Protocol::kPiggybackValidation:
      return "Piggyback Validation (PCV)";
    case Protocol::kPiggybackInvalidation:
      return "Piggyback Invalidation (PSI)";
  }
  return "?";
}

}  // namespace webcc::core
