#include "http/document_store.h"

#include <utility>

namespace webcc::http {

bool DocumentStore::Add(std::string path, std::uint64_t size_bytes,
                        Time last_modified) {
  const auto [it, inserted] = index_.try_emplace(path, documents_.size());
  if (!inserted) return false;
  Document doc;
  doc.path = std::move(path);
  doc.size_bytes = size_bytes;
  doc.last_modified = last_modified;
  documents_.push_back(std::move(doc));
  total_bytes_ += size_bytes;
  return true;
}

const Document* DocumentStore::Find(std::string_view path) const {
  const auto it = index_.find(std::string(path));
  if (it == index_.end()) return nullptr;
  return &documents_[it->second];
}

bool DocumentStore::Touch(std::string_view path, Time now) {
  const auto it = index_.find(std::string(path));
  if (it == index_.end()) return false;
  Document& doc = documents_[it->second];
  doc.last_modified = now;
  ++doc.version;
  return true;
}

void DocumentStore::ForEach(
    const std::function<void(const Document&)>& fn) const {
  for (const Document& doc : documents_) fn(doc);
}

}  // namespace webcc::http
