// Fixture: determinism-clock — rand() in replay-scoped code.
#include <cstdlib>

int Jitter() { return rand() % 10; }
