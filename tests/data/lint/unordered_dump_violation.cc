// Fixture: unordered-iter-in-dump — hash-order iteration in an output path.
#include <ostream>
#include <string>
#include <unordered_map>

struct Table {
  std::unordered_map<std::string, int> counts_;

  void Dump(std::ostream& out) const {
    for (const auto& [key, value] : counts_) {
      out << key << "=" << value << "\n";
    }
  }
};
