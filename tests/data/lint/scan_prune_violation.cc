// Fixture: a full-scan iteration-erase prune over lease state — the layout
// the timer wheel replaced. Every prune visits every entry, so this is
// O(entries) per call instead of O(expired).
#include <unordered_map>

struct ScanPruneTable {
  std::unordered_map<unsigned, long long> lease_until_;

  int Prune(long long now) {
    int pruned = 0;
    for (auto it = lease_until_.begin(); it != lease_until_.end();) {
      if (it->second <= now) {
        it = lease_until_.erase(it);
        ++pruned;
      } else {
        ++it;
      }
    }
    return pruned;
  }
};
