#include "live/live_server.h"

#include <charconv>
#include <chrono>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "util/log.h"

namespace webcc::live {

std::string MakeClientId(std::string_view name, std::uint16_t proxy_port) {
  return std::string(name) + "@" + std::to_string(proxy_port);
}

std::optional<std::uint16_t> ParseClientPort(std::string_view client_id) {
  const std::size_t at = client_id.rfind('@');
  if (at == std::string_view::npos) return std::nullopt;
  const std::string_view digits = client_id.substr(at + 1);
  std::uint16_t port = 0;
  const auto result =
      std::from_chars(digits.data(), digits.data() + digits.size(), port);
  if (result.ec != std::errc{} ||
      result.ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return port;
}

LiveServer::LiveServer(Options options)
    : options_(std::move(options)),
      policy_(core::consistency::MakePolicy(options_.protocol,
                                            core::AdaptiveTtlConfig{})),
      accel_(docs_, options_.lease,
             options_.shards > 0 ? options_.shards : 1, options_.server_name),
      origin_(docs_) {
  // The accelerator emits lease_grant / notify / invalidate_generated /
  // invalidate_server events itself once it has the sink.
  accel_.set_trace_sink(options_.trace_sink);
}

LiveServer::~LiveServer() { Stop(); }

bool LiveServer::Start() {
  listener_.emplace(options_.port);
  if (!listener_->valid()) return false;
  port_ = listener_->port();
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void LiveServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
}

Time LiveServer::Now() const {
  // Unix-epoch microseconds: server and proxy clocks must agree because
  // lease expiries and modification times cross the wire.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void LiveServer::AddDocument(std::string path, std::uint64_t size_bytes) {
  const util::MutexLock lock(mutex_);
  docs_.Add(std::move(path), size_bytes, Now());
}

std::size_t LiveServer::TouchDocument(const std::string& path) {
  const bool fan_out = policy_->OnWrite().fan_out_invalidations;
  std::vector<net::Invalidation> invalidations;
  {
    const util::MutexLock lock(mutex_);
    const Time now = Now();
    if (!docs_.Touch(path, now)) return 0;
    mod_log_.Record(now, path);
    obs::Emit(options_.trace_sink,
              {.type = obs::EventType::kModification, .at = now, .url = path});
    if (fan_out) {
      // Retire lapsed leases before taking the list: O(expired) amortized
      // via the per-shard timer wheels, so the write path can afford it on
      // every check-in and the table never accumulates dead entries
      // between writes.
      accel_.PruneExpired(now);
      invalidations = accel_.HandleNotify(net::Notify{path}, now);
    }
  }
  return PushInvalidations(invalidations);
}

void LiveServer::CrashTables() {
  const util::MutexLock lock(mutex_);
  accel_.Crash();
}

std::size_t LiveServer::Recover() {
  std::vector<net::Invalidation> notices;
  {
    const util::MutexLock lock(mutex_);
    notices = accel_.Recover();
  }
  return PushInvalidations(notices);
}

std::size_t LiveServer::PushInvalidations(
    const std::vector<net::Invalidation>& invalidations) {
  // One wire frame per push. Batching folds every kInvalidateUrl bound for
  // the same proxy into a single INVB frame (first-appearance order);
  // server-address recovery notices always travel alone. All counters and
  // failure events stay per-URL so observable behavior matches the
  // unbatched path frame-for-URL.
  struct Frame {
    std::string client_id;
    std::string line;
    // URLs the frame carries, for per-URL accounting; a server-address
    // notice contributes one empty entry (its INVSRV line has no URL),
    // matching the unbatched path's empty invalidation.url.
    std::vector<std::string> urls;
  };
  std::vector<Frame> frames;
  if (options_.batch_invalidations) {
    std::unordered_map<std::string, std::size_t> frame_of_site;
    for (const net::Invalidation& invalidation : invalidations) {
      if (invalidation.type != net::MessageType::kInvalidateUrl) {
        frames.push_back(Frame{invalidation.client_id,
                               net::EncodeLine(invalidation),
                               {std::string()}});
        continue;
      }
      const auto [it, inserted] =
          frame_of_site.try_emplace(invalidation.client_id, frames.size());
      if (inserted) {
        frames.push_back(Frame{invalidation.client_id, {}, {}});
      }
      frames[it->second].urls.push_back(invalidation.url);
    }
    for (Frame& frame : frames) {
      if (!frame.line.empty()) continue;  // already-encoded INVSRV
      frame.line = net::EncodeLine(
          net::Message(net::BatchInvalidation{frame.client_id, frame.urls}));
    }
  } else {
    for (const net::Invalidation& invalidation : invalidations) {
      std::vector<std::string> urls;
      urls.push_back(invalidation.url);
      frames.push_back(Frame{invalidation.client_id,
                             net::EncodeLine(invalidation), std::move(urls)});
    }
  }

  std::size_t pushed = 0;
  for (const Frame& frame : frames) {
    const auto port = ParseClientPort(frame.client_id);
    if (!port.has_value()) {
      WEBCC_LOG_WARN("live: client id '%s' has no callback port",
                     frame.client_id.c_str());
      continue;
    }
    IoError error = IoError::kOther;
    for (int attempt = 0; attempt <= options_.push_retries; ++attempt) {
      if (attempt > 0) {
        // A stalled (but alive) proxy gets the bounded retry the replay
        // models with SendReliable's backoff; a refused connection means
        // the proxy is down and is not retried — its recovery path
        // (mark-all-questionable) covers consistency, exactly the paper's
        // failure handling.
        push_retries_.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            options_.push_retry_backoff_ms * attempt));
      }
      error = SendOneWayClassified(*port, frame.line, options_.push_timeout_ms);
      if (error != IoError::kTimeout) break;
    }
    if (error == IoError::kNone) {
      // Delivery is traced at the proxy when it applies the message (the
      // replay emits kInvalidateDelivered at the cache, not the sender).
      pushed += frame.urls.size();
      invalidations_pushed_.fetch_add(frame.urls.size());
      invalidation_frames_pushed_.fetch_add(1);
    } else {
      if (error == IoError::kTimeout) {
        pushes_timed_out_.fetch_add(1);
      } else {
        pushes_refused_.fetch_add(1);
      }
      for (const std::string& url : frame.urls) {
        obs::Emit(options_.trace_sink,
                  {.type = error == IoError::kTimeout
                               ? obs::EventType::kInvalidateGaveUp
                               : obs::EventType::kInvalidateRefused,
                   .at = Now(),
                   .url = url,
                   .site = frame.client_id});
      }
    }
  }
  return pushed;
}

void LiveServer::AcceptLoop() {
  while (running_.load()) {
    TcpStream stream = listener_->Accept();
    if (!stream.valid()) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(std::move(stream));
  }
}

void LiveServer::HandleConnection(TcpStream stream) {
  stream.SetReadTimeout(5000);
  const std::optional<std::string> line = stream.ReadLine();
  if (!line.has_value()) return;
  const std::optional<net::Message> message = net::DecodeLine(*line);
  if (!message.has_value()) {
    stream.WriteAll("ERR malformed\n");
    return;
  }
  const core::consistency::Traits& traits = policy_->traits();

  if (const auto* request = std::get_if<net::Request>(&*message)) {
    std::optional<net::Reply> reply;
    {
      const util::MutexLock lock(mutex_);
      const Time now = Now();
      // Protocols without invalidation callbacks run no accelerator: no
      // site registration, no leases — the origin answers directly, as in
      // the replay's non-invalidation routing.
      reply = traits.invalidation_callbacks
                  ? accel_.HandleRequest(*request, now)
                  : origin_.Handle(*request, now);
      if (reply.has_value()) {
        // PCV: bulk-validate the piggybacked batch against the file
        // system; only the invalid entries are echoed back.
        if (traits.piggyback_validation && !request->pcv_queries.empty()) {
          std::vector<core::PcvItem> items;
          items.reserve(request->pcv_queries.size());
          for (const net::PcvQuery& query : request->pcv_queries) {
            items.push_back(
                core::PcvItem{query.url, query.owner, query.last_modified});
          }
          for (core::PcvVerdict& verdict :
               core::ValidatePiggyback(docs_, items)) {
            if (!verdict.invalid) continue;
            reply->pcv_invalid.push_back(net::PcvStale{
                std::move(verdict.url), std::move(verdict.owner)});
          }
        }
        // PSI: attach the documents modified since this proxy's previous
        // contact and advance its cursor (keyed by the callback port that
        // identifies the proxy, like the replay's per-pseudo-client
        // cursors).
        if (traits.piggyback_invalidation) {
          const std::uint16_t proxy =
              ParseClientPort(request->client_id).value_or(0);
          Time& cursor = psi_cursor_[proxy];
          core::ModificationLog::Window window = mod_log_.CollectSince(
              cursor, now, options_.piggyback.max_invalidations_per_reply);
          cursor = std::max(cursor, window.advanced_to);
          reply->psi_modified = std::move(window.urls);
        }
      }
    }
    if (!reply.has_value()) {
      stream.WriteAll("ERR notfound\n");
      return;
    }
    requests_served_.fetch_add(1);
    obs::Emit(options_.trace_sink,
              {.type = reply->type == net::MessageType::kReply200
                           ? obs::EventType::kReply200
                           : obs::EventType::kReply304,
               .at = Now(),
               .url = reply->url,
               .site = request->client_id});
    stream.WriteAll(net::EncodeLine(*reply));
    return;
  }

  if (const auto* notify = std::get_if<net::Notify>(&*message)) {
    // Out-of-band check-in (the replay drives TouchDocument directly; a
    // remote modifier can also announce an already-applied edit). Weak
    // protocols owe no fan-out — the check-in is acknowledged and dropped.
    std::vector<net::Invalidation> invalidations;
    if (policy_->OnWrite().fan_out_invalidations) {
      const util::MutexLock lock(mutex_);
      invalidations = accel_.HandleNotify(*notify, Now());
    }
    const std::size_t pushed = PushInvalidations(invalidations);
    stream.WriteAll("OK " + std::to_string(pushed) + "\n");
    return;
  }

  stream.WriteAll("ERR unsupported\n");
}

}  // namespace webcc::live
