// Hierarchical-caching mode (Section 7): a shared parent proxy between the
// pseudo-clients and the server. The parent serves leaf GETs from its own
// cache, fetches through as site "parent", remembers per-document leaf
// interest, and forwards invalidations down to the leaves that fetched the
// document since the last invalidation.
#include "http/cache_key.h"
#include "obs/event.h"
#include "replay/engine.h"
#include "replay/engine_impl.h"

namespace webcc::replay::detail {

void Engine::ParentHandle(const net::Request& request, int client_index,
                          std::uint64_t seq, Time trace_time) {
  // Remember this leaf's interest so an invalidation can be forwarded.
  parent_table_->Register(request.url, "leaf-" + std::to_string(client_index),
                          net::MessageType::kGet, trace_time);

  http::CacheEntry* entry = parent_cache_->Lookup(
      http::ComposeCacheKey(request.url, "parent"), trace_time);
  if (entry != nullptr && !entry->questionable &&
      request.type == net::MessageType::kGet) {
    // Served from the parent's shared cache: no server involvement.
    ++metrics_.parent_hits;
    net::Reply reply;
    reply.type = net::MessageType::kReply200;
    reply.url = request.url;
    reply.body_bytes = entry->size_bytes;
    reply.last_modified = entry->last_modified;
    reply.version = entry->version;
    ++metrics_.replies_200;
    obs::Emit(sink_, {.type = obs::EventType::kReply200,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = reply.url,
                      .site = request.client_id});
    metrics_.message_bytes += net::WireSize(reply);
    const auto scaled_body = static_cast<std::uint64_t>(
        static_cast<double>(reply.body_bytes) / config_.size_scale);
    const std::uint64_t wire_bytes =
        net::kControlHeaderBytes + reply.url.size() + scaled_body;
    const Time ready =
        parent_cpu_->Enqueue(config_.client_costs.proxy_hit_time);
    sim_.At(ready, [this, client_index, seq, reply = std::move(reply),
                    owner = request.client_id, trace_time,
                    wire_bytes]() mutable {
      net_.Send(ParentNode(), clients_[client_index].node, wire_bytes,
                [this, client_index, seq, reply = std::move(reply),
                 owner = std::move(owner), trace_time]() mutable {
                  DeliverReply(client_index, seq, std::move(reply),
                               std::move(owner), trace_time);
                });
    });
    return;
  }

  // Miss (or a validation): fetch through to the server as "parent".
  ++metrics_.parent_fetches;
  const bool leaf_wanted_body = request.type == net::MessageType::kGet;
  net::Request upstream = request;
  std::string owner = request.client_id;
  upstream.client_id = "parent";
  if (entry != nullptr && request.type == net::MessageType::kGet) {
    // Questionable parent copy revalidates rather than refetching.
    upstream.type = net::MessageType::kIfModifiedSince;
    upstream.if_modified_since = entry->last_modified;
  }
  const std::uint64_t wire = net::WireSize(upstream);
  metrics_.message_bytes += wire;
  net_.Send(ParentNode(), ServerNode(), wire,
            [this, upstream = std::move(upstream), client_index, seq,
             owner = std::move(owner), leaf_wanted_body,
             trace_time]() mutable {
              ServerHandleForParent(std::move(upstream), client_index, seq,
                                    std::move(owner), leaf_wanted_body,
                                    trace_time);
            });
}

void Engine::ServerHandleForParent(net::Request request, int client_index,
                                   std::uint64_t seq, std::string owner,
                                   bool leaf_wanted_body, Time trace_time) {
  std::optional<net::Reply> reply = accel_.HandleRequest(request, trace_time);
  WEBCC_CHECK_MSG(reply.has_value(), "trace referenced an unknown document");

  const bool transfer = reply->type == net::MessageType::kReply200;
  const http::ServerCosts& costs = config_.server_costs;
  server_disk_.utilization().AddWrite();
  server_disk_.Enqueue(costs.disk_op);
  Time ready = server_cpu_.Enqueue(transfer ? costs.request_cpu_200
                                            : costs.request_cpu_304);
  if (transfer) {
    server_disk_.utilization().AddRead();
    ready = std::max(ready, server_disk_.Enqueue(costs.disk_op));
  }
  // Hop-2 replies are counted via parent_fetches; bytes are real traffic.
  metrics_.message_bytes += net::WireSize(*reply);
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply->body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes =
      net::kControlHeaderBytes + reply->url.size() + scaled_body;

  sim_.At(ready, [this, client_index, seq, reply = std::move(*reply),
                  owner = std::move(owner), leaf_wanted_body, trace_time,
                  wire_bytes]() mutable {
    net_.Send(ServerNode(), ParentNode(), wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), leaf_wanted_body,
               trace_time]() mutable {
                ParentReceiveReply(std::move(reply), client_index, seq,
                                   std::move(owner), leaf_wanted_body,
                                   trace_time);
              });
  });
}

void Engine::ParentReceiveReply(net::Reply reply, int client_index,
                                std::uint64_t seq, std::string owner,
                                bool leaf_wanted_body, Time trace_time) {
  const std::string parent_key = http::ComposeCacheKey(reply.url, "parent");
  if (reply.type == net::MessageType::kReply200) {
    http::CacheEntry entry;
    entry.key = parent_key;
    entry.url = reply.url;
    entry.owner = "parent";
    entry.size_bytes = reply.body_bytes;
    entry.last_modified = reply.last_modified;
    entry.version = reply.version;
    entry.fetched_at = trace_time;
    parent_cache_->Insert(std::move(entry), trace_time);
  } else {
    http::CacheEntry* entry = parent_cache_->Peek(parent_key);
    if (entry == nullptr && leaf_wanted_body) {
      // The parent's copy was evicted while this validation was in flight:
      // the 304 certifies a copy that no longer exists. Refetch it so the
      // leaf's GET is answered with a body.
      ++metrics_.parent_fetches;
      net::Request refetch;
      refetch.type = net::MessageType::kGet;
      refetch.url = reply.url;
      refetch.client_id = "parent";
      const std::uint64_t wire = net::WireSize(refetch);
      metrics_.message_bytes += wire;
      net_.Send(ParentNode(), ServerNode(), wire,
                [this, refetch = std::move(refetch), client_index, seq,
                 owner = std::move(owner), trace_time]() mutable {
                  ServerHandleForParent(std::move(refetch), client_index, seq,
                                        std::move(owner),
                                        /*leaf_wanted_body=*/true, trace_time);
                });
      return;
    }
    if (entry != nullptr) {
      entry->questionable = false;
      if (leaf_wanted_body) {
        // The leaf asked for a body but the server certified the parent's
        // copy fresh: serve the revalidated copy as a 200.
        reply.type = net::MessageType::kReply200;
        reply.body_bytes = entry->size_bytes;
        reply.version = entry->version;
      }
    }
  }

  // Forward to the leaf (this is the leaf-facing reply).
  if (reply.type == net::MessageType::kReply200) {
    ++metrics_.replies_200;
  } else {
    ++metrics_.replies_304;
  }
  obs::Emit(sink_, {.type = reply.type == net::MessageType::kReply200
                                ? obs::EventType::kReply200
                                : obs::EventType::kReply304,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = reply.url,
                    .site = owner});
  metrics_.message_bytes += net::WireSize(reply);
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply.body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes =
      net::kControlHeaderBytes + reply.url.size() + scaled_body;
  const Time ready = parent_cpu_->Enqueue(config_.client_costs.proxy_hit_time);
  sim_.At(ready, [this, client_index, seq, reply = std::move(reply),
                  owner = std::move(owner), trace_time,
                  wire_bytes]() mutable {
    net_.Send(ParentNode(), clients_[client_index].node, wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), trace_time]() mutable {
                DeliverReply(client_index, seq, std::move(reply),
                             std::move(owner), trace_time);
              });
  });
}

void Engine::ParentDeliverInvalidation(const std::string& url,
                                       std::uint64_t mod_id) {
  parent_cache_->EraseByUrl(url);
  ++metrics_.invalidations_delivered;
  obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                    .at = sim_.now(),
                    .url = url,
                    .site = "parent"});

  // Forward to the leaf proxies that fetched this document since the last
  // invalidation; the write completes when they have all been reached. Leaf
  // forwards carry no lease (the parent holds the server-facing lease), so
  // they resolve only by delivery or target death, never by expiry.
  std::vector<std::string> leaves =
      parent_table_->TakeSitesForInvalidation(url, sim_.now());
  const auto pending = pending_mod_targets_.find(mod_id);
  if (pending != pending_mod_targets_.end()) {
    for (const std::string& leaf : leaves) {
      pending->second.delivery.AddTarget(leaf, net::kNoLease);
    }
  }
  for (const std::string& leaf : leaves) {
    // The interest table only ever holds names this engine registered, so a
    // parse failure means the table (not the trace) is corrupt.
    int index = -1;
    WEBCC_CHECK_MSG(ParseLeafIndex(leaf, index),
                    "malformed hierarchy site name: " + leaf);
    WEBCC_CHECK_MSG(index >= 0 && index < static_cast<int>(clients_.size()),
                    "hierarchy site name out of range: " + leaf);
    ++metrics_.hierarchy_forwards;
    net::Invalidation forward;
    forward.type = net::MessageType::kInvalidateUrl;
    forward.url = url;
    forward.client_id = leaf;
    metrics_.message_bytes += net::WireSize(forward);
    net_.SendReliable(
        ParentNode(), clients_[index].node, net::WireSize(forward),
        [this, url, index, mod_id, forward] {
          clients_[index].cache->EraseByUrl(url);
          ++metrics_.invalidations_delivered;
          obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                            .at = sim_.now(),
                            .url = url,
                            .site = forward.client_id});
          ResolveWriteTarget(mod_id, forward.client_id, /*dead=*/false);
        },
        [this, forward, mod_id](sim::Network::SendResult result,
                                Time done_at) {
          if (result == sim::Network::SendResult::kDelivered) return;
          ++metrics_.invalidations_refused;
          obs::Emit(sink_,
                    {.type = result == sim::Network::SendResult::kGaveUp
                                 ? obs::EventType::kInvalidateGaveUp
                                 : obs::EventType::kInvalidateRefused,
                     .at = done_at,
                     .url = forward.url,
                     .site = forward.client_id});
          ResolveWriteTarget(mod_id, forward.client_id, /*dead=*/true);
        },
        /*max_retries=*/-1);
  }

  // The parent's own slot (the server targeted "parent") is now resolved.
  ResolveWriteTarget(mod_id, "parent", /*dead=*/false);
}

void Engine::ParentDeliverServerNotice(const net::Invalidation& notice) {
  // Server-site recovery reaches the parent, which must assume everything
  // below it may be stale: its own cache and every leaf's become
  // questionable.
  parent_cache_->MarkAllQuestionable();
  for (PseudoClient& pc : clients_) {
    ++metrics_.hierarchy_forwards;
    metrics_.message_bytes += net::WireSize(notice);
    net_.Send(ParentNode(), pc.node, net::WireSize(notice),
              [&pc] { pc.cache->MarkAllQuestionable(); });
  }
  FinishRecoveryNotice();
}

}  // namespace webcc::replay::detail
