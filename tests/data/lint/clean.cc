// Fixture: a file every rule passes.
#include <map>
#include <string>

int Total(const std::map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) {
    total += value;
  }
  return total;
}
