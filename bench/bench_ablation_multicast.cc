// Ablation A3: unicast vs multicast invalidation fan-out.
//
// Section 5.2 suggests that invalidation should "either limit the number of
// invalidation messages for each document (see Section 6), or use multicast
// schemes". The two-tier bench covers the former; this ablation quantifies
// the latter: with multicast the server pays one send per modification
// regardless of site-list length.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Ablation: unicast vs multicast invalidation ===\n\n");

  // Twelve independent replays (six rows, unicast + multicast): generate
  // traces serially, then farm the runs across the available cores.
  const auto specs = replay::AllTableExperiments();
  for (const replay::ExperimentSpec& spec : specs) bench::TraceFor(spec.trace);
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size() * 2);
  for (const replay::ExperimentSpec& spec : specs) {
    replay::ReplayConfig unicast = replay::MakeReplayConfig(
        spec, core::Protocol::kInvalidation, bench::TraceFor(spec.trace));
    replay::ReplayConfig multicast = unicast;
    multicast.multicast_invalidation = true;
    configs.push_back(unicast);
    configs.push_back(multicast);
  }
  const std::vector<replay::ReplayMetrics> runs =
      replay::Farm::RunAll(configs);

  stats::Table table({"Trace", "inv msgs uni", "inv msgs multi", "bytes uni",
                      "bytes multi", "max lat uni", "max lat multi",
                      "max inval uni", "max inval multi"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const replay::ExperimentSpec& spec = specs[i];
    const replay::ReplayMetrics& uni = runs[2 * i];
    const replay::ReplayMetrics& multi = runs[2 * i + 1];

    table.AddRow(
        {spec.id,
         util::WithCommas(static_cast<std::int64_t>(uni.invalidation_messages())),
         util::WithCommas(
             static_cast<std::int64_t>(multi.invalidation_messages())),
         util::HumanBytes(uni.message_bytes),
         util::HumanBytes(multi.message_bytes),
         util::Fixed(uni.latency_ms.max() / 1000.0, 1) + "s",
         util::Fixed(multi.latency_ms.max() / 1000.0, 1) + "s",
         util::Fixed(uni.invalidation_time_ms.max() / 1000.0, 1) + "s",
         util::Fixed(multi.invalidation_time_ms.max() / 1000.0, 1) + "s"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Multicast collapses the server's fan-out cost to one send per\n"
      "modification: the thousand-message NASA fan-outs disappear from both\n"
      "the invalidation-time and worst-case-latency columns, attacking the\n"
      "same problem as decoupled sending but on the network side too.\n");
  return 0;
}
