#include "core/adaptive_ttl.h"

#include <algorithm>

#include "util/check.h"

namespace webcc::core {

Time ComputeAdaptiveTtl(const AdaptiveTtlConfig& config, Time now,
                        Time last_modified) {
  WEBCC_DCHECK(config.factor >= 0.0);
  WEBCC_DCHECK(config.min_ttl >= 0 && config.max_ttl >= config.min_ttl);
  const Time age = std::max<Time>(0, now - last_modified);
  const auto scaled =
      static_cast<Time>(config.factor * static_cast<double>(age));
  return std::clamp(scaled, config.min_ttl, config.max_ttl);
}

Time AdaptiveTtlExpiry(const AdaptiveTtlConfig& config, Time now,
                       Time last_modified) {
  return now + ComputeAdaptiveTtl(config, now, last_modified);
}

}  // namespace webcc::core
