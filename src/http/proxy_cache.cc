#include "http/proxy_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace webcc::http {

CacheEntry* ProxyCache::Lookup(const std::string& key) {
  const core::InternId id = keys_.Find(key);
  if (id == core::kNoInternId) return nullptr;
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

CacheEntry* ProxyCache::Peek(const std::string& key) {
  const core::InternId id = keys_.Find(key);
  if (id == core::kNoInternId) return nullptr;
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

void ProxyCache::PushTtlItem(const CacheEntry& entry) {
  if (entry.ttl_expires == kNeverExpires) return;
  ttl_heap_.push(
      TtlHeapItem{entry.ttl_expires, entry.heap_stamp_, entry.key_id_});
}

void ProxyCache::Insert(CacheEntry entry, Time now) {
  entry.key_id_ = keys_.Intern(entry.key);
  entry.url_id_ = urls_.Intern(entry.url);
  EraseById(entry.key_id_);  // replace semantics
  if (entry.size_bytes > capacity_bytes_) return;  // uncacheable
  while (bytes_used_ + entry.size_bytes > capacity_bytes_) EvictOne(now);

  entry.heap_stamp_ = next_stamp_++;
  bytes_used_ += entry.size_bytes;
  ++stats_.insertions;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key_id_] = lru_.begin();
  url_index_[lru_.front().url_id_].push_back(lru_.front().key_id_);
  PushTtlItem(lru_.front());
}

bool ProxyCache::Erase(const std::string& key) {
  const core::InternId id = keys_.Find(key);
  return id != core::kNoInternId && EraseById(id);
}

bool ProxyCache::EraseById(core::InternId key_id) {
  const auto it = index_.find(key_id);
  if (it == index_.end()) return false;
  ++stats_.erased;
  RemoveEntry(it->second);
  return true;
}

void ProxyCache::RemoveEntry(LruList::iterator it) {
  bytes_used_ -= it->size_bytes;
  const auto url_it = url_index_.find(it->url_id_);
  if (url_it != url_index_.end()) {
    std::vector<core::InternId>& keys = url_it->second;
    keys.erase(std::find(keys.begin(), keys.end(), it->key_id_));
    if (keys.empty()) url_index_.erase(url_it);
  }
  index_.erase(it->key_id_);
  lru_.erase(it);
  // Any TTL-heap items pointing at this key become stale and are skipped
  // lazily (their stamp no longer matches a live entry).
}

std::size_t ProxyCache::EraseByUrl(const std::string& url) {
  const core::InternId url_id = urls_.Find(url);
  if (url_id == core::kNoInternId) return 0;
  const auto it = url_index_.find(url_id);
  if (it == url_index_.end()) return 0;
  // Copy out: EraseById mutates the vector we are iterating.
  const std::vector<core::InternId> keys = it->second;
  std::size_t erased = 0;
  for (const core::InternId key_id : keys) erased += EraseById(key_id);
  return erased;
}

std::vector<CacheEntry*> ProxyCache::TakeExpired(Time now,
                                                 std::size_t max_items) {
  std::vector<CacheEntry*> expired;
  while (expired.size() < max_items && !ttl_heap_.empty()) {
    const TtlHeapItem& top = ttl_heap_.top();
    if (top.expires > now) break;
    const auto it = index_.find(top.key);
    if (it != index_.end() && it->second->heap_stamp_ == top.stamp) {
      expired.push_back(&*it->second);
    }
    ttl_heap_.pop();
  }
  return expired;
}

void ProxyCache::SetTtlExpiry(CacheEntry& entry, Time expires) {
  entry.ttl_expires = expires;
  entry.heap_stamp_ = next_stamp_++;
  PushTtlItem(entry);
}

void ProxyCache::EvictOne(Time now) {
  WEBCC_CHECK_MSG(!lru_.empty(), "eviction from an empty cache");

  if (policy_ == ReplacementPolicy::kExpiredFirstLru) {
    // Drop stale heap records, then evict the earliest-expiring entry if it
    // is actually expired.
    while (!ttl_heap_.empty()) {
      const TtlHeapItem& top = ttl_heap_.top();
      const auto it = index_.find(top.key);
      if (it == index_.end() || it->second->heap_stamp_ != top.stamp) {
        ttl_heap_.pop();
        continue;
      }
      if (top.expires <= now) {
        ++stats_.evictions;
        ++stats_.expired_evictions;
        obs::Emit(trace_sink_,
                  {.type = obs::EventType::kEviction,
                   .at = now,
                   .url = it->second->url,
                   .site = it->second->owner,
                   .detail = 1});
        RemoveEntry(it->second);
        ttl_heap_.pop();
        return;
      }
      break;  // earliest expiry is still fresh: fall back to LRU
    }
  }

  ++stats_.evictions;
  const auto victim = std::prev(lru_.end());
  obs::Emit(trace_sink_, {.type = obs::EventType::kEviction,
                          .at = now,
                          .url = victim->url,
                          .site = victim->owner});
  RemoveEntry(victim);
}

void ProxyCache::ExportMetrics(obs::MetricsRegistry& registry,
                               std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("insertions"), stats_.insertions);
  registry.SetCounter(name("evictions"), stats_.evictions);
  registry.SetCounter(name("expired_evictions"), stats_.expired_evictions);
  registry.SetCounter(name("erased"), stats_.erased);
  registry.SetCounter(name("bytes_used"), bytes_used_);
  registry.SetCounter(name("entries"), lru_.size());
}

void ProxyCache::MarkAllQuestionable() {
  for (CacheEntry& entry : lru_) entry.questionable = true;
}

std::size_t ProxyCache::MarkQuestionableWhere(
    const std::function<bool(const CacheEntry&)>& predicate) {
  std::size_t marked = 0;
  for (CacheEntry& entry : lru_) {
    if (!entry.questionable && predicate(entry)) {
      entry.questionable = true;
      ++marked;
    }
  }
  return marked;
}

}  // namespace webcc::http
