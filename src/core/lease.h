// Lease grants for the Section 6 lease-augmented invalidation schemes.
#pragma once

#include "core/policy.h"
#include "net/message.h"
#include "util/time.h"

namespace webcc::core {

// The absolute lease expiry a reply to `request_type` (kGet or
// kIfModifiedSince) earns at time `now`; net::kNoLease when leases are off
// (the server promises invalidations forever).
Time GrantLease(const LeaseConfig& config, net::MessageType request_type,
                Time now);

// True when a lease granted as `lease_until` is still in force at `now`.
// kNoLease never expires.
//
// Boundary semantics: a lease covers the HALF-OPEN interval
// [grant, lease_until) — at the exact expiry instant (now == lease_until)
// the lease is already dead. Both sides of the protocol must agree on this:
// the proxy stops serving locally and falls back to If-Modified-Since at
// that instant, and the server's invalidation table prunes the site at
// that same instant (it no longer owes an INVALIDATE). Agreeing on a
// half-open interval is what keeps the boundary safe for strong
// consistency: there is no instant where the proxy still trusts a copy
// the server has stopped promising to invalidate. Every expiry comparison
// goes through this predicate (engine, live proxy, invalidation table) —
// do not hand-roll `<=` / `<` checks at call sites.
//
// http::kNeverExpires (int64 max) also reads as active here via the `>`
// comparison, so proxy-side entries can use this predicate directly.
bool LeaseActive(Time lease_until, Time now);

}  // namespace webcc::core
