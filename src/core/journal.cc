#include "core/journal.h"

#include <charconv>
#include <cstdio>

#include "util/check.h"

namespace webcc::core {
namespace {

std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string ChecksumHex(std::string_view body) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  return buf;
}

// Splits `line` on single spaces into at most `max_fields` pieces; returns
// the count, or -1 when the line has more fields than expected.
int SplitFields(std::string_view line, std::string_view* fields,
                int max_fields) {
  int count = 0;
  while (!line.empty()) {
    if (count == max_fields) return -1;
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      fields[count++] = line;
      break;
    }
    fields[count++] = line.substr(0, space);
    line.remove_prefix(space + 1);
  }
  return count;
}

bool ParseI64(std::string_view text, std::int64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool ParseU64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

// Parses one checksummed line into an Entry. False = damaged.
bool ParseRecord(std::string_view line, SiteJournal::Entry& entry) {
  // "<hex16> <body>"
  if (line.size() < 18 || line[16] != ' ') return false;
  const std::string_view checksum = line.substr(0, 16);
  const std::string_view body = line.substr(17);
  if (ChecksumHex(body) != checksum) return false;
  std::string_view fields[4];
  const int count = SplitFields(body, fields, 4);
  if (count < 2 || fields[0].size() != 1) return false;
  entry.kind = fields[0][0];
  entry.url = std::string(fields[1]);
  switch (entry.kind) {
    case 'R': {
      if (count != 4) return false;
      entry.site = std::string(fields[2]);
      std::int64_t lease = 0;
      if (!ParseI64(fields[3], lease)) return false;
      entry.lease_until = lease;
      return true;
    }
    case 'I':
      return count == 2;
    case 'V': {
      if (count != 3) return false;
      return ParseU64(fields[2], entry.version);
    }
    default:
      return false;  // unknown record type: treat as damage
  }
}

}  // namespace

void SiteJournal::AppendLine(std::string_view body) {
  text_ += ChecksumHex(body);
  text_ += ' ';
  text_ += body;
  text_ += '\n';
  ++appends_;
}

void SiteJournal::AppendRegister(std::string_view url, std::string_view site,
                                 Time lease_until) {
  WEBCC_DCHECK(url.find(' ') == std::string_view::npos);
  WEBCC_DCHECK(site.find(' ') == std::string_view::npos);
  std::string body = "R ";
  body += url;
  body += ' ';
  body += site;
  body += ' ';
  body += std::to_string(lease_until);
  AppendLine(body);
}

void SiteJournal::AppendInvalidate(std::string_view url) {
  std::string body = "I ";
  body += url;
  AppendLine(body);
}

void SiteJournal::AppendVersion(std::string_view url, std::uint64_t version) {
  std::string body = "V ";
  body += url;
  body += ' ';
  body += std::to_string(version);
  AppendLine(body);
}

SiteJournal::ReplayResult SiteJournal::Replay(std::string_view text) {
  ReplayResult result;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t newline = text.find('\n', pos);
    if (newline == std::string_view::npos) {
      // Torn final record: the append never finished, so (append-before-act)
      // the action it describes never happened. Dropping it is exact.
      result.truncated_tail = true;
      break;
    }
    const std::string_view line = text.substr(pos, newline - pos);
    pos = newline + 1;
    if (result.damaged) {
      ++result.records_rejected;
      continue;
    }
    Entry entry;
    if (ParseRecord(line, entry)) {
      result.entries.push_back(std::move(entry));
    } else {
      // Mid-journal damage: everything from here is untrustworthy. The
      // caller must fall back to the conservative broadcast.
      result.damaged = true;
      ++result.records_rejected;
    }
  }
  result.records_applied = result.entries.size();
  return result;
}

}  // namespace webcc::core
