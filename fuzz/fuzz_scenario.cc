// Fuzz target: ScenarioConfig JSON (synth/scenario.h).
//
// Scenario files are hand-edited goldens, so the parser sees human
// mistakes. Invariants beyond memory safety: every rejection carries a
// non-empty error, and parse→serialize→parse is a fixpoint (the dialect
// FromJson accepts is exactly what ToJson emits). The file-level wrapper
// (ParseScenarioFile, which also swallows an "expect" block) must accept
// everything the config-level parser does.
#include <cstdint>
#include <string>
#include <string_view>

#include "synth/scenario.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  webcc::synth::ScenarioConfig config;
  std::string error;
  if (!webcc::synth::FromJson(text, config, error)) {
    if (error.empty()) __builtin_trap();  // rejections must say why
    return 0;
  }

  const std::string serialized = webcc::synth::ToJson(config);
  webcc::synth::ScenarioConfig reparsed;
  if (!webcc::synth::FromJson(serialized, reparsed, error)) __builtin_trap();
  if (webcc::synth::ToJson(reparsed) != serialized) __builtin_trap();

  webcc::synth::ScenarioFile file;
  if (!webcc::synth::ParseScenarioFile(text, file, error)) __builtin_trap();
  if (webcc::synth::ToJson(file.config) != serialized) __builtin_trap();
  return 0;
}
