#include "lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <vector>

namespace webcc::lint {
namespace {

constexpr std::string_view kDeterminismClock = "determinism-clock";
constexpr std::string_view kUnorderedIter = "unordered-iter-in-dump";
constexpr std::string_view kRawMutex = "raw-mutex";
constexpr std::string_view kEnumSwitchDefault = "enum-switch-default";
constexpr std::string_view kNakedSend = "naked-send";
constexpr std::string_view kScanPrune = "scan-prune";
constexpr std::string_view kNakedEvict = "naked-evict";

bool PathContains(std::string_view path, std::string_view piece) {
  return path.find(piece) != std::string_view::npos;
}

bool PathEndsWith(std::string_view path, std::string_view tail) {
  return path.size() >= tail.size() &&
         path.substr(path.size() - tail.size()) == tail;
}

// --- per-rule scoping -------------------------------------------------------

// The live stack and CLI run on real wall clocks; util owns the sanctioned
// clock/RNG plumbing itself. Everything else must be deterministic.
bool ClockRuleApplies(std::string_view path) {
  return !PathContains(path, "/live/") && !PathContains(path, "/cli/") &&
         !PathContains(path, "/util/");
}

bool RawMutexRuleApplies(std::string_view path) {
  return !PathEndsWith(path, "util/thread_annotations.h");
}

bool NakedSendRuleApplies(std::string_view path) {
  return !PathEndsWith(path, "live/socket.cc") &&
         !PathEndsWith(path, "live/socket.h");
}

// The wheel and the compact list own the sanctioned expiry machinery; every
// other file must index lease expiries through them instead of scanning.
bool ScanPruneRuleApplies(std::string_view path) {
  return !PathEndsWith(path, "core/timer_wheel.h") &&
         !PathEndsWith(path, "core/site_list.h");
}

// The eviction kernel and the cache that hosts it own the sanctioned
// byte-budget eviction loop; anywhere else, freeing budget by hand-rolled
// erase bypasses the policy (and its stats, trace events and tier logic).
bool NakedEvictRuleApplies(std::string_view path) {
  return !PathContains(path, "http/eviction/") &&
         !PathEndsWith(path, "http/proxy_cache.cc") &&
         !PathEndsWith(path, "http/proxy_cache.h");
}

// --- source text utilities --------------------------------------------------

// Removes comments, string literals and char literals from one line, given
// carry-over block-comment state. Keeps the line length roughly intact so
// findings point at sensible columns; replaced regions become spaces.
std::string StripNonCode(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      out += ' ';
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      i += 2;
      out += ' ';
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\' && i + 1 < line.size()) ++i;
        ++i;
      }
      if (i < line.size()) ++i;  // closing quote
      out += quote;              // keep a marker so "..." != empty
      out += quote;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

const std::set<std::string, std::less<>>& Keywords() {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",     "for",   "while",    "switch",        "catch",
      "return", "sizeof", "alignof", "static_assert", "decltype",
      "new",    "delete"};
  return kKeywords;
}

// Enum types whose switches must stay default-free so -Wswitch can prove
// exhaustiveness. Extend this list when adding a protocol-level enum.
const std::regex& EnumTypeRegex() {
  static const std::regex kRe(
      R"(\b(Protocol|LeaseMode|MessageType|EventType|FaultKind|HitAction|WriteCompleteKind|ServeKind|IoError|TraceName|ReplacementPolicy|EvictionPolicyKind|Completion)\b)");
  return kRe;
}

// Bare variable spellings that conventionally hold protocol enums here.
bool IsEnumishIdentifier(std::string_view trimmed) {
  return trimmed == "protocol" || trimmed == "mode" || trimmed == "kind" ||
         trimmed == "name" || trimmed == "type";
}

std::string Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Function names whose bodies are byte-stable output paths.
bool IsDumpFunctionName(const std::string& name) {
  static const std::regex kRe(
      R"(Dump|Snapshot|Serialize|Digest|Export|ToJson|WriteJson)");
  return std::regex_search(name, kRe);
}

// --- the scanner ------------------------------------------------------------

struct Region {
  bool in_dump = false;      // inside a Dump/Snapshot/... function
  bool is_switch = false;    // this region is a switch body
  bool switch_enum = false;  // ... over a protocol/lease enum
};

struct FileScanner {
  std::string_view path;
  std::vector<Finding>* findings;

  // allow()/allow-file() suppressions.
  std::set<std::pair<int, std::string>> line_allows;  // (line, rule)
  std::set<std::string, std::less<>> file_allows;

  std::vector<Region> regions;
  std::set<std::string, std::less<>> unordered_names;
  std::string stmt;            // code accumulated since the last ; { }
  std::string unordered_decl;  // pending unordered_* declaration text
  bool collecting_unordered = false;
  // Last line that touched authoritative lease state (lease_until /
  // LeaseActive); an iterator-erase shortly after is a scan-prune loop.
  int last_lease_context_line = -1000;
  // Last line that touched a byte budget (bytes_used / capacity_bytes); an
  // erase/pop shortly after is a hand-rolled eviction loop.
  int last_budget_context_line = -1000;

  bool Suppressed(int line, std::string_view rule) const {
    if (file_allows.count(rule) != 0) return true;
    const std::string r(rule);
    return line_allows.count({line, r}) != 0 ||
           line_allows.count({line - 1, r}) != 0;
  }

  void Report(int line, std::string_view rule, std::string message) {
    if (Suppressed(line, rule)) return;
    for (const Finding& f : *findings) {
      if (f.line == line && f.rule == rule && f.file == path) return;
    }
    findings->push_back(
        {std::string(path), line, std::string(rule), std::move(message)});
  }

  bool InDump() const { return !regions.empty() && regions.back().in_dump; }

  // Declared-unordered tracking: accumulate a declaration until its ';',
  // then record the variable name.
  void FeedUnorderedDecl(const std::string& code) {
    if (!collecting_unordered) {
      if (code.find("unordered_map<") == std::string::npos &&
          code.find("unordered_set<") == std::string::npos) {
        return;
      }
      collecting_unordered = true;
      unordered_decl.clear();
    }
    unordered_decl += code;
    unordered_decl += ' ';
    if (code.find(';') == std::string::npos &&
        code.find('{') == std::string::npos) {
      return;
    }
    collecting_unordered = false;
    // Skip to the matching '>' of the outermost template argument list,
    // then take the first plain identifier after it as the variable name.
    const std::size_t open = unordered_decl.find('<');
    if (open == std::string::npos) return;
    int depth = 0;
    std::size_t i = open;
    for (; i < unordered_decl.size(); ++i) {
      if (unordered_decl[i] == '<') ++depth;
      if (unordered_decl[i] == '>' && --depth == 0) break;
    }
    if (i == unordered_decl.size()) return;
    static const std::regex kName(R"(([A-Za-z_][A-Za-z0-9_]*))");
    std::smatch m;
    std::string rest = unordered_decl.substr(i + 1);
    if (std::regex_search(rest, m, kName)) unordered_names.insert(m[1].str());
  }

  // Checks a complete statement (everything since the last ; { }) for a
  // range-for over a declared-unordered container inside a dump function.
  void CheckRangeFor(const std::string& statement, int line) {
    if (!InDump()) return;
    static const std::regex kRangeFor(R"(for\s*\(([^;()]|\([^)]*\))*:([^)]*)\))");
    std::smatch m;
    if (!std::regex_search(statement, m, kRangeFor)) {
      // Iterator-style walks (x.begin()) over unordered containers count
      // the same: the iteration order is still hash-table layout.
      static const std::regex kBegin(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*begin\s*\()");
      std::smatch b;
      std::string s = statement;
      while (std::regex_search(s, b, kBegin)) {
        if (unordered_names.count(b[1].str()) != 0) {
          Report(line, kUnorderedIter,
                 "iterating unordered container '" + b[1].str() +
                     "' in an output path; sort first or use an ordered "
                     "container");
          return;
        }
        s = b.suffix();
      }
      return;
    }
    const std::string range = m[2].str();
    static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
    for (std::sregex_iterator it(range.begin(), range.end(), kIdent), end;
         it != end; ++it) {
      if (unordered_names.count(it->str()) != 0) {
        Report(line, kUnorderedIter,
               "iterating unordered container '" + it->str() +
                   "' in an output path; sort first or use an ordered "
                   "container");
        return;
      }
    }
  }

  // Candidate function/switch detection for a statement that opens a brace.
  Region RegionFor(const std::string& statement) {
    Region region;
    region.in_dump = InDump();
    static const std::regex kSwitch(R"(\bswitch\s*\()");
    std::smatch sm;
    if (std::regex_search(statement, sm, kSwitch)) {
      region.is_switch = true;
      // Extract the condition: from the '(' to its matching ')'.
      std::size_t open =
          static_cast<std::size_t>(sm.position(0)) + sm.length(0) - 1;
      int depth = 0;
      std::size_t close = open;
      for (std::size_t i = open; i < statement.size(); ++i) {
        if (statement[i] == '(') ++depth;
        if (statement[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      const std::string cond =
          Trim(statement.substr(open + 1, close - open - 1));
      region.switch_enum = std::regex_search(cond, EnumTypeRegex()) ||
                           IsEnumishIdentifier(cond);
      return region;
    }
    // Function definition heuristic: the last identifier directly before a
    // '(' in the statement header, keywords excluded.
    static const std::regex kFunc(R"(([A-Za-z_][A-Za-z0-9_]*)\s*\()");
    std::string last;
    for (std::sregex_iterator it(statement.begin(), statement.end(), kFunc),
         end;
         it != end; ++it) {
      const std::string name = (*it)[1].str();
      if (Keywords().count(name) == 0) last = name;
    }
    if (!last.empty() && IsDumpFunctionName(last)) region.in_dump = true;
    return region;
  }

  void HandleDefault(int line) {
    for (auto it = regions.rbegin(); it != regions.rend(); ++it) {
      if (!it->is_switch) continue;
      if (it->switch_enum) {
        Report(line, kEnumSwitchDefault,
               "'default:' in a switch over a protocol enum hides missing "
               "cases from -Wswitch; enumerate every value");
      }
      return;
    }
  }
};

void ScanSimplePatterns(FileScanner& scanner, const std::string& code,
                        int line) {
  const std::string_view path = scanner.path;
  if (ClockRuleApplies(path)) {
    static const std::regex kClockType(
        R"(\b(std::)?(random_device|system_clock|steady_clock|high_resolution_clock)\b)");
    static const std::regex kClockCall(
        R"(\b(rand|srand|gettimeofday|clock_gettime|timespec_get|time|clock)\s*\()");
    std::smatch m;
    if (std::regex_search(code, m, kClockType)) {
      scanner.Report(line, kDeterminismClock,
                     "nondeterministic source '" + m.str() +
                         "' in replay code; use the simulated clock or a "
                         "seeded util::Rng");
    } else if (std::regex_search(code, m, kClockCall)) {
      scanner.Report(line, kDeterminismClock,
                     "nondeterministic call '" + m.str() +
                         "' in replay code; use the simulated clock or a "
                         "seeded util::Rng");
    }
  }
  if (RawMutexRuleApplies(path)) {
    static const std::regex kRawMutexRe(
        R"(\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|condition_variable|condition_variable_any)\b|#\s*include\s*<(mutex|condition_variable|shared_mutex)>)");
    std::smatch m;
    if (std::regex_search(code, m, kRawMutexRe)) {
      scanner.Report(line, kRawMutex,
                     "raw '" + Trim(m.str()) +
                         "' is invisible to thread-safety analysis; use "
                         "util::Mutex/MutexLock/CondVar "
                         "(util/thread_annotations.h)");
    }
  }
  if (ScanPruneRuleApplies(path)) {
    // Expired-lease removal must go through the timer wheel: a full-scan
    // iteration-erase loop is O(entries) per prune, which the million-site
    // lease sweep shows collapsing against the wheel's O(expired). Keyed on
    // the authoritative lease-state spellings so the (bounded) sweeps over
    // pending-write sets stay out of scope.
    // No trailing \b: members spell it `lease_until_`.
    static const std::regex kLeaseState(R"(\b(lease_until|LeaseActive))");
    if (std::regex_search(code, kLeaseState)) {
      scanner.last_lease_context_line = line;
    }
    static const std::regex kIterErase(
        R"(=\s*[A-Za-z_][A-Za-z0-9_.>\-]*\s*\.\s*erase\s*\(\s*[A-Za-z_][A-Za-z0-9_]*\s*\))");
    if (std::regex_search(code, kIterErase) &&
        line - scanner.last_lease_context_line <= 8) {
      scanner.Report(line, kScanPrune,
                     "iteration-erase prune over lease state scans every "
                     "entry; index expiries through core::TimerWheel "
                     "(see core/invalidation_table.cc)");
    }
  }
  if (NakedEvictRuleApplies(path)) {
    // Byte-budget eviction belongs to the eviction kernel: a loop that
    // balances bytes_used against capacity_bytes by erasing entries
    // reimplements victim choice outside the policy, losing its stats,
    // kEviction trace events and tier demotion. Keyed on the budget
    // spellings so ordinary container erases stay out of scope.
    // No trailing \b: members spell it `bytes_used_`.
    static const std::regex kBudget(R"(\b(bytes_used|capacity_bytes))");
    if (std::regex_search(code, kBudget)) {
      scanner.last_budget_context_line = line;
    }
    static const std::regex kShrink(R"(\.\s*(erase|pop_back|pop_front)\s*\()");
    if (std::regex_search(code, kShrink) &&
        line - scanner.last_budget_context_line <= 8) {
      scanner.Report(line, kNakedEvict,
                     "hand-rolled byte-budget eviction bypasses the "
                     "eviction kernel; route victim choice through "
                     "http::ProxyCache and src/http/eviction/");
    }
  }
  if (NakedSendRuleApplies(path) && PathContains(path, "live")) {
    static const std::regex kNaked(R"((::|\b)(send|recv)\s*\(|::(write|read)\s*\()");
    // The unclassified one-way helper collapses timeout/refused into one
    // bool, which the push/drain retry policy (and the batched sender's
    // partitioned-site hold) cannot act on. Invalidation pushes — outbox
    // drains included — must use SendOneWayClassified.
    static const std::regex kUnclassified(R"(\bSendOneWay\s*\()");
    std::smatch m;
    if (std::regex_search(code, m, kNaked)) {
      scanner.Report(line, kNakedSend,
                     "direct socket I/O '" + Trim(m.str()) +
                         "' bypasses the classified IoError path; go "
                         "through live/socket.h");
    } else if (std::regex_search(code, m, kUnclassified)) {
      scanner.Report(line, kNakedSend,
                     "unclassified 'SendOneWay(' loses the timeout/refused "
                     "distinction the push retry and partition-hold logic "
                     "depends on; use SendOneWayClassified");
    }
  }
}

}  // namespace

std::vector<std::string_view> RuleIds() {
  return {kDeterminismClock, kUnorderedIter, kRawMutex, kEnumSwitchDefault,
          kNakedSend, kScanPrune, kNakedEvict};
}

std::vector<Finding> LintFile(std::string_view path, std::string_view text) {
  std::vector<Finding> findings;
  FileScanner scanner;
  scanner.path = path;
  scanner.findings = &findings;

  // Pass 1: suppressions (pragmas live in comments, so scan raw lines).
  {
    static const std::regex kAllow(
        R"(webcc-lint:\s*(allow|allow-file)\(([a-z\-, ]+)\))");
    std::istringstream in{std::string(text)};
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      std::smatch m;
      std::string s = raw;
      while (std::regex_search(s, m, kAllow)) {
        std::istringstream rules(m[2].str());
        std::string rule;
        while (std::getline(rules, rule, ',')) {
          rule = Trim(rule);
          if (m[1].str() == "allow-file") {
            scanner.file_allows.insert(rule);
          } else {
            scanner.line_allows.insert({line, rule});
          }
        }
        s = m.suffix();
      }
    }
  }

  // Pass 2: the scan proper.
  std::istringstream in{std::string(text)};
  std::string raw;
  int line = 0;
  bool in_block_comment = false;
  while (std::getline(in, raw)) {
    ++line;
    const std::string code = StripNonCode(raw, in_block_comment);
    ScanSimplePatterns(scanner, code, line);
    scanner.FeedUnorderedDecl(code);

    static const std::regex kDefault(R"(\bdefault\s*:)");
    if (std::regex_search(code, kDefault)) scanner.HandleDefault(line);

    // Statement segmentation: braces and semicolons delimit the regions the
    // function/switch tracking needs.
    for (const char c : code) {
      if (c == '{') {
        scanner.stmt += c;
        scanner.CheckRangeFor(scanner.stmt, line);
        scanner.regions.push_back(scanner.RegionFor(scanner.stmt));
        scanner.stmt.clear();
      } else if (c == '}') {
        if (!scanner.regions.empty()) scanner.regions.pop_back();
        scanner.stmt.clear();
      } else if (c == ';') {
        scanner.stmt += c;
        scanner.CheckRangeFor(scanner.stmt, line);
        scanner.stmt.clear();
      } else {
        scanner.stmt += c;
      }
    }
    scanner.stmt += ' ';  // line break = token break
  }
  return findings;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               std::vector<std::string>& errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h") files.push_back(it->path().string());
      }
      if (ec) errors.push_back(path + ": " + ec.message());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      errors.push_back(path + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      errors.push_back(file + ": cannot open");
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Finding> file_findings = LintFile(file, text.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

void WriteFindings(std::ostream& out, const std::vector<Finding>& findings,
                   bool json) {
  for (const Finding& f : findings) {
    if (json) {
      // Paths and messages are ASCII without quotes; escape minimally.
      out << "{\"file\":\"" << f.file << "\",\"line\":" << f.line
          << ",\"rule\":\"" << f.rule << "\",\"message\":\"" << f.message
          << "\"}\n";
    } else {
      out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
    }
  }
}

int RunLintMain(const std::vector<std::string>& argv, std::ostream& out,
                std::ostream& err) {
  bool json = false;
  std::vector<std::string> paths;
  for (const std::string& arg : argv) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      out << "usage: webcc_lint [--json] <file-or-dir>...\n"
             "rules:";
      for (const std::string_view rule : RuleIds()) out << ' ' << rule;
      out << "\nexit: 0 clean, 1 findings, 2 errors\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "webcc_lint: unknown flag '" << arg << "'\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    err << "webcc_lint: no paths given (try: webcc_lint src)\n";
    return 2;
  }
  std::vector<std::string> errors;
  const std::vector<Finding> findings = LintPaths(paths, errors);
  WriteFindings(out, findings, json);
  for (const std::string& error : errors) {
    err << "webcc_lint: " << error << "\n";
  }
  if (!errors.empty()) return 2;
  if (!findings.empty()) {
    err << "webcc_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace webcc::lint
