#include "net/message.h"

namespace webcc::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kGet:
      return "GET";
    case MessageType::kIfModifiedSince:
      return "IMS";
    case MessageType::kReply200:
      return "200";
    case MessageType::kReply304:
      return "304";
    case MessageType::kInvalidateUrl:
      return "INV";
    case MessageType::kInvalidateServer:
      return "INVSRV";
    case MessageType::kNotify:
      return "NOTIFY";
  }
  return "?";
}

std::uint64_t WireSize(const Request& request) {
  return kControlHeaderBytes + request.url.size() + request.client_id.size();
}

std::uint64_t WireSize(const Reply& reply) {
  return kControlHeaderBytes + reply.url.size() + reply.body_bytes;
}

std::uint64_t WireSize(const Invalidation& invalidation) {
  return kControlHeaderBytes + invalidation.url.size() +
         invalidation.server.size() + invalidation.client_id.size();
}

std::uint64_t WireSize(const BatchInvalidation& batch) {
  // One header amortized over the whole URL list — the point of batching.
  std::uint64_t bytes = kControlHeaderBytes + batch.client_id.size();
  for (const std::string& url : batch.urls) bytes += url.size();
  return bytes;
}

std::uint64_t WireSize(const Notify& notify) {
  return kControlHeaderBytes + notify.url.size();
}

}  // namespace webcc::net
