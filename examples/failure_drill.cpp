// Failure drill: the three failure scenarios of Section 4, injected into a
// replay, with the consistency ledger printed after each.
//
//  1. A proxy crashes and recovers     -> marks everything questionable.
//  2. The server site crashes/recovers -> INVSRV broadcast to every site
//                                         the disk registry remembers.
//  3. A network partition separates a proxy from the server
//                                      -> TCP sends retry until heal.
//
// In every scenario the invalidation protocol must end the run with zero
// strong-consistency violations: stale reads are only ever served while the
// corresponding write has not yet completed.
#include <cstdio>

#include "replay/engine.h"
#include "stats/table.h"
#include "trace/workload.h"
#include "util/format.h"

using namespace webcc;

namespace {

trace::Trace MakeTrace() {
  trace::WorkloadConfig workload;
  workload.name = "failure-drill";
  workload.duration = 4 * kHour;
  workload.total_requests = 12000;
  workload.num_documents = 250;
  workload.num_clients = 120;
  workload.seed = 99;
  return trace::GenerateTrace(workload);
}

replay::ReplayMetrics Run(const trace::Trace& trace,
                          std::vector<replay::FailureEvent> failures) {
  replay::ReplayConfig config;
  config.protocol = core::Protocol::kInvalidation;
  config.trace = &trace;
  config.mean_lifetime = 8 * kHour;  // frequent modifications
  config.client_costs.request_timeout = 10 * kSecond;
  // This drill demonstrates the paper's blanket INVSRV recovery broadcast;
  // the journaled (targeted) flavour is exercised by `ctest -L fault`.
  config.journaled_recovery = false;
  config.failures = std::move(failures);
  return replay::RunReplay(config);
}

}  // namespace

int main() {
  const trace::Trace trace = MakeTrace();
  const Time quarter = trace.duration / 4;

  struct Scenario {
    const char* name;
    std::vector<replay::FailureEvent> failures;
  };
  const Scenario scenarios[] = {
      {"baseline (no failures)", {}},
      {"proxy crash + recovery",
       {{quarter, replay::FailureKind::kProxyCrash, 0},
        {2 * quarter, replay::FailureKind::kProxyRecover, 0}}},
      {"server crash + recovery",
       {{quarter, replay::FailureKind::kServerCrash, 0},
        {2 * quarter, replay::FailureKind::kServerRecover, 0}}},
      {"partition + heal",
       {{quarter, replay::FailureKind::kPartition, 1},
        {quarter + 30 * kMinute, replay::FailureKind::kHeal, 1}}},
  };

  stats::Table table({"Scenario", "Served", "Skipped", "Timeouts",
                      "Inval sent", "Refused", "INVSRV", "Stale(in-flight)",
                      "VIOLATIONS"});
  for (const Scenario& scenario : scenarios) {
    const replay::ReplayMetrics metrics = Run(trace, scenario.failures);
    table.AddRow(
        {scenario.name,
         util::WithCommas(static_cast<std::int64_t>(
             metrics.requests_issued - metrics.requests_skipped -
             metrics.request_timeouts)),
         util::WithCommas(static_cast<std::int64_t>(metrics.requests_skipped)),
         util::WithCommas(static_cast<std::int64_t>(metrics.request_timeouts)),
         util::WithCommas(
             static_cast<std::int64_t>(metrics.invalidations_sent)),
         util::WithCommas(
             static_cast<std::int64_t>(metrics.invalidations_refused)),
         util::WithCommas(static_cast<std::int64_t>(metrics.invsrv_sent)),
         util::WithCommas(static_cast<std::int64_t>(
             metrics.stale_while_invalidation_in_flight)),
         util::WithCommas(
             static_cast<std::int64_t>(metrics.strong_violations))});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "What to look for:\n"
      " - proxy crash: requests behind the dead proxy are lost (Skipped);\n"
      "   invalidations to it are refused, and on recovery it revalidates\n"
      "   everything before serving — so still no violations.\n"
      " - server crash: clients time out while it is down; on recovery the\n"
      "   INVSRV broadcast makes every site treat its copies as\n"
      "   questionable, covering modifications the accelerator missed.\n"
      " - partition: invalidations ride TCP retries until the heal; reads\n"
      "   during the partition may be stale, but only while the write is\n"
      "   still formally incomplete (the Stale(in-flight) column).\n");
  return 0;
}
