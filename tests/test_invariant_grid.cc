// Invariant grid: every protocol × modification-rate combination must
// uphold the engine's conservation and consistency invariants.
//
// This is the broadest net in the suite: it does not check specific
// numbers, only the properties that define a correct run, across the whole
// parameter plane the paper's evaluation moves in (lifetimes from minutes
// to months, all five protocols, both fan-out disciplines).
#include <gtest/gtest.h>

#include <string>

#include "replay/engine.h"
#include "trace/workload.h"
#include "util/check.h"

namespace webcc::replay {
namespace {

using core::Protocol;

struct GridPoint {
  Protocol protocol;
  Time mean_lifetime;
  bool serialized;
};

std::string GridName(const ::testing::TestParamInfo<GridPoint>& info) {
  std::string name;
  switch (info.param.protocol) {
    case Protocol::kAdaptiveTtl:
      name = "Ttl";
      break;
    case Protocol::kPollEveryTime:
      name = "Poll";
      break;
    case Protocol::kInvalidation:
      name = "Inval";
      break;
    case Protocol::kPiggybackValidation:
      name = "Pcv";
      break;
    case Protocol::kPiggybackInvalidation:
      name = "Psi";
      break;
  }
  name += "Life" + std::to_string(info.param.mean_lifetime / kMinute) + "m";
  name += info.param.serialized ? "Ser" : "Dec";
  return name;
}

class InvariantGridTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  static const trace::Trace& Trace() {
    static const trace::Trace trace = [] {
      trace::WorkloadConfig config;
      config.duration = 3 * kHour;
      config.total_requests = 2500;
      config.num_documents = 150;
      config.num_clients = 70;
      config.revisit_probability = 0.2;
      config.seed = 77;
      return trace::GenerateTrace(config);
    }();
    return trace;
  }
};

TEST_P(InvariantGridTest, ConservationAndConsistency) {
  const GridPoint point = GetParam();
  ReplayConfig config;
  config.protocol = point.protocol;
  config.trace = &Trace();
  config.mean_lifetime = point.mean_lifetime;
  config.serialized_invalidation = point.serialized;

  const ReplayMetrics m = RunReplay(config);

  // Conservation: every request resolves exactly once.
  EXPECT_EQ(m.requests_issued, Trace().records.size());
  EXPECT_EQ(m.local_hits + m.validated_hits + m.replies_200,
            m.requests_issued);
  EXPECT_EQ(m.request_timeouts, 0u);
  EXPECT_EQ(m.requests_skipped, 0u);

  // Request/reply pairing at the server.
  EXPECT_EQ(m.get_requests + m.ims_requests, m.replies_200 + m.replies_304);
  EXPECT_EQ(m.validated_hits, m.replies_304);

  // Consistency: strong protocols never violate; polling never serves
  // locally; invalidation's stale serves are all in-flight.
  EXPECT_EQ(m.strong_violations, 0u);
  if (point.protocol == Protocol::kPollEveryTime) {
    EXPECT_EQ(m.local_hits, 0u);
    EXPECT_EQ(m.stale_serves, 0u);
  }
  if (point.protocol == Protocol::kInvalidation) {
    EXPECT_EQ(m.stale_serves, m.stale_while_invalidation_in_flight);
    EXPECT_EQ(m.invalidations_delivered + m.invalidations_refused,
              m.invalidations_sent);
    EXPECT_EQ(m.invalidations_refused, 0u);  // nobody crashes in this grid
  } else {
    EXPECT_EQ(m.invalidations_sent, 0u);
  }

  // Latency sanity: one sample per request, positive, min <= mean <= max.
  EXPECT_EQ(m.latency_ms.count(), m.requests_issued);
  EXPECT_GT(m.latency_ms.min(), 0.0);
  EXPECT_LE(m.latency_ms.min(), m.latency_ms.mean());
  EXPECT_LE(m.latency_ms.mean(), m.latency_ms.max());

  // Load accounting present and bounded.
  EXPECT_GT(m.server_cpu_utilization, 0.0);
  EXPECT_LE(m.server_cpu_utilization, 1.0);
  EXPECT_GT(m.message_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Plane, InvariantGridTest,
    ::testing::Values(
        // Modification rates from frantic (minutes) to web-typical (weeks),
        // across all five protocols.
        GridPoint{Protocol::kAdaptiveTtl, 15 * kMinute, true},
        GridPoint{Protocol::kAdaptiveTtl, 4 * kHour, true},
        GridPoint{Protocol::kAdaptiveTtl, 30 * kDay, true},
        GridPoint{Protocol::kPollEveryTime, 15 * kMinute, true},
        GridPoint{Protocol::kPollEveryTime, 4 * kHour, true},
        GridPoint{Protocol::kPollEveryTime, 30 * kDay, true},
        GridPoint{Protocol::kInvalidation, 15 * kMinute, true},
        GridPoint{Protocol::kInvalidation, 15 * kMinute, false},
        GridPoint{Protocol::kInvalidation, 4 * kHour, true},
        GridPoint{Protocol::kInvalidation, 4 * kHour, false},
        GridPoint{Protocol::kInvalidation, 30 * kDay, true},
        GridPoint{Protocol::kPiggybackValidation, 15 * kMinute, true},
        GridPoint{Protocol::kPiggybackValidation, 4 * kHour, true},
        GridPoint{Protocol::kPiggybackValidation, 30 * kDay, true},
        GridPoint{Protocol::kPiggybackInvalidation, 15 * kMinute, true},
        GridPoint{Protocol::kPiggybackInvalidation, 4 * kHour, true},
        GridPoint{Protocol::kPiggybackInvalidation, 30 * kDay, true}),
    GridName);

// The same net over the deployment variants of the invalidation protocol.
struct VariantPoint {
  bool multicast;
  bool shared;
  bool hierarchical;
  const char* name;
};

class VariantGridTest : public ::testing::TestWithParam<VariantPoint> {};

TEST_P(VariantGridTest, ConservationAndConsistency) {
  const VariantPoint point = GetParam();
  trace::WorkloadConfig workload;
  workload.duration = 2 * kHour;
  workload.total_requests = 2000;
  workload.num_documents = 120;
  workload.num_clients = 60;
  workload.seed = 78;
  const trace::Trace trace = trace::GenerateTrace(workload);

  ReplayConfig config;
  config.protocol = Protocol::kInvalidation;
  config.trace = &trace;
  config.mean_lifetime = 3 * kHour;
  config.multicast_invalidation = point.multicast;
  config.shared_proxy_cache = point.shared;
  config.hierarchical = point.hierarchical;

  const ReplayMetrics m = RunReplay(config);
  EXPECT_EQ(m.local_hits + m.validated_hits + m.replies_200,
            m.requests_issued);
  EXPECT_EQ(m.strong_violations, 0u);
  EXPECT_EQ(m.request_timeouts, 0u);
  EXPECT_EQ(m.stale_serves, m.stale_while_invalidation_in_flight);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, VariantGridTest,
    ::testing::Values(VariantPoint{false, false, false, "flat"},
                      VariantPoint{true, false, false, "multicast"},
                      VariantPoint{false, true, false, "shared"},
                      VariantPoint{true, true, false, "sharedMulticast"},
                      VariantPoint{false, false, true, "hierarchical"},
                      VariantPoint{true, false, true,
                                   "hierarchicalMulticast"}),
    [](const ::testing::TestParamInfo<VariantPoint>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace webcc::replay
