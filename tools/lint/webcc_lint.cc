// CLI entry point; all logic lives in lint.cc so tests can link it.
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return webcc::lint::RunLintMain(args, std::cout, std::cerr);
}
