// Quickstart: generate a synthetic server workload, replay it under the
// three cache-consistency approaches, and compare the outcomes.
//
//   ./quickstart [requests] [mean_lifetime_hours]
//
// This is the library's whole pipeline in ~80 lines: trace synthesis
// (trace/), lock-step replay over the simulated testbed (replay/ + sim/),
// and the consistency protocols themselves (core/ + http/).
#include <cstdio>
#include <cstdlib>

#include "replay/engine.h"
#include "stats/table.h"
#include "trace/summary.h"
#include "trace/workload.h"
#include "util/format.h"

using namespace webcc;

int main(int argc, char** argv) {
  const std::uint64_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const double lifetime_hours = argc > 2 ? std::strtod(argv[2], nullptr) : 48;

  // 1. Synthesize a server trace: one day of traffic, Zipf-popular
  //    documents, lognormal sizes, a few hundred client sites.
  trace::WorkloadConfig workload;
  workload.name = "quickstart";
  workload.duration = kDay;
  workload.total_requests = requests;
  workload.num_documents = 800;
  workload.num_clients = 400;
  workload.seed = 42;
  const trace::Trace trace = trace::GenerateTrace(workload);

  const trace::TraceSummary summary = trace::Summarize(trace);
  std::printf("workload: %s requests, %llu documents (avg %s), "
              "hottest document seen by %llu clients\n\n",
              util::WithCommas(static_cast<std::int64_t>(
                                   summary.total_requests)).c_str(),
              static_cast<unsigned long long>(summary.num_files),
              util::HumanBytes(static_cast<std::uint64_t>(
                                   summary.avg_file_size_bytes)).c_str(),
              static_cast<unsigned long long>(summary.max_popularity));

  // 2. Replay it under each consistency approach. The modifier touches a
  //    random document on a fixed cadence, giving files the configured
  //    geometric mean lifetime.
  stats::Table table({"", "Adaptive TTL", "Poll-every-time", "Invalidation"});
  std::vector<replay::ReplayMetrics> runs;
  for (const core::Protocol protocol :
       {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
        core::Protocol::kInvalidation}) {
    replay::ReplayConfig config;
    config.protocol = protocol;
    config.trace = &trace;
    config.mean_lifetime = FromSeconds(lifetime_hours * 3600);
    runs.push_back(replay::RunReplay(config));
  }

  const auto row = [&table, &runs](const char* label, auto get) {
    std::vector<std::string> cells{label};
    for (const replay::ReplayMetrics& metrics : runs) {
      cells.push_back(get(metrics));
    }
    table.AddRow(std::move(cells));
  };
  row("Cache hits", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.cache_hits()));
  });
  row("Network messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("Bytes moved", [](const auto& m) {
    return util::HumanBytes(m.message_bytes);
  });
  row("Avg latency", [](const auto& m) {
    return util::Fixed(m.latency_ms.mean(), 1) + " ms";
  });
  row("Worst latency", [](const auto& m) {
    return util::Fixed(m.latency_ms.max(), 0) + " ms";
  });
  row("Server CPU", [](const auto& m) {
    return util::Fixed(m.server_cpu_utilization * 100, 1) + "%";
  });
  row("Stale serves", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.stale_serves));
  });
  row("Consistency violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "reading the table (the paper's conclusion):\n"
      " - invalidation matches adaptive TTL's traffic and load while never\n"
      "   serving stale data (strong consistency at weak-consistency cost);\n"
      " - poll-every-time is also strong but pays a validation round-trip\n"
      "   on every hit: more messages, more server CPU, higher latency.\n");
  return 0;
}
