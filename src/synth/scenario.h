// Synthetic-workload scenarios: the declarative input of the trace
// synthesizer (ROADMAP item 2), modeled on fault/plan.h's FaultPlan.
//
// A ScenarioConfig describes a whole workload the paper's five ITA traces
// could never produce — millions of client sites, chosen read/write mixes,
// LRU-stack-distance temporal locality, and phase schedules (flash crowds,
// diurnal bursts, write storms) — as pure data. Generation (generate.h) is
// a pure function of the config, so a scenario replays bit-identically on
// any machine and any farm worker count, and the golden corpus under
// tests/data/scenarios/ pins whole scenarios to expected metrics and trace
// digests exactly the way tests/data/fault_plans/ does.
//
// Configs round-trip through a small JSON dialect (times in seconds, the
// subset this file's parser accepts is exactly what ToJson emits, validated
// ranges only), parsed with the shared mini-JSON machinery (util/mini_json.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace webcc::synth {

enum class PhaseKind : std::uint8_t {
  kSteady,      // flat multiplier on request and write rates
  kFlashCrowd,  // rate spike with traffic focused on a hot document set
  kDiurnal,     // sinusoidal rate modulation over `period`
  kWriteBurst,  // write-rate spike (reads unchanged unless focused)
};

// Stable wire names ("steady", "flash_crowd", ...) used in the JSON form.
std::string_view PhaseKindName(PhaseKind kind);
bool ParsePhaseKindName(std::string_view name, PhaseKind& out);

struct Phase {
  PhaseKind kind = PhaseKind::kSteady;
  Time start = 0;     // trace time the phase window opens
  Time duration = 0;  // half-open window; 0 = to the end of the trace
  double rate_multiplier = 1.0;   // request-rate factor inside the window
  double write_multiplier = 1.0;  // write-rate factor inside the window
  // Fraction of in-window requests (and writes) redirected onto the hot
  // set — the `hot_docs` most popular documents. 0 leaves the Zipf draw.
  double focus = 0.0;
  std::uint32_t hot_docs = 1;
  // kDiurnal only: rate follows 1 + amplitude * sin(2*pi*(t-start)/period),
  // clipped at >= 0.05.
  double amplitude = 0.0;
  Time period = kDay;
};

struct ScenarioConfig {
  std::string name = "scenario";
  Time duration = kHour;
  std::uint64_t requests = 10000;
  std::uint32_t sites = 1000;      // distinct client sites (10^4..10^7 scale)
  std::uint32_t documents = 1000;
  // CDN-style multi-origin: documents are partitioned round-robin across
  // this many origin prefixes ("/o<K>/docs/...."). The replay server still
  // hosts them all; the prefix keys per-origin analysis and keeps URL sets
  // disjoint. 1 = single origin, the paper's topology.
  std::uint32_t origins = 1;

  double doc_zipf = 0.8;   // document-popularity exponent
  double site_zipf = 0.6;  // site-activity exponent

  // Writes as a fraction of all events: write_fraction = W / (R + W) where
  // R = `requests`. Writes become the replay's explicit modification
  // schedule (the modifier process), drawn Zipf(write_zipf) over popularity
  // ranks so hot documents change more often when write_zipf > 0.
  double write_fraction = 0.0;
  double write_zipf = 0.3;

  // Temporal locality, LRU-stack-distance model: with probability
  // `locality` a request re-references the document at depth d of the
  // global recency stack, d ~ Zipf(stack_theta) over [0, stack_depth);
  // otherwise it samples fresh from the popularity distribution. Either
  // way the referenced document moves to the stack head.
  double locality = 0.0;
  double stack_theta = 1.2;
  std::uint32_t stack_depth = 64;

  // Lognormal document sizes (clamped).
  double mean_size_bytes = 8.0 * 1024;
  double size_sigma = 1.2;
  std::uint64_t min_size_bytes = 128;
  std::uint64_t max_size_bytes = 1024 * 1024;

  // Negative/404 churn: this fraction of documents is *created mid-trace*
  // (uniform creation times). Requests before the creation model archival
  // 404 lookups; the cached miss is the document's initial version, and the
  // creation is its first modification event — "cache the miss, invalidate
  // on create" rides the ordinary invalidation machinery.
  double churn_fraction = 0.0;

  std::uint64_t seed = 1;
  std::vector<Phase> phases;
};

// Empty string when the config is generatable; otherwise a one-line
// description of the first violated constraint. FromJson enforces this, so
// a parsed scenario is always safe to hand to Generate().
std::string Validate(const ScenarioConfig& config);

// Sorts phases by (start, kind) — the canonical order ToJson relies on.
void Canonicalize(ScenarioConfig& config);

// Serializes the config (canonical order, times as fractional seconds).
std::string ToJson(const ScenarioConfig& config);

// Parses what ToJson writes (plus hand-edited goldens in the same dialect)
// and validates it. On failure returns false and sets `error`.
bool FromJson(std::string_view text, ScenarioConfig& out, std::string& error);

// A golden-corpus file: a scenario plus an "expect" object of metric name ->
// raw JSON value text (numbers kept as text so 64-bit digests survive).
struct ScenarioFile {
  ScenarioConfig config;
  std::map<std::string, std::string> expect;
};

bool ParseScenarioFile(std::string_view text, ScenarioFile& out,
                       std::string& error);

}  // namespace webcc::synth
