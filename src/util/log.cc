#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace webcc::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void Logf(LogLevel level, const char* format, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buffer[2048];
  int offset = std::snprintf(buffer, sizeof(buffer), "[webcc %s] ",
                             LevelTag(level));
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer + offset, sizeof(buffer) - offset, format, args);
  va_end(args);
  std::fprintf(stderr, "%s\n", buffer);
}

}  // namespace webcc::util
