#include "http/proxy_cache.h"

#include <utility>

#include "util/check.h"

namespace webcc::http {

CacheEntry* ProxyCache::Lookup(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

CacheEntry* ProxyCache::Peek(const std::string& key) {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &*it->second;
}

void ProxyCache::PushTtlItem(const CacheEntry& entry) {
  if (entry.ttl_expires == kNeverExpires) return;
  ttl_heap_.push(TtlHeapItem{entry.ttl_expires, entry.heap_stamp_, entry.key});
}

void ProxyCache::Insert(CacheEntry entry, Time now) {
  Erase(entry.key);  // replace semantics
  if (entry.size_bytes > capacity_bytes_) return;  // uncacheable
  while (bytes_used_ + entry.size_bytes > capacity_bytes_) EvictOne(now);

  entry.heap_stamp_ = next_stamp_++;
  bytes_used_ += entry.size_bytes;
  ++stats_.insertions;
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  url_index_[lru_.front().url].insert(lru_.front().key);
  PushTtlItem(lru_.front());
}

bool ProxyCache::Erase(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  ++stats_.erased;
  RemoveEntry(it->second);
  return true;
}

void ProxyCache::RemoveEntry(LruList::iterator it) {
  bytes_used_ -= it->size_bytes;
  const auto url_it = url_index_.find(it->url);
  if (url_it != url_index_.end()) {
    url_it->second.erase(it->key);
    if (url_it->second.empty()) url_index_.erase(url_it);
  }
  index_.erase(it->key);
  lru_.erase(it);
  // Any TTL-heap items pointing at this key become stale and are skipped
  // lazily (their stamp no longer matches a live entry).
}

std::size_t ProxyCache::EraseByUrl(const std::string& url) {
  const auto it = url_index_.find(url);
  if (it == url_index_.end()) return 0;
  // Copy out: Erase mutates the index we are iterating.
  const std::vector<std::string> keys(it->second.begin(), it->second.end());
  std::size_t erased = 0;
  for (const std::string& key : keys) erased += Erase(key);
  return erased;
}

std::vector<CacheEntry*> ProxyCache::TakeExpired(Time now,
                                                 std::size_t max_items) {
  std::vector<CacheEntry*> expired;
  while (expired.size() < max_items && !ttl_heap_.empty()) {
    const TtlHeapItem& top = ttl_heap_.top();
    if (top.expires > now) break;
    const auto it = index_.find(top.key);
    if (it != index_.end() && it->second->heap_stamp_ == top.stamp) {
      expired.push_back(&*it->second);
    }
    ttl_heap_.pop();
  }
  return expired;
}

void ProxyCache::SetTtlExpiry(CacheEntry& entry, Time expires) {
  entry.ttl_expires = expires;
  entry.heap_stamp_ = next_stamp_++;
  PushTtlItem(entry);
}

void ProxyCache::EvictOne(Time now) {
  WEBCC_CHECK_MSG(!lru_.empty(), "eviction from an empty cache");

  if (policy_ == ReplacementPolicy::kExpiredFirstLru) {
    // Drop stale heap records, then evict the earliest-expiring entry if it
    // is actually expired.
    while (!ttl_heap_.empty()) {
      const TtlHeapItem& top = ttl_heap_.top();
      const auto it = index_.find(top.key);
      if (it == index_.end() || it->second->heap_stamp_ != top.stamp) {
        ttl_heap_.pop();
        continue;
      }
      if (top.expires <= now) {
        ++stats_.evictions;
        ++stats_.expired_evictions;
        RemoveEntry(it->second);
        ttl_heap_.pop();
        return;
      }
      break;  // earliest expiry is still fresh: fall back to LRU
    }
  }

  ++stats_.evictions;
  RemoveEntry(std::prev(lru_.end()));
}

void ProxyCache::MarkAllQuestionable() {
  for (CacheEntry& entry : lru_) entry.questionable = true;
}

std::size_t ProxyCache::MarkQuestionableWhere(
    const std::function<bool(const CacheEntry&)>& predicate) {
  std::size_t marked = 0;
  for (CacheEntry& entry : lru_) {
    if (!entry.questionable && predicate(entry)) {
      entry.questionable = true;
      ++marked;
    }
  }
  return marked;
}

}  // namespace webcc::http
