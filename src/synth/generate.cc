#include "synth/generate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace webcc::synth {
namespace {

Time PhaseEnd(const Phase& phase, const ScenarioConfig& config) {
  return phase.duration == 0 ? config.duration : phase.start + phase.duration;
}

bool PhaseActive(const Phase& phase, const ScenarioConfig& config, Time t) {
  return t >= phase.start && t < PhaseEnd(phase, config);
}

double DiurnalFactor(const Phase& phase, Time t) {
  const double x =
      2.0 * M_PI * ToSeconds(t - phase.start) / ToSeconds(phase.period);
  return std::max(0.05, 1.0 + phase.amplitude * std::sin(x));
}

// Request-rate factor at time t: the product over active phases. Diurnal
// phases contribute their sinusoid on top of the flat multiplier.
double RateMultiplierAt(const ScenarioConfig& config, Time t) {
  double m = 1.0;
  for (const Phase& phase : config.phases) {
    if (!PhaseActive(phase, config, t)) continue;
    m *= phase.rate_multiplier;
    if (phase.kind == PhaseKind::kDiurnal) m *= DiurnalFactor(phase, t);
  }
  return m;
}

// Write-rate factor at time t. Writes ride the same diurnal curve as reads
// so a burst scenario keeps its read/write phase relationship.
double WriteMultiplierAt(const ScenarioConfig& config, Time t) {
  double m = 1.0;
  for (const Phase& phase : config.phases) {
    if (!PhaseActive(phase, config, t)) continue;
    m *= phase.write_multiplier;
    if (phase.kind == PhaseKind::kDiurnal) m *= DiurnalFactor(phase, t);
  }
  return m;
}

// The focus in force at time t: the latest-starting active phase with
// focus > 0 wins (phases are canonically sorted, so "last active wins" is
// deterministic). Returns 0 focus when no phase focuses traffic.
double FocusAt(const ScenarioConfig& config, Time t, std::uint32_t& hot_docs) {
  double focus = 0.0;
  hot_docs = 1;
  for (const Phase& phase : config.phases) {
    if (PhaseActive(phase, config, t) && phase.focus > 0.0) {
      focus = phase.focus;
      hot_docs = std::min(phase.hot_docs, config.documents);
    }
  }
  return focus;
}

// Allocates `count` event times across fixed-width buckets proportionally to
// the phase-modulated rate curve (evaluated at bucket midpoints), scattering
// uniformly within buckets. Shared by the request and write streams.
template <typename MultiplierFn>
std::vector<Time> ScheduleEvents(const ScenarioConfig& config,
                                 std::uint64_t count, util::Rng& rng,
                                 MultiplierFn&& multiplier_at) {
  const Time bucket_width = std::min<Time>(5 * kMinute, config.duration);
  const auto num_buckets = static_cast<std::size_t>(
      (config.duration + bucket_width - 1) / bucket_width);

  std::vector<double> weights(num_buckets);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const Time start = static_cast<Time>(b) * bucket_width;
    const Time end = std::min(start + bucket_width, config.duration);
    const Time mid = start + (end - start) / 2;
    // Floor keeps the distribution well-defined when every active phase
    // multiplies the rate to zero.
    weights[b] = std::max(1e-9, multiplier_at(config, mid)) *
                 ToSeconds(end - start);
  }
  util::DiscreteDistribution bucket_dist(weights);

  std::vector<Time> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bucket = bucket_dist.Sample(rng);
    const Time start = static_cast<Time>(bucket) * bucket_width;
    const Time end = std::min(start + bucket_width, config.duration);
    events.push_back(start + rng.NextInRange(0, end - start - 1));
  }
  std::sort(events.begin(), events.end());
  return events;
}

// Bounded global recency stack for the LRU-stack-distance locality model.
class RecencyStack {
 public:
  explicit RecencyStack(std::uint32_t depth) { stack_.reserve(depth + 1); }

  bool empty() const { return stack_.empty(); }
  std::size_t size() const { return stack_.size(); }
  trace::DocId At(std::size_t depth) const { return stack_[depth]; }

  void Touch(trace::DocId doc, std::uint32_t max_depth) {
    auto it = std::find(stack_.begin(), stack_.end(), doc);
    if (it != stack_.end()) stack_.erase(it);
    stack_.insert(stack_.begin(), doc);
    if (stack_.size() > max_depth) stack_.resize(max_depth);
  }

 private:
  std::vector<trace::DocId> stack_;  // front = most recently referenced
};

void MixBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
}

void MixU64(std::uint64_t& h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
  MixBytes(h, bytes, sizeof bytes);
}

void MixString(std::uint64_t& h, const std::string& s) {
  MixU64(h, s.size());
  MixBytes(h, s.data(), s.size());
}

}  // namespace

SynthWorkload Generate(const ScenarioConfig& input) {
  ScenarioConfig config = input;
  Canonicalize(config);
  const std::string problem = Validate(config);
  WEBCC_CHECK_MSG(problem.empty(), "invalid scenario: " + problem);

  util::Rng rng(config.seed);
  util::Rng size_rng = rng.Fork();
  util::Rng arrival_rng = rng.Fork();
  util::Rng pick_rng = rng.Fork();
  util::Rng write_rng = rng.Fork();
  util::Rng churn_rng = rng.Fork();

  SynthWorkload workload;
  trace::Trace& trace = workload.trace;
  trace.name = config.name;
  trace.duration = config.duration;

  // Documents: lognormal sizes; multi-origin scenarios partition paths
  // round-robin across per-origin prefixes so URL sets stay disjoint.
  trace.documents.reserve(config.documents);
  for (std::uint32_t d = 0; d < config.documents; ++d) {
    char path[64];
    if (config.origins > 1) {
      std::snprintf(path, sizeof path, "/o%u/docs/%06u.html",
                    d % config.origins, d);
    } else {
      std::snprintf(path, sizeof path, "/docs/%06u.html", d);
    }
    const double raw = util::SampleLognormal(size_rng, config.mean_size_bytes,
                                             config.size_sigma);
    const auto size = static_cast<std::uint64_t>(
        std::clamp(raw, static_cast<double>(config.min_size_bytes),
                   static_cast<double>(config.max_size_bytes)));
    trace.documents.push_back(trace::DocumentInfo{path, size});
  }

  // Client sites, dotted-quad identifiers (validated unique: sites < 2^24).
  trace.clients.reserve(config.sites);
  for (std::uint32_t c = 0; c < config.sites; ++c) {
    char id[32];
    std::snprintf(id, sizeof id, "10.%u.%u.%u", (c >> 16) & 0xff,
                  (c >> 8) & 0xff, c & 0xff);
    trace.clients.push_back(id);
  }

  // Popularity rank -> document id, shuffled so rank is independent of the
  // size-draw order (same trick as trace/workload.cc).
  std::vector<trace::DocId> doc_by_rank(config.documents);
  for (std::uint32_t d = 0; d < config.documents; ++d) doc_by_rank[d] = d;
  for (std::uint32_t d = config.documents; d > 1; --d) {
    std::swap(doc_by_rank[d - 1], doc_by_rank[pick_rng.NextBelow(d)]);
  }

  // Negative/404 churn: each document is independently created mid-trace
  // with probability churn_fraction, at a uniform time. The creation is the
  // document's first write; requests before it model archival 404 lookups.
  std::vector<Time> created_at(config.documents, 0);
  if (config.churn_fraction > 0.0) {
    for (std::uint32_t d = 0; d < config.documents; ++d) {
      if (churn_rng.NextBool(config.churn_fraction)) {
        created_at[d] = static_cast<Time>(
            churn_rng.NextBelow(static_cast<std::uint64_t>(config.duration)));
        workload.writes.push_back(trace::ModEvent{created_at[d], d});
      }
    }
  }

  const util::ZipfDistribution doc_dist(config.documents, config.doc_zipf);
  const util::ZipfDistribution site_dist(config.sites, config.site_zipf);
  const util::ZipfDistribution stack_dist(config.stack_depth,
                                          config.stack_theta);

  // Request stream.
  const std::vector<Time> arrivals = ScheduleEvents(
      config, config.requests, arrival_rng,
      [](const ScenarioConfig& c, Time t) { return RateMultiplierAt(c, t); });

  RecencyStack stack(config.stack_depth);
  trace.records.reserve(arrivals.size());
  for (const Time at : arrivals) {
    const auto client = static_cast<trace::ClientId>(site_dist.Sample(pick_rng));
    std::uint32_t hot_docs = 1;
    const double focus = FocusAt(config, at, hot_docs);
    trace::DocId doc;
    if (focus > 0.0 && pick_rng.NextBool(focus)) {
      doc = doc_by_rank[pick_rng.NextBelow(hot_docs)];
    } else if (config.locality > 0.0 && !stack.empty() &&
               pick_rng.NextBool(config.locality)) {
      const std::size_t depth =
          std::min(stack_dist.Sample(pick_rng), stack.size() - 1);
      doc = stack.At(depth);
    } else {
      doc = doc_by_rank[doc_dist.Sample(pick_rng)];
    }
    if (config.locality > 0.0) stack.Touch(doc, config.stack_depth);
    trace.records.push_back(trace::TraceRecord{at, client, doc});
  }

  // Write stream: write_fraction = W / (R + W), drawn Zipf(write_zipf) over
  // popularity ranks, riding the phase schedule's write multipliers.
  if (config.write_fraction > 0.0) {
    const double r = static_cast<double>(config.requests);
    const auto write_count = static_cast<std::uint64_t>(std::llround(
        r * config.write_fraction / (1.0 - config.write_fraction)));
    const util::ZipfDistribution write_dist(config.documents,
                                            config.write_zipf);
    const std::vector<Time> write_times = ScheduleEvents(
        config, write_count, write_rng,
        [](const ScenarioConfig& c, Time t) { return WriteMultiplierAt(c, t); });
    for (const Time at : write_times) {
      std::uint32_t hot_docs = 1;
      const double focus = FocusAt(config, at, hot_docs);
      trace::DocId doc = 0;
      // A churned document's first write must be its creation: redraw a few
      // times when the draw lands before the target's creation time.
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (focus > 0.0 && write_rng.NextBool(focus)) {
          doc = doc_by_rank[write_rng.NextBelow(hot_docs)];
        } else {
          doc = doc_by_rank[write_dist.Sample(write_rng)];
        }
        if (created_at[doc] <= at) break;
      }
      workload.writes.push_back(trace::ModEvent{at, doc});
    }
  }

  std::sort(workload.writes.begin(), workload.writes.end(),
            [](const trace::ModEvent& a, const trace::ModEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.doc < b.doc;
            });
  return workload;
}

std::uint64_t WorkloadDigest(const SynthWorkload& workload) {
  const trace::Trace& trace = workload.trace;
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  MixString(h, trace.name);
  MixU64(h, static_cast<std::uint64_t>(trace.duration));
  MixU64(h, trace.documents.size());
  for (const trace::DocumentInfo& doc : trace.documents) {
    MixString(h, doc.path);
    MixU64(h, doc.size_bytes);
  }
  MixU64(h, trace.clients.size());
  for (const std::string& client : trace.clients) MixString(h, client);
  MixU64(h, trace.records.size());
  for (const trace::TraceRecord& record : trace.records) {
    MixU64(h, static_cast<std::uint64_t>(record.timestamp));
    MixU64(h, record.client);
    MixU64(h, record.doc);
  }
  MixU64(h, workload.writes.size());
  for (const trace::ModEvent& event : workload.writes) {
    MixU64(h, static_cast<std::uint64_t>(event.at));
    MixU64(h, event.doc);
  }
  return h;
}

}  // namespace webcc::synth
