// Protocol message model.
//
// The protocol is the paper's: HTTP GET and If-Modified-Since requests,
// 200/304 replies, the check-in NOTIFY from the modification detector, and
// the INVALIDATE message type the paper adds to HTTP — carrying either a URL
// (delete that document) or a server address (mark every document from that
// server questionable, used on server-site recovery).
//
// Replies optionally carry a lease expiry for the Section 6 lease-augmented
// schemes; `kNoLease` denotes the unbounded lease of plain invalidation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace webcc::net {

enum class MessageType : std::uint8_t {
  kGet,
  kIfModifiedSince,
  kReply200,
  kReply304,
  kInvalidateUrl,
  kInvalidateServer,
  kNotify,
};

// Absolute lease expiry value meaning "never expires".
inline constexpr Time kNoLease = -1;

const char* MessageTypeName(MessageType type);

// PCV: one piggybacked validation candidate — a cached copy the proxy asks
// the server to bulk-validate while it is contacted anyway. Identified by
// (url, owner); proxy-local cache keys never cross the wire.
struct PcvQuery {
  std::string url;
  std::string owner;
  Time last_modified = 0;
};

// PCV reply: an invalid copy the proxy must drop. Valid candidates are
// implied (the proxy knows what it piggybacked) and are not echoed back.
struct PcvStale {
  std::string url;
  std::string owner;
};

struct Request {
  MessageType type = MessageType::kGet;  // kGet or kIfModifiedSince
  std::string url;
  // Identifier of the *real* client (the paper forwards it with each request
  // so the accelerator can register per-client cache sites).
  std::string client_id;
  // If-Modified-Since timestamp; ignored for kGet.
  Time if_modified_since = 0;
  // PCV piggyback batch; empty for every other protocol.
  std::vector<PcvQuery> pcv_queries;
};

struct Reply {
  MessageType type = MessageType::kReply200;  // kReply200 or kReply304
  std::string url;
  // Unscaled document size; 0 for 304s.
  std::uint64_t body_bytes = 0;
  Time last_modified = 0;
  // Monotone per-document version, used by the replay harness for exact
  // stale-serve accounting (not part of the paper's wire format).
  std::uint64_t version = 0;
  // Absolute expiry of the lease granted with this reply, or kNoLease.
  Time lease_until = kNoLease;
  // PCV: piggybacked candidates found invalid (subset of the request's
  // pcv_queries). Empty for every other protocol.
  std::vector<PcvStale> pcv_invalid;
  // PSI: documents modified since this proxy's previous server contact.
  std::vector<std::string> psi_modified;
};

struct Invalidation {
  MessageType type = MessageType::kInvalidateUrl;
  // kInvalidateUrl: the document to drop. kInvalidateServer: empty.
  std::string url;
  // kInvalidateServer: the origin whose documents become questionable.
  std::string server;
  // The real client whose cache entry is addressed.
  std::string client_id;
  // Bookkeeping carried alongside (not on the wire; WireSize ignores both):
  // the lease expiry the target holds — the write may complete without this
  // site's ack once the lease lapses (Section 6) — and whether this
  // invalidation belongs to crash recovery rather than a live write.
  Time lease_until = kNoLease;
  bool recovery = false;
};

// Batched invalidation: one wire frame carrying every URL the sender has
// pending for one site. Produced by the sharded accelerator's outbox drain
// (INVB on the wire); semantically equivalent to one kInvalidateUrl
// Invalidation per listed URL, delivered and acked as a unit. The header
// cost is charged once per frame instead of once per URL — the batching
// win measured by bench_ablation_decoupled.
struct BatchInvalidation {
  // The real client whose cache entries are addressed.
  std::string client_id;
  std::vector<std::string> urls;  // at least one
};

// Check-in notification from the modification detector to the accelerator.
struct Notify {
  std::string url;
};

// --- wire-size accounting --------------------------------------------------
// Sizes used for the byte columns of Tables 3/4: a typical HTTP header
// footprint plus variable parts, with 200 replies adding their body.
// Piggyback sections are deliberately NOT included here: the replay
// accounts for them via core::Pcv*/PsiReplyExtraBytes, keeping the paper's
// byte columns stable.

inline constexpr std::uint64_t kControlHeaderBytes = 180;

std::uint64_t WireSize(const Request& request);
std::uint64_t WireSize(const Reply& reply);
std::uint64_t WireSize(const Invalidation& invalidation);
std::uint64_t WireSize(const BatchInvalidation& batch);
std::uint64_t WireSize(const Notify& notify);

}  // namespace webcc::net
