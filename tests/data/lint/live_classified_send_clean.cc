// Fixture counterpart: the same outbox drain through the classified
// helper — no naked-send finding.
enum class IoError { kNone, kTimeout, kPeerReset };
IoError SendOneWayClassified(unsigned short port, const char* line,
                             int timeout_ms);

int DrainOutbox(unsigned short port, const char* frame) {
  return SendOneWayClassified(port, frame, 1000) == IoError::kNone ? 0 : 1;
}
