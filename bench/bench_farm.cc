// Measures the replay farm on the full Table 3+4 sweep (18 cells: six
// experiment rows under three protocols) across a 1/2/4/8 worker sweep,
// verifying along the way that every worker count produces identical
// simulations. Writes the "farm" top-level key of BENCH_farm.json (the
// "shard_sweep" key belongs to bench_ablation_decoupled):
//
//   "farm": {"bench": "farm", "hardware_concurrency": H, "cells": 18,
//            "worker_sweep": [{"workers": 1, "used_workers": 1,
//                              "wall_ms": ..., "speedup": 1.00}, ...],
//            "identical": true,
//            "tables": [{"table": "table3", "wall_ms": ...,
//                        "events_per_second": ...,
//                        "requests_per_second": ...}, ...],
//            "kernel_dispatch": {...}}
//
// speedup is each sweep point's wall time against the 1-worker point.
// hardware_concurrency is recorded because it explains sub-1.0 speedups:
// on a single-core host every extra worker only adds scheduling overhead,
// so the sweep documents the overhead instead of hiding it behind one
// unexplained cell. Per-table rates aggregate the farmed batch: total
// simulator events (or client requests) divided by the batch's wall-clock
// time. kernel_dispatch compares the consistency kernel's virtual call
// against a replica of the pre-refactor inlined switch over one decision
// stream; the exit code fails if the per-request overhead exceeds 1%.
//
// Flags: --workers N adds N to the sweep (default sweep is 1/2/4/8).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "replay/farm.h"

using namespace webcc;

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<replay::ReplayConfig> CellsFor(
    const std::vector<replay::ExperimentSpec>& specs) {
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(specs.size() * bench::PaperProtocolOrder().size());
  for (const replay::ExperimentSpec& spec : specs) {
    for (const core::Protocol protocol : bench::PaperProtocolOrder()) {
      configs.push_back(
          replay::MakeReplayConfig(spec, protocol, bench::TraceFor(spec.trace)));
    }
  }
  return configs;
}

struct BatchRun {
  double wall_ms = 0.0;
  std::vector<replay::ReplayMetrics> metrics;

  std::uint64_t TotalEvents() const {
    std::uint64_t total = 0;
    for (const replay::ReplayMetrics& m : metrics) total += m.sim_events_executed;
    return total;
  }
  std::uint64_t TotalRequests() const {
    std::uint64_t total = 0;
    for (const replay::ReplayMetrics& m : metrics) total += m.requests_issued;
    return total;
  }
};

BatchRun RunBatch(const std::vector<replay::ReplayConfig>& configs,
                  unsigned workers) {
  BatchRun run;
  const auto start = Clock::now();
  run.metrics = replay::Farm::RunAll(configs, workers);
  run.wall_ms = MillisSince(start);
  return run;
}

// Times one hit-decision stream through the pre-refactor inlined switch and
// through the kernel's virtual dispatch; the checksums double as a
// dead-code-elimination barrier and as a semantic-equivalence check.
struct DispatchTiming {
  double inlined_ns_per_op = 0.0;
  double kernel_ns_per_op = 0.0;
  bool identical = false;
};

DispatchTiming MeasureKernelDispatch() {
  constexpr std::size_t kEntries = 1 << 16;
  constexpr std::size_t kOps = std::size_t{1} << 24;
  const bench::DispatchWorkload workload =
      bench::MakeDispatchWorkload(kEntries);
  const std::size_t mask = kEntries - 1;

  std::uint64_t inlined_sum = 0;
  auto start = Clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::size_t j = i & mask;
    const auto decision =
        bench::InlinedOnHit(workload.protocols[j], workload.entries[j], 1);
    inlined_sum += static_cast<std::uint64_t>(decision.action) * 2 +
                   (decision.lease_renewal ? 1 : 0);
  }
  const double inlined_ms = MillisSince(start);

  std::uint64_t kernel_sum = 0;
  start = Clock::now();
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::size_t j = i & mask;
    const auto decision = workload.policies[j]->OnHit(workload.entries[j], 1);
    kernel_sum += static_cast<std::uint64_t>(decision.action) * 2 +
                  (decision.lease_renewal ? 1 : 0);
  }
  const double kernel_ms = MillisSince(start);

  DispatchTiming timing;
  timing.inlined_ns_per_op = inlined_ms * 1e6 / static_cast<double>(kOps);
  timing.kernel_ns_per_op = kernel_ms * 1e6 / static_cast<double>(kOps);
  timing.identical = inlined_sum == kernel_sum;
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<unsigned> sweep = {1, 2, 4, 8};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--workers") {
      const unsigned extra =
          static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
      if (extra > 0 &&
          std::find(sweep.begin(), sweep.end(), extra) == sweep.end()) {
        sweep.push_back(extra);
        std::sort(sweep.begin(), sweep.end());
      }
    }
  }

  const auto table3 = replay::Table3Experiments();
  const auto table4 = replay::Table4Experiments();
  const auto all_specs = replay::AllTableExperiments();
  // Trace generation is shared, cached, and not thread-safe: do it before
  // any farm starts (and outside every timed region).
  for (const replay::ExperimentSpec& spec : all_specs) {
    bench::TraceFor(spec.trace);
  }

  // The worker sweep: the 1-worker point is the serial baseline every other
  // point's speedup and identity are measured against.
  const auto all_cells = CellsFor(all_specs);
  std::vector<BatchRun> runs;
  runs.reserve(sweep.size());
  for (const unsigned workers : sweep) {
    runs.push_back(RunBatch(all_cells, workers));
  }
  const BatchRun& serial = runs.front();

  bool identical = true;
  for (const BatchRun& run : runs) {
    identical = identical && run.metrics.size() == serial.metrics.size();
    for (std::size_t i = 0; identical && i < serial.metrics.size(); ++i) {
      identical = replay::SameSimulation(serial.metrics[i], run.metrics[i]);
    }
  }

  // Per-table farmed batches for the per-table wall/rate numbers.
  const BatchRun t3 = RunBatch(CellsFor(table3), 0);
  const BatchRun t4 = RunBatch(CellsFor(table4), 0);

  // Kernel-dispatch overhead: the per-decision delta between the inlined
  // switch and the virtual call, expressed against the replay hot path's
  // per-request cost (from the single-worker sweep). The refactor's
  // acceptance bar is <= 1%.
  const DispatchTiming dispatch = MeasureKernelDispatch();
  const double ns_per_request =
      serial.wall_ms * 1e6 / static_cast<double>(serial.TotalRequests());
  const double dispatch_delta_ns =
      dispatch.kernel_ns_per_op - dispatch.inlined_ns_per_op;
  const double hot_path_overhead_percent =
      100.0 * (dispatch_delta_ns > 0.0 ? dispatch_delta_ns : 0.0) /
      ns_per_request;

  std::string sweep_json = "[";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const unsigned used = replay::Farm(sweep[i]).workers();
    char cell[160];
    std::snprintf(cell, sizeof(cell),
                  "%s{\"workers\": %u, \"used_workers\": %u, "
                  "\"wall_ms\": %.1f, \"speedup\": %.2f}",
                  i == 0 ? "" : ", ", sweep[i], used, runs[i].wall_ms,
                  runs[i].wall_ms > 0.0 ? serial.wall_ms / runs[i].wall_ms
                                        : 0.0);
    sweep_json += cell;
  }
  sweep_json += "]";

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\": \"farm\", \"hardware_concurrency\": %u, \"cells\": %zu, "
      "\"worker_sweep\": %s, \"identical\": %s, \"tables\": ["
      "{\"table\": \"table3\", \"wall_ms\": %.1f, "
      "\"events_per_second\": %.0f, \"requests_per_second\": %.0f}, "
      "{\"table\": \"table4\", \"wall_ms\": %.1f, "
      "\"events_per_second\": %.0f, \"requests_per_second\": %.0f}], "
      "\"kernel_dispatch\": {\"inlined_ns_per_op\": %.2f, "
      "\"kernel_ns_per_op\": %.2f, \"replay_ns_per_request\": %.0f, "
      "\"hot_path_overhead_percent\": %.4f, \"decisions_identical\": %s}}",
      std::max(1u, std::thread::hardware_concurrency()), all_cells.size(),
      sweep_json.c_str(), identical ? "true" : "false", t3.wall_ms,
      static_cast<double>(t3.TotalEvents()) / (t3.wall_ms / 1000.0),
      static_cast<double>(t3.TotalRequests()) / (t3.wall_ms / 1000.0),
      t4.wall_ms, static_cast<double>(t4.TotalEvents()) / (t4.wall_ms / 1000.0),
      static_cast<double>(t4.TotalRequests()) / (t4.wall_ms / 1000.0),
      dispatch.inlined_ns_per_op, dispatch.kernel_ns_per_op, ns_per_request,
      hot_path_overhead_percent, dispatch.identical ? "true" : "false");

  bench::WriteBenchJsonKey("BENCH_farm.json", "farm", json);
  return identical && dispatch.identical && hot_path_overhead_percent <= 1.0
             ? 0
             : 1;
}
