// Fixture pair of taint_violation.cc: the canonical collect-sort-emit
// idiom (see core/invalidation_table.cc) — the sort cleanses the
// hash-order taint before anything reaches the sink.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct SortedSink {
  void Emit(const std::string& label);
};

class SortedPublisher {
 public:
  void Publish() {
    std::vector<std::string> lines;
    for (const auto& [site, hits] : hits_) {
      lines.push_back(site + ":" + std::to_string(hits));
    }
    std::sort(lines.begin(), lines.end());
    for (const std::string& line : lines) {
      sink_.Emit(line);
    }
  }

 private:
  SortedSink sink_;
  std::unordered_map<std::string, int> hits_;
};
