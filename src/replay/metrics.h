// Everything a replay run measures — the union of the columns of the
// paper's Tables 3, 4 and 5 plus the exact staleness accounting the paper
// could only estimate.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "stats/latency.h"
#include "util/time.h"

namespace webcc::replay {

struct ReplayMetrics {
  // --- message counts (Tables 3/4) ----------------------------------------
  std::uint64_t get_requests = 0;
  std::uint64_t ims_requests = 0;
  std::uint64_t replies_200 = 0;
  std::uint64_t replies_304 = 0;
  std::uint64_t invalidations_sent = 0;   // INVALIDATE with a URL
  std::uint64_t invsrv_sent = 0;          // server-address INVALIDATE
  // Multicast mode: number of group sends (one per modification with a
  // non-empty site list); each replaces `list length` unicast sends.
  std::uint64_t multicast_sends = 0;
  // Batched mode: INVB wire frames sent (each carries >= 1 URLs for one
  // site) and queued invalidations absorbed into an already-pending
  // (site, url) entry instead of becoming new wire payload.
  std::uint64_t invalidation_frames_sent = 0;
  std::uint64_t invalidations_coalesced = 0;
  std::uint64_t message_bytes = 0;        // unscaled, all of the above

  // "Hits": requests satisfied without a file transfer. Local serves and
  // 304-validated serves both count, which is why polling's hit count
  // includes hits on stale copies, as the paper notes.
  std::uint64_t local_hits = 0;
  std::uint64_t validated_hits = 0;
  std::uint64_t cache_hits() const { return local_hits + validated_hits; }

  // Network-level invalidation message count: with multicast one group
  // send covers a whole site list; with batching one INVB frame covers
  // every pending URL for one site.
  std::uint64_t invalidation_messages() const {
    if (multicast_sends > 0) return multicast_sends;
    if (invalidation_frames_sent > 0) return invalidation_frames_sent;
    return invalidations_sent;
  }

  std::uint64_t total_messages() const {
    return get_requests + ims_requests + replies_200 + replies_304 +
           invalidation_messages() + invsrv_sent;
  }

  // --- client response time (wall), milliseconds --------------------------
  stats::LatencyStats latency_ms;

  // --- server load ---------------------------------------------------------
  double server_cpu_utilization = 0.0;
  double disk_reads_per_second = 0.0;
  double disk_writes_per_second = 0.0;
  Time wall_duration = 0;

  // --- staleness (ground truth) --------------------------------------------
  // Serves of an outdated version. For adaptive TTL these are the "stale
  // hits"; for invalidation a stale serve is legitimate exactly while the
  // client's invalidation is still in flight (the write has not completed).
  std::uint64_t stale_serves = 0;
  std::uint64_t stale_while_invalidation_in_flight = 0;
  // Stale serves after write completion: must be zero for both strong
  // protocols; the replay engine checks this invariant.
  std::uint64_t strong_violations = 0;

  // --- invalidation costs (Table 5) ----------------------------------------
  std::uint64_t sitelist_storage_bytes = 0;  // at end of run
  std::uint64_t sitelist_entries = 0;        // at end of run
  std::uint64_t sitelist_max_len_end = 0;    // longest list at end of run
  double sitelist_avg_len_at_mod = 0.0;      // over modified documents
  std::uint64_t sitelist_max_len_at_mod = 0;
  // Time for the server to push all invalidations of one modification.
  stats::LatencyStats invalidation_time_ms;
  // Batched mode: wall time an invalidation waited in the outbox before its
  // frame was drained (bounded by the batch window plus partition holds).
  stats::LatencyStats batch_flush_ms;
  // Per-shard sender occupancy (decoupled mode; zero when serialized): the
  // busiest shard's busy time and the sum over shards. The bench derives
  // per-shard throughput as wire URLs / max busy time.
  std::uint64_t inval_sender_busy_max_us = 0;
  std::uint64_t inval_sender_busy_total_us = 0;

  // --- hierarchy (parent proxy) ----------------------------------------------
  // Leaf misses answered from the parent's shared cache without a server
  // trip, and the parent's own upstream fetches (hop-2 requests; their
  // replies are implied). Existing request/reply counters remain
  // leaf-facing so conservation identities hold in every topology.
  std::uint64_t parent_hits = 0;
  std::uint64_t parent_fetches = 0;
  // INVALIDATE forwards from the parent to interested leaf proxies
  // (invalidations_sent counts only what the server itself sends).
  std::uint64_t hierarchy_forwards = 0;

  // Messages on the parent<->server link (hop-2 request + reply pairs).
  std::uint64_t hierarchy_messages() const { return 2 * parent_fetches; }

  // --- piggyback schemes (PCV / PSI) ----------------------------------------
  std::uint64_t pcv_items_piggybacked = 0;  // entries bulk-validated
  std::uint64_t pcv_invalidated = 0;        // entries found changed
  std::uint64_t psi_notices = 0;            // modified-url notices delivered
  std::uint64_t psi_entries_erased = 0;     // proxy entries purged by PSI

  // --- lease bookkeeping (Section 6) ---------------------------------------
  // IMS requests issued because a lease (not a TTL) had expired; the
  // "extra if-modified-since" cost of lease-augmented schemes.
  std::uint64_t lease_renewal_ims = 0;

  // --- write-delivery state machine (failure recovery) ----------------------
  // Writes whose delivery resolved (all acks, all leases expired/dead, or no
  // targets); equals the kWriteComplete event count.
  std::uint64_t write_completions = 0;
  // The subset unblocked by the Section 6 bound (a straggler's lease lapsed
  // or its proxy was known dead) rather than by a full ack set.
  std::uint64_t write_lease_expired_completions = 0;
  // Targeted kInvalidateUrl messages produced by journal-based recovery
  // (invsrv_sent counts the blanket broadcast of the journal-less path).
  std::uint64_t recovery_invalidations_sent = 0;
  std::uint64_t journal_rebuilds = 0;            // server restarts that replayed the WAL
  std::uint64_t journal_damaged_recoveries = 0;  // ... that found it damaged
  // Wall time from fan-out start to write completion, and the trace-time
  // span a write stayed incomplete (lock-step granular; the lease-bound
  // assertion in tests/test_fault_scenarios.cc reads this one).
  stats::LatencyStats write_completion_wall_ms;
  stats::LatencyStats write_blocked_trace_ms;
  // Trace-time age of the superseded copy at each stale serve; the weak
  // protocols' staleness is bounded by TTL, leases by lease duration.
  stats::LatencyStats stale_age_ms;

  // --- injected link faults (src/fault/) ------------------------------------
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t injected_delays = 0;

  // --- bookkeeping ----------------------------------------------------------
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_skipped = 0;  // pseudo-client was down
  std::uint64_t request_timeouts = 0;
  std::uint64_t modifications_applied = 0;
  std::uint64_t invalidations_delivered = 0;
  std::uint64_t invalidations_refused = 0;  // target proxy down
  std::uint64_t proxy_evictions = 0;
  std::uint64_t proxy_expired_evictions = 0;
  std::uint64_t proxy_oversize_rejections = 0;
  std::uint64_t proxy_tier2_promotions = 0;
  std::uint64_t proxy_tier2_demotions = 0;

  // --- hot-loop observability -----------------------------------------------
  // Simulator events executed and the event queue's high-water mark: the
  // denominator and the working-set size of the replay's inner loop.
  std::uint64_t sim_events_executed = 0;
  std::uint64_t sim_peak_queue_depth = 0;
  // Host (real) seconds this replay took; the only nondeterministic field,
  // excluded from SameSimulation().
  double host_seconds = 0.0;

  double events_per_second() const {
    return host_seconds > 0.0
               ? static_cast<double>(sim_events_executed) / host_seconds
               : 0.0;
  }
  double requests_per_second() const {
    return host_seconds > 0.0
               ? static_cast<double>(requests_issued) / host_seconds
               : 0.0;
  }

  // One-line sanity summary for logs/examples.
  std::string Summary() const;

  // Snapshots every field (and the derived totals) into `registry` under
  // "replay.". The paper tables are still rendered from this struct directly
  // — the registry is the machine-readable superset, so adding metrics can
  // never perturb the table formatting.
  void ExportTo(obs::MetricsRegistry& registry) const;
};

// True when two runs produced the identical simulation: every deterministic
// counter and latency aggregate matches bit-for-bit. Host timing
// (host_seconds, and the rates derived from it) is deliberately excluded —
// it is the one field that varies between an N=1 and an N=8 farm run of the
// same config.
bool SameSimulation(const ReplayMetrics& a, const ReplayMetrics& b);

}  // namespace webcc::replay
