// Client-side proxy cache in the style of Harvest "cached".
//
// Entries are namespaced per real client (the replay inserts composite
// url+client keys built by http::ComposeCacheKey, so one proxy process
// hosts many independent per-client caches exactly as the paper does).
//
// Replacement is delegated to the eviction kernel (src/http/eviction/): the
// cache owns all storage and indexes — the LRU list, the interned key/url
// maps, and the TTL expiry heap — and an EvictionPolicy strategy chooses
// every victim through the narrow EvictionHost view. Three policies ship:
// plain LRU, Harvest's expired-first LRU (the paper traces its SASK
// hit-ratio anomaly to this policy interacting with adaptive TTL's
// conservative lifetimes — a freshly modified document gets a short TTL and
// is evicted first despite being hot), and GreedyDual-Size.
//
// An optional second tier (TierConfig) absorbs tier-1 pressure: victims
// that still fit the tier-2 budget are demoted instead of evicted, and a
// tier-2 entry is promoted back after `promotion_hits` hits. Consistency
// state (TTL expiry, lease expiry, questionable flag) lives on the entry
// and is tier-blind: EraseByUrl, MarkAllQuestionable and TakeExpired see
// both tiers, so all five consistency protocols run unchanged over a
// tiered cache. With tiering off (the default) behavior is bit-identical
// to the single-tier cache.
//
// Internally every key and URL is interned to a dense integer id
// (core::Interner): the entry index, the per-URL index, and the TTL heap
// all key on ids, so a lookup hashes its string exactly once and the heap
// never copies strings. The public interface stays string-keyed.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/intern.h"
#include "http/eviction/expiry_heap.h"
#include "http/eviction/policy.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::http {

// The historical name for the policy selector, kept as an alias now that
// the enum lives in the eviction kernel.
using ReplacementPolicy = eviction::EvictionPolicyKind;

// Optional large/cold second tier. Disabled (tier2_capacity_bytes == 0) the
// cache is the classic single-tier LRU structure.
struct TierConfig {
  std::uint64_t tier2_capacity_bytes = 0;  // 0 = tiering disabled
  // Tier-2 hits before an entry is promoted back into tier 1.
  std::uint32_t promotion_hits = 3;
  // Insert demotes tier-1 entries until bytes fall under this fraction of
  // capacity, keeping headroom so bursts demote instead of evicting.
  double demotion_pressure = 0.90;
  // Expired tier-2 entries reclaimed per Insert (tier 2 is scanned from the
  // cold end; tier-1 expiry is the TTL heap's job).
  std::size_t ttl_cleanup_per_tick = 8;

  bool enabled() const { return tier2_capacity_bytes > 0; }
};

struct CacheEntry {
  std::string key;  // http::ComposeCacheKey(url, owner)
  std::string url;
  std::string owner;  // the real client this namespaced entry belongs to
  std::uint64_t size_bytes = 0;
  Time last_modified = 0;
  std::uint64_t version = 0;
  Time fetched_at = 0;
  Time ttl_expires = kNeverExpires;
  Time lease_expires = kNeverExpires;
  // Set by server-address invalidations and proxy recovery: the entry must
  // be revalidated with If-Modified-Since before it may be served.
  bool questionable = false;

 private:
  friend class ProxyCache;
  std::uint64_t heap_stamp_ = 0;  // lazy-deletion marker for the TTL heap
  core::InternId key_id_ = core::kNoInternId;
  core::InternId url_id_ = core::kNoInternId;
  // This entry's (key, heap_stamp_) record is in the TTL heap and has not
  // been consumed — the heap's exact live count hangs off this flag.
  bool heap_record_live_ = false;
  bool tier2_ = false;            // resident in the second tier
  std::uint32_t tier2_hits_ = 0;  // hits since demotion (promotion counter)
};

struct ProxyCacheStats {
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired_evictions = 0;  // evicted via the expired-first rule
  std::uint64_t erased = 0;             // removed by invalidation
  // Objects larger than every budget that could hold them, dropped at
  // Insert (kEviction trace detail 2).
  std::uint64_t oversize_rejections = 0;
  std::uint64_t tier2_promotions = 0;  // tier 2 -> tier 1
  std::uint64_t tier2_demotions = 0;   // tier 1 -> tier 2 under pressure
  std::uint64_t tier2_evictions = 0;   // evicted from tier 2 (detail 3)
  std::uint64_t tier2_expired_cleaned = 0;  // reclaimed by cleanup (detail 4)
};

class ProxyCache : private eviction::EvictionHost {
 public:
  ProxyCache(std::uint64_t capacity_bytes, ReplacementPolicy policy,
             TierConfig tier = TierConfig{})
      : capacity_bytes_(capacity_bytes),
        tier_(tier),
        policy_(eviction::MakeEvictionPolicy(policy)) {}

  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;

  // Returns the entry and promotes it to most-recently-used, or nullptr.
  // The pointer stays valid until the next Insert/Erase on this cache.
  // `now` stamps any trace events a tier promotion's pressure resolution
  // emits; callers without a clock may omit it.
  CacheEntry* Lookup(const std::string& key, Time now = 0);

  // Lookup without the LRU promotion (for metrics/tests).
  CacheEntry* Peek(const std::string& key);

  // Inserts (or replaces) an entry, evicting per the policy until it fits.
  // Objects larger than the whole cache are dropped (counted as
  // oversize_rejections) unless the second tier can hold them. `now` is the
  // protocol time used to judge which entries are expired.
  void Insert(CacheEntry entry, Time now);

  // Removes an entry (invalidation path). Returns whether it existed.
  bool Erase(const std::string& key);

  // Changes an entry's TTL expiry, keeping the expired-first index in sync.
  // `entry` must be owned by this cache.
  void SetTtlExpiry(CacheEntry& entry, Time expires);

  // Removes every owner's copy of `url` (proxy-wide invalidation, as PSI
  // performs). Returns the number of entries removed.
  std::size_t EraseByUrl(const std::string& url);

  // Collects up to `max_items` live entries (either tier) whose TTL has
  // expired at `now`, consuming their expiry-index records: the caller must
  // either erase each returned entry or re-arm it with SetTtlExpiry (PCV
  // does one or the other after the bulk validation). Pointers stay valid
  // until the next Insert/Erase.
  std::vector<CacheEntry*> TakeExpired(Time now, std::size_t max_items);

  // Proxy-recovery sweep: every entry must revalidate before serving.
  void MarkAllQuestionable();

  // Selective sweep (e.g. server-address invalidation for one real client's
  // entries). Returns the number of entries marked.
  std::size_t MarkQuestionableWhere(
      const std::function<bool(const CacheEntry&)>& predicate);

  std::uint64_t bytes_used() const { return bytes_used_ + tier2_bytes_used_; }
  std::uint64_t tier1_bytes_used() const { return bytes_used_; }
  std::uint64_t tier2_bytes_used() const { return tier2_bytes_used_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t entry_count() const { return lru_.size() + tier2_lru_.size(); }
  std::size_t tier2_entry_count() const { return tier2_lru_.size(); }
  const ProxyCacheStats& stats() const { return stats_; }
  ReplacementPolicy policy_kind() const { return policy_->kind(); }
  const TierConfig& tier_config() const { return tier_; }

  // Exposed for the heap-growth regression test: total records including
  // stale ones awaiting compaction.
  std::size_t ttl_heap_size() const { return ttl_heap_.size(); }

  // Optional tracing: when set, every eviction emits a kEviction event
  // stamped with the `now` the mutating call received. detail codes:
  // 0 = policy victim, 1 = expired-first rule, 2 = oversize rejection,
  // 3 = tier-2 eviction, 4 = tier-2 expired cleanup. nullptr (the default)
  // disables.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots the cache's counters and occupancy into `registry`, prefixing
  // every metric name (e.g. prefix "proxy_cache." -> "proxy_cache.evictions").
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  using LruList = std::list<CacheEntry>;

  // EvictionHost — the policy's window into the indexes.
  core::InternId LruTailKey() const override;
  eviction::ExpiryHeap& TtlHeap() override { return ttl_heap_; }
  bool TtlRecordLive(core::InternId key, std::uint64_t stamp) const override;
  void NoteTtlRecordConsumed(core::InternId key) override;
  bool InEvictableTier(core::InternId key) const override;

  static eviction::EntryView ViewOf(const CacheEntry& entry) {
    return eviction::EntryView{entry.key_id_, entry.size_bytes,
                               entry.ttl_expires, entry.heap_stamp_};
  }

  bool EraseById(core::InternId key_id);
  // Frees tier-1 space for one entry: the policy's victim is demoted into
  // tier 2 when it fits (and is not already expired), evicted otherwise.
  void DisplaceOne(Time now);
  void EvictEntry(LruList::iterator it, Time now, bool expired_rule);
  void EvictTier2Tail(Time now);
  void InsertIntoTier2(CacheEntry entry, Time now);
  void PromoteFromTier2(LruList::iterator it, Time now);
  void Tier2TtlCleanup(Time now);
  void RemoveEntry(LruList::iterator it);
  void PushTtlItem(CacheEntry& entry);
  void CompactTtlHeap();
  std::uint64_t DemotionWatermark() const;

  std::uint64_t capacity_bytes_;
  TierConfig tier_;
  std::unique_ptr<eviction::EvictionPolicy> policy_;
  std::uint64_t bytes_used_ = 0;        // tier 1
  std::uint64_t tier2_bytes_used_ = 0;  // tier 2
  std::uint64_t next_stamp_ = 1;

  // Interned namespaces. Ids are dense and never recycled, so the tables
  // are bounded by the distinct keys/URLs ever inserted, not residency.
  core::Interner keys_;
  core::Interner urls_;

  LruList lru_;        // tier 1; front = most recently used
  LruList tier2_lru_;  // tier 2; front = most recently touched
  std::unordered_map<core::InternId, LruList::iterator> index_;  // by key id
  // url id -> key ids of the entries caching it (one per owner), in
  // insertion order (keeps EraseByUrl deterministic).
  std::unordered_map<core::InternId, std::vector<core::InternId>> url_index_;
  eviction::ExpiryHeap ttl_heap_;
  ProxyCacheStats stats_;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::http
