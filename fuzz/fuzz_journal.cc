// Fuzz target: journal recovery (core/journal.h).
//
// SiteJournal::Replay is the crash-recovery path — it parses whatever bytes
// survived the crash, so it must handle arbitrary corruption. Invariants
// beyond memory safety: the result's counters must be internally
// consistent, and a journal rebuilt from the recovered prefix must replay
// to the same entries (recovery is idempotent).
#include <cstdint>
#include <string_view>

#include "core/journal.h"

namespace {

bool SafeToReappend(const webcc::core::SiteJournal::Entry& entry) {
  // AppendRegister CHECKs that fields are space-free; a valid journal line
  // can still carry other odd bytes that round-trip fine.
  const auto clean = [](std::string_view s) {
    return s.find(' ') == std::string_view::npos &&
           s.find('\n') == std::string_view::npos;
  };
  return clean(entry.url) && clean(entry.site);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using webcc::core::SiteJournal;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const SiteJournal::ReplayResult result = SiteJournal::Replay(text);

  if (result.records_applied != result.entries.size()) __builtin_trap();
  if (result.damaged && result.records_rejected == 0) __builtin_trap();
  if (!result.damaged && result.records_rejected != 0) __builtin_trap();

  SiteJournal rebuilt;
  bool reappendable = true;
  for (const SiteJournal::Entry& entry : result.entries) {
    if (!SafeToReappend(entry)) {
      reappendable = false;
      break;
    }
    switch (entry.kind) {
      case 'R':
        rebuilt.AppendRegister(entry.url, entry.site, entry.lease_until);
        break;
      case 'I':
        rebuilt.AppendInvalidate(entry.url);
        break;
      case 'V':
        rebuilt.AppendVersion(entry.url, entry.version);
        break;
      default:
        __builtin_trap();  // Replay must never emit an unknown kind
    }
  }
  if (reappendable) {
    const SiteJournal::ReplayResult again = rebuilt.Replay();
    if (again.damaged || again.entries.size() != result.entries.size()) {
      __builtin_trap();
    }
  }
  return 0;
}
