#include "core/invalidation_table.h"

#include <algorithm>

#include "core/lease.h"
#include "util/check.h"

namespace webcc::core {

Time InvalidationTable::Register(std::string_view url, std::string_view client,
                                 net::MessageType request_type, Time now) {
  const Time lease_until = GrantLease(lease_, request_type, now);
  if (!LeaseActive(lease_until, now)) {
    // Zero-length (two-tier GET) lease: the client promises to validate on
    // its next access, so the server need not remember it. An existing
    // longer lease from an earlier request is left untouched.
    return lease_until;
  }
  SiteList& list = lists_[urls_.Intern(url)];
  auto [it, inserted] =
      list.lease_until.try_emplace(clients_.Intern(client), lease_until);
  if (inserted) {
    ++total_entries_;
  } else {
    // Refresh, never shorten: a still-active lease keeps its later expiry.
    if (it->second != net::kNoLease &&
        (lease_until == net::kNoLease || lease_until > it->second)) {
      it->second = lease_until;
    }
  }
  return lease_until;
}

std::vector<std::string> InvalidationTable::TakeSitesForInvalidation(
    std::string_view url, Time now) {
  std::vector<std::string> sites;
  for (TakenSite& taken : TakeSitesWithLeases(url, now)) {
    sites.push_back(std::move(taken.site));
  }
  return sites;
}

std::vector<InvalidationTable::TakenSite>
InvalidationTable::TakeSitesWithLeases(std::string_view url, Time now) {
  std::vector<TakenSite> sites;
  const InternId url_id = urls_.Find(url);
  if (url_id == kNoInternId) return sites;
  const auto it = lists_.find(url_id);
  if (it == lists_.end()) return sites;
  sites.reserve(it->second.lease_until.size());
  for (const auto& [client, lease_until] : it->second.lease_until) {
    if (LeaseActive(lease_until, now)) {
      sites.push_back({std::string(clients_.NameOf(client)), lease_until});
    }
  }
  total_entries_ -= it->second.lease_until.size();
  lists_.erase(it);
  std::sort(sites.begin(), sites.end(),  // deterministic fan-out order
            [](const TakenSite& a, const TakenSite& b) {
              return a.site < b.site;
            });
  return sites;
}

void InvalidationTable::Restore(std::string_view url, std::string_view client,
                                Time lease_until) {
  SiteList& list = lists_[urls_.Intern(url)];
  auto [it, inserted] =
      list.lease_until.try_emplace(clients_.Intern(client), lease_until);
  if (inserted) {
    ++total_entries_;
  } else if (it->second != net::kNoLease &&
             (lease_until == net::kNoLease || lease_until > it->second)) {
    it->second = lease_until;
  }
}

std::size_t InvalidationTable::ListLength(std::string_view url,
                                          Time now) const {
  const InternId url_id = urls_.Find(url);
  if (url_id == kNoInternId) return 0;
  const auto it = lists_.find(url_id);
  if (it == lists_.end()) return 0;
  std::size_t live = 0;
  for (const auto& [client, lease_until] : it->second.lease_until) {
    if (LeaseActive(lease_until, now)) ++live;
  }
  return live;
}

std::size_t InvalidationTable::PruneExpired(Time now) {
  // Collect first, then emit in (url, site) order: the early version traced
  // kLeaseExpiry events straight out of the unordered_map walk, so the trace
  // stream depended on hash-table layout — exactly the nondeterminism
  // webcc_lint's unordered-iter-in-dump rule now rejects. Erasure order
  // never mattered (the maps end up identical); emission order is output.
  std::vector<ExpiredEntry> expired;
  const std::size_t pruned = PruneExpiredInto(now, expired);
  if (trace_sink_ != nullptr) {
    std::sort(expired.begin(), expired.end(),
              [](const ExpiredEntry& a, const ExpiredEntry& b) {
                if (a.url != b.url) return a.url < b.url;
                return a.site < b.site;
              });
    for (const ExpiredEntry& e : expired) {
      obs::Emit(trace_sink_, {.type = obs::EventType::kLeaseExpiry,
                              .at = now,
                              .url = e.url,
                              .site = e.site,
                              .detail = e.lease_until});
    }
  }
  return pruned;
}

std::size_t InvalidationTable::PruneExpiredInto(
    Time now, std::vector<ExpiredEntry>& out) {
  std::size_t pruned = 0;
  for (auto list_it = lists_.begin(); list_it != lists_.end();) {
    auto& entries = list_it->second.lease_until;
    for (auto it = entries.begin(); it != entries.end();) {
      if (!LeaseActive(it->second, now)) {
        // Interner names are stable views; they outlive the erase below.
        out.push_back({urls_.NameOf(list_it->first),
                       clients_.NameOf(it->first), it->second});
        ++pruned;
        it = entries.erase(it);
        --total_entries_;
      } else {
        ++it;
      }
    }
    list_it = entries.empty() ? lists_.erase(list_it) : std::next(list_it);
  }
  return pruned;
}

std::vector<InvalidationTable::Snapshot> InvalidationTable::SnapshotEntries()
    const {
  std::vector<Snapshot> out;
  out.reserve(total_entries_);
  for (const auto& [url, list] : lists_) {
    for (const auto& [client, lease_until] : list.lease_until) {
      out.push_back({std::string(urls_.NameOf(url)),
                     std::string(clients_.NameOf(client)), lease_until});
    }
  }
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    if (a.url != b.url) return a.url < b.url;
    return a.site < b.site;
  });
  return out;
}

std::size_t InvalidationTable::MaxListLength() const {
  std::size_t longest = 0;
  for (const auto& [url, list] : lists_) {
    longest = std::max(longest, list.lease_until.size());
  }
  return longest;
}

std::uint64_t InvalidationTable::StorageBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [url, list] : lists_) {
    bytes += urls_.NameOf(url).size();
    for (const auto& [client, lease_until] : list.lease_until) {
      bytes += clients_.NameOf(client).size() + kPerEntryOverheadBytes;
    }
  }
  return bytes;
}

void InvalidationTable::ExportMetrics(obs::MetricsRegistry& registry,
                                      std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("entries"), total_entries_);
  registry.SetCounter(name("max_list_length"), MaxListLength());
  registry.SetCounter(name("storage_bytes"), StorageBytes());
  registry.SetCounter(name("urls_tracked"), lists_.size());
}

void InvalidationTable::Clear() {
  // The interners survive a crash on purpose: ids stay valid for the
  // recovery path, and the tables are bounded by the trace's vocabulary.
  lists_.clear();
  total_entries_ = 0;
}

}  // namespace webcc::core
