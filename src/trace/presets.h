// Calibrated presets for the five Internet Traffic Archive traces of the
// paper's Table 2 (EPA, SDSC, ClarkNet, NASA, SASK).
//
// Request counts and durations are the paper's exactly. File counts are
// derived from the paper's own modifier construction (files = reported
// modification count x mean lifetime / duration; Table 2's file-count row is
// corrupt in the available text). Popularity parameters (client count, Zipf
// exponents, revisit probability) are calibrated so the generated traces
// match the reported per-document distinct-site maxima and averages.
#pragma once

#include <vector>

#include "trace/workload.h"

namespace webcc::trace {

enum class TraceName { kEpa, kSdsc, kClarkNet, kNasa, kSask };

const char* ToString(TraceName name);

// Paper-reported Table 2 row, for side-by-side comparison in benches.
struct PaperTraceSummary {
  const char* duration;
  std::uint64_t total_requests;
  std::uint32_t derived_num_files;
  double avg_file_size_bytes;
  std::uint64_t max_popularity;
  double avg_popularity;
};

struct TracePreset {
  TraceName id;
  WorkloadConfig workload;
  PaperTraceSummary paper;
  // The mean file lifetime the paper replayed this trace with in Tables 3/4
  // (SDSC was run twice; this holds the first, 25-day run).
  Time paper_mean_lifetime;
};

TracePreset GetPreset(TraceName name);
std::vector<TraceName> AllTraces();

}  // namespace webcc::trace
