// A real C++ tokenizer for webcc_lint (no LLVM dependency).
//
// The v1 scanner stripped comments and string literals per line with a
// hand-rolled state machine and ran regexes over what remained; raw
// strings, multi-line literals and preprocessor continuations were all
// approximations. v2 lexes the translation unit once into a token stream
// and every rule works on tokens, so `rand()` inside a raw string can
// never trip determinism-clock and a `switch` split across lines still
// parses.
//
// Token classes:
//   kIdent    identifiers and keywords (callers classify keywords)
//   kNumber   integer/float literals, including digit separators (1'000)
//   kString   "...", raw R"delim(...)delim", and prefixed (u8/L/u/U) forms
//   kChar     character literals
//   kPunct    operators/punctuation, longest-match (`::`, `->`, `<<`, ...)
//   kPreproc  one token per preprocessor logical line (with `\` splices)
//   kComment  `// ...` and `/* ... */`, verbatim — suppression pragmas and
//             no-op documentation live here, so comments are kept as
//             tokens instead of being discarded
//
// Positions are 1-based (line, col) of the token's first character; a
// multi-line token (block comment, raw string, spliced preprocessor line)
// carries its start position.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace webcc::lint {

enum class TokKind : unsigned char {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kPreproc,
  kComment,
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
  int col = 1;
};

// Lexes `text` into tokens. Never fails: unterminated literals and stray
// bytes degrade to best-effort tokens so a half-edited file still lints.
std::vector<Token> Tokenize(std::string_view text);

}  // namespace webcc::lint
