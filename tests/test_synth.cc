// Property tests for the trace synthesizer (ctest -L synth): generation is
// a pure function of the ScenarioConfig (same seed => byte-identical
// workload, any farm worker count => identical merged replay), the drawn
// workload matches the configured statistics (Zipf exponent, read/write
// ratio) within tolerance, the JSON dialect round-trips to a fixpoint, and
// the phase/locality/churn models have their intended observable effects.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/farm.h"
#include "synth/generate.h"
#include "synth/scenario.h"
#include "trace/summary.h"
#include "util/time.h"

namespace webcc::synth {
namespace {

ScenarioConfig BaseConfig() {
  ScenarioConfig config;
  config.name = "synth-prop";
  config.duration = 2 * kHour;
  config.requests = 20000;
  config.sites = 300;
  config.documents = 400;
  config.seed = 11;
  return config;
}

// --- determinism ---------------------------------------------------------------

TEST(SynthDeterminism, SameSeedIsByteIdentical) {
  ScenarioConfig config = BaseConfig();
  config.write_fraction = 0.2;
  config.locality = 0.4;
  config.churn_fraction = 0.3;

  const SynthWorkload a = Generate(config);
  const SynthWorkload b = Generate(config);

  EXPECT_TRUE(a.trace.Validate().empty()) << a.trace.Validate();
  ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
  for (std::size_t i = 0; i < a.trace.records.size(); ++i) {
    ASSERT_EQ(a.trace.records[i].timestamp, b.trace.records[i].timestamp);
    ASSERT_EQ(a.trace.records[i].client, b.trace.records[i].client);
    ASSERT_EQ(a.trace.records[i].doc, b.trace.records[i].doc);
  }
  ASSERT_EQ(a.writes.size(), b.writes.size());
  EXPECT_EQ(WorkloadDigest(a), WorkloadDigest(b));
  EXPECT_TRUE(std::is_sorted(a.writes.begin(), a.writes.end(),
                             [](const trace::ModEvent& x,
                                const trace::ModEvent& y) {
                               return x.at < y.at;
                             }));
}

TEST(SynthDeterminism, SeedChangesTheWorkload) {
  ScenarioConfig config = BaseConfig();
  const std::uint64_t digest_a = WorkloadDigest(Generate(config));
  config.seed = 12;
  const std::uint64_t digest_b = WorkloadDigest(Generate(config));
  EXPECT_NE(digest_a, digest_b);
}

// Farm workers hand the scenario around by pointer and each regenerates the
// workload locally; the merged JSONL trace and every metric must be
// invariant in the worker count.
TEST(SynthDeterminism, WorkerCountInvariantThroughFarm) {
  ScenarioConfig scenario = BaseConfig();
  scenario.requests = 1500;
  scenario.write_fraction = 0.15;
  Phase crowd;
  crowd.kind = PhaseKind::kFlashCrowd;
  crowd.start = 40 * kMinute;
  crowd.duration = 30 * kMinute;
  crowd.rate_multiplier = 5.0;
  crowd.focus = 0.8;
  crowd.hot_docs = 3;
  scenario.phases.push_back(crowd);

  const core::Protocol protocols[] = {core::Protocol::kAdaptiveTtl,
                                      core::Protocol::kInvalidation,
                                      core::Protocol::kPiggybackInvalidation};
  const auto run_with_workers = [&](unsigned workers) {
    obs::BufferTraceSink merged;
    replay::Farm farm(workers);
    farm.set_merged_trace_sink(&merged);
    for (const core::Protocol protocol : protocols) {
      replay::ReplayConfig config;
      config.scenario = &scenario;
      config.protocol = protocol;
      farm.Submit(config);
    }
    std::pair<std::vector<replay::ReplayMetrics>, std::string> out;
    out.first = farm.Collect();
    out.second = merged.TakeText();
    return out;
  };

  const auto serial_a = run_with_workers(1);
  const auto serial_b = run_with_workers(1);
  const auto farmed = run_with_workers(8);

  ASSERT_FALSE(serial_a.second.empty());
  EXPECT_EQ(obs::DigestJsonl(serial_a.second), obs::DigestJsonl(serial_b.second));
  EXPECT_EQ(serial_a.second, farmed.second);
  ASSERT_EQ(serial_a.first.size(), std::size(protocols));
  for (std::size_t i = 0; i < serial_a.first.size(); ++i) {
    EXPECT_TRUE(replay::SameSimulation(serial_a.first[i], serial_b.first[i]))
        << "job " << i;
    EXPECT_TRUE(replay::SameSimulation(serial_a.first[i], farmed.first[i]))
        << "job " << i;
    EXPECT_GT(serial_a.first[i].requests_issued, 0u);
  }
}

// --- statistical calibration -----------------------------------------------------

// Least-squares slope of log(count) vs log(rank) over the top ranks; a
// Zipf(s) sample should fit close to -s.
double FittedZipfSlope(const std::vector<std::uint64_t>& sorted_counts,
                       std::size_t top) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = 0;
  for (std::size_t rank = 0; rank < top && rank < sorted_counts.size();
       ++rank) {
    if (sorted_counts[rank] == 0) break;
    const double x = std::log(static_cast<double>(rank + 1));
    const double y = std::log(static_cast<double>(sorted_counts[rank]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    n += 1;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

TEST(SynthCalibration, EmpiricalDocZipfExponentWithinTolerance) {
  ScenarioConfig config = BaseConfig();
  config.requests = 60000;
  config.documents = 500;
  config.doc_zipf = 1.0;

  const SynthWorkload workload = Generate(config);
  std::vector<std::uint64_t> counts(config.documents, 0);
  for (const trace::TraceRecord& record : workload.trace.records) {
    ++counts[record.doc];
  }
  std::sort(counts.rbegin(), counts.rend());
  const double slope = FittedZipfSlope(counts, 30);
  EXPECT_NEAR(slope, -config.doc_zipf, 0.15)
      << "empirical popularity exponent drifted from the config";
}

TEST(SynthCalibration, EmpiricalSiteZipfExponentWithinTolerance) {
  ScenarioConfig config = BaseConfig();
  config.requests = 60000;
  config.sites = 500;
  config.site_zipf = 0.8;

  const SynthWorkload workload = Generate(config);
  std::vector<std::uint64_t> counts(config.sites, 0);
  for (const trace::TraceRecord& record : workload.trace.records) {
    ++counts[record.client];
  }
  std::sort(counts.rbegin(), counts.rend());
  const double slope = FittedZipfSlope(counts, 30);
  EXPECT_NEAR(slope, -config.site_zipf, 0.15)
      << "empirical site-activity exponent drifted from the config";
}

TEST(SynthCalibration, ReadWriteRatioMatchesConfig) {
  ScenarioConfig config = BaseConfig();
  config.write_fraction = 0.3;

  const SynthWorkload workload = Generate(config);
  const double writes = static_cast<double>(workload.writes.size());
  const double total =
      static_cast<double>(workload.trace.records.size()) + writes;
  EXPECT_NEAR(writes / total, config.write_fraction, 0.005);
}

// --- locality, phases, churn -----------------------------------------------------

// Fraction of requests whose document was already requested within the
// previous `window` requests (any client). The recency stack is global, so
// this is the metric the locality knob directly shapes.
double RecentReferenceFraction(const trace::Trace& trace, std::size_t window) {
  std::deque<std::uint32_t> recent;
  std::size_t hits = 0;
  for (const trace::TraceRecord& record : trace.records) {
    if (std::find(recent.begin(), recent.end(), record.doc) != recent.end()) {
      ++hits;
    }
    recent.push_back(record.doc);
    if (recent.size() > window) recent.pop_front();
  }
  return static_cast<double>(hits) /
         static_cast<double>(trace.records.size());
}

TEST(SynthModel, LocalityRaisesShortTermReReference) {
  ScenarioConfig config = BaseConfig();
  config.locality = 0.0;
  const double baseline =
      RecentReferenceFraction(Generate(config).trace, 100);
  config.locality = 0.7;
  const double local = RecentReferenceFraction(Generate(config).trace, 100);
  // Stack-distance re-references concentrate requests on globally recent
  // documents, raising the short-window re-reference mass well above the
  // popularity-only baseline.
  EXPECT_GT(local, baseline + 0.05);
}

TEST(SynthModel, FlashCrowdPhaseSpikesAndFocusesTraffic) {
  ScenarioConfig config = BaseConfig();
  config.requests = 30000;
  Phase crowd;
  crowd.kind = PhaseKind::kFlashCrowd;
  crowd.start = kHour;
  crowd.duration = 30 * kMinute;
  crowd.rate_multiplier = 8.0;
  crowd.focus = 0.9;
  crowd.hot_docs = 2;
  config.phases.push_back(crowd);

  const SynthWorkload workload = Generate(config);
  std::uint64_t in_window = 0;
  std::map<trace::DocId, std::uint64_t> window_docs;
  for (const trace::TraceRecord& record : workload.trace.records) {
    if (record.timestamp >= crowd.start &&
        record.timestamp < crowd.start + crowd.duration) {
      ++in_window;
      ++window_docs[record.doc];
    }
  }
  // The window is 1/4 of the trace at 8x rate: it must hold well over its
  // uniform share (8/11 of all requests in expectation).
  EXPECT_GT(in_window, workload.trace.records.size() / 2);
  // And the hot set dominates the window.
  std::vector<std::uint64_t> counts;
  counts.reserve(window_docs.size());
  for (const auto& [doc, count] : window_docs) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  const std::uint64_t hot = counts.size() > 1 ? counts[0] + counts[1]
                                              : counts.empty() ? 0 : counts[0];
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(in_window), 0.6);
}

TEST(SynthModel, WriteBurstPhaseConcentratesWrites) {
  ScenarioConfig config = BaseConfig();
  config.write_fraction = 0.25;
  Phase burst;
  burst.kind = PhaseKind::kWriteBurst;
  burst.start = kHour;
  burst.duration = 30 * kMinute;
  burst.write_multiplier = 10.0;
  config.phases.push_back(burst);

  const SynthWorkload workload = Generate(config);
  std::uint64_t in_window = 0;
  for (const trace::ModEvent& event : workload.writes) {
    if (event.at >= burst.start && event.at < burst.start + burst.duration) {
      ++in_window;
    }
  }
  // 1/4 of the duration at 10x write rate: most writes land in the burst.
  EXPECT_GT(in_window, workload.writes.size() / 2);
}

TEST(SynthModel, ChurnCreatesDocumentsMidTrace) {
  ScenarioConfig config = BaseConfig();
  config.documents = 200;
  config.write_fraction = 0.0;  // isolate the creation events
  config.churn_fraction = 0.5;

  const SynthWorkload workload = Generate(config);
  // With no write stream every ModEvent is a creation: about half the
  // documents, at most one each, all strictly inside the trace.
  EXPECT_GT(workload.writes.size(), config.documents / 4);
  EXPECT_LT(workload.writes.size(), config.documents);
  std::map<trace::DocId, int> per_doc;
  for (const trace::ModEvent& event : workload.writes) {
    EXPECT_GE(event.at, 0);
    EXPECT_LT(event.at, config.duration);
    EXPECT_EQ(++per_doc[event.doc], 1) << "document created twice";
  }
}

TEST(SynthModel, ReadOnlyScenarioStaysReadOnlyThroughReplay) {
  ScenarioConfig scenario = BaseConfig();
  scenario.requests = 800;
  scenario.write_fraction = 0.0;
  replay::ReplayConfig config;
  config.scenario = &scenario;
  config.protocol = core::Protocol::kInvalidation;
  const replay::ReplayMetrics metrics = replay::RunReplay(config);
  // Without the suppress flag the engine would fall back to the
  // mean-lifetime modifier process and invent writes.
  EXPECT_EQ(metrics.modifications_applied, 0u);
  EXPECT_GT(metrics.requests_issued, 0u);
}

TEST(SynthModel, MultiOriginPartitionsPaths) {
  ScenarioConfig config = BaseConfig();
  config.documents = 40;
  config.origins = 4;
  const SynthWorkload workload = Generate(config);
  std::map<std::string, int> prefixes;
  for (const trace::DocumentInfo& doc : workload.trace.documents) {
    ++prefixes[doc.path.substr(0, doc.path.find('/', 1))];
  }
  EXPECT_EQ(prefixes.size(), 4u);
  for (const auto& [prefix, count] : prefixes) EXPECT_EQ(count, 10);
}

// A million client sites generate (and stay resident) comfortably: all
// structures are O(sites + documents + requests), nothing per-(site, doc).
TEST(SynthModel, MillionSiteScenarioGeneratesInBoundedMemory) {
  ScenarioConfig config = BaseConfig();
  config.sites = 1000000;
  config.requests = 5000;
  config.documents = 2000;
  const SynthWorkload workload = Generate(config);
  EXPECT_EQ(workload.trace.clients.size(), 1000000u);
  EXPECT_EQ(workload.trace.records.size(), 5000u);
  EXPECT_TRUE(workload.trace.Validate().empty());
}

// --- JSON dialect ----------------------------------------------------------------

TEST(SynthJson, RoundTripsToFixpoint) {
  ScenarioConfig config = BaseConfig();
  config.origins = 4;
  config.write_fraction = 0.25;
  config.churn_fraction = 0.1;
  Phase diurnal;
  diurnal.kind = PhaseKind::kDiurnal;
  diurnal.amplitude = 0.8;
  diurnal.period = 2 * kHour;
  config.phases.push_back(diurnal);
  Phase crowd;
  crowd.kind = PhaseKind::kFlashCrowd;
  crowd.start = kHour;
  crowd.duration = 20 * kMinute;
  crowd.rate_multiplier = 4.0;
  crowd.focus = 0.75;
  crowd.hot_docs = 5;
  config.phases.push_back(crowd);

  const std::string first = ToJson(config);
  ScenarioConfig parsed;
  std::string error;
  ASSERT_TRUE(FromJson(first, parsed, error)) << error;
  EXPECT_EQ(ToJson(parsed), first);
  EXPECT_EQ(parsed.phases.size(), 2u);
  EXPECT_EQ(WorkloadDigest(Generate(parsed)), WorkloadDigest(Generate(config)));
}

TEST(SynthJson, RejectionsCarryActionableErrors) {
  ScenarioConfig parsed;
  std::string error;
  EXPECT_FALSE(FromJson("{\"bogus\": 1}", parsed, error));
  EXPECT_NE(error.find("unknown scenario key"), std::string::npos) << error;
  EXPECT_NE(error.find("at offset"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FromJson("{\"write_fraction\": 2.0}", parsed, error));
  EXPECT_NE(error.find("write_fraction"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FromJson("{\"duration_s\": 1e999}", parsed, error));
  EXPECT_FALSE(error.empty());

  error.clear();
  EXPECT_FALSE(FromJson("{\"sites\": 999999999}", parsed, error));
  EXPECT_NE(error.find("sites"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FromJson("{} trailing", parsed, error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(SynthJson, ValidateCatchesHandBuiltMistakes) {
  ScenarioConfig config = BaseConfig();
  config.origins = config.documents + 1;
  EXPECT_FALSE(Validate(config).empty());
  config = BaseConfig();
  config.min_size_bytes = 1 << 20;
  config.max_size_bytes = 1024;
  EXPECT_FALSE(Validate(config).empty());
  config = BaseConfig();
  Phase phase;
  phase.start = config.duration + kMinute;
  config.phases.push_back(phase);
  EXPECT_FALSE(Validate(config).empty());
  EXPECT_TRUE(Validate(BaseConfig()).empty());
}

TEST(SynthJson, ScenarioFileCarriesExpectBlock) {
  const std::string text =
      "{\"name\": \"g\", \"requests\": 100,\n"
      " \"expect\": {\"workload_digest\": 123, \"note\": \"text\"}}";
  ScenarioFile file;
  std::string error;
  ASSERT_TRUE(ParseScenarioFile(text, file, error)) << error;
  EXPECT_EQ(file.config.requests, 100u);
  ASSERT_EQ(file.expect.size(), 2u);
  EXPECT_EQ(file.expect.at("workload_digest"), "123");
  EXPECT_EQ(file.expect.at("note"), "text");
}

}  // namespace
}  // namespace webcc::synth
