// The Section 3 analytic model (Table 1).
//
// Models the traffic of delivering one document D to one viewing client C
// with an always-sufficient cache: an interleaved sequence of requests (r)
// and modifications (m), e.g. "r r r m m m r r m r r r m m r". With
//   R  = number of requests and
//   RI = number of intervals of repeated requests with D unchanged
// Table 1 gives closed-form message counts per approach. This module
// provides both the closed forms and exact per-event simulations of the
// three approaches on arbitrary timed sequences; property tests pin them to
// each other and to the full replay engine.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/policy.h"
#include "util/time.h"

namespace webcc::core {

struct SeqEvent {
  Time at = 0;
  bool is_request = false;  // false => modification
};

// Parses "rrmmr"-style strings (whitespace ignored) with `spacing` between
// consecutive events, starting at `spacing`.
std::vector<SeqEvent> ParseSequence(std::string_view text,
                                    Time spacing = kHour);

struct SequenceShape {
  std::uint64_t requests = 0;       // R
  std::uint64_t modifications = 0;  // total m's
  // RI: maximal runs of requests with no intervening modification.
  std::uint64_t request_intervals = 0;
  // Runs of requests followed by at least one modification; this is the
  // exact invalidation-message count (Table 1 writes RI, a steady-state
  // approximation that over-counts by one when the sequence ends in
  // requests).
  std::uint64_t closed_intervals = 0;
};

SequenceShape AnalyzeSequence(std::span<const SeqEvent> events);

struct MessageCounts {
  std::uint64_t gets = 0;
  std::uint64_t ims = 0;
  std::uint64_t replies_200 = 0;
  std::uint64_t replies_304 = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t stale_hits = 0;  // requests served with an outdated copy

  // Control messages per the paper: GETs, IMS, 304s and invalidations; 200
  // replies are "file transfers", counted separately.
  std::uint64_t control_messages() const {
    return gets + ims + replies_304 + invalidations;
  }
  std::uint64_t file_transfers() const { return replies_200; }
  std::uint64_t total_messages() const {
    return control_messages() + file_transfers();
  }
};

// --- closed forms (Table 1) -------------------------------------------------
// Polling-every-time: R requests to the server (1 cold GET + R-1 IMS),
// R - RI 304s, RI transfers.
MessageCounts Table1Polling(const SequenceShape& shape);
// Invalidation: RI GETs, RI transfers, `closed_intervals` invalidations.
MessageCounts Table1Invalidation(const SequenceShape& shape);
// The minimum traffic any always-fresh scheme needs: RI control messages
// plus RI transfers.
MessageCounts Table1Minimum(const SequenceShape& shape);

// --- exact per-event simulations ---------------------------------------------
// Unbounded cache, instantaneous messages; `initial_last_modified` is the
// document's mtime before the sequence begins (its age seeds adaptive TTL).
MessageCounts SimulatePollingSequence(std::span<const SeqEvent> events);
MessageCounts SimulateInvalidationSequence(std::span<const SeqEvent> events);
MessageCounts SimulateAdaptiveTtlSequence(std::span<const SeqEvent> events,
                                          const AdaptiveTtlConfig& config,
                                          Time initial_last_modified = 0);

}  // namespace webcc::core
