// Fixture: a suppression whose rule never fires. The pragma below
// silences nothing, so stale-suppression reports it — a warning by
// default, fatal under --strict-suppressions.
// webcc-lint: allow(determinism-clock) — stale: the rand() call is long gone
int StaleAnswer() { return 42; }
