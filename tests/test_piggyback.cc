// Tests for the piggyback consistency mechanisms (PCV / PSI): the core
// helpers, the proxy-cache support methods, and the replay-engine behaviour
// of the two protocols relative to plain adaptive TTL.
#include <gtest/gtest.h>

#include <string>

#include "core/piggyback.h"
#include "http/proxy_cache.h"
#include "replay/engine.h"
#include "trace/workload.h"

namespace webcc {
namespace {

// --- ValidatePiggyback ---------------------------------------------------------

TEST(PcvValidate, SplitsFreshFromChanged) {
  http::DocumentStore store;
  store.Add("/fresh", 100, 10);
  store.Add("/changed", 100, 10);
  store.Touch("/changed", 50);

  std::vector<core::PcvItem> items = {
      {"/fresh", "c", 10},
      {"/changed", "c", 10},
      {"/gone", "c", 10},
  };
  const auto verdicts = core::ValidatePiggyback(store, items);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_FALSE(verdicts[0].invalid);
  EXPECT_TRUE(verdicts[1].invalid);
  EXPECT_TRUE(verdicts[2].invalid);  // deleted at origin => invalid
  EXPECT_EQ(verdicts[0].url, "/fresh");
  EXPECT_EQ(verdicts[0].owner, "c");
}

TEST(PcvValidate, EmptyBatch) {
  http::DocumentStore store;
  EXPECT_TRUE(core::ValidatePiggyback(store, {}).empty());
}

TEST(PcvBytes, RequestScalesWithItems) {
  std::vector<core::PcvItem> items = {{"/a", "c", 0}, {"/bb", "c", 0}};
  const auto bytes = core::PcvRequestExtraBytes(items);
  EXPECT_GT(bytes, items[0].url.size() + items[1].url.size());
  EXPECT_EQ(core::PcvRequestExtraBytes({}), 0u);
}

TEST(PcvBytes, ReplyCountsOnlyInvalid) {
  std::vector<core::PcvVerdict> verdicts = {{"/a", "c", false},
                                            {"/bb", "c", true}};
  // The accounting matches the historical url@owner key framing.
  EXPECT_EQ(core::PcvReplyExtraBytes(verdicts),
            std::string("/bb@c").size() + 2);
}

// --- ModificationLog --------------------------------------------------------------

TEST(ModificationLog, CollectsWindowExclusiveInclusive) {
  core::ModificationLog log;
  log.Record(10, "/a");
  log.Record(20, "/b");
  log.Record(30, "/c");
  const auto window = log.CollectSince(10, 30, 100);
  EXPECT_EQ(window.urls, (std::vector<std::string>{"/b", "/c"}));
  EXPECT_EQ(window.advanced_to, 30);
}

TEST(ModificationLog, EmptyWindowWhenNothingNew) {
  core::ModificationLog log;
  log.Record(10, "/a");
  EXPECT_TRUE(log.CollectSince(10, 50, 100).urls.empty());
  EXPECT_TRUE(log.CollectSince(50, 50, 100).urls.empty());
  EXPECT_TRUE(log.CollectSince(60, 50, 100).urls.empty());
}

TEST(ModificationLog, DeduplicatesUrls) {
  core::ModificationLog log;
  log.Record(10, "/a");
  log.Record(20, "/a");
  log.Record(30, "/b");
  const auto window = log.CollectSince(0, 40, 100);
  EXPECT_EQ(window.urls, (std::vector<std::string>{"/a", "/b"}));
  EXPECT_EQ(window.advanced_to, 40);
}

TEST(ModificationLog, CapTruncatesAndHoldsCursor) {
  core::ModificationLog log;
  log.Record(10, "/a");
  log.Record(20, "/b");
  log.Record(30, "/c");
  const auto first = log.CollectSince(0, 100, 2);
  EXPECT_EQ(first.urls, (std::vector<std::string>{"/a", "/b"}));
  EXPECT_EQ(first.advanced_to, 20);  // stops at the last included entry
  const auto rest = log.CollectSince(first.advanced_to, 100, 2);
  EXPECT_EQ(rest.urls, (std::vector<std::string>{"/c"}));
  EXPECT_EQ(rest.advanced_to, 100);
}

TEST(ModificationLog, FutureModificationsExcluded) {
  core::ModificationLog log;
  log.Record(10, "/a");
  log.Record(99, "/later");
  const auto window = log.CollectSince(0, 50, 100);
  EXPECT_EQ(window.urls, (std::vector<std::string>{"/a"}));
  EXPECT_EQ(window.advanced_to, 50);
}

// --- proxy cache support ------------------------------------------------------------

http::CacheEntry Entry(const std::string& url, const std::string& owner,
                       Time ttl) {
  http::CacheEntry entry;
  entry.key = url + "@" + owner;
  entry.url = url;
  entry.owner = owner;
  entry.size_bytes = 10;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

TEST(ProxyCachePiggyback, EraseByUrlRemovesAllOwners) {
  http::ProxyCache cache(1000, http::ReplacementPolicy::kLru);
  cache.Insert(Entry("/a", "alice", 100), 0);
  cache.Insert(Entry("/a", "bob", 100), 0);
  cache.Insert(Entry("/b", "alice", 100), 0);
  EXPECT_EQ(cache.EraseByUrl("/a"), 2u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.EraseByUrl("/a"), 0u);
  EXPECT_NE(cache.Peek("/b@alice"), nullptr);
}

TEST(ProxyCachePiggyback, EraseByUrlAfterReplacement) {
  http::ProxyCache cache(1000, http::ReplacementPolicy::kLru);
  cache.Insert(Entry("/a", "alice", 100), 0);
  cache.Insert(Entry("/a", "alice", 200), 0);  // replace
  EXPECT_EQ(cache.EraseByUrl("/a"), 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ProxyCachePiggyback, TakeExpiredReturnsOnlyExpired) {
  http::ProxyCache cache(1000, http::ReplacementPolicy::kLru);
  cache.Insert(Entry("/old", "c", 10), 0);
  cache.Insert(Entry("/fresh", "c", 1000), 0);
  const auto expired = cache.TakeExpired(500, 10);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->url, "/old");
}

TEST(ProxyCachePiggyback, TakeExpiredConsumesRecords) {
  http::ProxyCache cache(1000, http::ReplacementPolicy::kLru);
  cache.Insert(Entry("/a", "c", 10), 0);
  EXPECT_EQ(cache.TakeExpired(500, 10).size(), 1u);
  // Consumed: a second call finds nothing until re-armed.
  EXPECT_TRUE(cache.TakeExpired(500, 10).empty());
  http::CacheEntry* entry = cache.Peek("/a@c");
  ASSERT_NE(entry, nullptr);
  cache.SetTtlExpiry(*entry, 20);
  EXPECT_EQ(cache.TakeExpired(500, 10).size(), 1u);
}

TEST(ProxyCachePiggyback, TakeExpiredHonoursCap) {
  http::ProxyCache cache(10000, http::ReplacementPolicy::kLru);
  for (int i = 0; i < 20; ++i) {
    cache.Insert(Entry("/d" + std::to_string(i), "c", i + 1), 0);
  }
  EXPECT_EQ(cache.TakeExpired(500, 5).size(), 5u);
  EXPECT_EQ(cache.TakeExpired(500, 100).size(), 15u);
}

TEST(ProxyCachePiggyback, TakeExpiredSkipsErasedEntries) {
  http::ProxyCache cache(1000, http::ReplacementPolicy::kLru);
  cache.Insert(Entry("/a", "c", 10), 0);
  cache.Insert(Entry("/b", "c", 20), 0);
  cache.Erase("/a@c");
  const auto expired = cache.TakeExpired(500, 10);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->url, "/b");
}

// --- replay behaviour ------------------------------------------------------------------

trace::Trace PiggybackTrace() {
  trace::WorkloadConfig config;
  config.duration = 3 * kHour;
  config.total_requests = 3000;
  config.num_documents = 100;
  config.num_clients = 50;
  config.revisit_probability = 0.2;
  config.seed = 31;
  return trace::GenerateTrace(config);
}

replay::ReplayConfig PiggybackConfigFor(const trace::Trace& trace,
                                        core::Protocol protocol) {
  replay::ReplayConfig config;
  config.protocol = protocol;
  config.trace = &trace;
  config.mean_lifetime = 4 * kHour;       // aggressive modification rate
  config.fixed_initial_age = 30 * kDay;   // long TTLs: staleness risk is real
  return config;
}

TEST(ReplayPsi, ReducesStaleServesVersusTtl) {
  const trace::Trace trace = PiggybackTrace();
  const auto ttl = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kAdaptiveTtl));
  const auto psi = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackInvalidation));
  EXPECT_GT(ttl.stale_serves, 0u);
  EXPECT_LT(psi.stale_serves, ttl.stale_serves);
  EXPECT_GT(psi.psi_notices, 0u);
  EXPECT_GT(psi.psi_entries_erased, 0u);
  // PSI adds no messages, only bytes on existing replies.
  EXPECT_EQ(psi.invalidations_sent, 0u);
}

TEST(ReplayPsi, RequestsStillResolveExactlyOnce) {
  const trace::Trace trace = PiggybackTrace();
  const auto psi = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackInvalidation));
  EXPECT_EQ(psi.local_hits + psi.validated_hits + psi.replies_200,
            psi.requests_issued);
  EXPECT_EQ(psi.strong_violations, 0u);
}

TEST(ReplayPcv, ReducesImsVersusTtl) {
  const trace::Trace trace = PiggybackTrace();
  // Short TTLs so entries keep expiring and needing validation.
  auto make = [&trace](core::Protocol protocol) {
    replay::ReplayConfig config = PiggybackConfigFor(trace, protocol);
    config.fixed_initial_age = 2 * kHour;
    config.ttl.min_ttl = kMinute;
    return config;
  };
  const auto ttl = RunReplay(make(core::Protocol::kAdaptiveTtl));
  const auto pcv = RunReplay(make(core::Protocol::kPiggybackValidation));
  EXPECT_GT(ttl.ims_requests, 0u);
  EXPECT_GT(pcv.pcv_items_piggybacked, 0u);
  // Entries validated for free on misses no longer cost an IMS.
  EXPECT_LT(pcv.ims_requests, ttl.ims_requests);
}

TEST(ReplayPcv, RequestsStillResolveExactlyOnce) {
  const trace::Trace trace = PiggybackTrace();
  const auto pcv = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackValidation));
  EXPECT_EQ(pcv.local_hits + pcv.validated_hits + pcv.replies_200,
            pcv.requests_issued);
  EXPECT_EQ(pcv.request_timeouts, 0u);
}

TEST(ReplayPcv, Deterministic) {
  const trace::Trace trace = PiggybackTrace();
  const auto a = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackValidation));
  const auto b = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackValidation));
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.pcv_items_piggybacked, b.pcv_items_piggybacked);
  EXPECT_EQ(a.pcv_invalidated, b.pcv_invalidated);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
}

TEST(ReplayPiggyback, BothRemainWeakerThanInvalidation) {
  const trace::Trace trace = PiggybackTrace();
  const auto invalidation = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kInvalidation));
  const auto psi = RunReplay(
      PiggybackConfigFor(trace, core::Protocol::kPiggybackInvalidation));
  EXPECT_EQ(invalidation.stale_serves,
            invalidation.stale_while_invalidation_in_flight);
  // PSI may still serve stale between contacts; invalidation may not
  // (beyond in-flight windows).
  EXPECT_GE(psi.stale_serves, invalidation.stale_serves);
}

TEST(ReplayMulticast, OneNetworkMessagePerModification) {
  const trace::Trace trace = PiggybackTrace();
  replay::ReplayConfig unicast =
      PiggybackConfigFor(trace, core::Protocol::kInvalidation);
  replay::ReplayConfig multicast = unicast;
  multicast.multicast_invalidation = true;
  const auto uni = RunReplay(unicast);
  const auto multi = RunReplay(multicast);
  // Same logical invalidations and deliveries...
  EXPECT_EQ(multi.invalidations_sent, uni.invalidations_sent);
  EXPECT_EQ(multi.invalidations_delivered, multi.invalidations_sent);
  // ...but far fewer network messages and bytes from the server.
  EXPECT_GT(multi.multicast_sends, 0u);
  EXPECT_LT(multi.invalidation_messages(), uni.invalidation_messages());
  EXPECT_LT(multi.total_messages(), uni.total_messages());
  EXPECT_LT(multi.message_bytes, uni.message_bytes);
  EXPECT_EQ(multi.strong_violations, 0u);
  // The fan-out no longer scales the server's send time with list length.
  EXPECT_LT(multi.invalidation_time_ms.max(), uni.invalidation_time_ms.max());
}

}  // namespace
}  // namespace webcc
