// Fixture: real violations, every one silenced by a pragma.
// webcc-lint: allow-file(raw-mutex) — fixture exercises file-wide suppression
#include <cstdlib>
#include <mutex>

struct Counter {
  std::mutex mu;
  int n = 0;
};

int Jitter() {
  // webcc-lint: allow(determinism-clock) — fixture exercises line suppression
  return rand() % 10;
}
