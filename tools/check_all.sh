#!/bin/sh
# The static gate CI runs before anything else: webcc_lint over the tree,
# the clang-format check, and a -Wthread-safety build (the tsa preset).
# Each stage degrades gracefully on toolchains missing its tool, so the
# script is safe to run anywhere; whatever *can* run is enforced.
#
# Usage: tools/check_all.sh   (from anywhere inside the repo)
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

status=0

# 1. webcc_lint: build the scanner (tiny, no project deps) and run it over
#    the sources it scopes to. Exit 1 = findings, 2 = tool error.
echo "== webcc_lint =="
cmake -B build-checks -S . >/dev/null
cmake --build build-checks --target webcc_lint -j >/dev/null
if ! ./build-checks/tools/lint/webcc_lint src tools/webcc.cc; then
  status=1
fi

# 2. clang-format (skips itself when clang-format is absent).
echo "== check_format =="
if ! tools/check_format.sh; then
  status=1
fi

# 3. Thread-safety analysis: -Wthread-safety -Werror under Clang; on a
#    GCC-only toolchain the preset degrades to a plain build, which still
#    verifies the annotation macros expand cleanly.
echo "== tsa build =="
if command -v clang++ >/dev/null 2>&1; then
  # The analysis only exists in Clang; prefer it when installed.
  export CC=clang CXX=clang++
fi
cmake --preset tsa >/dev/null
if ! cmake --build --preset tsa -j >/dev/null; then
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "check_all: all gates clean"
else
  echo "check_all: FAILED (see above)" >&2
fi
exit "$status"
