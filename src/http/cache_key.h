// Composite cache-key construction, shared by every component that
// namespaces cached copies per real client (the replay engine's pseudo
// clients and the live proxy).
//
// Keys were historically built as `url + "@" + owner`, which collides as
// soon as either part contains '@' — and live client ids are "name@port"
// by construction. The length prefix makes the encoding injective: two
// (url, owner) pairs map to the same key iff they are equal, regardless of
// the bytes either contains.
#pragma once

#include <string>
#include <string_view>

namespace webcc::http {

// Returns the canonical cache key for `owner`'s copy of `url`.
inline std::string ComposeCacheKey(std::string_view url,
                                   std::string_view owner) {
  std::string key;
  key.reserve(url.size() + owner.size() + 24);
  key.append(std::to_string(url.size()));
  key.push_back(':');
  key.append(url);
  key.push_back('@');
  key.append(owner);
  return key;
}

}  // namespace webcc::http
