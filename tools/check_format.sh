#!/bin/sh
# clang-format gate: fails if any tracked C++ file deviates from
# .clang-format. Degrades gracefully on toolchains without clang-format
# (e.g. the gcc-only CI container): prints a notice and exits 0, so the
# gate never blocks environments that cannot run it.
#
# Usage: tools/check_format.sh   (from anywhere inside the repo)
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping format gate" >&2
  exit 0
fi

# tests/data holds webcc_lint fixtures that are deliberately unidiomatic
# (each one violates the rule it exercises), so they are exempt.
files=$(git ls-files '*.cc' '*.h' | grep -v '^tests/data/')
if [ -z "$files" ]; then
  echo "check_format: no C++ files tracked" >&2
  exit 0
fi

# --dry-run --Werror makes clang-format a pure checker: nonzero exit and a
# diagnostic per misformatted location, no files rewritten.
status=0
for f in $files; do
  clang-format --style=file --dry-run --Werror "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "check_format: run 'clang-format -i' on the files above" >&2
fi
exit "$status"
