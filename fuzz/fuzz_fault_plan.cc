// Fuzz target: FaultPlan JSON (fault/plan.h).
//
// Plans are hand-edited golden files, so the parser sees human mistakes.
// Invariant beyond memory safety: parse→serialize→parse is a fixpoint (the
// dialect FromJson accepts is exactly what ToJson emits).
#include <cstdint>
#include <string>
#include <string_view>

#include "fault/plan.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  webcc::fault::FaultPlan plan;
  std::string error;
  if (!webcc::fault::FromJson(text, plan, error)) {
    if (error.empty()) __builtin_trap();  // rejections must say why
    return 0;
  }

  const std::string serialized = webcc::fault::ToJson(plan);
  webcc::fault::FaultPlan reparsed;
  if (!webcc::fault::FromJson(serialized, reparsed, error)) __builtin_trap();
  if (webcc::fault::ToJson(reparsed) != serialized) __builtin_trap();
  return 0;
}
