// Client-side proxy cache in the style of Harvest "cached".
//
// Entries are namespaced per real client (the replay inserts composite
// url+client keys built by http::ComposeCacheKey, so one proxy process
// hosts many independent per-client caches exactly as the paper does). Two replacement policies are
// provided:
//
//  * kLru             — plain least-recently-used.
//  * kExpiredFirstLru — Harvest's policy: evict documents whose TTL has
//                       already expired before falling back to LRU. The
//                       paper traces its SASK hit-ratio anomaly to this
//                       policy interacting with adaptive TTL's conservative
//                       lifetimes (a freshly modified document gets a short
//                       TTL and is evicted first despite being hot).
//
// Consistency state (TTL expiry, lease expiry, questionable flag) lives on
// the entry; the protocol logic that interprets it lives in core/.
//
// Internally every key and URL is interned to a dense integer id
// (core::Interner): the entry index, the per-URL index, and the TTL heap
// all key on ids, so a lookup hashes its string exactly once and the heap
// never copies strings. The public interface stays string-keyed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/intern.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::http {

// Sentinel expiry for "never expires" (strong-consistency entries).
inline constexpr Time kNeverExpires = std::numeric_limits<Time>::max();

enum class ReplacementPolicy { kLru, kExpiredFirstLru };

struct CacheEntry {
  std::string key;  // http::ComposeCacheKey(url, owner)
  std::string url;
  std::string owner;  // the real client this namespaced entry belongs to
  std::uint64_t size_bytes = 0;
  Time last_modified = 0;
  std::uint64_t version = 0;
  Time fetched_at = 0;
  Time ttl_expires = kNeverExpires;
  Time lease_expires = kNeverExpires;
  // Set by server-address invalidations and proxy recovery: the entry must
  // be revalidated with If-Modified-Since before it may be served.
  bool questionable = false;

 private:
  friend class ProxyCache;
  std::uint64_t heap_stamp_ = 0;  // lazy-deletion marker for the TTL heap
  core::InternId key_id_ = core::kNoInternId;
  core::InternId url_id_ = core::kNoInternId;
};

struct ProxyCacheStats {
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired_evictions = 0;  // evicted via the expired-first rule
  std::uint64_t erased = 0;             // removed by invalidation
};

class ProxyCache {
 public:
  ProxyCache(std::uint64_t capacity_bytes, ReplacementPolicy policy)
      : capacity_bytes_(capacity_bytes), policy_(policy) {}

  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;

  // Returns the entry and promotes it to most-recently-used, or nullptr.
  // The pointer stays valid until the next Insert/Erase on this cache.
  CacheEntry* Lookup(const std::string& key);

  // Lookup without the LRU promotion (for metrics/tests).
  CacheEntry* Peek(const std::string& key);

  // Inserts (or replaces) an entry, evicting per the policy until it fits.
  // Objects larger than the whole cache are not cached. `now` is the
  // protocol time used to judge which entries are expired.
  void Insert(CacheEntry entry, Time now);

  // Removes an entry (invalidation path). Returns whether it existed.
  bool Erase(const std::string& key);

  // Changes an entry's TTL expiry, keeping the expired-first index in sync.
  // `entry` must be owned by this cache.
  void SetTtlExpiry(CacheEntry& entry, Time expires);

  // Removes every owner's copy of `url` (proxy-wide invalidation, as PSI
  // performs). Returns the number of entries removed.
  std::size_t EraseByUrl(const std::string& url);

  // Collects up to `max_items` live entries whose TTL has expired at `now`,
  // consuming their expiry-index records: the caller must either erase each
  // returned entry or re-arm it with SetTtlExpiry (PCV does one or the
  // other after the bulk validation). Pointers stay valid until the next
  // Insert/Erase.
  std::vector<CacheEntry*> TakeExpired(Time now, std::size_t max_items);

  // Proxy-recovery sweep: every entry must revalidate before serving.
  void MarkAllQuestionable();

  // Selective sweep (e.g. server-address invalidation for one real client's
  // entries). Returns the number of entries marked.
  std::size_t MarkQuestionableWhere(
      const std::function<bool(const CacheEntry&)>& predicate);

  std::uint64_t bytes_used() const { return bytes_used_; }
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::size_t entry_count() const { return lru_.size(); }
  const ProxyCacheStats& stats() const { return stats_; }

  // Optional tracing: when set, every eviction emits a kEviction event
  // stamped with the `now` the mutating call received (detail = 1 when the
  // expired-first rule chose the victim). nullptr (the default) disables.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots the cache's counters and occupancy into `registry`, prefixing
  // every metric name (e.g. prefix "proxy_cache." -> "proxy_cache.evictions").
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  struct TtlHeapItem {
    Time expires;
    std::uint64_t stamp;
    core::InternId key;
    // Ties on expiry break by stamp (insertion/update order), making the
    // expired-first victim deterministic.
    bool operator>(const TtlHeapItem& other) const {
      if (expires != other.expires) return expires > other.expires;
      return stamp > other.stamp;
    }
  };

  using LruList = std::list<CacheEntry>;

  bool EraseById(core::InternId key_id);
  void EvictOne(Time now);
  void RemoveEntry(LruList::iterator it);
  void PushTtlItem(const CacheEntry& entry);

  std::uint64_t capacity_bytes_;
  ReplacementPolicy policy_;
  std::uint64_t bytes_used_ = 0;
  std::uint64_t next_stamp_ = 1;

  // Interned namespaces. Ids are dense and never recycled, so the tables
  // are bounded by the distinct keys/URLs ever inserted, not residency.
  core::Interner keys_;
  core::Interner urls_;

  LruList lru_;  // front = most recently used
  std::unordered_map<core::InternId, LruList::iterator> index_;  // by key id
  // url id -> key ids of the entries caching it (one per owner), in
  // insertion order (keeps EraseByUrl deterministic).
  std::unordered_map<core::InternId, std::vector<core::InternId>> url_index_;
  std::priority_queue<TtlHeapItem, std::vector<TtlHeapItem>,
                      std::greater<TtlHeapItem>>
      ttl_heap_;
  ProxyCacheStats stats_;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::http
