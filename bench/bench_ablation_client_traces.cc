// Ablation A4: server traces vs raw client traces (Section 7).
//
// The paper's replays use server logs, which browsers have already
// filtered; it predicts that against raw client traffic "polling-every-time
// would probably perform even worse" while the TTL/invalidation comparison
// is unaffected. This ablation synthesizes a raw client stream, derives the
// corresponding server trace by filtering it through per-client browser
// caches, and replays both.
#include <cstdio>

#include "bench_common.h"
#include "trace/filter.h"

using namespace webcc;

namespace {

void RunOne(const char* label, const trace::Trace& trace) {
  std::printf("--- %s: %s requests ---\n", label,
              util::WithCommas(static_cast<std::int64_t>(
                                   trace.records.size())).c_str());
  replay::ReplayMetrics runs[3];
  const core::Protocol protocols[] = {core::Protocol::kAdaptiveTtl,
                                      core::Protocol::kPollEveryTime,
                                      core::Protocol::kInvalidation};
  for (int i = 0; i < 3; ++i) {
    replay::ReplayConfig config;
    config.protocol = protocols[i];
    config.trace = &trace;
    config.mean_lifetime = 14 * kDay;
    runs[i] = replay::RunReplay(config);
  }
  const double hit_ratio =
      static_cast<double>(runs[2].cache_hits()) /
      static_cast<double>(runs[2].requests_issued);
  const double polling_penalty =
      static_cast<double>(runs[1].total_messages()) /
          static_cast<double>(runs[2].total_messages()) -
      1.0;
  std::printf("proxy hit ratio %.0f%%; messages TTL/poll/inval = %s / %s / %s;"
              " polling over invalidation: %+.0f%%\n\n",
              hit_ratio * 100,
              util::WithCommas(static_cast<std::int64_t>(
                                   runs[0].total_messages())).c_str(),
              util::WithCommas(static_cast<std::int64_t>(
                                   runs[1].total_messages())).c_str(),
              util::WithCommas(static_cast<std::int64_t>(
                                   runs[2].total_messages())).c_str(),
              polling_penalty * 100);
}

}  // namespace

int main() {
  std::printf("=== Ablation: raw client traffic vs browser-filtered "
              "server trace ===\n\n");

  // A raw client stream with heavy intra-session revisits (reloads,
  // back-navigation) — what the proxies would see if browsers did not
  // cache.
  trace::WorkloadConfig workload;
  workload.name = "client-raw";
  workload.duration = 8 * kHour;
  workload.total_requests = 30000;
  workload.num_documents = 600;
  workload.num_clients = 300;
  workload.revisit_probability = 0.35;
  workload.heavy_revisit_fraction = 0.2;
  workload.seed = 17;
  const trace::Trace raw = trace::GenerateTrace(workload);

  trace::BrowserFilterStats stats;
  const trace::Trace filtered =
      trace::FilterThroughBrowserCaches(raw, kHour, &stats);
  std::printf("browser caches absorb %s of %s raw requests (%.0f%%)\n\n",
              util::WithCommas(static_cast<std::int64_t>(stats.absorbed))
                  .c_str(),
              util::WithCommas(static_cast<std::int64_t>(stats.input_requests))
                  .c_str(),
              100.0 * static_cast<double>(stats.absorbed) /
                  static_cast<double>(stats.input_requests));

  RunOne("raw client trace", raw);
  RunOne("browser-filtered server trace", filtered);

  std::printf(
      "As Section 7 predicts: the raw stream has the higher proxy hit\n"
      "ratio, and every one of those extra hits costs polling a validation\n"
      "round-trip — its message penalty over invalidation widens — while\n"
      "the TTL-vs-invalidation comparison barely moves.\n");
  return 0;
}
