// Write-ahead journal for the accelerator's invalidation state.
//
// The paper (Section 4) has the server persist per-document site lists so a
// crash does not silently orphan cached copies. webcc models that disk as a
// checksummed, line-oriented journal that the accelerator appends to
// *before* acting (append-before-act): a record that never reached the
// journal describes an action that never happened, so a cleanly truncated
// tail is recovered exactly. A record that is present but damaged
// (checksum or format failure) means history after that point is
// untrustworthy — recovery then falls back to the conservative superset:
// replay the valid prefix and broadcast server-wide invalidations, which
// can only invalidate more than necessary, never less.
//
// Record grammar, one record per '\n'-terminated line:
//   <fnv1a64-hex16> R <url> <site> <lease_until>   site registered
//   <fnv1a64-hex16> I <url>                        site list invalidated
//   <fnv1a64-hex16> V <url> <version>              version baseline pinned
// The checksum covers the body after the separating space. URLs and client
// ids in webcc traces never contain spaces, which keeps the format
// splittable; AppendRegister checks that invariant.
//
// The journal is held in memory (the simulator has no disk); tests and the
// live stack can persist/corrupt the text at will via text()/SetText().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace webcc::core {

class SiteJournal {
 public:
  // --- writing (append-before-act) -----------------------------------------
  void AppendRegister(std::string_view url, std::string_view site,
                      Time lease_until);
  void AppendInvalidate(std::string_view url);
  void AppendVersion(std::string_view url, std::uint64_t version);

  const std::string& text() const { return text_; }
  std::uint64_t appends() const { return appends_; }
  bool empty() const { return text_.empty(); }

  // Replaces the journal wholesale (loading a persisted journal, or a test
  // injecting a corrupted one). Does not validate; Replay does.
  void SetText(std::string text) { text_ = std::move(text); }
  void Clear() { text_.clear(); }

  // --- reading --------------------------------------------------------------
  struct Entry {
    char kind = '?';  // 'R', 'I', or 'V'
    std::string url;
    std::string site;                // R only
    Time lease_until = 0;            // R only
    std::uint64_t version = 0;       // V only
  };

  struct ReplayResult {
    std::vector<Entry> entries;        // the valid prefix, in append order
    bool damaged = false;              // checksum/format failure encountered
    bool truncated_tail = false;       // final line had no '\n' (clean tear)
    std::size_t records_applied = 0;   // == entries.size()
    std::size_t records_rejected = 0;  // lines at/after the damage point
  };

  // Parses `text` into its longest valid prefix. A missing trailing newline
  // drops only the torn final record (append-before-act makes that exact);
  // any other malformed or checksum-failing line marks the result damaged
  // and rejects everything from that line on.
  static ReplayResult Replay(std::string_view text);

  ReplayResult Replay() const { return Replay(text_); }

 private:
  void AppendLine(std::string_view body);

  std::string text_;
  std::uint64_t appends_ = 0;
};

}  // namespace webcc::core
