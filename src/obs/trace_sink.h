// TraceSink: where structured trace events go.
//
// The tracing layer is opt-in and pointer-gated: every instrumented
// component holds a `TraceSink*` that defaults to nullptr, and each emit
// site is a branch-on-null (`obs::Emit(sink_, ...)`). With tracing off the
// whole subsystem costs one predictable untaken branch per event site —
// measured <5% on bench_micro's replay throughput (BENCH_farm.json).
//
// Two concrete sinks:
//  * JsonlTraceSink — serializes each event as one JSON line. URLs and site
//    ids are interned per sink: the first sighting of a string emits an
//    `{"e":"intern","id":N,"n":"..."}` record, subsequent events carry the
//    dense id. A sink's output is therefore self-contained — concatenating
//    the outputs of independent sinks (the farm's per-worker merge) yields a
//    valid stream because id scopes restart at each run_begin.
//  * NullTraceSink — accepts and discards; for overhead measurement and for
//    code that wants an always-valid sink reference.
//
// Thread safety: Emit() serializes under an internal mutex, so one sink may
// be shared by the live prototype's threads. The replay engine is single-
// threaded per run and gives each run its own sink (see replay::Farm), so
// the lock is uncontended on the replay path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/event.h"
#include "util/thread_annotations.h"

namespace webcc::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Records one event. String views in `event` need only live for the call.
  virtual void Emit(const TraceEvent& event) = 0;

  // Appends pre-serialized JSONL produced by another sink of the same
  // format (the farm's deterministic per-worker merge). Sinks that do not
  // store JSONL ignore it.
  virtual void WriteRaw(std::string_view jsonl) = 0;
};

// Branch-on-null emit helper: the only code that runs when tracing is off.
inline void Emit(TraceSink* sink, const TraceEvent& event) {
  if (sink != nullptr) [[unlikely]] {
    sink->Emit(event);
  }
}

class NullTraceSink final : public TraceSink {
 public:
  void Emit(const TraceEvent&) override {}
  void WriteRaw(std::string_view) override {}
};

// Serializes events as JSON lines to a caller-owned ostream.
//
// Event line:   {"t":<at_us>,"e":"<name>"[,"tt":<trace_us>][,"u":<url_id>]
//                [,"s":<site_id>][,"d":<detail>][,"l":"<label>"]}
// Intern line:  {"e":"intern","id":<id>,"n":"<string>"}  (before first use)
//
// Interned-id scopes restart at every kRunBegin so concatenated run streams
// stay self-describing.
class JsonlTraceSink final : public TraceSink {
 public:
  // `out` must outlive the sink. The sink never closes or flushes beyond
  // operator<<; callers flush the stream when the run completes.
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void Emit(const TraceEvent& event) override;
  void WriteRaw(std::string_view jsonl) override;

  std::uint64_t events_written() const;

 private:
  // Interns under mu_ (already held by Emit).
  std::uint32_t InternLocked(std::string_view s) WEBCC_REQUIRES(mu_);
  void ResetInternsLocked() WEBCC_REQUIRES(mu_);

  // Heterogeneous lookup: Emit interns string_views without materializing
  // a std::string except on first sighting.
  struct SvHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable util::Mutex mu_;
  // The stream pointer itself is const after construction, but all writes
  // through it serialize under mu_ (pt_guarded_by covers the pointee).
  std::ostream* const out_ WEBCC_PT_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t, SvHash, SvEq> interns_
      WEBCC_GUARDED_BY(mu_);
  std::uint64_t events_written_ WEBCC_GUARDED_BY(mu_) = 0;
};

// A JSONL sink buffering into memory; the farm gives each submitted replay
// one of these and concatenates the buffers in submission order.
class BufferTraceSink final : public TraceSink {
 public:
  BufferTraceSink() : jsonl_(buffer_) {}

  void Emit(const TraceEvent& event) override { jsonl_.Emit(event); }
  void WriteRaw(std::string_view jsonl) override { jsonl_.WriteRaw(jsonl); }

  // The buffered JSONL text (valid stream on its own).
  std::string TakeText() { return std::move(buffer_).str(); }
  std::string Text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  JsonlTraceSink jsonl_;
};

// Escapes `s` per JSON string rules into `out` (no surrounding quotes).
void AppendJsonEscaped(std::string& out, std::string_view s);

}  // namespace webcc::obs
