// Dense string interning for the hot lookup structures.
//
// The replay's inner loops key three maps by strings — the proxy cache's
// entry index (url@client), its per-URL index, and the accelerator's
// invalidation table — so every request hashed and compared whole URLs
// several times. An Interner maps each distinct string to a dense uint32
// once; all secondary structures (TTL heaps, url->entries indices, site
// lists) then key on the integer. Ids are never recycled: the table is
// bounded by the number of distinct URLs/clients in a trace, and a stable
// id lets heaps and logs refer to strings without owning them.
//
// Not thread-safe; each replay engine owns its interners (one simulation
// per thread, no shared mutable state — see replay::Farm).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace webcc::core {

// Dense id for an interned string. 32 bits bounds a single replay at ~4e9
// distinct strings, far above any trace.
using InternId = std::uint32_t;
inline constexpr InternId kNoInternId = 0xffffffffu;

class Interner {
 public:
  // Returns the id for `s`, interning it on first sight.
  InternId Intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    names_.emplace_back(s);  // deque: addresses stable across growth
    const InternId id = static_cast<InternId>(names_.size() - 1);
    index_.emplace(names_.back(), id);
    return id;
  }

  // Returns the id for `s` without interning, or kNoInternId when absent.
  // Lookups of never-inserted keys (cache misses) must not grow the table.
  InternId Find(std::string_view s) const {
    const auto it = index_.find(s);
    return it == index_.end() ? kNoInternId : it->second;
  }

  const std::string& NameOf(InternId id) const { return names_[id]; }

  std::size_t size() const { return names_.size(); }

 private:
  // Keys are views into names_; the deque never moves a stored string, so
  // the views survive both index rehash and deque growth.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, InternId> index_;
};

}  // namespace webcc::core
