// Whole-program lock-order cycle detection (rule: lock-order-cycle).
//
// Every nested pair of util::MutexLock acquisitions contributes an
// acquired-before edge (outer lock -> inner lock), keyed by the
// class-qualified canonical lock name so the same mutex matches across
// translation units. WEBCC_ACQUIRED_BEFORE/_AFTER declarations contribute
// edges too, so an ordering can be pinned even when only one side of it
// is visible in the scanned sources. A cycle in the merged graph is a
// potential deadlock; the finding's witness chain names the file:line of
// every edge so the inversion can be read straight off the report.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.h"

namespace webcc::lint {
namespace {

// Nearest named function enclosing a scope — labels the witness steps.
std::string FunctionLabel(const ScopeModel& model, int s) {
  for (; s >= 0; s = model.scopes[static_cast<std::size_t>(s)].parent) {
    const Scope& sc = model.scopes[static_cast<std::size_t>(s)];
    if (sc.kind == ScopeKind::kFunction) {
      return sc.class_name.empty() ? sc.name : sc.class_name + "::" + sc.name;
    }
  }
  return "(file scope)";
}

bool IsAncestorOrSelf(const ScopeModel& model, int candidate, int s) {
  for (; s >= 0; s = model.scopes[static_cast<std::size_t>(s)].parent) {
    if (s == candidate) return true;
  }
  return false;
}

struct CycleFinder {
  // Deduped adjacency; (from, to) -> index of the first witness edge.
  std::map<std::string, std::map<std::string, std::size_t>> adj;
  const std::vector<LockEdge>* edges = nullptr;

  // DFS colors: 0 unvisited, 1 on stack, 2 done.
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;  // canonical cycle keys
  std::vector<std::vector<std::size_t>> cycles;  // edge-index chains

  void Visit(const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    const auto it = adj.find(node);
    if (it != adj.end()) {
      for (const auto& [next, edge_index] : it->second) {
        const int c = color[next];
        if (c == 1) {
          RecordCycle(next);
        } else if (c == 0) {
          Visit(next);
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  }

  void RecordCycle(const std::string& entry) {
    const auto begin = std::find(stack.begin(), stack.end(), entry);
    if (begin == stack.end()) return;
    std::vector<std::string> nodes(begin, stack.end());
    // Canonicalize: rotate the smallest lock name to the front so the same
    // cycle discovered from different entry points reports once.
    const auto smallest = std::min_element(nodes.begin(), nodes.end());
    std::rotate(nodes.begin(), smallest, nodes.end());
    std::string key;
    for (const std::string& n : nodes) key += n + "\x1f";
    if (!reported.insert(key).second) return;
    std::vector<std::size_t> chain;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      chain.push_back(adj[nodes[i]][nodes[(i + 1) % nodes.size()]]);
    }
    cycles.push_back(std::move(chain));
  }
};

}  // namespace

void CollectLockOrder(const FileContext& file, LockOrderGraph* graph) {
  const ScopeModel& model = file.model;
  for (std::size_t i = 0; i < model.locks.size(); ++i) {
    const LockAcquire& inner = model.locks[i];
    for (std::size_t j = 0; j < i; ++j) {
      const LockAcquire& outer = model.locks[j];
      // `outer` is still held at `inner` iff inner's statement sits inside
      // outer's RAII scope and comes after the acquisition.
      if (outer.scope < 0) continue;  // file scope holds nothing
      if (!IsAncestorOrSelf(model, outer.scope, inner.scope)) continue;
      if (outer.code_index >= inner.code_index) continue;
      const Scope& osc = model.scopes[static_cast<std::size_t>(outer.scope)];
      if (inner.code_index >= osc.body_end) continue;  // RAII released
      if (outer.canonical == inner.canonical) continue;
      LockEdge e;
      e.from = outer.canonical;
      e.to = inner.canonical;
      e.file = file.path;
      e.line = inner.line;
      e.note = FunctionLabel(model, inner.scope) + " acquires '" +
               outer.canonical + "' then '" + inner.canonical + "'";
      graph->edges.push_back(std::move(e));
    }
  }
  for (const DeclaredOrder& d : model.declared_order) {
    if (d.before == d.after) continue;
    LockEdge e;
    e.from = d.before;
    e.to = d.after;
    e.file = file.path;
    e.line = d.line;
    e.note = "declared WEBCC_ACQUIRED_BEFORE: '" + d.before + "' before '" +
             d.after + "'";
    graph->edges.push_back(std::move(e));
  }
}

void RunLockOrderCycles(const LockOrderGraph& graph, Reporter& reporter) {
  CycleFinder finder;
  finder.edges = &graph.edges;
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const LockEdge& e = graph.edges[i];
    finder.adj[e.from].emplace(e.to, i);  // first witness wins
    finder.adj[e.to];                     // ensure the node exists
  }
  for (const auto& [node, unused] : finder.adj) {
    if (finder.color[node] == 0) finder.Visit(node);
  }
  for (const std::vector<std::size_t>& chain : finder.cycles) {
    const LockEdge& first = graph.edges[chain.front()];
    Finding f;
    f.file = first.file;
    f.line = first.line;
    f.rule = "lock-order-cycle";
    f.pass = "lock-order";
    std::string ring = first.from;
    for (const std::size_t ei : chain) ring += " -> " + graph.edges[ei].to;
    f.message = "lock-order cycle (potential deadlock): " + ring;
    for (const std::size_t ei : chain) {
      const LockEdge& e = graph.edges[ei];
      f.witness.push_back({e.file, e.line, e.note});
    }
    reporter.Report(std::move(f));
  }
}

}  // namespace webcc::lint
