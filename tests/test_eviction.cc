// The eviction kernel's contract: policies pick the documented victims with
// deterministic tie-breaks, the TTL expiry heap stays bounded under renewal
// churn (the PR 8 stale-record leak), oversize inserts are counted and
// traced, and the optional second tier preserves every consistency-facing
// semantic (TakeExpired, EraseByUrl, MarkAllQuestionable) across both
// tiers. The randomized cross-check against a model cache lives in
// test_cache_model.cc; these are the targeted unit cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/cache_key.h"
#include "http/eviction/expiry_heap.h"
#include "http/eviction/policy.h"
#include "http/proxy_cache.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace webcc::http {
namespace {

using eviction::EvictionPolicyKind;
using eviction::ExpiryHeap;

struct RecordedEvent {
  obs::EventType type;
  Time at;
  std::string url;
  std::int64_t detail;
};

struct RecordingSink final : obs::TraceSink {
  std::vector<RecordedEvent> events;
  void Emit(const obs::TraceEvent& event) override {
    events.push_back({event.type, event.at, std::string(event.url),
                      event.detail});
  }
  void WriteRaw(std::string_view) override {}
  std::size_t CountDetail(std::int64_t detail) const {
    std::size_t n = 0;
    for (const RecordedEvent& e : events) {
      if (e.type == obs::EventType::kEviction && e.detail == detail) ++n;
    }
    return n;
  }
};

CacheEntry MakeEntry(const std::string& url, std::uint64_t size, Time ttl,
                     const std::string& owner = "c") {
  CacheEntry entry;
  entry.url = url;
  entry.owner = owner;
  entry.key = ComposeCacheKey(url, owner);
  entry.size_bytes = size;
  entry.ttl_expires = ttl;
  return entry;
}

// --- kind spellings ---------------------------------------------------------

TEST(EvictionPolicyKindTest, ToStringParseRoundTrip) {
  for (const EvictionPolicyKind kind :
       {EvictionPolicyKind::kLru, EvictionPolicyKind::kExpiredFirstLru,
        EvictionPolicyKind::kGds}) {
    EvictionPolicyKind parsed = EvictionPolicyKind::kLru;
    ASSERT_TRUE(
        eviction::ParseEvictionPolicyKind(eviction::ToString(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  EvictionPolicyKind out = EvictionPolicyKind::kGds;
  EXPECT_FALSE(eviction::ParseEvictionPolicyKind("mru", out));
  EXPECT_EQ(out, EvictionPolicyKind::kGds);  // untouched on failure
}

// --- expiry heap ------------------------------------------------------------

TEST(ExpiryHeapTest, PopsByExpiryThenStamp) {
  // Same tie-break as the pre-kernel TtlHeapItem: expiry first, then the
  // insertion stamp, regardless of push order.
  ExpiryHeap heap;
  heap.Push(50, 7, 1);
  heap.Push(10, 9, 2);
  heap.Push(10, 3, 3);
  heap.Push(50, 2, 4);
  std::vector<core::InternId> order;
  while (!heap.empty()) {
    order.push_back(heap.Top().key);
    heap.PopLive();
  }
  EXPECT_EQ(order, (std::vector<core::InternId>{3, 2, 4, 1}));
}

TEST(ExpiryHeapTest, CompactionDropsOnlyStaleRecords) {
  ExpiryHeap heap;
  // 100 records; every even stamp goes stale. Below 2x live nothing
  // compacts; one more stale record crosses the threshold.
  for (std::uint64_t i = 0; i < 100; ++i) heap.Push(1000 + i, i, 1);
  for (std::uint64_t i = 0; i < 50; ++i) heap.NoteStale();
  const auto is_live = [](const eviction::ExpiryRecord& r) {
    return r.stamp % 2 == 1;
  };
  heap.CompactIfStale(is_live);
  EXPECT_EQ(heap.size(), 100u);  // 100 <= 2 * 50: not yet
  heap.NoteStale();
  const auto is_live_after = [](const eviction::ExpiryRecord& r) {
    return r.stamp % 2 == 1 && r.stamp != 1;
  };
  heap.CompactIfStale(is_live_after);
  EXPECT_EQ(heap.size(), 49u);
  EXPECT_EQ(heap.live(), 49u);
  // Survivors still pop in (expiry, stamp) order.
  Time last = 0;
  while (!heap.empty()) {
    EXPECT_GE(heap.Top().expires, last);
    last = heap.Top().expires;
    heap.PopLive();
  }
}

TEST(ProxyCacheTtlHeapTest, RenewChurnKeepsHeapBounded) {
  // The satellite regression: before compaction, every SetTtlExpiry leaked
  // one stale heap record, so this loop grew the heap to ~30010 records.
  // Compaction at stale-fraction 1/2 (floor 64) pins it at the floor.
  ProxyCache cache(1 << 20, EvictionPolicyKind::kExpiredFirstLru);
  for (int i = 0; i < 10; ++i) {
    cache.Insert(MakeEntry("/doc" + std::to_string(i), 100, 1000), 0);
  }
  for (int round = 0; round < 3000; ++round) {
    for (int i = 0; i < 10; ++i) {
      CacheEntry* entry = cache.Peek(ComposeCacheKey(
          "/doc" + std::to_string(i), "c"));
      ASSERT_NE(entry, nullptr);
      cache.SetTtlExpiry(*entry, 1000 + round);
    }
    ASSERT_LE(cache.ttl_heap_size(), 64u);
  }
  EXPECT_EQ(cache.entry_count(), 10u);
  // The renewed expiries still work: everything expires at the last value.
  EXPECT_EQ(cache.TakeExpired(10000, 100).size(), 10u);
}

// --- policy semantics -------------------------------------------------------

TEST(GdsPolicyTest, EvictsLowestCreditNotLruTail) {
  // GreedyDual-Size credits H = L + 1/size: the big cold object loses to a
  // small one even when the small one is least recently used.
  ProxyCache cache(10000, EvictionPolicyKind::kGds);
  cache.Insert(MakeEntry("/small", 100, kNeverExpires), 0);
  cache.Insert(MakeEntry("/big", 5000, kNeverExpires), 1);
  // /small is now the LRU tail, but H_small = 1/100 > H_big = 1/5000.
  cache.Insert(MakeEntry("/new", 5000, kNeverExpires), 2);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/small", "c")), nullptr);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/big", "c")), nullptr);
}

TEST(GdsPolicyTest, HitRecreditsAboveInflation) {
  // After an eviction raises L, a hit re-credits the entry above the new
  // floor, so recently-useful entries outlive cold ones of the same size.
  ProxyCache cache(10000, EvictionPolicyKind::kGds);
  cache.Insert(MakeEntry("/a", 4000, kNeverExpires), 0);
  cache.Insert(MakeEntry("/b", 4000, kNeverExpires), 1);
  ASSERT_NE(cache.Lookup(ComposeCacheKey("/a", "c")), nullptr);  // re-credit
  // Equal sizes, so without the hit /a (older order) would be the victim.
  cache.Insert(MakeEntry("/d", 4000, kNeverExpires), 2);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/a", "c")), nullptr);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/b", "c")), nullptr);
}

TEST(GdsPolicyTest, EqualCreditTieBreaksToOlderOrder) {
  // Same size, no hits: identical H, so the policy-private monotone order
  // decides — the older credit is evicted first, mirroring the TTL heap's
  // stamp rule.
  ProxyCache cache(12000, EvictionPolicyKind::kGds);
  cache.Insert(MakeEntry("/first", 4000, kNeverExpires), 0);
  cache.Insert(MakeEntry("/second", 4000, kNeverExpires), 1);
  cache.Insert(MakeEntry("/third", 4000, kNeverExpires), 2);
  cache.Insert(MakeEntry("/fourth", 4000, kNeverExpires), 3);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/first", "c")), nullptr);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/second", "c")), nullptr);
}

TEST(ExpiredFirstPolicyTest, TieOnExpiryBreaksToOlderStamp) {
  // Two entries expire at the same instant; the expired-first rule must
  // take the older stamp first (TtlHeapItem's documented ordering).
  ProxyCache cache(1000, EvictionPolicyKind::kExpiredFirstLru);
  cache.Insert(MakeEntry("/x", 400, 50), 0);
  cache.Insert(MakeEntry("/y", 400, 50), 0);
  // Touch /x so LRU would evict /y; the expired rule ignores recency.
  ASSERT_NE(cache.Lookup(ComposeCacheKey("/x", "c")), nullptr);
  cache.Insert(MakeEntry("/z", 400, kNeverExpires), 100);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/x", "c")), nullptr);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/y", "c")), nullptr);
}

// --- oversize rejections ----------------------------------------------------

TEST(ProxyCacheOversizeTest, CountsAndTracesRejections) {
  RecordingSink sink;
  ProxyCache cache(1000, EvictionPolicyKind::kLru);
  cache.set_trace_sink(&sink);
  cache.Insert(MakeEntry("/huge", 4000, kNeverExpires), 7);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().oversize_rejections, 1u);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sink.events[0].type, obs::EventType::kEviction);
  EXPECT_EQ(sink.events[0].detail, 2);
  EXPECT_EQ(sink.events[0].at, 7);
  EXPECT_EQ(sink.events[0].url, "/huge");

  obs::MetricsRegistry registry;
  cache.ExportMetrics(registry, "c.");
  EXPECT_EQ(registry.CounterValue("c.oversize_rejections"), 1u);
}

// --- tiering ----------------------------------------------------------------

TierConfig SmallTier() {
  TierConfig tier;
  tier.tier2_capacity_bytes = 10000;
  tier.promotion_hits = 2;
  tier.demotion_pressure = 0.5;
  tier.ttl_cleanup_per_tick = 8;
  return tier;
}

TEST(TieredCacheTest, PressureDemotesInsteadOfEvicting) {
  ProxyCache cache(1000, EvictionPolicyKind::kExpiredFirstLru, SmallTier());
  cache.Insert(MakeEntry("/a", 400, kNeverExpires), 0);
  cache.Insert(MakeEntry("/b", 400, kNeverExpires), 1);
  // 800 bytes > the 500-byte watermark: /a (LRU tail) demotes, not evicts.
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.tier2_entry_count(), 1u);
  EXPECT_EQ(cache.stats().tier2_demotions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.tier1_bytes_used(), 400u);
  EXPECT_EQ(cache.tier2_bytes_used(), 400u);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/a", "c")), nullptr);
}

TEST(TieredCacheTest, PromotesAfterConfiguredHits) {
  ProxyCache cache(1000, EvictionPolicyKind::kExpiredFirstLru, SmallTier());
  cache.Insert(MakeEntry("/a", 400, kNeverExpires), 0);
  cache.Insert(MakeEntry("/b", 400, kNeverExpires), 1);
  ASSERT_EQ(cache.tier2_entry_count(), 1u);
  EXPECT_NE(cache.Lookup(ComposeCacheKey("/a", "c"), 2), nullptr);
  EXPECT_EQ(cache.stats().tier2_promotions, 0u);  // 1 hit < promotion_hits
  EXPECT_NE(cache.Lookup(ComposeCacheKey("/a", "c"), 3), nullptr);
  EXPECT_EQ(cache.stats().tier2_promotions, 1u);
  EXPECT_EQ(cache.tier2_entry_count(), 0u);
  EXPECT_EQ(cache.tier1_bytes_used(), 800u);
}

TEST(TieredCacheTest, Tier2OverflowEvictsItsOwnTail) {
  RecordingSink sink;
  TierConfig tier = SmallTier();
  tier.tier2_capacity_bytes = 500;
  ProxyCache cache(1000, EvictionPolicyKind::kLru, tier);
  cache.set_trace_sink(&sink);
  cache.Insert(MakeEntry("/a", 400, kNeverExpires), 0);
  cache.Insert(MakeEntry("/b", 400, kNeverExpires), 1);  // demotes /a
  cache.Insert(MakeEntry("/c", 400, kNeverExpires), 2);  // demotes /b: full
  EXPECT_EQ(cache.stats().tier2_evictions, 1u);
  EXPECT_EQ(sink.CountDetail(3), 1u);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/a", "c")), nullptr);
  EXPECT_NE(cache.Peek(ComposeCacheKey("/b", "c")), nullptr);
}

TEST(TieredCacheTest, ExpiredRuleVictimsAreEvictedNotDemoted) {
  RecordingSink sink;
  ProxyCache cache(1000, EvictionPolicyKind::kExpiredFirstLru, SmallTier());
  cache.set_trace_sink(&sink);
  cache.Insert(MakeEntry("/stale", 400, 10), 0);
  cache.Insert(MakeEntry("/live", 400, kNeverExpires), 20);
  // At now=20 /stale is expired: the expired-first rule evicts it outright
  // rather than wasting tier-2 space on a dead document.
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
  EXPECT_EQ(cache.stats().tier2_demotions, 0u);
  EXPECT_EQ(sink.CountDetail(1), 1u);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/stale", "c")), nullptr);
}

TEST(TieredCacheTest, Tier2CleanupReclaimsExpiredFromColdEnd) {
  RecordingSink sink;
  ProxyCache cache(1000, EvictionPolicyKind::kLru, SmallTier());
  cache.set_trace_sink(&sink);
  cache.Insert(MakeEntry("/a", 400, 100), 0);
  cache.Insert(MakeEntry("/b", 400, kNeverExpires), 1);  // demotes /a
  ASSERT_EQ(cache.tier2_entry_count(), 1u);
  cache.Insert(MakeEntry("/c", 100, kNeverExpires), 200);  // cleanup tick
  EXPECT_EQ(cache.stats().tier2_expired_cleaned, 1u);
  EXPECT_EQ(sink.CountDetail(4), 1u);
  EXPECT_EQ(cache.Peek(ComposeCacheKey("/a", "c")), nullptr);
}

TEST(TieredCacheTest, OversizeForTier1LandsInTier2) {
  RecordingSink sink;
  ProxyCache cache(1000, EvictionPolicyKind::kLru, SmallTier());
  cache.set_trace_sink(&sink);
  cache.Insert(MakeEntry("/big", 2000, kNeverExpires), 0);
  EXPECT_EQ(cache.stats().oversize_rejections, 0u);
  EXPECT_EQ(cache.tier2_entry_count(), 1u);
  // Hits never promote it: it cannot fit tier 1.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(cache.Lookup(ComposeCacheKey("/big", "c"), i), nullptr);
  }
  EXPECT_EQ(cache.stats().tier2_promotions, 0u);
  // Larger than both budgets: rejected with the distinguishing detail.
  cache.Insert(MakeEntry("/colossal", 20000, kNeverExpires), 1);
  EXPECT_EQ(cache.stats().oversize_rejections, 1u);
  EXPECT_EQ(sink.CountDetail(2), 1u);
}

TEST(TieredCacheTest, ConsistencySweepsSeeBothTiers) {
  ProxyCache cache(1000, EvictionPolicyKind::kExpiredFirstLru, SmallTier());
  cache.Insert(MakeEntry("/doc", 400, 100, "alice"), 0);
  cache.Insert(MakeEntry("/doc", 400, kNeverExpires, "bob"), 1);
  ASSERT_EQ(cache.tier2_entry_count(), 1u);  // alice's copy demoted

  // TakeExpired finds the demoted copy through the shared TTL heap.
  const std::vector<CacheEntry*> expired = cache.TakeExpired(150, 10);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->owner, "alice");
  cache.SetTtlExpiry(*expired[0], 500);  // re-arm, as PCV does

  // MarkAllQuestionable covers both tiers.
  cache.MarkAllQuestionable();
  EXPECT_TRUE(cache.Peek(ComposeCacheKey("/doc", "alice"))->questionable);
  EXPECT_TRUE(cache.Peek(ComposeCacheKey("/doc", "bob"))->questionable);

  // EraseByUrl removes every owner's copy regardless of tier.
  EXPECT_EQ(cache.EraseByUrl("/doc"), 2u);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(TieredCacheTest, DisabledTierMatchesSingleTierCache) {
  // With tiering off the tiered constructor is bit-identical to the classic
  // cache: same victims, same stats, same occupancy.
  ProxyCache classic(2000, EvictionPolicyKind::kExpiredFirstLru);
  ProxyCache tiered(2000, EvictionPolicyKind::kExpiredFirstLru, TierConfig{});
  for (int i = 0; i < 50; ++i) {
    const std::string url = "/doc" + std::to_string(i % 7);
    const Time ttl = (i % 3 == 0) ? kNeverExpires : Time(i * 10);
    classic.Insert(MakeEntry(url, 300 + (i % 4) * 100, ttl), i);
    tiered.Insert(MakeEntry(url, 300 + (i % 4) * 100, ttl), i);
    const std::string probe =
        ComposeCacheKey("/doc" + std::to_string((i * 3) % 7), "c");
    EXPECT_EQ(classic.Lookup(probe, i) != nullptr,
              tiered.Lookup(probe, i) != nullptr);
    EXPECT_EQ(classic.bytes_used(), tiered.bytes_used());
    EXPECT_EQ(classic.entry_count(), tiered.entry_count());
  }
  EXPECT_EQ(classic.stats().evictions, tiered.stats().evictions);
  EXPECT_EQ(classic.stats().expired_evictions,
            tiered.stats().expired_evictions);
}

TEST(ProxyCacheMetricsTest, ExportsPolicyAndTierCounters) {
  ProxyCache cache(10000, EvictionPolicyKind::kGds, SmallTier());
  cache.Insert(MakeEntry("/a", 4000, kNeverExpires), 0);
  cache.Insert(MakeEntry("/b", 4000, kNeverExpires), 1);
  obs::MetricsRegistry registry;
  cache.ExportMetrics(registry, "c.");
  EXPECT_EQ(registry.CounterValue("c.insertions"), 2u);
  EXPECT_EQ(registry.CounterValue("c.tier2_demotions"),
            cache.stats().tier2_demotions);
  EXPECT_EQ(registry.CounterValue("c.policy_picks"),
            cache.stats().tier2_demotions + cache.stats().evictions);
  EXPECT_EQ(registry.CounterValue("c.tier2_bytes_used"),
            cache.tier2_bytes_used());
}

}  // namespace
}  // namespace webcc::http
