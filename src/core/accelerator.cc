#include "core/accelerator.h"

#include <algorithm>
#include <utility>

#include "core/lease.h"
#include "util/check.h"

namespace webcc::core {

std::optional<net::Reply> Accelerator::HandleRequest(
    const net::Request& request, Time now) {
  std::optional<net::Reply> reply = origin_.Handle(request, now);
  if (!reply.has_value()) return reply;
  ++stats_.requests;

  // First sighting of a document pins the version baseline so a later
  // notify can tell "changed since last invalidation" from "never seen".
  const http::Document* doc = store_->Find(request.url);
  WEBCC_DCHECK(doc != nullptr);
  const bool first_sighting =
      last_seen_version_.try_emplace(request.url, doc->version).second;
  if (journal_enabled_) {
    // Append-before-act: the journal records the registration before the
    // table mutates, so a torn tail can only describe an entry that was
    // never created. GrantLease is pure, so computing it here and again
    // inside Register cannot disagree.
    if (first_sighting) journal_.AppendVersion(request.url, doc->version);
    const Time lease = GrantLease(table_.lease_config(), request.type, now);
    if (LeaseActive(lease, now)) {
      journal_.AppendRegister(request.url, request.client_id, lease);
    }
  }

  // Pessimistic registration: any requester might cache the document.
  reply->lease_until =
      table_.Register(request.url, request.client_id, request.type, now);
  if (reply->lease_until != net::kNoLease) {
    obs::Emit(trace_sink_, {.type = obs::EventType::kLeaseGrant,
                            .at = now,
                            .url = request.url,
                            .site = request.client_id,
                            .detail = reply->lease_until});
  }
  registry_.RecordSite(request.client_id);
  return reply;
}

std::vector<net::Invalidation> Accelerator::HandleNotify(
    const net::Notify& notify, Time now) {
  ++stats_.notifies;
  obs::Emit(trace_sink_,
            {.type = obs::EventType::kNotify, .at = now, .url = notify.url});
  return DetectAndInvalidate(notify.url, now);
}

std::vector<net::Invalidation> Accelerator::CheckDocument(std::string_view url,
                                                          Time now) {
  return DetectAndInvalidate(url, now);
}

std::vector<net::Invalidation> Accelerator::DetectAndInvalidate(
    std::string_view url, Time now) {
  std::vector<net::Invalidation> out;
  const http::Document* doc = store_->Find(url);
  if (doc == nullptr) return out;

  auto [it, first_sighting] =
      last_seen_version_.try_emplace(std::string(url), doc->version);
  if (first_sighting || doc->version == it->second) {
    if (first_sighting && journal_enabled_) {
      journal_.AppendVersion(url, doc->version);
    }
    return out;  // unchanged (or nothing could have cached it yet)
  }
  it->second = doc->version;
  ++stats_.modifications_detected;
  if (journal_enabled_) {
    // Journal the new baseline and the list wipe before taking the list.
    journal_.AppendVersion(url, doc->version);
    journal_.AppendInvalidate(url);
  }

  std::vector<InvalidationTable::TakenSite> sites =
      table_.TakeSitesWithLeases(url, now);
  stats_.list_lengths_at_modification.push_back(sites.size());
  out.reserve(sites.size());
  for (InvalidationTable::TakenSite& taken : sites) {
    net::Invalidation inv;
    inv.type = net::MessageType::kInvalidateUrl;
    inv.url = std::string(url);
    inv.client_id = std::move(taken.site);
    inv.lease_until = taken.lease_until;
    obs::Emit(trace_sink_, {.type = obs::EventType::kInvalidateGenerated,
                            .at = now,
                            .url = inv.url,
                            .site = inv.client_id});
    out.push_back(std::move(inv));
  }
  stats_.invalidations_generated += out.size();
  return out;
}

void Accelerator::Crash() {
  table_.Clear();
  last_seen_version_.clear();
  // stats_ intentionally survives: it is the experiment's measurement
  // record, not server state.
}

std::vector<net::Invalidation> Accelerator::Recover() {
  std::vector<net::Invalidation> out;
  out.reserve(registry_.sites().size());
  for (const std::string& site : registry_.sites()) {
    net::Invalidation inv;
    inv.type = net::MessageType::kInvalidateServer;
    inv.server = server_name_;
    inv.client_id = site;
    inv.recovery = true;
    obs::Emit(trace_sink_, {.type = obs::EventType::kInvalidateServer,
                            .site = inv.client_id,
                            .label = server_name_});
    out.push_back(std::move(inv));
  }
  return out;
}

Accelerator::RebuildOutcome Accelerator::RebuildFromJournal(Time now) {
  RebuildOutcome outcome;
  const SiteJournal::ReplayResult replayed = journal_.Replay();
  outcome.journal_damaged = replayed.damaged;
  outcome.records_applied = replayed.records_applied;
  outcome.records_rejected = replayed.records_rejected;

  // Replay the valid prefix. When the journal is damaged this restores a
  // conservative superset: dropping trailing 'I' records can only leave
  // *extra* site-list entries (invalidate-more), never missing ones.
  for (const SiteJournal::Entry& entry : replayed.entries) {
    switch (entry.kind) {
      case 'R':
        // Restore drops entries whose lease lapsed while the server was
        // down — resurrecting them would inflate the rebuilt table's
        // entries/storage_bytes until the next prune.
        table_.Restore(entry.url, entry.site, entry.lease_until, now);
        break;
      case 'I':
        // History replay, not protocol execution: discard the list
        // silently. The Take path would emit kLeaseExpiry for lapsed
        // entries, and rebuild must emit no events.
        table_.DropList(entry.url);
        break;
      case 'V':
        last_seen_version_[entry.url] = entry.version;
        break;
      default:
        break;  // Replay never yields other kinds
    }
  }

  // Compact: the history is now embodied in the table, so rewrite the
  // journal as a snapshot of the restored state (version pins first, then
  // live registrations, both in sorted order for determinism).
  journal_.Clear();
  for (const std::string& url : JournaledUrls()) {
    journal_.AppendVersion(url, last_seen_version_.at(url));
  }
  std::vector<InvalidationTable::Snapshot> entries = table_.SnapshotEntries();
  outcome.entries_restored = entries.size();
  for (const InvalidationTable::Snapshot& entry : entries) {
    journal_.AppendRegister(entry.url, entry.site, entry.lease_until);
  }
  return outcome;
}

std::vector<std::string> Accelerator::JournaledUrls() const {
  std::vector<std::string> urls;
  urls.reserve(last_seen_version_.size());
  for (const auto& [url, version] : last_seen_version_) urls.push_back(url);
  std::sort(urls.begin(), urls.end());
  return urls;
}

Accelerator::RecoveryOutcome Accelerator::RecoverFromJournal(Time now) {
  RecoveryOutcome outcome;
  const RebuildOutcome rebuilt = RebuildFromJournal(now);
  outcome.journal_damaged = rebuilt.journal_damaged;
  outcome.records_applied = rebuilt.records_applied;
  outcome.records_rejected = rebuilt.records_rejected;
  outcome.entries_restored = rebuilt.entries_restored;

  if (outcome.journal_damaged) {
    // History after the damage point is unknowable; fall back to the
    // paper's blanket recovery broadcast (mark everything questionable).
    outcome.invalidations = Recover();
    return outcome;
  }

  // Intact journal: only documents whose store version advanced while the
  // server was down need (targeted) invalidations.
  for (const std::string& url : JournaledUrls()) {
    const http::Document* doc = store_->Find(url);
    if (doc == nullptr || doc->version == last_seen_version_.at(url)) continue;
    std::vector<net::Invalidation> changed = DetectAndInvalidate(url, now);
    for (net::Invalidation& inv : changed) {
      inv.recovery = true;
      outcome.invalidations.push_back(std::move(inv));
    }
  }
  return outcome;
}

void Accelerator::ExportMetrics(obs::MetricsRegistry& registry,
                                std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("requests"), stats_.requests);
  registry.SetCounter(name("notifies"), stats_.notifies);
  registry.SetCounter(name("modifications_detected"),
                      stats_.modifications_detected);
  registry.SetCounter(name("invalidations_generated"),
                      stats_.invalidations_generated);
  obs::Histogram* lists = registry.FindOrCreateHistogram(
      name("site_list_length_at_modification"));
  for (const std::size_t length : stats_.list_lengths_at_modification) {
    lists->Record(static_cast<double>(length));
  }
  table_.ExportMetrics(registry, name("table."));
}

}  // namespace webcc::core
