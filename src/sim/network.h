// Point-to-point network model with partitions, node failures, and
// TCP-style retry.
//
// Models the replay testbed's interconnect: a fixed one-way latency plus a
// bandwidth term per message. Failure injection mirrors the paper's three
// scenarios — a down proxy (connection refused; sender may give up, the
// proxy revalidates everything on recovery), a down server site, and a
// network partition (sender retries periodically until the link heals).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/time.h"

namespace webcc::sim {

// Dense small integers; the replay assigns one per host (pseudo-clients,
// pseudo-server).
using NodeId = int;

// What a fault injector may do to one datagram on one directed link.
struct Perturbation {
  bool drop = false;       // lose the message entirely
  bool duplicate = false;  // deliver it twice (second copy one latency later)
  Time extra_delay = 0;    // added to the normal transfer delay
};

// Hook consulted on every best-effort Send and every reliable transmission
// attempt. The network stays ignorant of fault plans and seeds; the fault
// layer (src/fault/) implements this against its own deterministic clock.
// Implementations must be deterministic functions of their own state — the
// network calls Perturb exactly once per transmission attempt, in event
// order, so a seeded RNG behind it replays bit-identically.
class LinkFaultInjector {
 public:
  virtual ~LinkFaultInjector() = default;
  virtual Perturbation Perturb(NodeId from, NodeId to) = 0;
};

struct NetworkConfig {
  // One-way propagation latency between any two distinct nodes. The default
  // approximates the paper's switched 100 Mb/s Ethernet.
  Time one_way_latency = 350 * kMicrosecond;
  // Link bandwidth used for the serialization term of the delivery delay.
  double bandwidth_bps = 100e6;
  // Fixed per-message framing overhead added to the payload (TCP/IP).
  std::uint32_t per_message_overhead_bytes = 40;
  // Interval between retries of a reliable send across a partition.
  Time retry_interval = 5 * kSecond;
  // Each successive retry multiplies the interval by this factor (TCP-style
  // exponential backoff), capped at retry_max_interval. 1.0 = fixed interval,
  // which keeps pre-fault replay timings unchanged.
  double retry_backoff = 1.0;
  Time retry_max_interval = 60 * kSecond;

  // A wide-area profile for the Section 5.2 "on the real Internet"
  // extrapolation: ~35 ms one-way, 1.5 Mb/s.
  static NetworkConfig Lan() { return NetworkConfig{}; }
  static NetworkConfig Wan() {
    NetworkConfig config;
    config.one_way_latency = 35 * kMillisecond;
    config.bandwidth_bps = 1.5e6;
    return config;
  }
};

class Network {
 public:
  // Outcome reported to SendReliable's completion callback.
  enum class SendResult {
    kDelivered,      // arrived at the destination
    kRefused,        // destination node down: TCP connect refused
    kGaveUp,         // partition outlived the retry budget
  };

  // Delivery handlers are scheduled on the simulator queue; sim::Task keeps
  // small captures inline. The done callback is invoked at the sender (not
  // scheduled), so it stays a std::function.
  using DeliverFn = Simulator::Action;
  using ReliableDoneFn = std::function<void(SendResult, Time /*done_at*/)>;

  Network(Simulator& sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- failure injection -------------------------------------------------
  void Partition(NodeId a, NodeId b);
  void Heal(NodeId a, NodeId b);
  bool IsPartitioned(NodeId a, NodeId b) const;

  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  // True when a message sent now from `from` would reach `to`.
  bool Reachable(NodeId from, NodeId to) const;

  // --- sending -----------------------------------------------------------

  // Serialization + propagation delay for a payload of `bytes`.
  Time TransferDelay(std::uint64_t bytes) const;

  // Best-effort datagram: delivered after TransferDelay unless the pair is
  // unreachable at send time, in which case it is dropped. Returns whether
  // the message was sent. `on_deliver` runs at the destination.
  //
  // Templated so an installed LinkFaultInjector can duplicate the handler:
  // sim::Task is move-only, so duplication is possible only when the callable
  // itself is copyable (every engine call site passes a copyable lambda).
  // Injected faults on this path model UDP-like loss: a dropped datagram is
  // simply gone (the caller's own timeout machinery notices, if any).
  template <typename F>
  bool Send(NodeId from, NodeId to, std::uint64_t bytes, F on_deliver) {
    if constexpr (requires { static_cast<bool>(on_deliver); }) {
      WEBCC_CHECK_MSG(static_cast<bool>(on_deliver), "null delivery handler");
    }
    if (!Reachable(from, to)) {
      ++messages_dropped_;
      return false;
    }
    Perturbation fault;
    if (injector_ != nullptr) fault = injector_->Perturb(from, to);
    if (fault.drop) {
      RecordInjectedDrop(from, to);
      return false;
    }
    Time delay = TransferDelay(bytes);
    if (fault.extra_delay > 0) {
      RecordInjectedDelay(from, to, fault.extra_delay);
      delay += fault.extra_delay;
    }
    if constexpr (std::is_copy_constructible_v<std::decay_t<F>>) {
      if (fault.duplicate) {
        RecordInjectedDup(from, to);
        ++messages_delivered_;
        bytes_delivered_ += bytes;
        // The duplicate trails the original by one propagation latency —
        // close enough to provoke reordering bugs, far enough to be distinct.
        F copy(on_deliver);
        sim_.After(delay + config_.one_way_latency, std::move(copy));
      }
    }
    ++messages_delivered_;
    bytes_delivered_ += bytes;
    sim_.After(delay, std::move(on_deliver));
    return true;
  }

  // TCP-with-retry, the paper's transport for invalidations. If the
  // destination node is down the connection is refused immediately (the
  // recovering proxy revalidates, so the sender need not persist). If the
  // path is partitioned, the send retries every retry_interval up to
  // `max_retries` times (-1 = unbounded). `on_deliver` runs at delivery;
  // `done` reports the outcome at the sender.
  void SendReliable(NodeId from, NodeId to, std::uint64_t bytes,
                    DeliverFn on_deliver, ReliableDoneFn done,
                    int max_retries = -1);

  // --- fault injection hook ----------------------------------------------
  // Installs (or clears, with nullptr) the per-link fault injector. Not
  // owned; must outlive the network or be cleared first.
  void set_fault_injector(LinkFaultInjector* injector) { injector_ = injector; }

  // --- accounting --------------------------------------------------------
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t injected_drops() const { return injected_drops_; }
  std::uint64_t injected_dups() const { return injected_dups_; }
  std::uint64_t injected_delays() const { return injected_delays_; }

  // Optional tracing: Partition/Heal emit kPartition/kPartitionHeal stamped
  // with the simulator clock (detail = the ordered node pair, a*1000+b).
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots the delivery counters into `registry` under `prefix`.
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  static std::pair<NodeId, NodeId> Ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  void TryReliable(NodeId from, NodeId to, std::uint64_t bytes,
                   DeliverFn on_deliver, ReliableDoneFn done, int retries_left,
                   Time current_interval);

  // Counter bumps + kLinkDrop/kLinkDelay/kLinkDup trace emission, shared by
  // the header-template Send and the reliable path.
  void RecordInjectedDrop(NodeId from, NodeId to);
  void RecordInjectedDup(NodeId from, NodeId to);
  void RecordInjectedDelay(NodeId from, NodeId to, Time extra);

  // Next retry interval under exponential backoff, capped.
  Time NextRetryInterval(Time current) const;

  Simulator& sim_;
  NetworkConfig config_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::set<NodeId> down_nodes_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_dups_ = 0;
  std::uint64_t injected_delays_ = 0;
  LinkFaultInjector* injector_ = nullptr;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::sim
